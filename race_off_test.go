//go:build !race

package cohort_test

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression guard skips under -race because the detector's
// shadow-memory bookkeeping inflates allocation counts.
const raceEnabled = false
