// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VIII). Each benchmark runs the corresponding experiment end to end —
// trace generation, GA timer optimization where the paper uses it, the
// cycle-accurate simulations of CoHoRT and its baselines, and the analytical
// bounds — and reports the headline figure-of-merit as a custom metric so
// `go test -bench . -benchmem` reproduces the paper's numbers in one run.
//
// Workloads are scaled (see DESIGN.md §1); the shapes, not the absolute
// cycle counts, are the reproduction target. EXPERIMENTS.md records the
// paper-vs-measured comparison.
package cohort_test

import (
	"testing"

	"cohort"
	"cohort/internal/experiments"
	"cohort/internal/obs"
)

// benchOptions sizes the experiments for benchmarking: large enough to be
// representative, small enough to iterate.
func benchOptions() cohort.ExperimentOptions {
	o := experiments.DefaultOptions()
	o.Scale = 0.05
	o.MaxAccessesPerCore = 2000
	o.Benchmarks = []string{"fft", "lu", "radix", "water"}
	o.GA.Pop, o.GA.Generations = 16, 12
	return o
}

func benchmarkFig5(b *testing.B, scenario string) {
	o := benchOptions()
	var last *cohort.Fig5Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := cohort.Fig5(o, scenario)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PCCRatio, "pcc-ratio")
	b.ReportMetric(last.PendulumRatio, "pendulum-ratio")
}

// BenchmarkFig5a reproduces Fig. 5a: per-core WCML with all four cores
// critical. Paper: CoHoRT ≈ 2.15× tighter than PCC, ≈ 16× than PENDULUM.
func BenchmarkFig5a(b *testing.B) { benchmarkFig5(b, "all-cr") }

// BenchmarkFig5b reproduces Fig. 5b (2 Cr + 2 nCr). Paper: PENDULUM ≈ 6×
// worse than CoHoRT.
func BenchmarkFig5b(b *testing.B) { benchmarkFig5(b, "2cr-2ncr") }

// BenchmarkFig5c reproduces Fig. 5c (1 Cr + 3 nCr). Paper: CoHoRT ≈ 18×
// tighter; the lone critical core's WCL reduces to pure arbitration latency.
func BenchmarkFig5c(b *testing.B) { benchmarkFig5(b, "1cr-3ncr") }

func benchmarkFig6(b *testing.B, scenario string) {
	o := benchOptions()
	var last *cohort.Fig6Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := cohort.Fig6(o, scenario)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AvgCoHoRT, "cohort-slowdown")
	b.ReportMetric(last.AvgPCC, "pcc-slowdown")
	b.ReportMetric(last.AvgPendulum, "pendulum-slowdown")
}

// BenchmarkFig6a reproduces Fig. 6a: execution time normalized to MSI+FCFS,
// all cores critical. Paper: 1.03× (CoHoRT), 1.13× (PCC), 1.50× (PENDULUM).
func BenchmarkFig6a(b *testing.B) { benchmarkFig6(b, "all-cr") }

// BenchmarkFig6b reproduces Fig. 6b (2 Cr + 2 nCr).
func BenchmarkFig6b(b *testing.B) { benchmarkFig6(b, "2cr-2ncr") }

// BenchmarkFig6c reproduces Fig. 6c (1 Cr + 3 nCr).
func BenchmarkFig6c(b *testing.B) { benchmarkFig6(b, "1cr-3ncr") }

// BenchmarkFig7 reproduces the mode-switch experiment (Fig. 7 + Table II):
// c0's requirement tightens over three stages; without switching the system
// becomes unschedulable, with switching it degrades lower-criticality cores
// to MSI and stays schedulable.
func BenchmarkFig7(b *testing.B) {
	o := benchOptions()
	var last *cohort.Fig7Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := cohort.Fig7(o, "fft", 1.5, 1.8)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	violations := 0
	for _, st := range last.Stages {
		if !st.MeetsWithSwitch() {
			violations++
		}
	}
	b.ReportMetric(float64(last.SimFinalMode), "final-mode")
	b.ReportMetric(float64(violations), "violations-with-switch")
}

// BenchmarkTable2 regenerates Table II: the optimization engine runs once
// per mode over the tasks with criticality ≥ that mode (the offline flow of
// Fig. 2a).
func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cohort.Table2(o, "fft"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationArbiter quantifies the arbitration design choice
// (RROF vs RR vs FCFS vs TDM) under identical timers.
func BenchmarkAblationArbiter(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fft"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationArbiter(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTransfer quantifies direct vs via-memory handovers (the
// structural difference between CoHoRT and PCC).
func BenchmarkAblationTransfer(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"radix"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTransfer(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTimer sweeps a uniform timer to chart the Fig. 1
// trade-off curve.
func BenchmarkAblationTimer(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fft"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTimer(o, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per wall-clock second on the paper platform.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, err := cohort.ProfileByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	tr := p.Scaled(0.1).Generate(4, 64, 42)
	cfg, err := cohort.NewCoHoRT(4, 1, []cohort.Timer{300, 100, 50, cohort.TimerMSI})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sys, err := cohort.NewSystem(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		run, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += run.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSimulatorThroughputObserved is the same run with a metrics
// registry and span recorder attached; the delta against
// BenchmarkSimulatorThroughput is the full observability overhead. The
// unobserved benchmark's allocs/op must not move when internal/obs changes —
// that is the zero-overhead-when-detached guard.
func BenchmarkSimulatorThroughputObserved(b *testing.B) {
	p, err := cohort.ProfileByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	tr := p.Scaled(0.1).Generate(4, 64, 42)
	cfg, err := cohort.NewCoHoRT(4, 1, []cohort.Timer{300, 100, 50, cohort.TimerMSI})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sys, err := cohort.NewSystem(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		reg, rec := cohort.NewMetricsRegistry(), cohort.NewSpanRecorder()
		if err := sys.SetMetrics(reg); err != nil {
			b.Fatal(err)
		}
		if err := sys.SetRecorder(rec); err != nil {
			b.Fatal(err)
		}
		run, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += run.Cycles
		if snap := reg.Snapshot(); len(snap) == 0 {
			b.Fatal("empty snapshot")
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSimulatorThroughputProgress is the same run with only a live
// run-tracker handle attached (cohort-bench -listen): the hot path counts
// completions in plain ints and flushes to the handle's atomics every 1024
// events, so the delta against BenchmarkSimulatorThroughput — and in
// particular the allocs/op delta, which must be zero — is the whole cost
// of live progress tracking.
func BenchmarkSimulatorThroughputProgress(b *testing.B) {
	p, err := cohort.ProfileByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	tr := p.Scaled(0.1).Generate(4, 64, 42)
	cfg, err := cohort.NewCoHoRT(4, 1, []cohort.Timer{300, 100, 50, cohort.TimerMSI})
	if err != nil {
		b.Fatal(err)
	}
	tracker := obs.NewRunTracker(obs.WallClock{})
	rh := tracker.Register("bench", "progress")
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sys, err := cohort.NewSystem(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.SetProgress(rh); err != nil {
			b.Fatal(err)
		}
		run, err := sys.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += run.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkGAGeneration measures the optimizer's oracle-evaluation cost.
func BenchmarkGAGeneration(b *testing.B) {
	p, err := cohort.ProfileByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	tr := p.Scaled(0.05).Generate(4, 64, 42)
	base := cohort.PaperDefaults(4, 1)
	prob := &cohort.Problem{
		Lat:     base.Lat,
		L1:      base.L1,
		Streams: tr.Streams,
		Timed:   []bool{true, true, true, true},
	}
	gc := cohort.DefaultGA(1)
	gc.Pop, gc.Generations = 16, 4
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cohort.Optimize(prob, gc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticAnalysis measures the in-isolation hit analysis throughput
// (accesses per second), the optimizer's inner loop.
func BenchmarkStaticAnalysis(b *testing.B) {
	p, err := cohort.ProfileByName("ocean")
	if err != nil {
		b.Fatal(err)
	}
	p = p.Scaled(0.01)
	tr := p.Generate(1, 64, 42)
	base := cohort.PaperDefaults(4, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cohort.GuaranteedHits(tr.Streams[0], base.L1, base.Lat, 300, base.Lat.SlotWidth())
	}
	b.ReportMetric(float64(len(tr.Streams[0]))*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkNonPerfect reproduces the paper's footnote-1 experiment: the
// Fig. 5/Fig. 6 headline orderings under a non-perfect LLC with a
// fixed-latency DRAM ("same observations").
func BenchmarkNonPerfect(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fft", "water"}
	var last *experiments.NonPerfectResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.NonPerfect(o)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	same := 0.0
	if last.SameObservations() {
		same = 1.0
	}
	b.ReportMetric(same, "same-observations")
	b.ReportMetric(last.AvgBoundRatio, "bound-ratio-vs-pcc")
}

// BenchmarkAblationSnoop quantifies the MESI extension (silent E→M
// upgrades) against the paper's MSI base.
func BenchmarkAblationSnoop(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"lu"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSnoop(o); err != nil {
			b.Fatal(err)
		}
	}
}
