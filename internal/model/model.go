// Package model is an explicit-state model checker for the CoHoRT protocol
// in the Murphi tradition: it exhaustively enumerates the reachable
// quiescent states of a small configuration (2–3 cores, 1–2 lines, a handful
// of timer values, 2 criticality modes) and checks every protocol invariant
// — SWMR, value consistency, LLC inclusion, exact timer release, mode-switch
// LUT fidelity, deadlock and livelock freedom — at every reachable state.
//
// Unlike a hand-written transition table, the checker drives the *real*
// simulator: each explored state is reached by replaying an event script
// (internal/model.Script) through a fresh core.System with invariant
// checking enabled, so the transition relation being verified is the
// shipping protocol implementation itself (the pure rules in
// internal/core/rules.go and the directory/timer logic in
// internal/coherence). A bug cannot hide in a modeling gap because there is
// no second model.
//
// Exploration is breadth-first over scripts: each frontier node is extended
// by one window drawn from a finite menu of command bursts (single accesses,
// racing access pairs at protocol-aligned offsets, mode switches, and
// access/switch races). The quiescent state after each replay is canonically
// encoded — timer phases reduced to residues, write versions to deltas, LRU
// stamps to ranks, and core identities folded under the symmetry group of
// identically-configured cores — and deduplicated through a visited set that
// spills to sorted disk segments when it outgrows memory. A violation
// surfaces as a minimized Script: a complete, deterministic counterexample
// replayable in the simulator and renderable as a Perfetto trace.
package model

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/config"
	"cohort/internal/core"
	"cohort/internal/invariant"
	"cohort/internal/obs"
	"cohort/internal/sim"
	"cohort/internal/stats"
)

// Config parameterizes one exhaustive exploration.
type Config struct {
	// Sys is the platform under test. It is cloned; invariant checking is
	// forced on regardless of the flag in the input.
	Sys *config.System
	// Lines are the byte addresses the workload touches (distinct lines).
	Lines []uint64
	// Depth bounds the script length in windows (BFS depth).
	Depth int
	// PostGaps are the window start offsets, in cycles, after the previous
	// quiescent boundary. Defaults to 0..4, covering every residue of the
	// small timer moduli.
	PostGaps []int64
	// RaceOffsets are the intra-window delays of a second racing command.
	// Defaults to the protocol-aligned set {0, 1, Req, Req+1, Req+Data,
	// Req+Data+1} so races land exactly on broadcast and transfer edges.
	RaceOffsets []int64
	// Pairs enables two-command race windows (on by default in presets;
	// singles-only exploration is a faster shallow tier).
	Pairs bool
	// Symmetry folds states under permutations of identically-configured
	// cores. Only applied under the RROF and RR arbiters, whose policies are
	// equivariant under core renaming; FCFS breaks ties by core id and TDM's
	// slot schedule is id-ordered, so symmetry is silently disabled there.
	Symmetry bool
	// MaxStates truncates exploration after this many distinct states
	// (0 = unbounded). A truncated run reports Truncated and proves nothing
	// about uncovered states.
	MaxStates int64
	// SpillDir is where visited-set segments go when the in-memory set
	// exceeds SpillThreshold keys ("" = a fresh temp dir). SpillThreshold 0
	// defaults to 1<<20 keys (16 MiB resident).
	SpillDir       string
	SpillThreshold int
	// Progress, when non-nil, receives one line per completed BFS level.
	Progress func(format string, args ...any)
}

// Result summarizes an exploration.
type Result struct {
	// States is the number of distinct canonical quiescent states reached,
	// including the initial state.
	States int64
	// Runs is the number of full simulator replays executed.
	Runs int64
	// Depth is the number of BFS levels fully expanded.
	Depth int
	// Truncated reports that MaxStates cut exploration short.
	Truncated bool
	// Spills is the number of visited-set segments written to disk.
	Spills int
	// Violation is the first property violation found, or nil if every
	// explored state satisfied every invariant.
	Violation *Violation
}

// Violation is a failed check with its reproduction.
type Violation struct {
	// Kind classifies the violation: an invariant.Kind string, "deadlock",
	// "livelock", "coherence" (final-sweep failure), "quiescence" or
	// "overrun" (the run failed to settle inside its window stride).
	Kind string
	// Err is the full violation message from the simulator.
	Err string
	// Script is the exploration script that reached the violation.
	Script *Script
	// Minimized is the greedily minimized counterexample: windows dropped,
	// races reduced to single commands, gaps and offsets shrunk — every step
	// verified to preserve the violation kind by replay.
	Minimized *Script
}

// Checker is a configured explorer. Build one with New; Explore and Replay
// may be called repeatedly (each replay builds a fresh single-use System).
type Checker struct {
	cfg       Config
	sys       *config.System
	lines     []uint64 // byte addresses, as configured
	lineAddrs []uint64 // line-granularity addresses, same order
	lineIdx   map[uint64]int
	l1Sets    []int
	llcSets   []int
	stride    int64
	perms     [][]int
	winCache  map[int][]Window

	// lruScratch backs the per-set snapshots taken while encoding a state;
	// encode runs once per (state, permutation) and is the checker's hottest
	// loop, so the buffer is reused across calls (cache.AppendEntriesLRU).
	lruScratch []*cache.Entry
}

// New validates the exploration config and precomputes the schedule stride,
// the symmetry group, and the line index maps.
func New(cfg Config) (*Checker, error) {
	if cfg.Sys == nil {
		return nil, errors.New("model: nil system config")
	}
	sys := cfg.Sys.Clone()
	sys.CheckInvariants = true
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if sys.N() > 8 {
		return nil, fmt.Errorf("model: %d cores; exhaustive exploration supports at most 8", sys.N())
	}
	if len(cfg.Lines) == 0 || len(cfg.Lines) > 250 {
		return nil, fmt.Errorf("model: need 1..250 lines, got %d", len(cfg.Lines))
	}
	if cfg.Depth < 0 {
		return nil, fmt.Errorf("model: negative depth %d", cfg.Depth)
	}
	if len(cfg.PostGaps) == 0 {
		cfg.PostGaps = []int64{0, 1, 2, 3, 4}
	}
	if len(cfg.RaceOffsets) == 0 {
		r, d := sys.Lat.Req, sys.Lat.Data
		cfg.RaceOffsets = []int64{0, 1, r, r + 1, r + d, r + d + 1}
	}
	if cfg.SpillThreshold <= 0 {
		cfg.SpillThreshold = 1 << 20
	}

	c := &Checker{cfg: cfg, sys: sys, lineIdx: make(map[uint64]int), winCache: make(map[int][]Window)}
	lineShift := uint(0)
	for 1<<lineShift < sys.L1.LineBytes {
		lineShift++
	}
	l1SetSeen, llcSetSeen := map[int]bool{}, map[int]bool{}
	for _, addr := range cfg.Lines {
		la := addr >> lineShift
		if _, dup := c.lineIdx[la]; dup {
			return nil, fmt.Errorf("model: addresses map to duplicate line %#x", la)
		}
		c.lineIdx[la] = len(c.lines)
		c.lines = append(c.lines, addr)
		c.lineAddrs = append(c.lineAddrs, la)
		s1 := int(la) & (sys.L1.Sets() - 1)
		if !l1SetSeen[s1] {
			l1SetSeen[s1] = true
			c.l1Sets = append(c.l1Sets, s1)
		}
		s2 := int(la) & (sys.LLC.Sets() - 1)
		if !llcSetSeen[s2] {
			llcSetSeen[s2] = true
			c.llcSets = append(c.llcSets, s2)
		}
	}
	sort.Ints(c.l1Sets)
	sort.Ints(c.llcSets)

	maxCmds := int64(1)
	if cfg.Pairs {
		maxCmds = 2
	}
	var maxOff int64
	for _, d := range cfg.RaceOffsets {
		if d > maxOff {
			maxOff = d
		}
	}
	var maxTheta int64
	for _, co := range sys.Cores {
		for _, th := range co.TimerLUT {
			if th.Timed() && int64(th) > maxTheta {
				maxTheta = int64(th)
			}
		}
	}
	// Per-command quiescence allowance: the race offset, a broadcast, two
	// data slots (ViaMemory transfers pay two), a DRAM fill, a full timer
	// epoch the request may have to wait out, the hit latency, and slack for
	// the fixed per-transaction bookkeeping cycles. Replays assert the run
	// actually settled inside the stride, so an undersized bound is caught,
	// never silently unsound.
	perCmd := maxOff + sys.Lat.Req + 2*sys.Lat.Data + sys.Lat.DRAM + maxTheta + sys.Lat.Hit + 8
	c.stride = maxCmds * perCmd

	c.perms = corePerms(sys, cfg.Symmetry)
	return c, nil
}

// EmptyScript returns the zero-window script on this checker's stride (the
// BFS root).
func (c *Checker) EmptyScript() *Script { return &Script{Stride: c.stride} }

// Sys returns the (cloned, invariant-enabled) platform under test.
func (c *Checker) Sys() *config.System { return c.sys }

// Lines returns the configured byte addresses.
func (c *Checker) Lines() []uint64 { return append([]uint64(nil), c.lines...) }

// replayResult is one simulator execution of a script.
type replayResult struct {
	sys      *core.System
	run      *stats.Run
	boundary int64
	kind     string // "" when the replay was violation-free
	msg      string
}

// replay builds a fresh System for the script and runs it to completion with
// invariant checking on, classifying any violation.
func (c *Checker) replay(s *Script, rec *obs.Recorder) (*replayResult, error) {
	sched, err := computeSchedule(s)
	if err != nil {
		return nil, err
	}
	tr, err := buildTrace(c.sys, c.lines, sched)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(c.sys, tr)
	if err != nil {
		return nil, err
	}
	for _, sw := range sched.switches {
		if err := sys.ScheduleModeSwitch(sw.at, sw.mode); err != nil {
			return nil, err
		}
	}
	if rec != nil {
		sys.SetRecorder(rec)
	}
	out := &replayResult{sys: sys, boundary: sched.boundary}
	run, err := sys.Run()
	if err != nil {
		out.kind, out.msg = classify(err)
		return out, nil
	}
	out.run = run
	if err := sys.CheckCoherence(); err != nil {
		out.kind, out.msg = "coherence", err.Error()
		return out, nil
	}
	if !sys.Quiescent() {
		out.kind, out.msg = "quiescence", "run completed with in-flight protocol state"
		return out, nil
	}
	if sched.boundary > 0 && run.Cycles >= sched.boundary {
		out.kind = "overrun"
		out.msg = fmt.Sprintf("run finished at cycle %d, past the window boundary %d", run.Cycles, sched.boundary)
		return out, nil
	}
	return out, nil
}

// classify maps a Run error to a violation kind.
func classify(err error) (kind, msg string) {
	var ie *invariant.Error
	switch {
	case errors.As(err, &ie):
		return ie.Kind.String(), err.Error()
	case errors.Is(err, sim.ErrBudgetExceeded):
		return "livelock", err.Error()
	case errors.Is(err, core.ErrDeadlock):
		return "deadlock", err.Error()
	default:
		return "error", err.Error()
	}
}

// ReplayOutcome is the public result of replaying one script.
type ReplayOutcome struct {
	// Run holds the measurements when the replay completed (nil on an error
	// path such as a latched invariant violation).
	Run *stats.Run
	// Violation is non-nil when the script reproduces a violation.
	Violation *Violation
	// FinalMode is the operating mode after the run.
	FinalMode int
}

// Replay runs one script through a fresh simulator and reports whether it
// violates any property. Counterexample scripts loaded with ParseScript
// replay through a Checker built from the script's own embedded config.
func (c *Checker) Replay(s *Script) (*ReplayOutcome, error) {
	return c.replayPublic(s, nil)
}

// ReplayChrome is Replay with a Perfetto/Chrome trace of the run written to
// w (load it at ui.perfetto.dev). The trace covers the cycles up to the
// violation when one occurs.
func (c *Checker) ReplayChrome(s *Script, w io.Writer) (*ReplayOutcome, error) {
	rec := obs.NewRecorder()
	out, err := c.replayPublic(s, rec)
	if err != nil {
		return nil, err
	}
	if err := rec.WriteChrome(w); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Checker) replayPublic(s *Script, rec *obs.Recorder) (*ReplayOutcome, error) {
	rr, err := c.replay(s, rec)
	if err != nil {
		return nil, err
	}
	out := &ReplayOutcome{Run: rr.run, FinalMode: rr.sys.Mode()}
	if rr.kind != "" {
		out.Violation = &Violation{Kind: rr.kind, Err: rr.msg, Script: s.clone()}
	}
	return out, nil
}

// corePerms returns the symmetry group to canonicalize under: every
// permutation of core ids that maps each core to an identically-configured
// one. Falls back to the identity when symmetry is off or the arbiter is not
// equivariant under renaming (FCFS id tie-breaks, TDM id-ordered schedule).
func corePerms(sys *config.System, symmetry bool) [][]int {
	n := sys.N()
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	if !symmetry || (sys.Arbiter != config.ArbiterRROF && sys.Arbiter != config.ArbiterRR) {
		return [][]int{id}
	}
	class := make([]string, n)
	for i, co := range sys.Cores {
		class[i] = fmt.Sprintf("%d|%v|%v", co.Criticality, co.TimerLUT, co.Requirement)
	}
	var perms [][]int
	used := make([]bool, n)
	cur := make([]int, 0, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			perms = append(perms, append([]int(nil), cur...))
			return
		}
		pos := len(cur)
		for i := 0; i < n; i++ {
			if used[i] || class[i] != class[pos] {
				continue
			}
			used[i] = true
			cur = append(cur, i)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return perms
}

// --- seeded mutations -------------------------------------------------------

// MutationNames lists the seeded protocol faults the checker is proven to
// catch (cmd/cohort-model -mutate, TestMutationsProduceCounterexamples).
func MutationNames() []string {
	return []string{"skip-msi-downgrade", "timer-release-skew", "stale-sharer-bitmask", "lut-off-by-one"}
}

// ApplyMutation arms one seeded protocol fault by name. The hooks are
// process-global; call ClearMutations when done and never explore
// concurrently with a mutation armed.
func ApplyMutation(name string) error {
	switch name {
	case "skip-msi-downgrade":
		core.TestHooks.SkipMSIDowngrade = true
	case "timer-release-skew":
		core.TestHooks.TimerReleaseSkew = 3
	case "stale-sharer-bitmask":
		core.TestHooks.StaleSharerBitmask = true
	case "lut-off-by-one":
		coherence.TestHooks.LUTLookupOffByOne = true
	default:
		return fmt.Errorf("model: unknown mutation %q (have %v)", name, MutationNames())
	}
	return nil
}

// ClearMutations disarms every seeded fault.
func ClearMutations() {
	core.TestHooks.SkipMSIDowngrade = false
	core.TestHooks.TimerReleaseSkew = 0
	core.TestHooks.StaleSharerBitmask = false
	coherence.TestHooks.LUTLookupOffByOne = false
}
