package model

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"

	"cohort/internal/bus"
	"cohort/internal/coherence"
	"cohort/internal/config"
	"cohort/internal/core"
)

// Canonical state encoding. A quiescent system is reduced to the fields that
// determine all future behavior, each rebased so that two runs reaching
// behaviorally identical states produce byte-identical encodings:
//
//   - timer epochs become residues (boundary − FetchedAt) mod θ — a future
//     request at boundary+g waits (θ − (residue+g) mod θ) mod θ cycles, a
//     function of the residue alone (Fig. 3 closed form);
//   - write versions become per-copy deltas against the line's committed
//     version — the value-consistency predicate only ever compares the two;
//   - LRU stamps become ranks (cache.EntriesLRU orders by recency);
//   - under RROF/RR the live arbiter rotation is encoded explicitly; under
//     TDM, which keys on absolute time, the boundary's phase within the slot
//     rotation is encoded instead;
//   - with symmetry enabled, the encoding is minimized over all permutations
//     of identically-configured cores (the canonical representative of the
//     orbit), shrinking the state space by up to |class|! per class.
//
// Replays assert quiescence (no waiters, no in-flight transfer, bus idle)
// before a state is encoded, so the omitted transient fields are all at
// their rest values.

type canonKey = [16]byte

// canonicalKey encodes the quiescent system rebased at the script boundary
// and returns a 16-byte hash of the lexicographically smallest encoding over
// the symmetry group.
func (c *Checker) canonicalKey(sys *core.System, boundary int64) canonKey {
	var best []byte
	for _, perm := range c.perms {
		enc := c.encode(sys, boundary, perm)
		if best == nil || bytes.Compare(enc, best) < 0 {
			best = enc
		}
	}
	sum := sha256.Sum256(best)
	var k canonKey
	copy(k[:], sum[:len(k)])
	return k
}

// encode renders one permutation's view: order[pos] is the original core id
// occupying canonical position pos.
func (c *Checker) encode(sys *core.System, boundary int64, order []int) []byte {
	n := len(order)
	inv := make([]int, n)
	for pos, orig := range order {
		inv[orig] = pos
	}
	b := make([]byte, 0, 512)
	b = appendI64(b, int64(sys.Mode()))

	switch arb := sys.BusArbiter().(type) {
	case *bus.RROF:
		for _, x := range arb.Order() {
			b = append(b, byte(inv[x]))
		}
	case *bus.RR:
		for _, x := range arb.Order() {
			b = append(b, byte(inv[x]))
		}
	case *bus.FCFS:
		// Stateless between transactions.
	case *bus.TDM:
		// The slot owner at a future cycle t is schedule[(t/SW) mod k]: the
		// boundary's phase within one full rotation captures it.
		k := 0
		for i := 0; i < n; i++ {
			if c.sys.Cores[i].Criticality >= sys.Mode() {
				k++
			}
		}
		if k == 0 {
			k = n
		}
		b = appendI64(b, boundary%(c.sys.Lat.SlotWidth()*int64(k)))
	}
	b = append(b, 0xFD)

	dir := sys.Directory()
	for _, orig := range order {
		theta := sys.CoreTheta(orig)
		b = appendI64(b, int64(theta))
		l1 := sys.CoreL1(orig)
		for _, set := range c.l1Sets {
			c.lruScratch = l1.AppendEntriesLRU(c.lruScratch[:0], set)
			for _, e := range c.lruScratch {
				li := dir.Peek(e.LineAddr)
				b = append(b, byte(c.lineIdx[e.LineAddr]), byte(e.State))
				b = appendI64(b, int64(li.Version-e.Version))
				b = appendI64(b, residue(boundary, e.FetchedAt, theta))
			}
			b = append(b, 0xFF)
		}
	}

	for _, la := range c.lineAddrs {
		li := dir.Peek(la)
		if li == nil {
			b = append(b, 0xFE)
			continue
		}
		if li.Owner == coherence.MemOwner {
			b = append(b, 0)
			b = appendI64(b, 0)
		} else {
			b = append(b, byte(inv[li.Owner]+1))
			b = appendI64(b, residue(boundary, li.OwnerFetch, sys.CoreTheta(li.Owner)))
		}
		var mask uint64
		for pos, orig := range order {
			if li.IsSharer(orig) {
				mask |= 1 << uint(pos)
			}
		}
		b = appendI64(b, int64(mask))
		b = append(b, byte(len(li.Waiters)), boolByte(li.OwnerReleased))
	}

	if !c.sys.PerfectLLC {
		llc := sys.LLC()
		for _, la := range c.lineAddrs {
			b = append(b, boolByte(llc.Contains(la)), boolByte(llc.Bypassed(la)))
		}
		arr := llc.Array()
		for _, set := range c.llcSets {
			c.lruScratch = arr.AppendEntriesLRU(c.lruScratch[:0], set)
			for _, e := range c.lruScratch {
				idx, ok := c.lineIdx[e.LineAddr]
				if !ok {
					idx = 251 // foreign line; never expected (workload only touches c.lines)
				}
				b = append(b, byte(idx), byte(e.State))
			}
			b = append(b, 0xFF)
		}
	}
	return b
}

// residue reduces a fetch epoch to its timer phase at the boundary; untimed
// registers (MSI, no-cache) have no phase.
func residue(boundary, fetchedAt int64, theta config.Timer) int64 {
	if !theta.Timed() {
		return 0
	}
	return (boundary - fetchedAt) % int64(theta)
}

func appendI64(b []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(v))
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
