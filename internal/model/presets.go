package model

import "cohort/internal/config"

// Smoke returns the CI exploration tier: two cores over one line and two
// criticality modes on the paper's default platform (RROF, perfect LLC,
// 1/4/50 latencies), with LUTs covering all four timer archetypes — MSI
// (θ=−1), no-cache (θ=0), and short timed epochs θ=2 and θ=5 whose residues
// the gap menu fully cycles through. Exhaustive to the given depth; depth 2
// explores every ordered pair of racing windows and completes in well under
// a minute, which is the check.sh / CI budget.
func Smoke(depth int) Config {
	sys := config.PaperDefaults(2, 2)
	sys.Cores[0].Criticality = 2
	sys.Cores[0].TimerLUT = []config.Timer{2, config.TimerMSI}
	sys.Cores[1].Criticality = 1
	sys.Cores[1].TimerLUT = []config.Timer{config.TimerNoCache, 5}
	return Config{
		Sys:      sys,
		Lines:    []uint64{0x1000},
		Depth:    depth,
		Pairs:    true,
		Symmetry: true,
	}
}
