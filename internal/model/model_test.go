package model

import (
	"bytes"
	"strings"
	"testing"

	"cohort/internal/config"
)

// TestSmokeExhaustiveClean is the headline property: every quiescent state
// of the smoke configuration reachable within two windows satisfies every
// protocol invariant, and the exploration is deterministic — two runs visit
// exactly the same state space.
func TestSmokeExhaustiveClean(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration in -short mode")
	}
	run := func() *Result {
		c, err := New(Smoke(2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Explore()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Violation != nil {
		t.Fatalf("violation in unmutated protocol: %s\n  script: %s", res.Violation.Err, Describe(res.Violation.Script))
	}
	if res.Truncated {
		t.Fatal("smoke exploration truncated; must be exhaustive")
	}
	if res.Depth != 2 {
		t.Fatalf("explored depth %d, want 2", res.Depth)
	}
	if res.States < 10 {
		t.Fatalf("implausibly few states: %d", res.States)
	}
	t.Logf("smoke: %d states, %d runs", res.States, res.Runs)

	res2 := run()
	if res2.States != res.States || res2.Runs != res.Runs {
		t.Fatalf("exploration not deterministic: %d states/%d runs vs %d/%d",
			res.States, res.Runs, res2.States, res2.Runs)
	}
}

// mutationCase pins each seeded fault to the invariant that must catch it.
var mutationCases = []struct {
	name string
	kind string
}{
	{"timer-release-skew", "timer-protection"},
	{"stale-sharer-bitmask", "swmr"},
	{"skip-msi-downgrade", "swmr"},
	{"lut-off-by-one", "mode-switch"},
}

// TestMutationsProduceCounterexamples proves the checker fails closed: each
// seeded protocol fault yields a violation whose minimized counterexample
// replays — through a checker rebuilt from the serialized script alone — to
// the same violation kind.
func TestMutationsProduceCounterexamples(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration in -short mode")
	}
	for _, tc := range mutationCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := ApplyMutation(tc.name); err != nil {
				t.Fatal(err)
			}
			defer ClearMutations()
			c, err := New(Smoke(2))
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Explore()
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil {
				t.Fatalf("mutation %s not caught in %d runs", tc.name, res.Runs)
			}
			v := res.Violation
			if v.Kind != tc.kind {
				t.Fatalf("mutation %s caught as %q (%s), want kind %q", tc.name, v.Kind, v.Err, tc.kind)
			}
			if v.Minimized == nil {
				t.Fatal("violation has no minimized counterexample")
			}
			if len(v.Minimized.Windows) > 2 {
				t.Fatalf("minimized counterexample still has %d windows: %s", len(v.Minimized.Windows), Describe(v.Minimized))
			}
			t.Logf("%s: %s → %s", tc.name, v.Kind, Describe(v.Minimized))

			// The serialized script alone must reproduce in the simulator.
			var buf bytes.Buffer
			if err := WriteScript(&buf, c.Sys(), c.Lines(), v.Minimized); err != nil {
				t.Fatal(err)
			}
			sys, lines, script, err := ParseScript(&buf)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := New(Config{Sys: sys, Lines: lines, Pairs: true})
			if err != nil {
				t.Fatal(err)
			}
			out, err := rc.Replay(script)
			if err != nil {
				t.Fatal(err)
			}
			if out.Violation == nil || out.Violation.Kind != tc.kind {
				t.Fatalf("round-tripped counterexample does not reproduce %s: %+v", tc.kind, out.Violation)
			}

			// And it must render as a Perfetto trace.
			var chrome bytes.Buffer
			if _, err := rc.ReplayChrome(script, &chrome); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(chrome.String(), "traceEvents") {
				t.Fatalf("chrome render missing traceEvents: %.100s", chrome.String())
			}
		})
	}
}

// TestCleanProtocolHasNoShallowViolation guards the mutation tests'
// significance: with no mutation armed, the same exploration finds nothing,
// so the counterexamples above are attributable to the seeded faults.
func TestCleanProtocolHasNoShallowViolation(t *testing.T) {
	ClearMutations()
	c, err := New(Smoke(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("clean protocol violated: %s", res.Violation.Err)
	}
}

// TestSymmetryReduction checks that folding identically-configured cores
// shrinks the state count without changing the verdict, and that it leaves
// heterogeneous cores alone.
func TestSymmetryReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration in -short mode")
	}
	base := config.PaperDefaults(2, 1) // identical MSI cores: full swap symmetry
	mk := func(sym bool) *Result {
		c, err := New(Config{Sys: base, Lines: []uint64{0x1000}, Depth: 1, Pairs: true, Symmetry: sym})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Explore()
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("violation: %s", res.Violation.Err)
		}
		return res
	}
	on, off := mk(true), mk(false)
	if on.States >= off.States {
		t.Fatalf("symmetry did not reduce states: %d (on) vs %d (off)", on.States, off.States)
	}
	// Heterogeneous cores form singleton classes: symmetry must be a no-op.
	hc, err := New(Smoke(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(hc.perms) != 1 {
		t.Fatalf("heterogeneous smoke config got %d symmetry perms, want identity only", len(hc.perms))
	}
}

// TestVisitedSpill forces the visited set onto disk and checks the state
// count is unchanged — spilling is an implementation detail, not a semantic.
func TestVisitedSpill(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration in -short mode")
	}
	run := func(threshold int) *Result {
		cfg := Smoke(1)
		cfg.SpillThreshold = threshold
		cfg.SpillDir = t.TempDir()
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Explore()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	big, small := run(1<<20), run(4)
	if small.Spills == 0 {
		t.Fatal("threshold 4 produced no spills")
	}
	if big.States != small.States || big.Runs != small.Runs {
		t.Fatalf("spilling changed exploration: %d/%d vs %d/%d states/runs",
			big.States, big.Runs, small.States, small.Runs)
	}
}

func TestVisitedSetSemantics(t *testing.T) {
	v, err := newVisited(3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	keys := make([]canonKey, 10)
	for i := range keys {
		keys[i][0] = byte(i * 7)
		keys[i][15] = byte(i)
	}
	for i, k := range keys {
		fresh, err := v.Add(k)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("key %d reported as duplicate on first insert", i)
		}
	}
	if v.spills == 0 {
		t.Fatal("no spill at threshold 3 with 10 keys")
	}
	for i, k := range keys {
		fresh, err := v.Add(k)
		if err != nil {
			t.Fatal(err)
		}
		if fresh {
			t.Fatalf("key %d reported fresh on second insert (spilled lookup broken)", i)
		}
	}
}

func TestScriptCodecRoundTrip(t *testing.T) {
	c, err := New(Smoke(2))
	if err != nil {
		t.Fatal(err)
	}
	s := c.EmptyScript()
	s.Windows = []Window{
		{Gap: 3, Cmds: []Command{{Core: 0, Line: 0, Write: true}}},
		{Gap: 0, Cmds: []Command{{Switch: true, Mode: 2}, {Core: 1, Line: 0, Offset: 5}}},
	}
	var buf bytes.Buffer
	if err := WriteScript(&buf, c.Sys(), c.Lines(), s); err != nil {
		t.Fatal(err)
	}
	sys, lines, got, err := ParseScript(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if sys.N() != 2 || len(lines) != 1 || lines[0] != 0x1000 {
		t.Fatalf("config/lines mangled: n=%d lines=%v", sys.N(), lines)
	}
	if got.Stride != s.Stride || len(got.Windows) != 2 {
		t.Fatalf("script mangled: %+v", got)
	}
	w := got.Windows[1]
	if !w.Cmds[0].Switch || w.Cmds[0].Mode != 2 || w.Cmds[1].Core != 1 || w.Cmds[1].Offset != 5 {
		t.Fatalf("window 1 mangled: %+v", w)
	}
	if got.Windows[0].Cmds[0].Write != true || got.Windows[0].Gap != 3 {
		t.Fatalf("window 0 mangled: %+v", got.Windows[0])
	}
}

func TestScheduleRejectsSameCoreRace(t *testing.T) {
	s := &Script{Stride: 1000, Windows: []Window{
		{Cmds: []Command{{Core: 0}, {Core: 0, Write: true, Offset: 1}}},
	}}
	if _, err := computeSchedule(s); err == nil {
		t.Fatal("same-core race window accepted; static schedule would be unsound")
	}
}

func TestReplayDetectsQuiescentCleanRun(t *testing.T) {
	c, err := New(Smoke(1))
	if err != nil {
		t.Fatal(err)
	}
	s := c.EmptyScript()
	s.Windows = []Window{{Gap: 1, Cmds: []Command{{Core: 0, Line: 0, Write: true}}}}
	out, err := c.Replay(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation != nil {
		t.Fatalf("clean single-write script flagged: %+v", out.Violation)
	}
	if out.Run == nil || out.Run.Cycles == 0 {
		t.Fatal("replay returned no measurements")
	}
}
