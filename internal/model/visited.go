package model

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// visited is the explored-state set: canonical 16-byte keys held in memory
// until a threshold, then flushed to immutable sorted segment files that are
// binary-searched on lookup (a minimal LSM without compaction — exploration
// only ever inserts). This keeps resident memory bounded at threshold×16
// bytes no matter how large the reachable space grows.
type visited struct {
	mem    map[canonKey]struct{}
	limit  int
	dir    string
	ownDir bool
	segs   []*segment
	spills int
}

type segment struct {
	f *os.File
	n int64 // record count
}

// newVisited builds a visited set spilling to dir ("" = fresh temp dir)
// whenever the in-memory set reaches limit keys.
func newVisited(limit int, dir string) (*visited, error) {
	if limit < 1 {
		limit = 1
	}
	v := &visited{mem: make(map[canonKey]struct{}), limit: limit, dir: dir}
	if dir == "" {
		d, err := os.MkdirTemp("", "cohort-model-visited-")
		if err != nil {
			return nil, err
		}
		v.dir, v.ownDir = d, true
	}
	return v, nil
}

// Add inserts the key and reports whether it was absent.
func (v *visited) Add(k canonKey) (bool, error) {
	if _, ok := v.mem[k]; ok {
		return false, nil
	}
	for _, seg := range v.segs {
		hit, err := seg.contains(k)
		if err != nil {
			return false, err
		}
		if hit {
			return false, nil
		}
	}
	v.mem[k] = struct{}{}
	if len(v.mem) >= v.limit {
		if err := v.spill(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// spill flushes the in-memory keys to a new sorted segment file.
func (v *visited) spill() error {
	keys := make([]canonKey, 0, len(v.mem))
	for k := range v.mem { //cohort:allow maprange: keys are sorted immediately below, so map order never escapes
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i][:], keys[j][:]) < 0 })
	path := filepath.Join(v.dir, fmt.Sprintf("seg-%04d.keys", v.spills))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(keys)*16)
	for _, k := range keys {
		buf = append(buf, k[:]...)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	v.segs = append(v.segs, &segment{f: f, n: int64(len(keys))})
	v.spills++
	v.mem = make(map[canonKey]struct{})
	return nil
}

// contains binary-searches the sorted fixed-record segment.
func (s *segment) contains(k canonKey) (bool, error) {
	lo, hi := int64(0), s.n-1
	var rec [16]byte
	for lo <= hi {
		mid := lo + (hi-lo)/2
		if _, err := s.f.ReadAt(rec[:], mid*16); err != nil {
			return false, err
		}
		switch bytes.Compare(rec[:], k[:]) {
		case 0:
			return true, nil
		case -1:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false, nil
}

// Close releases the segment files and removes them (and the temp dir when
// owned).
func (v *visited) Close() error {
	var first error
	for _, seg := range v.segs {
		name := seg.f.Name()
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(name); err != nil && first == nil {
			first = err
		}
	}
	v.segs = nil
	if v.ownDir {
		if err := os.Remove(v.dir); err != nil && first == nil {
			first = err
		}
	}
	return first
}
