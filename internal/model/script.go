package model

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// A Script is the model checker's unit of exploration and its counterexample
// format: a sequence of windows, each a burst of commands (memory accesses
// and mode switches) injected into the real simulator at statically computed
// cycles. Windows are separated by a stride wide enough for all in-flight
// protocol activity to quiesce, so the state snapshot taken between windows
// is a sound point for visited-state pruning; commands *within* a window
// race each other at small offsets, which is where the interesting
// interleavings (mid-flight mode switches, timer-aligned requests) live.
//
// Scripts are deterministic: the same script on the same configuration
// replays the same simulation, cycle for cycle. A violation's script is
// therefore a complete, replayable counterexample.

// Command is one injected event.
type Command struct {
	// Switch selects the command type: a mode switch to Mode, or an access
	// by Core to the Line-th configured line (Write = store).
	Switch bool
	Core   int
	Line   int
	Write  bool
	Mode   int
	// Offset is the command's start delay in cycles: after the window's
	// start for the first command, after the previous command's start
	// otherwise.
	Offset int64
}

// Window is one burst of commands starting Gap cycles after the previous
// window's static quiescent boundary.
type Window struct {
	Gap  int64
	Cmds []Command
}

// Script is a full event program. Stride is the per-window quiescence
// allowance used to compute the static schedule; replays verify the
// simulation actually quiesced within it.
type Script struct {
	Stride  int64
	Windows []Window
}

// clone returns a deep copy.
func (s *Script) clone() *Script {
	out := &Script{Stride: s.Stride, Windows: make([]Window, len(s.Windows))}
	for i, w := range s.Windows {
		out.Windows[i] = Window{Gap: w.Gap, Cmds: append([]Command(nil), w.Cmds...)}
	}
	return out
}

// extend returns a copy of s with one more window appended.
func (s *Script) extend(w Window) *Script {
	out := s.clone()
	out.Windows = append(out.Windows, Window{Gap: w.Gap, Cmds: append([]Command(nil), w.Cmds...)})
	return out
}

// schedule is the static realization of a script: absolute issue targets for
// every access, absolute mode-switch cycles, and the quiescent boundary
// after the last window.
type schedule struct {
	accesses []schedAccess
	switches []schedSwitch
	boundary int64
}

type schedAccess struct {
	core  int
	line  int
	write bool
	at    int64
}

type schedSwitch struct {
	mode int
	at   int64
}

// computeSchedule lays the script out on the cycle axis. Window i starts at
// boundary(i−1) + Gap; its commands start at cumulative offsets from there;
// boundary(i) = boundary(i−1) + Gap + Stride. It rejects scripts whose
// windows issue two accesses on the same core (the second would stall in the
// MSHR and drift off the static schedule, making state pruning unsound).
func computeSchedule(s *Script) (*schedule, error) {
	if s.Stride < 1 {
		return nil, fmt.Errorf("model: script stride %d must be ≥ 1", s.Stride)
	}
	sched := &schedule{}
	boundary := int64(0)
	for wi, w := range s.Windows {
		if w.Gap < 0 {
			return nil, fmt.Errorf("model: window %d has negative gap %d", wi, w.Gap)
		}
		start := boundary + w.Gap
		at := start
		seen := map[int]bool{}
		for ci, cmd := range w.Cmds {
			if cmd.Offset < 0 {
				return nil, fmt.Errorf("model: window %d command %d has negative offset %d", wi, ci, cmd.Offset)
			}
			at += cmd.Offset
			if cmd.Switch {
				sched.switches = append(sched.switches, schedSwitch{mode: cmd.Mode, at: at})
				continue
			}
			if seen[cmd.Core] {
				return nil, fmt.Errorf("model: window %d issues core %d twice", wi, cmd.Core)
			}
			seen[cmd.Core] = true
			sched.accesses = append(sched.accesses, schedAccess{core: cmd.Core, line: cmd.Line, write: cmd.Write, at: at})
		}
		if at >= boundary+w.Gap+s.Stride {
			return nil, fmt.Errorf("model: window %d offsets exceed the stride %d", wi, s.Stride)
		}
		boundary += w.Gap + s.Stride
	}
	sched.boundary = boundary
	return sched, nil
}

// buildTrace converts a schedule into the simulator's per-core access
// streams. An access's trace gap encodes its absolute target: the simulator
// issues access j of a core at issue(j−1) + 1 + gap, and because windows
// quiesce before the next begins (and a window never issues a core twice),
// issue(j−1) lands exactly on its own target — so the static schedule and
// the simulated issue cycles coincide.
func buildTrace(sys *config.System, lines []uint64, sched *schedule) (*trace.Trace, error) {
	perCore := make([][]schedAccess, sys.N())
	for _, a := range sched.accesses {
		if a.core < 0 || a.core >= sys.N() {
			return nil, fmt.Errorf("model: access core %d out of range", a.core)
		}
		if a.line < 0 || a.line >= len(lines) {
			return nil, fmt.Errorf("model: access line index %d out of range", a.line)
		}
		perCore[a.core] = append(perCore[a.core], a)
	}
	streams := make([]trace.Stream, sys.N())
	for c := range perCore {
		as := perCore[c]
		sort.SliceStable(as, func(i, j int) bool { return as[i].at < as[j].at })
		prev := int64(-1) // so the first gap is the absolute target
		for _, a := range as {
			gap := a.at - prev - 1
			if gap < 0 {
				return nil, fmt.Errorf("model: core %d accesses %d and %d collide", c, prev, a.at)
			}
			kind := trace.Read
			if a.write {
				kind = trace.Write
			}
			streams[c] = append(streams[c], trace.Access{Addr: lines[a.line], Kind: kind, Gap: gap})
			prev = a.at
		}
	}
	return &trace.Trace{Name: "model", Streams: streams}, nil
}

// --- text codec -----------------------------------------------------------

// WriteScript renders a script (with the platform it runs on) in the
// counterexample text format cohort-model -replay reads back.
func WriteScript(w io.Writer, sys *config.System, lines []uint64, s *Script) error {
	cfgJSON, err := sys.MarshalJSON()
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# cohort-model counterexample v1\n")
	fmt.Fprintf(&b, "config %s\n", cfgJSON)
	strs := make([]string, len(lines))
	for i, l := range lines {
		strs[i] = fmt.Sprintf("%#x", l)
	}
	fmt.Fprintf(&b, "lines %s\n", strings.Join(strs, ","))
	fmt.Fprintf(&b, "stride %d\n", s.Stride)
	for _, win := range s.Windows {
		fmt.Fprintf(&b, "window gap=%d\n", win.Gap)
		for _, cmd := range win.Cmds {
			if cmd.Switch {
				fmt.Fprintf(&b, "  switch mode=%d off=%d\n", cmd.Mode, cmd.Offset)
			} else {
				kind := "r"
				if cmd.Write {
					kind = "w"
				}
				fmt.Fprintf(&b, "  access core=%d line=%d kind=%s off=%d\n", cmd.Core, cmd.Line, kind, cmd.Offset)
			}
		}
	}
	_, err = io.WriteString(w, b.String())
	return err
}

// ParseScript reads the counterexample text format back into a platform
// configuration, a line set, and a script.
func ParseScript(r io.Reader) (*config.System, []uint64, *Script, error) {
	var (
		sys   *config.System
		lines []uint64
		s     = &Script{}
	)
	fail := func(lineNo int, format string, args ...any) error {
		return fmt.Errorf("model: script line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "config "):
			var err error
			sys, err = config.ParseJSON([]byte(strings.TrimPrefix(text, "config ")))
			if err != nil {
				return nil, nil, nil, fail(lineNo, "%v", err)
			}
		case strings.HasPrefix(text, "lines "):
			for _, part := range strings.Split(strings.TrimPrefix(text, "lines "), ",") {
				v, err := strconv.ParseUint(strings.TrimSpace(part), 0, 64)
				if err != nil {
					return nil, nil, nil, fail(lineNo, "bad line address %q", part)
				}
				lines = append(lines, v)
			}
		case strings.HasPrefix(text, "stride "):
			v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(text, "stride ")), 10, 64)
			if err != nil {
				return nil, nil, nil, fail(lineNo, "bad stride")
			}
			s.Stride = v
		case strings.HasPrefix(text, "window "):
			fields, err := parseFields(strings.TrimPrefix(text, "window "))
			if err != nil {
				return nil, nil, nil, fail(lineNo, "%v", err)
			}
			s.Windows = append(s.Windows, Window{Gap: fields["gap"]})
		case strings.HasPrefix(text, "access "), strings.HasPrefix(text, "switch "):
			if len(s.Windows) == 0 {
				return nil, nil, nil, fail(lineNo, "command before the first window")
			}
			win := &s.Windows[len(s.Windows)-1]
			if strings.HasPrefix(text, "switch ") {
				fields, err := parseFields(strings.TrimPrefix(text, "switch "))
				if err != nil {
					return nil, nil, nil, fail(lineNo, "%v", err)
				}
				win.Cmds = append(win.Cmds, Command{Switch: true, Mode: int(fields["mode"]), Offset: fields["off"]})
				continue
			}
			rest := strings.TrimPrefix(text, "access ")
			write := false
			parts := strings.Fields(rest)
			kept := parts[:0]
			for _, p := range parts {
				if strings.HasPrefix(p, "kind=") {
					switch strings.TrimPrefix(p, "kind=") {
					case "r":
					case "w":
						write = true
					default:
						return nil, nil, nil, fail(lineNo, "bad access kind %q", p)
					}
					continue
				}
				kept = append(kept, p)
			}
			fields, err := parseFields(strings.Join(kept, " "))
			if err != nil {
				return nil, nil, nil, fail(lineNo, "%v", err)
			}
			win.Cmds = append(win.Cmds, Command{
				Core: int(fields["core"]), Line: int(fields["line"]),
				Write: write, Offset: fields["off"],
			})
		default:
			return nil, nil, nil, fail(lineNo, "unrecognized directive %q", text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, err
	}
	if sys == nil {
		return nil, nil, nil, fmt.Errorf("model: script has no config line")
	}
	if len(lines) == 0 {
		return nil, nil, nil, fmt.Errorf("model: script has no lines line")
	}
	return sys, lines, s, nil
}

// parseFields parses "k=v k=v" into int64 values.
func parseFields(s string) (map[string]int64, error) {
	out := map[string]int64{}
	for _, part := range strings.Fields(s) {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad field %q (want key=value)", part)
		}
		v, err := strconv.ParseInt(kv[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q", part)
		}
		out[kv[0]] = v
	}
	return out, nil
}
