package model

import "fmt"

// node is one BFS frontier entry: the script that reaches a state, plus the
// operating mode there (which prunes no-op mode-switch successors).
type node struct {
	script *Script
	mode   int
}

// Explore enumerates every quiescent state reachable within Depth windows,
// checking all protocol invariants on every replay. It returns the first
// violation (with a minimized counterexample) or the exhaustive state count.
//
// The search is deterministic: the window menu, the BFS order, and the
// canonical encoding are all fixed functions of the Config, so two runs on
// the same configuration report identical States/Runs counts — a drift in
// either is itself a regression signal.
func (c *Checker) Explore() (*Result, error) {
	res := &Result{}
	vis, err := newVisited(c.cfg.SpillThreshold, c.cfg.SpillDir)
	if err != nil {
		return nil, err
	}
	defer func() {
		res.Spills = vis.spills
		vis.Close()
	}()

	report := func(format string, args ...any) {
		if c.cfg.Progress != nil {
			c.cfg.Progress(format, args...)
		}
	}
	violation := func(s *Script, kind, msg string) *Result {
		res.Violation = &Violation{Kind: kind, Err: msg, Script: s.clone()}
		res.Violation.Minimized = c.minimize(s, kind, &res.Runs)
		return res
	}

	root := c.EmptyScript()
	rr, err := c.replay(root, nil)
	if err != nil {
		return nil, err
	}
	res.Runs++
	if rr.kind != "" {
		return violation(root, rr.kind, rr.msg), nil
	}
	key := c.canonicalKey(rr.sys, rr.boundary)
	if _, err := vis.Add(key); err != nil {
		return nil, err
	}
	res.States = 1
	frontier := []node{{script: root, mode: rr.sys.Mode()}}

	for depth := 0; depth < c.cfg.Depth && len(frontier) > 0; depth++ {
		var next []node
		for _, nd := range frontier {
			for _, w := range c.windows(nd.mode) {
				s2 := nd.script.extend(w)
				rr, err := c.replay(s2, nil)
				if err != nil {
					return nil, err
				}
				res.Runs++
				if rr.kind != "" {
					return violation(s2, rr.kind, rr.msg), nil
				}
				fresh, err := vis.Add(c.canonicalKey(rr.sys, rr.boundary))
				if err != nil {
					return nil, err
				}
				if !fresh {
					continue
				}
				res.States++
				next = append(next, node{script: s2, mode: rr.sys.Mode()})
				if c.cfg.MaxStates > 0 && res.States >= c.cfg.MaxStates {
					res.Truncated = true
					report("model: truncated at %d states (depth %d, %d runs)", res.States, depth+1, res.Runs)
					return res, nil
				}
			}
		}
		res.Depth = depth + 1
		frontier = next
		report("model: depth %d done: %d states, %d runs, frontier %d", res.Depth, res.States, res.Runs, len(frontier))
	}
	return res, nil
}

// windows builds the successor menu at an operating mode: every single
// command at every post-quiescence gap, plus (with Pairs) every ordered
// two-command race at every gap × offset. Same-core access pairs are
// excluded (the second would queue in the MSHR and slide off the static
// schedule); switch-switch pairs are redundant with two single-switch
// windows plus a switch racing an access.
func (c *Checker) windows(mode int) []Window {
	if ws, ok := c.winCache[mode]; ok {
		return ws
	}
	var actions []Command
	for core := 0; core < c.sys.N(); core++ {
		for line := range c.lines {
			actions = append(actions,
				Command{Core: core, Line: line},
				Command{Core: core, Line: line, Write: true})
		}
	}
	for m := 1; m <= c.sys.Levels; m++ {
		if m != mode {
			actions = append(actions, Command{Switch: true, Mode: m})
		}
	}
	var ws []Window
	for _, a := range actions {
		for _, g := range c.cfg.PostGaps {
			ws = append(ws, Window{Gap: g, Cmds: []Command{a}})
		}
	}
	if c.cfg.Pairs {
		for _, a1 := range actions {
			for _, a2 := range actions {
				if a1.Switch && a2.Switch {
					continue
				}
				if !a1.Switch && !a2.Switch && a1.Core == a2.Core {
					continue
				}
				for _, g := range c.cfg.PostGaps {
					for _, d := range c.cfg.RaceOffsets {
						b := a2
						b.Offset = d
						ws = append(ws, Window{Gap: g, Cmds: []Command{a1, b}})
					}
				}
			}
		}
	}
	c.winCache[mode] = ws
	return ws
}

// minimize greedily shrinks a violating script while preserving the
// violation kind, verifying every candidate by full replay: drop whole
// windows, reduce races to their single commands, then walk gaps and offsets
// down the menu. Runs to a fixpoint under a replay budget; each accepted
// candidate is itself a verified counterexample, so the result always
// reproduces.
func (c *Checker) minimize(s *Script, kind string, runs *int64) *Script {
	cur := s.clone()
	budget := 2000
	reproduces := func(cand *Script) bool {
		if budget <= 0 {
			return false
		}
		budget--
		rr, err := c.replay(cand, nil)
		if err != nil {
			return false
		}
		*runs++
		return rr.kind == kind
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Windows); i++ {
			cand := cur.clone()
			cand.Windows = append(cand.Windows[:i], cand.Windows[i+1:]...)
			if reproduces(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := range cur.Windows {
			if len(cur.Windows[i].Cmds) < 2 {
				continue
			}
			for drop := 0; drop < len(cur.Windows[i].Cmds); drop++ {
				cand := cur.clone()
				w := &cand.Windows[i]
				w.Cmds = append(append([]Command(nil), w.Cmds[:drop]...), w.Cmds[drop+1:]...)
				if len(w.Cmds) > 0 {
					w.Cmds[0].Offset = 0
				}
				if reproduces(cand) {
					cur, changed = cand, true
					break
				}
			}
		}
		for i := range cur.Windows {
			for _, g := range c.cfg.PostGaps {
				if g >= cur.Windows[i].Gap {
					continue
				}
				cand := cur.clone()
				cand.Windows[i].Gap = g
				if reproduces(cand) {
					cur, changed = cand, true
					break
				}
			}
			for j := range cur.Windows[i].Cmds {
				for _, d := range c.cfg.RaceOffsets {
					if d >= cur.Windows[i].Cmds[j].Offset {
						continue
					}
					cand := cur.clone()
					cand.Windows[i].Cmds[j].Offset = d
					if reproduces(cand) {
						cur, changed = cand, true
						break
					}
				}
			}
		}
	}
	return cur
}

// Describe renders a script compactly for log lines: "g2:[c0W l0 | +4 S→2]".
func Describe(s *Script) string {
	if len(s.Windows) == 0 {
		return "(empty)"
	}
	out := ""
	for i, w := range s.Windows {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("g%d:[", w.Gap)
		for j, cmd := range w.Cmds {
			if j > 0 {
				out += fmt.Sprintf(" | +%d ", cmd.Offset)
			}
			if cmd.Switch {
				out += fmt.Sprintf("S→%d", cmd.Mode)
			} else {
				k := "R"
				if cmd.Write {
					k = "W"
				}
				out += fmt.Sprintf("c%d%s l%d", cmd.Core, k, cmd.Line)
			}
		}
		out += "]"
	}
	return out
}
