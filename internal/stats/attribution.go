package stats

// Attribution decomposes a core's miss latency into the four places a
// request's cycles can go (DESIGN.md §15): waiting for the arbiter to grant
// the bus (broadcast grant plus data grant after the data became available),
// waiting out timer-protected copies before the data may be handed over,
// occupying the bus for the broadcast and data transfers themselves, and the
// LLC/DRAM fetch penalty when the memory owns the line. The components are
// exact: for every completed miss they sum to the recorded miss latency, so
//
//	Attr.TotalCycles() + Hits·L_hit == TotalLatency
//
// holds for every core of every run (asserted by TestAttributionIdentity).
// All fields are plain values updated by integer adds and Histogram.Observe,
// so recording stays allocation-free on the simulator hot path.
type Attribution struct {
	// ArbitrationCycles is the summed time spent waiting for bus grants.
	ArbitrationCycles int64
	// TimerStallCycles is the summed time between a request becoming
	// globally visible and its data becoming transferable — timer-protected
	// owner/sharer windows plus the wait behind earlier requesters of the
	// same line.
	TimerStallCycles int64
	// TransferCycles is the summed bus occupancy of the request's own
	// broadcast and data phases (two data phases under via-memory transfers).
	TransferCycles int64
	// DRAMCycles is the summed LLC-miss fetch penalty for memory-sourced data.
	DRAMCycles int64
	// Arbitration, TimerStall, Transfer and DRAM are the per-miss
	// distributions of the four components.
	Arbitration Histogram
	TimerStall  Histogram
	Transfer    Histogram
	DRAM        Histogram
}

// Record folds one completed miss's decomposition into the totals and
// distributions.
func (a *Attribution) Record(arb, timer, transfer, dram int64) {
	a.ArbitrationCycles += arb
	a.TimerStallCycles += timer
	a.TransferCycles += transfer
	a.DRAMCycles += dram
	a.Arbitration.Observe(arb)
	a.TimerStall.Observe(timer)
	a.Transfer.Observe(transfer)
	a.DRAM.Observe(dram)
}

// TotalCycles sums the four components — the core's total miss latency.
func (a *Attribution) TotalCycles() int64 {
	return a.ArbitrationCycles + a.TimerStallCycles + a.TransferCycles + a.DRAMCycles
}

// Merge accumulates other's totals and distributions into a.
func (a *Attribution) Merge(other *Attribution) {
	if other == nil {
		return
	}
	a.ArbitrationCycles += other.ArbitrationCycles
	a.TimerStallCycles += other.TimerStallCycles
	a.TransferCycles += other.TransferCycles
	a.DRAMCycles += other.DRAMCycles
	a.Arbitration.Merge(&other.Arbitration)
	a.TimerStall.Merge(&other.TimerStall)
	a.Transfer.Merge(&other.Transfer)
	a.DRAM.Merge(&other.DRAM)
}
