package stats

import (
	"strings"
	"testing"
)

func TestRecordAccess(t *testing.T) {
	var c Core
	c.RecordAccess(true, 1)
	c.RecordAccess(false, 100)
	c.RecordAccess(false, 60)
	if c.Accesses != 3 || c.Hits != 1 || c.Misses != 2 {
		t.Fatalf("counts: %+v", c)
	}
	if c.TotalLatency != 161 {
		t.Fatalf("TotalLatency = %d", c.TotalLatency)
	}
	if c.MaxMissLatency != 100 {
		t.Fatalf("MaxMissLatency = %d", c.MaxMissLatency)
	}
	if got := c.HitRate(); got < 0.333 || got > 0.334 {
		t.Fatalf("HitRate = %f", got)
	}
	if got := c.AvgLatency(); got < 53.6 || got > 53.7 {
		t.Fatalf("AvgLatency = %f", got)
	}
}

func TestEmptyCoreRates(t *testing.T) {
	var c Core
	if c.HitRate() != 0 || c.AvgLatency() != 0 {
		t.Fatal("empty core must report zero rates")
	}
}

func TestRunAggregates(t *testing.T) {
	r := NewRun(2)
	r.Cores[0].RecordAccess(true, 1)
	r.Cores[1].RecordAccess(false, 54)
	r.Cycles = 100
	r.BusBusy = 54
	if r.TotalAccesses() != 2 {
		t.Fatalf("TotalAccesses = %d", r.TotalAccesses())
	}
	if got := r.BusUtilization(); got != 0.54 {
		t.Fatalf("BusUtilization = %f", got)
	}
	var empty Run
	if empty.BusUtilization() != 0 {
		t.Fatal("zero-cycle run utilization must be 0")
	}
	out := r.String()
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "core 1") {
		t.Fatalf("String missing cores:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "bench", "value")
	tb.AddRow("fft", "1.23x")
	tb.AddRow("ocean") // short row padded
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	txt := tb.String()
	if !strings.Contains(txt, "Demo") || !strings.Contains(txt, "fft") {
		t.Fatalf("text table:\n%s", txt)
	}
	lines := strings.Split(strings.TrimRight(txt, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), txt)
	}
	// Aligned: header and rows have same rendered width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned header/separator:\n%s", txt)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| bench | value |") || !strings.Contains(md, "|---|---|") {
		t.Fatalf("markdown table:\n%s", md)
	}
	if !strings.Contains(md, "### Demo") {
		t.Fatalf("markdown missing title:\n%s", md)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Fatalf("Ratio = %s", Ratio(3, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Fatalf("Ratio(1,0) = %s", Ratio(1, 0))
	}
}

func TestCyclesFormatting(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-4321:    "-4,321",
		-100:     "-100",
		10000000: "10,000,000",
	}
	for in, want := range cases {
		if got := Cycles(in); got != want {
			t.Errorf("Cycles(%d) = %q, want %q", in, got, want)
		}
	}
}
