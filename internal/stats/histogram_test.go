package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if !strings.Contains(h.String(), "empty") {
		t.Fatal("empty render wrong")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(54)  // bucket ≤63
	h.Observe(54)  // same bucket
	h.Observe(216) // bucket ≤255
	uppers, counts := h.Buckets()
	wantU := []int64{0, 1, 63, 255}
	wantC := []int64{1, 1, 2, 1}
	if len(uppers) != len(wantU) {
		t.Fatalf("buckets = %v/%v", uppers, counts)
	}
	for i := range wantU {
		if uppers[i] != wantU[i] || counts[i] != wantC[i] {
			t.Fatalf("buckets = %v/%v, want %v/%v", uppers, counts, wantU, wantC)
		}
	}
	if h.Max() != 216 || h.Total() != 5 {
		t.Fatalf("max %d total %d", h.Max(), h.Total())
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(1000)
	if p := h.Percentile(0.5); p != 1 {
		t.Fatalf("p50 = %d, want 1", p)
	}
	// p100 is capped at the observed max, not the bucket edge.
	if p := h.Percentile(1); p != 1000 {
		t.Fatalf("p100 = %d, want 1000", p)
	}
	// Out-of-range p clamps.
	if h.Percentile(-3) != 1 || h.Percentile(7) != 1000 {
		t.Fatal("percentile clamping wrong")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Total() != 1 || h.Max() != 0 {
		t.Fatalf("negative sample handling: total %d max %d", h.Total(), h.Max())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	for i := int64(1); i < 1000; i *= 2 {
		h.Observe(i)
	}
	out := h.String()
	if !strings.Contains(out, "p50") || !strings.Contains(out, "#") {
		t.Fatalf("render:\n%s", out)
	}
}

// Property: percentile is monotone in p and bounded by max; total equals
// the number of observations.
func TestPropertyHistogram(t *testing.T) {
	f := func(samples []uint16) bool {
		var h Histogram
		for _, s := range samples {
			h.Observe(int64(s))
		}
		if h.Total() != int64(len(samples)) {
			return false
		}
		prev := int64(-1)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 1} {
			v := h.Percentile(p)
			if v < prev || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var h, empty Histogram
	h.Observe(5)
	h.Merge(&empty) // empty right-hand side: no-op
	h.Merge(nil)    // nil right-hand side: no-op
	if h.Total() != 1 || h.Max() != 5 {
		t.Fatalf("merge with empty changed state: total %d max %d", h.Total(), h.Max())
	}
	empty.Merge(&h) // empty left-hand side adopts h
	if empty.Total() != 1 || empty.Max() != 5 || empty.Percentile(1) != 5 {
		t.Fatalf("merge into empty: total %d max %d", empty.Total(), empty.Max())
	}
}

func TestHistogramMergeSingleBucket(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 3; i++ {
		a.Observe(40) // bucket ≤63
	}
	for i := 0; i < 2; i++ {
		b.Observe(63) // same bucket, larger max
	}
	a.Merge(&b)
	uppers, counts := a.Buckets()
	if len(uppers) != 1 || uppers[0] != 63 || counts[0] != 5 {
		t.Fatalf("merged buckets = %v/%v, want [63]/[5]", uppers, counts)
	}
	if a.Total() != 5 || a.Max() != 63 {
		t.Fatalf("merged total %d max %d", a.Total(), a.Max())
	}
	// Percentile caps at the merged max, not the 2^6−1 bucket edge minus one
	// sample's worth of slack.
	if p := a.Percentile(1); p != 63 {
		t.Fatalf("merged p100 = %d, want 63", p)
	}
}

func TestHistogramMergeOverflowBucket(t *testing.T) {
	const huge = int64(1) << 45 // beyond the last bucket edge: clamps to bucket 40
	var a, b Histogram
	a.Observe(huge)
	b.Observe(2 * huge)
	b.Observe(7)
	a.Merge(&b)
	if a.Total() != 3 || a.Max() != 2*huge {
		t.Fatalf("overflow merge: total %d max %d", a.Total(), a.Max())
	}
	// Both huge samples share the overflow bucket; its reported upper bound
	// is capped at the observed max by Percentile.
	if p := a.Percentile(1); p != 2*huge {
		t.Fatalf("overflow p100 = %d, want %d", p, 2*huge)
	}
	uppers, counts := a.Buckets()
	if len(uppers) != 2 || counts[len(counts)-1] != 2 {
		t.Fatalf("overflow buckets = %v/%v", uppers, counts)
	}
}

// Property: merge is equivalent to observing the concatenated sample sets.
func TestPropertyHistogramMerge(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b, both Histogram
		for _, x := range xs {
			a.Observe(int64(x))
			both.Observe(int64(x))
		}
		for _, y := range ys {
			b.Observe(int64(y))
			both.Observe(int64(y))
		}
		a.Merge(&b)
		if a.Total() != both.Total() || a.Max() != both.Max() {
			return false
		}
		for _, p := range []float64{0.25, 0.5, 0.99, 1} {
			if a.Percentile(p) != both.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreRecordsHistogram(t *testing.T) {
	var c Core
	c.RecordAccess(true, 1)
	c.RecordAccess(false, 216)
	if c.Latency.Total() != 2 {
		t.Fatalf("core histogram total = %d", c.Latency.Total())
	}
	if c.Latency.Max() != 216 {
		t.Fatalf("core histogram max = %d", c.Latency.Max())
	}
}
