package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// histBuckets is the number of power-of-two latency buckets; bucket k holds
// values in [2^(k−1), 2^k), bucket 0 holds zero. 2^40 cycles dwarfs any
// realistic per-request latency.
const histBuckets = 41

// Histogram accumulates a latency distribution in power-of-two buckets.
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	max    int64
	sum    int64
}

// Observe records one non-negative sample (negative samples are clamped
// to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of samples.
func (h *Histogram) Total() int64 { return h.total }

// Sum returns the exact sum of all observed samples (after clamping). The
// Prometheus exporter needs it for the _sum series; it is deliberately kept
// out of canonical snapshots, which predate it.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observed sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns an upper bound on the p-quantile (0 < p ≤ 1): the
// upper edge of the bucket containing it. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(p * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b]
		if cum >= target {
			if b == 0 {
				return 0
			}
			upper := int64(1)<<uint(b) - 1
			// The overflow bucket has no finite edge; its only valid upper
			// bound is the observed max. Finite buckets cap at max too.
			if b == histBuckets-1 || upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// Merge accumulates other's samples into h. Bucket counts and totals add
// exactly; the merged max is the larger of the two, so Percentile keeps its
// upper-bound guarantee on the union of the sample sets. Merging an empty
// histogram (or a nil one) is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for b := 0; b < histBuckets; b++ {
		h.counts[b] += other.counts[b]
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Buckets returns the non-empty buckets as (upperBound, count) pairs in
// ascending order.
func (h *Histogram) Buckets() (uppers, counts []int64) {
	for b := 0; b < histBuckets; b++ {
		if h.counts[b] == 0 {
			continue
		}
		upper := int64(0)
		if b > 0 {
			upper = int64(1)<<uint(b) - 1
		}
		uppers = append(uppers, upper)
		counts = append(counts, h.counts[b])
	}
	return uppers, counts
}

// String renders a compact text histogram with proportional bars.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty histogram)\n"
	}
	uppers, counts := h.Buckets()
	var peak int64
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i := range uppers {
		bar := int(40 * counts[i] / peak)
		fmt.Fprintf(&b, "  ≤%12s %8d %s\n", Cycles(uppers[i]), counts[i], strings.Repeat("#", bar))
	}
	fmt.Fprintf(&b, "  p50 ≤ %s, p99 ≤ %s, max %s over %d samples\n",
		Cycles(h.Percentile(0.5)), Cycles(h.Percentile(0.99)), Cycles(h.max), h.total)
	return b.String()
}
