// Package stats collects simulation measurements (per-core latency and
// hit/miss accounting, bus utilization) and renders aligned text/markdown
// tables for the experiment harness.
package stats

import (
	"fmt"
	"strings"
)

// Core aggregates the measurements of one core over a run.
type Core struct {
	// Accesses is the number of completed memory accesses.
	Accesses int64
	// Hits and Misses partition Accesses by private-cache outcome.
	Hits, Misses int64
	// TotalLatency is the summed per-access latency in cycles — the
	// experimental (measured) total memory latency of the task, the solid
	// bars of Fig. 5.
	TotalLatency int64
	// MaxMissLatency is the largest single miss latency observed.
	MaxMissLatency int64
	// FinishCycle is when the core completed its stream.
	FinishCycle int64
	// Writebacks counts dirty evictions from the private cache.
	Writebacks int64
	// Invalidations counts lines lost to remote requests or back-invalidation.
	Invalidations int64
	// Upgrades counts S→M transitions that required a bus transaction.
	Upgrades int64
	// Latency is the per-access latency distribution.
	Latency Histogram
	// Attr decomposes the miss latency into arbitration / timer-stall /
	// transfer / DRAM components (see Attribution).
	Attr Attribution
}

// RecordAccess folds one completed access into the counters.
func (c *Core) RecordAccess(hit bool, latency int64) {
	c.Accesses++
	c.TotalLatency += latency
	c.Latency.Observe(latency)
	if hit {
		c.Hits++
		return
	}
	c.Misses++
	if latency > c.MaxMissLatency {
		c.MaxMissLatency = latency
	}
}

// HitRate returns hits/accesses (0 when idle).
func (c *Core) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// AvgLatency returns the mean per-access latency.
func (c *Core) AvgLatency() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.TotalLatency) / float64(c.Accesses)
}

// Run aggregates a whole simulation.
type Run struct {
	// Cores holds per-core measurements.
	Cores []Core
	// Cycles is the makespan: the cycle the last core finished.
	Cycles int64
	// BusBusy is the number of cycles the bus was occupied.
	BusBusy int64
	// Transactions counts bus transactions (broadcasts and data transfers).
	Transactions int64
	// ModeSwitches counts run-time mode changes.
	ModeSwitches int64
}

// NewRun returns a Run sized for n cores.
func NewRun(n int) *Run { return &Run{Cores: make([]Core, n)} }

// TotalAccesses sums accesses over all cores.
func (r *Run) TotalAccesses() int64 {
	var n int64
	for i := range r.Cores {
		n += r.Cores[i].Accesses
	}
	return n
}

// BusUtilization returns BusBusy/Cycles.
func (r *Run) BusUtilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.BusBusy) / float64(r.Cycles)
}

// String renders a compact human-readable report.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %d cycles, bus %.1f%% busy, %d transactions\n",
		r.Cycles, 100*r.BusUtilization(), r.Transactions)
	for i := range r.Cores {
		c := &r.Cores[i]
		fmt.Fprintf(&b, "  core %d: %d accesses (%.1f%% hits), total latency %d, max miss %d, finished @%d\n",
			i, c.Accesses, 100*c.HitRate(), c.TotalLatency, c.MaxMissLatency, c.FinishCycle)
	}
	return b.String()
}

// Table renders aligned columns as plain text or markdown. Used by the
// experiment harness to print the paper's tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	w := t.widths()
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Ratio formats a/b as "N.NNx"; "inf" when b is 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Cycles formats a cycle count with thousands separators for readability.
func Cycles(v int64) string {
	s := fmt.Sprintf("%d", v)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
