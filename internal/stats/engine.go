package stats

import "fmt"

// EngineStats aggregates the counters of the parallel evaluation engine and
// its memo-cache: how many evaluations were requested, and how many of those
// were served from the content-addressed cache instead of being recomputed.
// The counters measure work avoided — the cache's contribution to speedup —
// independently of wall-clock time, which simulator code must not read
// (internal/lint walltime); measured wall-clock speedups live in the
// benchmarks (BenchmarkOptimize*) and are recorded in EXPERIMENTS.md.
//
// When every cache probe happens on the coordinating goroutine (the
// optimizer's batch evaluator dedupes before dispatching), the counters are
// fully deterministic and identical for every worker count. Caches probed
// concurrently (the experiments' process-wide memo) keep exact totals but may
// split them between hits and misses differently from run to run when two
// cells race to compute the same key; deterministic outputs therefore never
// include those counters.
type EngineStats struct {
	// Jobs is the number of evaluations requested (cache hits + misses).
	Jobs int64
	// CacheHits counts requests served from the memo-cache.
	CacheHits int64
	// CacheMisses counts requests that had to be computed.
	CacheMisses int64
}

// CacheHitRate returns CacheHits/Jobs (0 when idle).
func (e EngineStats) CacheHitRate() float64 {
	if e.Jobs == 0 {
		return 0
	}
	return float64(e.CacheHits) / float64(e.Jobs)
}

// String renders the counters compactly.
func (e EngineStats) String() string {
	return fmt.Sprintf("%d evaluations (%d computed, %d memo hits, %.1f%% hit rate)",
		e.Jobs, e.CacheMisses, e.CacheHits, 100*e.CacheHitRate())
}
