package experiments

import (
	"strings"
	"testing"

	"cohort/internal/analysis"
	"cohort/internal/config"
)

func TestScenarios(t *testing.T) {
	scs := Scenarios(4)
	if len(scs) != 3 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	count := func(c []bool) int {
		n := 0
		for _, v := range c {
			if v {
				n++
			}
		}
		return n
	}
	if count(scs[0].Critical) != 4 || count(scs[1].Critical) != 2 || count(scs[2].Critical) != 1 {
		t.Fatalf("criticality counts wrong: %+v", scs)
	}
	if _, err := ScenarioByName(4, "all-cr"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByName(4, "bogus"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	if geomean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive values must yield 0")
	}
}

func TestOptionsProfiles(t *testing.T) {
	o := QuickOptions()
	ps, err := o.profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("profiles = %d", len(ps))
	}
	o.Benchmarks = []string{"bogus"}
	if _, err := o.profiles(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// The cap applies.
	o = DefaultOptions()
	o.Benchmarks = []string{"ocean"}
	o.MaxAccessesPerCore = 100
	ps, err = o.profiles()
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].AccessesPerCore != 100 {
		t.Fatalf("cap not applied: %d", ps[0].AccessesPerCore)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	o := QuickOptions()
	res, err := Fig5(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Headline shape: CoHoRT bounds tighter than PCC, much tighter than
	// PENDULUM.
	if res.PCCRatio <= 1 {
		t.Fatalf("PCC ratio %.2f must exceed 1 (CoHoRT tighter)", res.PCCRatio)
	}
	if res.PendulumRatio <= res.PCCRatio {
		t.Fatalf("PENDULUM ratio %.2f must exceed PCC ratio %.2f", res.PendulumRatio, res.PCCRatio)
	}
	for _, row := range res.Rows {
		for i := range row.CoHoRT.Exp {
			if row.CoHoRT.Bound[i] != analysis.Unbounded && row.CoHoRT.Exp[i] > row.CoHoRT.Bound[i] {
				t.Fatalf("%s core %d: experimental above analytical", row.Benchmark, i)
			}
		}
	}
	out := res.Render().String()
	if !strings.Contains(out, "CoHoRT bound") {
		t.Fatalf("render missing columns:\n%s", out)
	}
	if !strings.Contains(res.Summary(), "tighter") {
		t.Fatal("summary missing ratios")
	}
}

func TestFig5NcrScenario(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	res, err := Fig5(o, "1cr-3ncr")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	// Non-critical cores run MSI under CoHoRT in this scenario.
	for i := 1; i < 4; i++ {
		if row.Timers[i] != config.TimerMSI {
			t.Fatalf("nCr core %d timer = %v, want MSI", i, row.Timers[i])
		}
	}
	// PENDULUM's nCr cores are unbounded.
	for i := 1; i < 4; i++ {
		if row.Pendulum.Bound[i] != analysis.Unbounded {
			t.Fatalf("PENDULUM nCr core %d bound = %d, want unbounded", i, row.Pendulum.Bound[i])
		}
	}
	// The lone Cr core's CoHoRT bound reduces to pure arbitration latency
	// (no co-runner timer terms, §VIII), so CoHoRT stays well ahead of
	// PENDULUM, which still pays its own fixed timer plus TDM pessimism.
	if res.PendulumRatio <= 2 {
		t.Fatalf("1cr-3ncr PENDULUM gap %.2f should stay well above 1", res.PendulumRatio)
	}
	// 7·SW = 378: pure arbitration latency, no co-runner timer terms.
	wclCr := analysis.WCLCoHoRT(config.PaperDefaults(4, 1).Lat, row.Timers, 0)
	if wclCr != 378 {
		t.Fatalf("lone Cr core WCL = %d, want 378 (arbitration only)", wclCr)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	o := QuickOptions()
	res, err := Fig6(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	// Paper ordering: CoHoRT < PCC < PENDULUM average slowdown.
	if !(res.AvgCoHoRT < res.AvgPCC && res.AvgPCC < res.AvgPendulum) {
		t.Fatalf("slowdown ordering broken: cohort %.3f, pcc %.3f, pendulum %.3f",
			res.AvgCoHoRT, res.AvgPCC, res.AvgPendulum)
	}
	if res.AvgCoHoRT < 0.5 || res.AvgCoHoRT > 2.0 {
		t.Fatalf("CoHoRT slowdown %.3f implausible", res.AvgCoHoRT)
	}
	out := res.Render().String()
	if !strings.Contains(out, "geomean") {
		t.Fatalf("render missing geomean row:\n%s", out)
	}
	_ = res.Summary()
}

func TestFig7Narrative(t *testing.T) {
	o := QuickOptions()
	res, err := Fig7(o, "fft", 1.5, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	// Bounds must decrease as the mode increases (that is what makes the
	// adaptive mechanism work).
	for m := 1; m < len(res.BoundPerMode); m++ {
		if res.BoundPerMode[m] >= res.BoundPerMode[m-1] {
			t.Fatalf("bound at mode %d (%d) not below mode %d (%d)",
				m+1, res.BoundPerMode[m], m, res.BoundPerMode[m-1])
		}
	}
	// Stage 1 is schedulable everywhere; later stages break without
	// switching but hold with it.
	if !res.Stages[0].MeetsNoSwitch() {
		t.Fatal("stage 1 must be schedulable at mode 1")
	}
	for _, st := range res.Stages[1:] {
		if st.MeetsNoSwitch() {
			t.Fatalf("stage %d unexpectedly schedulable without switching", st.Stage)
		}
		if !st.MeetsWithSwitch() {
			t.Fatalf("stage %d not schedulable even with switching", st.Stage)
		}
	}
	// Modes are nondecreasing and the simulated adaptive run completed with
	// every core finishing (no suspension).
	if res.Stages[1].Mode <= 1 {
		t.Fatal("stage 2 should require a degraded mode")
	}
	if !res.SimCompleted {
		t.Fatal("adaptive simulation did not complete all cores")
	}
	if res.SimModeSwitches < 1 {
		t.Fatal("no run-time mode switches applied")
	}
	tables := res.Render()
	if len(tables) != 2 {
		t.Fatalf("render tables = %d", len(tables))
	}
	if !strings.Contains(tables[0].String(), "300") {
		t.Fatalf("Table II render missing timers:\n%s", tables[0])
	}
	if !strings.Contains(res.Summary(), "mode") {
		t.Fatal("summary missing mode info")
	}
	if _, err := Fig7(o, "fft", 0.5, 1.8); err == nil {
		t.Fatal("factor ≤ 1 accepted")
	}
	if _, err := Fig7(o, "bogus", 1.5, 1.8); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTable1(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"CoHoRT", "PENDULUM", "yes", "optimized"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Regeneration(t *testing.T) {
	o := QuickOptions()
	res, err := Table2(o, "fft")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("modes = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		m := row.Mode
		for i, th := range row.Timers {
			crit := o.NCores - i
			if crit >= m && !th.Timed() {
				t.Fatalf("mode %d core %d should be timed, got %v", m, i, th)
			}
			if crit < m && th != config.TimerMSI {
				t.Fatalf("mode %d core %d should be MSI, got %v", m, i, th)
			}
		}
	}
	// Mode 4: only c0 timed — exactly the paper's structure.
	last := res.Rows[3]
	if !last.Timers[0].Timed() || last.Timers[1] != config.TimerMSI {
		t.Fatalf("mode 4 structure wrong: %v", last.Timers)
	}
	if !strings.Contains(res.Render().String(), "Table II") {
		t.Fatal("render missing title")
	}
}

func TestAblationArbiter(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	res, err := AblationArbiter(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byArb := map[config.Arbiter]ArbiterAblationRow{}
	for _, r := range res.Rows {
		byArb[r.Arbiter] = r
	}
	// TDM's idle slots must cost wall-clock time against RROF.
	if byArb[config.ArbiterTDM].Cycles <= byArb[config.ArbiterRROF].Cycles {
		t.Fatalf("TDM (%d) should be slower than RROF (%d)",
			byArb[config.ArbiterTDM].Cycles, byArb[config.ArbiterRROF].Cycles)
	}
	if !strings.Contains(res.Render().String(), "rrof") {
		t.Fatal("render missing arbiters")
	}
}

func TestAblationTransfer(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"radix"}
	res, err := AblationTransfer(o)
	if err != nil {
		t.Fatal(err)
	}
	var direct, via TransferAblationRow
	for _, r := range res.Rows {
		if r.Transfer == config.TransferDirect {
			direct = r
		} else {
			via = r
		}
	}
	// The via-memory detour must cost time on a sharing-heavy workload.
	if via.Cycles <= direct.Cycles {
		t.Fatalf("via-memory (%d) should be slower than direct (%d)", via.Cycles, direct.Cycles)
	}
	if !strings.Contains(res.Render().String(), "via-memory") {
		t.Fatal("render missing policies")
	}
}

func TestAblationTimerTradeoff(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	res, err := AblationTimer(o, []config.Timer{1, 100, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// WCL grows monotonically with θ (Eq. 1). Measured hits under contention
	// may jitter between adjacent θ values (interleavings change), but a
	// large timer must not protect dramatically fewer hits than θ=1.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].WCL <= res.Rows[i-1].WCL {
			t.Fatalf("WCL not increasing with θ: %+v", res.Rows)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if float64(last.Hits) < 0.9*float64(first.Hits) {
		t.Fatalf("hits collapsed at large θ: %d vs %d", last.Hits, first.Hits)
	}
	if !strings.Contains(res.Render().String(), "θ") {
		t.Fatal("render missing theta column")
	}
}

func TestAblationSnoop(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"lu"} // write-heavy: upgrades matter
	res, err := AblationSnoop(o)
	if err != nil {
		t.Fatal(err)
	}
	var msi, mesi SnoopAblationRow
	for _, r := range res.Rows {
		if r.Snoop == config.SnoopMSI {
			msi = r
		} else {
			mesi = r
		}
	}
	if mesi.Upgrades >= msi.Upgrades {
		t.Fatalf("MESI upgrades %d not below MSI %d", mesi.Upgrades, msi.Upgrades)
	}
	if mesi.Hits < msi.Hits {
		t.Fatalf("MESI hits %d below MSI %d", mesi.Hits, msi.Hits)
	}
	if !strings.Contains(res.Render().String(), "mesi") {
		t.Fatal("render missing protocol names")
	}
}

func TestNonPerfectSameObservations(t *testing.T) {
	o := QuickOptions()
	res, err := NonPerfect(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameObservations() {
		t.Fatalf("footnote-1 orderings broken: %s", res.Summary())
	}
	for _, row := range res.Rows {
		if !row.ExpUnderBound {
			t.Fatalf("%s: measured WCML exceeded the DRAM-extended bound", row.Benchmark)
		}
	}
	if !strings.Contains(res.Render().String(), "Footnote 1") {
		t.Fatal("render missing title")
	}
}

func TestAblationOptimizer(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	res, err := AblationOptimizer(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.GAObjective <= 0 || row.HCObjective <= 0 {
		t.Fatalf("degenerate objectives: %+v", row)
	}
	if row.GAEvals == 0 || row.HCEvals == 0 {
		t.Fatalf("no oracle calls: %+v", row)
	}
	if !strings.Contains(res.Render().String(), "hill climbing") {
		t.Fatal("render missing title")
	}
}

func TestExtensionScalability(t *testing.T) {
	o := QuickOptions()
	res, err := ExtensionScalability(o, "fft", 50, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The Eq. 1 bound grows strictly with the core count (more co-runner
	// slots and timers on the shared bus).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].WCL <= res.Rows[i-1].WCL {
			t.Fatalf("WCL not growing with N: %+v", res.Rows)
		}
		if res.Rows[i].NCores <= res.Rows[i-1].NCores {
			t.Fatal("core counts not ascending")
		}
	}
	// More cores on one bus: makespan grows (the bus saturates).
	if res.Rows[2].Cycles <= res.Rows[0].Cycles {
		t.Fatalf("8-core makespan %d not above 2-core %d", res.Rows[2].Cycles, res.Rows[0].Cycles)
	}
	if _, err := ExtensionScalability(o, "bogus", 50, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := ExtensionScalability(o, "fft", 50, []int{0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if !strings.Contains(res.Render().String(), "scalability") {
		t.Fatal("render missing title")
	}
}

func TestAblationL1Ways(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	res, err := AblationL1Ways(o, 200, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// More ways at fixed capacity never reduce the guaranteed hits (conflict
	// misses only go away).
	if res.Rows[1].GuaranteedHits < res.Rows[0].GuaranteedHits {
		t.Fatalf("guaranteed hits dropped with associativity: %+v", res.Rows)
	}
	if !strings.Contains(res.Render().String(), "associativity") {
		t.Fatal("render missing title")
	}
}

func TestAblationNonBlocking(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	res, err := AblationNonBlocking(o)
	if err != nil {
		t.Fatal(err)
	}
	var nb, bl int64
	for _, r := range res.Rows {
		if r.Blocking {
			bl = r.Cycles
		} else {
			nb = r.Cycles
		}
	}
	// Hits-over-misses must not be slower than blocking.
	if nb > bl {
		t.Fatalf("non-blocking %d slower than blocking %d", nb, bl)
	}
	if !strings.Contains(res.Render().String(), "non-blocking") {
		t.Fatal("render missing modes")
	}
}

// TestPipelineDeterminism runs a whole figure pipeline twice (trace
// generation → GA → simulations → bounds → rendering) and requires
// byte-identical output: the entire stack is seeded and map-order free.
func TestPipelineDeterminism(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	render := func() string {
		res, err := Fig5(o, "all-cr")
		if err != nil {
			t.Fatal(err)
		}
		return res.Render().String() + res.Summary()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("pipeline nondeterministic:\n%s\nvs\n%s", a, b)
	}
}
