package experiments

import (
	"fmt"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/obs"
	"cohort/internal/parallel"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

// SystemWCML holds the per-core experimental (measured) and analytical
// WCML of one system on one benchmark — one group of bars in Fig. 5.
type SystemWCML struct {
	// Exp is the measured total memory latency per core (solid bars).
	Exp []int64
	// Bound is the analytical WCML bound per core (T bars);
	// analysis.Unbounded for cores without a bound.
	Bound []int64
}

// Fig5Row is one benchmark's result across the three systems.
type Fig5Row struct {
	Benchmark string
	Timers    []config.Timer // CoHoRT's optimized timers
	CoHoRT    SystemWCML
	PCC       SystemWCML
	Pendulum  SystemWCML
}

// Fig5Result reproduces one sub-figure of Fig. 5 (one criticality scenario).
type Fig5Result struct {
	Scenario Scenario
	Rows     []Fig5Row
	// PCCRatio and PendulumRatio are geometric means over benchmarks and
	// critical cores of bound(baseline)/bound(CoHoRT) — the paper's
	// "CoHoRT is K× tighter" numbers (2.15× vs PCC and ~16× vs PENDULUM in
	// Fig. 5a, ~6× in 5b, ~18× in 5c).
	PCCRatio      float64
	PendulumRatio float64
}

// Fig5 runs the WCML comparison of CoHoRT against PCC and PENDULUM for the
// named scenario ("all-cr", "2cr-2ncr", "1cr-3ncr").
func Fig5(o Options, scenarioName string) (*Fig5Result, error) {
	sc, err := ScenarioByName(o.NCores, scenarioName)
	if err != nil {
		return nil, err
	}
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Scenario: sc}
	// One cell per benchmark; cells are independent, so they fan out across
	// the worker pool and are reduced in profile order below.
	rows, err := parallel.MapErr(o.jobs(), len(profiles), func(pi int) (Fig5Row, error) {
		p := profiles[pi]
		tr := o.generate(p)
		row := Fig5Row{Benchmark: p.Name}

		// CoHoRT: optimized timers on critical cores, MSI elsewhere.
		ga, err := optimizeTimers(&o, tr, sc.Critical)
		if err != nil {
			return row, fmt.Errorf("fig5 %s: %w", p.Name, err)
		}
		row.Timers = ga.Timers
		cohortCfg, err := config.CoHoRT(o.NCores, 1, ga.Timers)
		if err != nil {
			return row, err
		}
		row.CoHoRT, err = measureWCML(cohortCfg, &o, tr)
		if err != nil {
			return row, fmt.Errorf("fig5 %s cohort: %w", p.Name, err)
		}

		pccCfg := config.PCC(o.NCores)
		row.PCC, err = measureWCML(pccCfg, &o, tr)
		if err != nil {
			return row, fmt.Errorf("fig5 %s pcc: %w", p.Name, err)
		}

		pendCfg := config.PENDULUM(sc.Critical)
		row.Pendulum, err = measureWCML(pendCfg, &o, tr)
		if err != nil {
			return row, fmt.Errorf("fig5 %s pendulum: %w", p.Name, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var pccRatios, pendRatios []float64
	for _, row := range rows {
		for i, cr := range sc.Critical {
			if !cr || row.CoHoRT.Bound[i] <= 0 {
				continue
			}
			if row.PCC.Bound[i] > 0 {
				pccRatios = append(pccRatios, float64(row.PCC.Bound[i])/float64(row.CoHoRT.Bound[i]))
			}
			if row.Pendulum.Bound[i] > 0 {
				pendRatios = append(pendRatios, float64(row.Pendulum.Bound[i])/float64(row.CoHoRT.Bound[i]))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.PCCRatio = geomean(pccRatios)
	res.PendulumRatio = geomean(pendRatios)
	o.observeFigure("fig5/"+sc.Name, len(rows), func(reg *obs.Registry, lbl obs.Label) {
		reg.FloatGauge("experiments_pcc_bound_ratio", lbl).Set(res.PCCRatio)
		reg.FloatGauge("experiments_pendulum_bound_ratio", lbl).Set(res.PendulumRatio)
	})
	return res, nil
}

// measureWCML runs one system and pairs the measured per-core total memory
// latency with its analytical bound.
func measureWCML(cfg *config.System, o *Options, tr *trace.Trace) (SystemWCML, error) {
	bounds, err := analysis.Bounds(cfg, tr)
	if err != nil {
		return SystemWCML{}, err
	}
	run, err := runSystem(cfg, tr)
	if err != nil {
		return SystemWCML{}, err
	}
	out := SystemWCML{
		Exp:   make([]int64, o.NCores),
		Bound: make([]int64, o.NCores),
	}
	for i := 0; i < o.NCores; i++ {
		out.Exp[i] = run.Cores[i].TotalLatency
		out.Bound[i] = bounds[i].WCMLBound
		if out.Bound[i] != analysis.Unbounded && out.Exp[i] > out.Bound[i] {
			return SystemWCML{}, fmt.Errorf("core %d: measured WCML %d exceeds bound %d", i, out.Exp[i], out.Bound[i])
		}
	}
	return out, nil
}

// Render lays the result out as the paper's grouped bars, one row per
// (benchmark, core).
func (r *Fig5Result) Render() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Fig. 5 (%s): per-core WCML, experimental / analytical (cycles)", r.Scenario.Name),
		"bench", "core", "crit", "CoHoRT exp", "CoHoRT bound", "PCC exp", "PCC bound", "PENDULUM exp", "PENDULUM bound")
	fmtBound := func(v int64) string {
		if v == analysis.Unbounded {
			return "unbounded"
		}
		return stats.Cycles(v)
	}
	for _, row := range r.Rows {
		for i := range row.CoHoRT.Exp {
			crit := "nCr"
			if r.Scenario.Critical[i] {
				crit = "Cr"
			}
			t.AddRow(row.Benchmark, fmt.Sprintf("c%d", i), crit,
				stats.Cycles(row.CoHoRT.Exp[i]), fmtBound(row.CoHoRT.Bound[i]),
				stats.Cycles(row.PCC.Exp[i]), fmtBound(row.PCC.Bound[i]),
				stats.Cycles(row.Pendulum.Exp[i]), fmtBound(row.Pendulum.Bound[i]))
		}
	}
	return t
}

// Summary states the headline ratios.
func (r *Fig5Result) Summary() string {
	return fmt.Sprintf("Fig. 5 (%s): CoHoRT bounds are %.2fx tighter than PCC and %.2fx tighter than PENDULUM (geomean over critical cores)",
		r.Scenario.Name, r.PCCRatio, r.PendulumRatio)
}
