package experiments

import (
	"fmt"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/parallel"
	"cohort/internal/stats"
)

// ArbiterAblationRow measures one arbitration policy on one benchmark.
type ArbiterAblationRow struct {
	Benchmark string
	Arbiter   config.Arbiter
	Cycles    int64
	MaxMiss   int64 // worst per-request latency observed on any core
	BusUtil   float64
}

// ArbiterAblation quantifies the arbitration design choice (§III-B): RROF
// against plain RR, FCFS and TDM with identical timers — TDM's idle slots
// are where PENDULUM's Fig. 6 slowdown comes from.
type ArbiterAblation struct {
	Timers []config.Timer
	Rows   []ArbiterAblationRow
}

// AblationArbiter runs the sweep with a fixed moderate timer vector.
func AblationArbiter(o Options) (*ArbiterAblation, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	timers := make([]config.Timer, o.NCores)
	for i := range timers {
		timers[i] = 50
	}
	res := &ArbiterAblation{Timers: timers}
	arbiters := []config.Arbiter{config.ArbiterRROF, config.ArbiterRR, config.ArbiterFCFS, config.ArbiterTDM}
	// One cell per benchmark × arbiter, flattened profile-major so the
	// reduced order matches the serial loop's.
	rows, err := parallel.MapErr(o.jobs(), len(profiles)*len(arbiters), func(ci int) (ArbiterAblationRow, error) {
		p, arb := profiles[ci/len(arbiters)], arbiters[ci%len(arbiters)]
		tr := o.generate(p)
		cfg, err := config.CoHoRT(o.NCores, 1, timers)
		if err != nil {
			return ArbiterAblationRow{}, err
		}
		cfg.Arbiter = arb
		run, err := runSystem(cfg, tr)
		if err != nil {
			return ArbiterAblationRow{}, fmt.Errorf("arbiter ablation %s/%s: %w", p.Name, arb, err)
		}
		var maxMiss int64
		for i := range run.Cores {
			if run.Cores[i].MaxMissLatency > maxMiss {
				maxMiss = run.Cores[i].MaxMissLatency
			}
		}
		return ArbiterAblationRow{
			Benchmark: p.Name,
			Arbiter:   arb,
			Cycles:    run.Cycles,
			MaxMiss:   maxMiss,
			BusUtil:   run.BusUtilization(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the arbiter sweep.
func (r *ArbiterAblation) Render() *stats.Table {
	t := stats.NewTable("Ablation: arbitration policy (uniform θ=50)",
		"bench", "arbiter", "makespan", "max per-request latency", "bus util")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Arbiter.String(),
			stats.Cycles(row.Cycles), stats.Cycles(row.MaxMiss),
			fmt.Sprintf("%.1f%%", 100*row.BusUtil))
	}
	return t
}

// TransferAblationRow measures one handover policy on one benchmark.
type TransferAblationRow struct {
	Benchmark string
	Transfer  config.Transfer
	Cycles    int64
	MaxMiss   int64
}

// TransferAblation quantifies the direct vs via-memory handover choice —
// the structural difference between CoHoRT/MSI and the PCC baseline.
type TransferAblation struct {
	Rows []TransferAblationRow
}

// AblationTransfer runs the sweep with all-MSI cores under RROF.
func AblationTransfer(o Options) (*TransferAblation, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &TransferAblation{}
	transfers := []config.Transfer{config.TransferDirect, config.TransferViaMemory}
	rows, err := parallel.MapErr(o.jobs(), len(profiles)*len(transfers), func(ci int) (TransferAblationRow, error) {
		p, tp := profiles[ci/len(transfers)], transfers[ci%len(transfers)]
		tr := o.generate(p)
		cfg := config.PaperDefaults(o.NCores, 1)
		cfg.Transfer = tp
		run, err := runSystem(cfg, tr)
		if err != nil {
			return TransferAblationRow{}, fmt.Errorf("transfer ablation %s/%s: %w", p.Name, tp, err)
		}
		var maxMiss int64
		for i := range run.Cores {
			if run.Cores[i].MaxMissLatency > maxMiss {
				maxMiss = run.Cores[i].MaxMissLatency
			}
		}
		return TransferAblationRow{
			Benchmark: p.Name, Transfer: tp, Cycles: run.Cycles, MaxMiss: maxMiss,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the transfer sweep.
func (r *TransferAblation) Render() *stats.Table {
	t := stats.NewTable("Ablation: ownership handover policy (all cores MSI, RROF)",
		"bench", "transfer", "makespan", "max per-request latency")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Transfer.String(),
			stats.Cycles(row.Cycles), stats.Cycles(row.MaxMiss))
	}
	return t
}

// TimerSweepRow measures one uniform timer value on one benchmark.
type TimerSweepRow struct {
	Benchmark string
	Theta     config.Timer
	// Hits is the total measured hits over all cores.
	Hits int64
	// Cycles is the makespan.
	Cycles int64
	// WCL is the Eq. 1 per-request bound at this θ.
	WCL int64
	// AvgBound is Σ_i WCML_i/Λ_i — the optimizer's objective.
	AvgBound float64
}

// TimerSweep quantifies the central trade-off of the paper (Fig. 1 and
// §III-A): growing θ protects more hits (better average case) while
// inflating every other core's worst-case latency. The optimizer's job is
// to sit at the knee of this curve.
type TimerSweep struct {
	Rows []TimerSweepRow
}

// AblationTimer sweeps a uniform θ over all cores.
func AblationTimer(o Options, thetas []config.Timer) (*TimerSweep, error) {
	if len(thetas) == 0 {
		thetas = []config.Timer{1, 10, 50, 100, 500, 1000, 5000}
	}
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &TimerSweep{}
	rows, err := parallel.MapErr(o.jobs(), len(profiles)*len(thetas), func(ci int) (TimerSweepRow, error) {
		p, th := profiles[ci/len(thetas)], thetas[ci%len(thetas)]
		tr := o.generate(p)
		timers := make([]config.Timer, o.NCores)
		for i := range timers {
			timers[i] = th
		}
		cfg, err := config.CoHoRT(o.NCores, 1, timers)
		if err != nil {
			return TimerSweepRow{}, err
		}
		bounds, err := analysis.Bounds(cfg, tr)
		if err != nil {
			return TimerSweepRow{}, err
		}
		run, err := runSystem(cfg, tr)
		if err != nil {
			return TimerSweepRow{}, fmt.Errorf("timer sweep %s/θ=%d: %w", p.Name, th, err)
		}
		row := TimerSweepRow{Benchmark: p.Name, Theta: th, Cycles: run.Cycles, WCL: bounds[0].WCL}
		for i := range run.Cores {
			row.Hits += run.Cores[i].Hits
			row.AvgBound += float64(bounds[i].WCMLBound) / float64(tr.Lambda(i))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the timer sweep.
func (r *TimerSweep) Render() *stats.Table {
	t := stats.NewTable("Ablation: uniform timer sweep (trade-off of Fig. 1)",
		"bench", "θ", "total hits", "makespan", "WCL (Eq.1)", "avg WCML bound / req")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Theta.String(),
			stats.Cycles(row.Hits), stats.Cycles(row.Cycles),
			stats.Cycles(row.WCL), fmt.Sprintf("%.1f", row.AvgBound))
	}
	return t
}

// SnoopAblationRow measures one snooping protocol family on one benchmark.
type SnoopAblationRow struct {
	Benchmark string
	Snoop     config.Snoop
	Cycles    int64
	Upgrades  int64 // total S→M bus transactions
	Hits      int64
}

// SnoopAblation quantifies the MESI extension: the Exclusive state removes
// the upgrade transaction for private read-then-write patterns. The paper's
// protocols are MSI-based; MESI composes with the timers unchanged and is
// provided as the natural snooping-family extension.
type SnoopAblation struct {
	Rows []SnoopAblationRow
}

// AblationSnoop runs the MSI-vs-MESI sweep with all cores in snooping mode.
func AblationSnoop(o Options) (*SnoopAblation, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &SnoopAblation{}
	snoops := []config.Snoop{config.SnoopMSI, config.SnoopMESI}
	rows, err := parallel.MapErr(o.jobs(), len(profiles)*len(snoops), func(ci int) (SnoopAblationRow, error) {
		p, sp := profiles[ci/len(snoops)], snoops[ci%len(snoops)]
		tr := o.generate(p)
		cfg := config.PaperDefaults(o.NCores, 1)
		cfg.Snoop = sp
		run, err := runSystem(cfg, tr)
		if err != nil {
			return SnoopAblationRow{}, fmt.Errorf("snoop ablation %s/%s: %w", p.Name, sp, err)
		}
		row := SnoopAblationRow{Benchmark: p.Name, Snoop: sp, Cycles: run.Cycles}
		for i := range run.Cores {
			row.Upgrades += run.Cores[i].Upgrades
			row.Hits += run.Cores[i].Hits
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the snoop-protocol sweep.
func (r *SnoopAblation) Render() *stats.Table {
	t := stats.NewTable("Ablation: snooping protocol family (all cores snooping, RROF)",
		"bench", "protocol", "makespan", "upgrade transactions", "total hits")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Snoop.String(),
			stats.Cycles(row.Cycles), stats.Cycles(row.Upgrades), stats.Cycles(row.Hits))
	}
	return t
}

// L1WaysRow measures one L1 associativity on one benchmark.
type L1WaysRow struct {
	Benchmark string
	Ways      int
	// GuaranteedHits sums M_hit over cores at a uniform θ.
	GuaranteedHits int64
	// MeasuredHits sums achieved hits.
	MeasuredHits int64
	Cycles       int64
}

// L1WaysAblation varies the private-cache associativity at fixed capacity:
// the paper evaluates a direct-mapped L1 (ways = 1); higher associativity
// removes conflict misses from both the guarantee and the measurement. The
// timer machinery is unaffected — the countdown counters are per line.
type L1WaysAblation struct {
	Theta config.Timer
	Rows  []L1WaysRow
}

// AblationL1Ways sweeps the associativity with a uniform timer.
func AblationL1Ways(o Options, theta config.Timer, ways []int) (*L1WaysAblation, error) {
	if len(ways) == 0 {
		ways = []int{1, 2, 4}
	}
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &L1WaysAblation{Theta: theta}
	rows, err := parallel.MapErr(o.jobs(), len(profiles)*len(ways), func(ci int) (L1WaysRow, error) {
		p, w := profiles[ci/len(ways)], ways[ci%len(ways)]
		tr := o.generate(p)
		timers := make([]config.Timer, o.NCores)
		for i := range timers {
			timers[i] = theta
		}
		cfg, err := config.CoHoRT(o.NCores, 1, timers)
		if err != nil {
			return L1WaysRow{}, err
		}
		cfg.L1.Ways = w
		if err := cfg.Validate(); err != nil {
			return L1WaysRow{}, fmt.Errorf("l1 ways ablation: %w", err)
		}
		bounds, err := analysis.Bounds(cfg, tr)
		if err != nil {
			return L1WaysRow{}, err
		}
		run, err := runSystem(cfg, tr)
		if err != nil {
			return L1WaysRow{}, fmt.Errorf("l1 ways ablation %s/%d: %w", p.Name, w, err)
		}
		row := L1WaysRow{Benchmark: p.Name, Ways: w, Cycles: run.Cycles}
		for i := range run.Cores {
			row.GuaranteedHits += bounds[i].MHit
			row.MeasuredHits += run.Cores[i].Hits
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the associativity sweep.
func (r *L1WaysAblation) Render() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: L1 associativity at fixed capacity (uniform θ=%v)", r.Theta),
		"bench", "ways", "guaranteed hits", "measured hits", "makespan")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, fmt.Sprintf("%d", row.Ways),
			stats.Cycles(row.GuaranteedHits), stats.Cycles(row.MeasuredHits),
			stats.Cycles(row.Cycles))
	}
	return t
}

// NonBlockingRow measures one cache-blocking mode on one benchmark.
type NonBlockingRow struct {
	Benchmark string
	Blocking  bool
	Cycles    int64
}

// NonBlockingAblation quantifies the hits-over-misses design of the paper's
// non-blocking private caches (§VIII) against a blocking L1.
type NonBlockingAblation struct {
	Rows []NonBlockingRow
}

// AblationNonBlocking runs the sweep with a uniform timer.
func AblationNonBlocking(o Options) (*NonBlockingAblation, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &NonBlockingAblation{}
	modes := []bool{false, true}
	rows, err := parallel.MapErr(o.jobs(), len(profiles)*len(modes), func(ci int) (NonBlockingRow, error) {
		p, blocking := profiles[ci/len(modes)], modes[ci%len(modes)]
		tr := o.generate(p)
		timers := make([]config.Timer, o.NCores)
		for i := range timers {
			timers[i] = 100
		}
		cfg, err := config.CoHoRT(o.NCores, 1, timers)
		if err != nil {
			return NonBlockingRow{}, err
		}
		cfg.BlockingCaches = blocking
		run, err := runSystem(cfg, tr)
		if err != nil {
			return NonBlockingRow{}, fmt.Errorf("nonblocking ablation %s/%v: %w", p.Name, blocking, err)
		}
		return NonBlockingRow{Benchmark: p.Name, Blocking: blocking, Cycles: run.Cycles}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the blocking-mode sweep.
func (r *NonBlockingAblation) Render() *stats.Table {
	t := stats.NewTable("Ablation: non-blocking L1 (hits-over-misses) vs blocking",
		"bench", "L1 mode", "makespan")
	for _, row := range r.Rows {
		mode := "non-blocking"
		if row.Blocking {
			mode = "blocking"
		}
		t.AddRow(row.Benchmark, mode, stats.Cycles(row.Cycles))
	}
	return t
}
