package experiments

import (
	"fmt"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/opt"
	"cohort/internal/parallel"
	"cohort/internal/stats"
)

// OptimizerAblationRow compares the two optimization engines on one
// benchmark.
type OptimizerAblationRow struct {
	Benchmark string
	// GAObjective / HCObjective are the best objective values found.
	GAObjective, HCObjective float64
	// GAEvals / HCEvals count oracle calls (the cost driver — the paper's
	// Matlab GA ran 50 min–20 h).
	GAEvals, HCEvals int
}

// OptimizerAblation validates that the Fig. 2a engine is algorithm-agnostic
// and quantifies GA vs hill climbing.
type OptimizerAblation struct {
	Rows []OptimizerAblationRow
}

// AblationOptimizer runs both engines on each benchmark (all cores timed).
func AblationOptimizer(o Options) (*OptimizerAblation, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &OptimizerAblation{}
	base := config.PaperDefaults(o.NCores, 1)
	rows, err := parallel.MapErr(o.jobs(), len(profiles), func(pi int) (OptimizerAblationRow, error) {
		p := profiles[pi]
		tr := o.generate(p)
		timed := make([]bool, o.NCores)
		for i := range timed {
			timed[i] = true
		}
		prob := &opt.Problem{Lat: base.Lat, L1: base.L1, Streams: tr.Streams, Timed: timed}
		ga, err := opt.Optimize(prob, o.GA)
		if err != nil {
			return OptimizerAblationRow{}, fmt.Errorf("optimizer ablation %s ga: %w", p.Name, err)
		}
		hcConf := opt.DefaultHC(o.GA.Seed)
		hcConf.Workers = o.GA.Workers
		hcConf.OracleBatch = o.GA.OracleBatch
		hcConf.OracleCurve = o.GA.OracleCurve
		hc, err := opt.HillClimb(prob, hcConf)
		if err != nil {
			return OptimizerAblationRow{}, fmt.Errorf("optimizer ablation %s hc: %w", p.Name, err)
		}
		return OptimizerAblationRow{
			Benchmark:   p.Name,
			GAObjective: ga.Eval.Objective, HCObjective: hc.Eval.Objective,
			GAEvals: ga.Evaluations, HCEvals: hc.Evaluations,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the engine comparison.
func (r *OptimizerAblation) Render() *stats.Table {
	t := stats.NewTable("Ablation: optimization engine (Fig. 2a loop, GA vs hill climbing)",
		"bench", "GA objective", "GA oracle calls", "HC objective", "HC oracle calls")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%.1f", row.GAObjective), fmt.Sprintf("%d", row.GAEvals),
			fmt.Sprintf("%.1f", row.HCObjective), fmt.Sprintf("%d", row.HCEvals))
	}
	return t
}

// ScalabilityRow measures one core count.
type ScalabilityRow struct {
	NCores int
	// WCL is the Eq. 1 bound for core 0 with uniform θ.
	WCL int64
	// Cycles is the measured makespan.
	Cycles int64
	// BusUtil is the measured bus utilization.
	BusUtil float64
	// AvgLatency is the mean per-access latency over all cores.
	AvgLatency float64
}

// Scalability extends the evaluation beyond the paper's 4-core platform:
// the same workload pressure per core, swept over the core count, showing
// how the shared-bus worst case (linear in N and in Σθ) and the measured
// average case scale. This is an extension experiment — the paper evaluates
// N = 4 only.
type Scalability struct {
	Benchmark string
	Theta     config.Timer
	Rows      []ScalabilityRow
}

// ExtensionScalability sweeps the core count with a fixed uniform timer.
func ExtensionScalability(o Options, benchmark string, theta config.Timer, coreCounts []int) (*Scalability, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4, 8, 16}
	}
	p, err := o.profile(benchmark)
	if err != nil {
		return nil, err
	}
	res := &Scalability{Benchmark: p.Name, Theta: theta}
	rows, err := parallel.MapErr(o.jobs(), len(coreCounts), func(ci int) (ScalabilityRow, error) {
		n := coreCounts[ci]
		if n < 1 {
			return ScalabilityRow{}, fmt.Errorf("experiments: core count %d", n)
		}
		tr := p.Generate(n, 64, o.Seed)
		timers := make([]config.Timer, n)
		for i := range timers {
			timers[i] = theta
		}
		cfg, err := config.CoHoRT(n, 1, timers)
		if err != nil {
			return ScalabilityRow{}, err
		}
		run, err := runSystem(cfg, tr)
		if err != nil {
			return ScalabilityRow{}, fmt.Errorf("scalability n=%d: %w", n, err)
		}
		var lat, acc int64
		for i := range run.Cores {
			lat += run.Cores[i].TotalLatency
			acc += run.Cores[i].Accesses
		}
		return ScalabilityRow{
			NCores:     n,
			WCL:        analysis.WCLCoHoRT(cfg.Lat, timers, 0),
			Cycles:     run.Cycles,
			BusUtil:    run.BusUtilization(),
			AvgLatency: float64(lat) / float64(acc),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render lays out the core-count sweep.
func (r *Scalability) Render() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Extension: core-count scalability (%s, uniform θ=%v)", r.Benchmark, r.Theta),
		"cores", "WCL (Eq.1)", "makespan", "bus util", "avg latency/access")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.NCores),
			stats.Cycles(row.WCL), stats.Cycles(row.Cycles),
			fmt.Sprintf("%.1f%%", 100*row.BusUtil),
			fmt.Sprintf("%.1f", row.AvgLatency))
	}
	return t
}
