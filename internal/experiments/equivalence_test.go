package experiments

import (
	"strings"
	"testing"

	"cohort/internal/obs"
)

// Each runner must render byte-identical output under the forced-serial path
// (Jobs=1) and an oversubscribed worker pool (Jobs=8). The memo is reset
// between runs so both compute from a cold cache; CI runs this package under
// -race so the worker interleavings themselves are exercised.

// renderAll drives one runner configuration to its user-visible string form.
type runnerCase struct {
	name string
	run  func(o Options) (string, error)
}

func runnerCases() []runnerCase {
	return []runnerCase{
		{"fig5", func(o Options) (string, error) {
			r, err := Fig5(o, "all-cr")
			if err != nil {
				return "", err
			}
			return r.Render().String() + "\n" + r.Summary(), nil
		}},
		{"fig6", func(o Options) (string, error) {
			r, err := Fig6(o, "2cr-2ncr")
			if err != nil {
				return "", err
			}
			return r.Render().String() + "\n" + r.Summary(), nil
		}},
		{"fig7", func(o Options) (string, error) {
			r, err := Fig7(o, "fft", 1.5, 1.8)
			if err != nil {
				return "", err
			}
			var sb strings.Builder
			for _, t := range r.Render() {
				sb.WriteString(t.String())
			}
			sb.WriteString(r.Summary())
			return sb.String(), nil
		}},
		{"table2", func(o Options) (string, error) {
			r, err := Table2(o, "fft")
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"nonperfect", func(o Options) (string, error) {
			r, err := NonPerfect(o)
			if err != nil {
				return "", err
			}
			return r.Render().String() + "\n" + r.Summary(), nil
		}},
		{"ablation-arbiter", func(o Options) (string, error) {
			r, err := AblationArbiter(o)
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"ablation-transfer", func(o Options) (string, error) {
			r, err := AblationTransfer(o)
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"ablation-timer", func(o Options) (string, error) {
			r, err := AblationTimer(o, nil)
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"ablation-snoop", func(o Options) (string, error) {
			r, err := AblationSnoop(o)
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"ablation-l1ways", func(o Options) (string, error) {
			r, err := AblationL1Ways(o, 100, nil)
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"ablation-nonblocking", func(o Options) (string, error) {
			r, err := AblationNonBlocking(o)
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"ablation-optimizer", func(o Options) (string, error) {
			r, err := AblationOptimizer(o)
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
		{"scalability", func(o Options) (string, error) {
			r, err := ExtensionScalability(o, "fft", 50, []int{2, 4})
			if err != nil {
				return "", err
			}
			return r.Render().String(), nil
		}},
	}
}

func equivalenceOptions(seed uint64) Options {
	o := QuickOptions()
	o.Seed = seed
	o.GA.Seed = seed
	return o
}

// TestRunnersSerialParallelEquivalence asserts every experiment runner
// renders byte-identically at -j 1 and -j 8, table-driven over seeds.
func TestRunnersSerialParallelEquivalence(t *testing.T) {
	seeds := []uint64{1, 42, 7777}
	for _, rc := range runnerCases() {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			for _, seed := range seeds {
				o := equivalenceOptions(seed)

				o.Jobs, o.GA.Workers = 1, 1
				ResetMemo()
				serial, err := rc.run(o)
				if err != nil {
					t.Fatalf("seed %d -j 1: %v", seed, err)
				}

				o.Jobs, o.GA.Workers = 8, 8
				ResetMemo()
				par, err := rc.run(o)
				if err != nil {
					t.Fatalf("seed %d -j 8: %v", seed, err)
				}

				if serial != par {
					t.Fatalf("seed %d: -j 1 and -j 8 output differ\n--- j1 ---\n%s\n--- j8 ---\n%s", seed, serial, par)
				}
			}
		})
	}
}

// TestMetricsSerialParallelEquivalence asserts the observability layer obeys
// the same contract as the rendered output: with a fresh Registry and Recorder
// attached, every runner must produce byte-identical metrics snapshots and
// Chrome trace exports at -j 1 and -j 8. Runners publish post-hoc (after the
// parallel fan-out is reduced), so worker scheduling must never leak into
// either artifact.
func TestMetricsSerialParallelEquivalence(t *testing.T) {
	type observed struct {
		render  string
		metrics string
		trace   string
	}
	runObserved := func(rc runnerCase, o Options) (observed, error) {
		reg := obs.NewRegistry()
		rec := obs.NewRecorder()
		o.Metrics, o.Recorder = reg, rec
		out, err := rc.run(o)
		if err != nil {
			return observed{}, err
		}
		var sb strings.Builder
		if err := rec.WriteChrome(&sb); err != nil {
			return observed{}, err
		}
		return observed{render: out, metrics: string(reg.Snapshot().JSON()), trace: sb.String()}, nil
	}
	seeds := []uint64{1, 42, 7777}
	for _, rc := range runnerCases() {
		rc := rc
		t.Run(rc.name, func(t *testing.T) {
			for _, seed := range seeds {
				o := equivalenceOptions(seed)

				o.Jobs, o.GA.Workers = 1, 1
				ResetMemo()
				serial, err := runObserved(rc, o)
				if err != nil {
					t.Fatalf("seed %d -j 1: %v", seed, err)
				}

				o.Jobs, o.GA.Workers = 8, 8
				ResetMemo()
				par, err := runObserved(rc, o)
				if err != nil {
					t.Fatalf("seed %d -j 8: %v", seed, err)
				}

				if serial.metrics != par.metrics {
					t.Fatalf("seed %d: metrics snapshots differ\n--- j1 ---\n%s\n--- j8 ---\n%s",
						seed, serial.metrics, par.metrics)
				}
				if serial.trace != par.trace {
					t.Fatalf("seed %d: chrome traces differ\n--- j1 ---\n%s\n--- j8 ---\n%s",
						seed, serial.trace, par.trace)
				}
				if serial.render != par.render {
					t.Fatalf("seed %d: rendered output differs under observation", seed)
				}
			}
		})
	}
}

// TestMemoServesRepeatedCells checks the process-wide memo actually fires:
// rendering the same figure twice without a reset must serve the second pass
// from cache, and the result must stay identical to a cold run.
func TestMemoServesRepeatedCells(t *testing.T) {
	o := equivalenceOptions(42)
	o.Jobs, o.GA.Workers = 1, 1
	ResetMemo()
	first, err := Fig6(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	cold := MemoStats()
	second, err := Fig6(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	warm := MemoStats()
	if first.Render().String() != second.Render().String() {
		t.Fatal("memoized rerun rendered differently")
	}
	if warm.CacheHits <= cold.CacheHits {
		t.Fatalf("second run should hit the memo: cold %+v, warm %+v", cold, warm)
	}
	if warm.CacheMisses != cold.CacheMisses {
		t.Fatalf("second run recomputed cells: cold %+v, warm %+v", cold, warm)
	}
}
