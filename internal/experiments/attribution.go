package experiments

import (
	"fmt"

	"cohort/internal/config"
	"cohort/internal/obs"
	"cohort/internal/parallel"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

// AttributionRow is one (benchmark, system, core) cell of the WCML latency
// attribution: the core's total memory latency decomposed into hit service,
// arbitration wait, timer-protection stall, bus transfer and DRAM fetch
// (stats.Attribution, DESIGN.md §15). The components sum exactly to
// TotalLatency.
type AttributionRow struct {
	Benchmark string
	System    string // "CoHoRT", "PCC" or "PENDULUM"
	Core      int
	Critical  bool
	Misses    int64
	// Component cycle totals over all of the core's misses, plus the hit
	// cycles (Hits × L_hit) completing the decomposition of TotalLatency.
	Arbitration int64
	TimerStall  int64
	Transfer    int64
	DRAM        int64
	HitCycles   int64
	Total       int64
}

// AttributionResult is the per-request latency attribution of one
// criticality scenario across CoHoRT, PCC and PENDULUM — where each
// system's memory latency actually goes, the observability companion to
// Fig. 5's how-much comparison.
type AttributionResult struct {
	Scenario Scenario
	Rows     []AttributionRow
	// TimerStallShare is each system's timer-protection-stall fraction of
	// critical-core miss latency, keyed in sysNames order. CoHoRT's timers
	// trade exactly this component against hit retention.
	TimerStallShare map[string]float64
}

// sysNames fixes the system order of the attribution rows and shares.
var sysNames = []string{"CoHoRT", "PCC", "PENDULUM"}

// Attribution decomposes every core's measured memory latency under the
// named scenario for the three compared systems. It reuses the memoized
// optimizeTimers/runSystem primitives — after a Fig. 5 run of the same
// options every cell is memo-served, so the attribution is an exact
// decomposition of the very runs Fig. 5 measured, not a re-simulation that
// could drift.
func Attribution(o Options, scenarioName string) (*AttributionResult, error) {
	sc, err := ScenarioByName(o.NCores, scenarioName)
	if err != nil {
		return nil, err
	}
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &AttributionResult{Scenario: sc}
	rows, err := parallel.MapErr(o.jobs(), len(profiles), func(pi int) ([]AttributionRow, error) {
		p := profiles[pi]
		tr := o.generate(p)
		ga, err := optimizeTimers(&o, tr, sc.Critical)
		if err != nil {
			return nil, fmt.Errorf("attribution %s: %w", p.Name, err)
		}
		cohortCfg, err := config.CoHoRT(o.NCores, 1, ga.Timers)
		if err != nil {
			return nil, err
		}
		configs := []*config.System{cohortCfg, config.PCC(o.NCores), config.PENDULUM(sc.Critical)}
		var out []AttributionRow
		for si, cfg := range configs {
			rs, err := attributeSystem(cfg, sysNames[si], p.Name, sc.Critical, tr)
			if err != nil {
				return nil, fmt.Errorf("attribution %s %s: %w", p.Name, sysNames[si], err)
			}
			out = append(out, rs...)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range rows {
		res.Rows = append(res.Rows, rs...)
	}

	// Critical-core timer-stall share per system: stalls ÷ total miss
	// latency (total minus hit cycles).
	res.TimerStallShare = make(map[string]float64, len(sysNames))
	for _, sys := range sysNames {
		var stall, miss int64
		for _, r := range res.Rows {
			if r.System != sys || !r.Critical {
				continue
			}
			stall += r.TimerStall
			miss += r.Total - r.HitCycles
		}
		if miss > 0 {
			res.TimerStallShare[sys] = float64(stall) / float64(miss)
		}
	}

	o.observeFigure("attribution/"+sc.Name, len(profiles), func(reg *obs.Registry, lbl obs.Label) {
		for _, sys := range sysNames {
			reg.FloatGauge("experiments_timer_stall_share",
				lbl, obs.L("system", sys)).Set(res.TimerStallShare[sys])
		}
	})
	return res, nil
}

// attributeSystem runs (or memo-fetches) one system and lays its per-core
// attribution out as rows. The row identity — components plus hit cycles
// equal total latency — is checked here, so a decomposition bug surfaces as
// a hard error, never as a silently wrong table.
func attributeSystem(cfg *config.System, system, benchmark string, critical []bool, tr *trace.Trace) ([]AttributionRow, error) {
	run, err := runSystem(cfg, tr)
	if err != nil {
		return nil, err
	}
	rows := make([]AttributionRow, len(run.Cores))
	for i := range run.Cores {
		c := &run.Cores[i]
		r := AttributionRow{
			Benchmark:   benchmark,
			System:      system,
			Core:        i,
			Critical:    critical[i],
			Misses:      c.Misses,
			Arbitration: c.Attr.ArbitrationCycles,
			TimerStall:  c.Attr.TimerStallCycles,
			Transfer:    c.Attr.TransferCycles,
			DRAM:        c.Attr.DRAMCycles,
			HitCycles:   c.Hits * cfg.Lat.Hit,
			Total:       c.TotalLatency,
		}
		if sum := r.Arbitration + r.TimerStall + r.Transfer + r.DRAM + r.HitCycles; sum != r.Total {
			return nil, fmt.Errorf("core %d: attribution components sum to %d, total latency %d", i, sum, r.Total)
		}
		rows[i] = r
	}
	return rows, nil
}

// ManifestRows converts the result into the run-manifest representation
// (obs.AttributionRow), preserving row order.
func (r *AttributionResult) ManifestRows() []obs.AttributionRow {
	out := make([]obs.AttributionRow, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = obs.AttributionRow{
			Benchmark:    row.Benchmark,
			System:       row.System,
			Core:         row.Core,
			Critical:     row.Critical,
			Misses:       row.Misses,
			Arbitration:  row.Arbitration,
			TimerStall:   row.TimerStall,
			Transfer:     row.Transfer,
			DRAM:         row.DRAM,
			HitCycles:    row.HitCycles,
			TotalLatency: row.Total,
		}
	}
	return out
}

// pct renders a component as its percentage of the total latency.
func pct(part, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// Render lays the attribution out with one row per (benchmark, system,
// core): absolute cycle totals and each component's share of the total.
func (r *AttributionResult) Render() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("WCML attribution (%s): where each core's memory latency goes (cycles, share of total)", r.Scenario.Name),
		"bench", "system", "core", "crit", "total", "hit", "arb", "timer", "xfer", "dram",
		"arb%", "timer%", "xfer%", "dram%")
	for _, row := range r.Rows {
		crit := "nCr"
		if row.Critical {
			crit = "Cr"
		}
		t.AddRow(row.Benchmark, row.System, fmt.Sprintf("c%d", row.Core), crit,
			stats.Cycles(row.Total), stats.Cycles(row.HitCycles),
			stats.Cycles(row.Arbitration), stats.Cycles(row.TimerStall),
			stats.Cycles(row.Transfer), stats.Cycles(row.DRAM),
			pct(row.Arbitration, row.Total), pct(row.TimerStall, row.Total),
			pct(row.Transfer, row.Total), pct(row.DRAM, row.Total))
	}
	return t
}

// Summary states the headline timer-stall shares.
func (r *AttributionResult) Summary() string {
	return fmt.Sprintf("Attribution (%s): timer-protection stalls are %.1f%% of critical-core miss latency under CoHoRT, %.1f%% under PCC, %.1f%% under PENDULUM",
		r.Scenario.Name,
		100*r.TimerStallShare["CoHoRT"], 100*r.TimerStallShare["PCC"], 100*r.TimerStallShare["PENDULUM"])
}
