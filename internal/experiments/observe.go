package experiments

import (
	"encoding/hex"

	"cohort/internal/obs"
	"cohort/internal/trace"
)

// Observability. The process-wide memos make any metric probed inside a
// running cell scheduling-dependent (a cached cell skips the work a fresh
// cell performs, and racing cells split hits and misses differently run to
// run), so the experiment harness publishes only post-hoc: every runner
// folds deterministic summary values out of its finished result, in
// coordinator order, after the parallel fan-out has been reduced. Metric
// snapshots are therefore byte-identical for every Jobs value — the
// serial-equivalence suite asserts it. The memo counters themselves
// (MemoStats) are surfaced exclusively through run manifests, never through
// the registry.

// observeFigure publishes one finished figure: the shared figure/cell
// counters, any runner-specific gauges via publish, and a span on the
// experiments track timestamped by figure sequence number.
func (o *Options) observeFigure(name string, cells int, publish func(reg *obs.Registry, lbl obs.Label)) {
	var seq int64
	if o.Metrics != nil {
		// Published under Sync: with -listen the registry is scraped live by
		// the debug server, and Sync is the registry's publish/read fence.
		o.Metrics.Sync(func() {
			ctr := o.Metrics.Counter("experiments_figures_total")
			ctr.Inc()
			seq = ctr.Value() - 1
			o.Metrics.Counter("experiments_cells_total").Add(int64(cells))
			if publish != nil {
				publish(o.Metrics, obs.L("figure", name))
			}
		})
	}
	if o.Recorder != nil {
		// Timestamps are logical figure sequence numbers (0 without a
		// registry to sequence them), never wall clock.
		o.Recorder.NameProcess(obs.PidExperiments, "cohort experiments")
		o.Recorder.Complete(obs.PidExperiments, 0, name, "figure", seq, 1, nil)
	}
}

// Fingerprint returns the hex content fingerprint of a trace — the same
// digest the process-wide memos key on. Run manifests use it to tie results
// to exact workload content.
func Fingerprint(tr *trace.Trace) string {
	return hex.EncodeToString([]byte(traceFingerprint(tr)))
}

// TraceRefs generates the workload traces selected by the options and
// returns their names and content fingerprints for run manifests.
func TraceRefs(o Options) ([]obs.TraceRef, error) {
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	refs := make([]obs.TraceRef, 0, len(profiles))
	for _, p := range profiles {
		refs = append(refs, obs.TraceRef{Name: p.Name, Fingerprint: Fingerprint(o.generate(p))})
	}
	return refs, nil
}
