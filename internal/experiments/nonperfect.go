package experiments

import (
	"fmt"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/parallel"
	"cohort/internal/stats"
)

// NonPerfectRow is one benchmark's result under the non-perfect LLC.
type NonPerfectRow struct {
	Benchmark string
	// Slowdowns vs MSI+FCFS (also with a non-perfect LLC).
	CoHoRT, PCC, Pendulum float64
	// CoHoRTBoundRatio is PCC bound / CoHoRT bound (geomean over cores) —
	// the Fig. 5 headline under the non-perfect hierarchy.
	CoHoRTBoundRatio float64
	// ExpUnderBound reports that every measured WCML stayed below its
	// (DRAM-extended) analytical bound.
	ExpUnderBound bool
}

// NonPerfectResult reproduces the paper's footnote 1: "we have also
// experimented with a non-perfect LLC including a fixed-latency main memory
// model. This experiment shows the same observations." The runner repeats
// the Fig. 5/Fig. 6 headline measurements with PerfectLLC = false and the
// default DRAM latency and checks that the orderings are unchanged.
type NonPerfectResult struct {
	Rows                           []NonPerfectRow
	AvgCoHoRT, AvgPCC, AvgPendulum float64
	AvgBoundRatio                  float64
}

// NonPerfect runs the footnote-1 experiment for the all-critical scenario.
func NonPerfect(o Options) (*NonPerfectResult, error) {
	sc, err := ScenarioByName(o.NCores, "all-cr")
	if err != nil {
		return nil, err
	}
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &NonPerfectResult{}
	rows, err := parallel.MapErr(o.jobs(), len(profiles), func(pi int) (NonPerfectRow, error) {
		p := profiles[pi]
		tr := o.generate(p)
		row := NonPerfectRow{Benchmark: p.Name, ExpUnderBound: true}

		baseCfg := config.MSIFCFS(o.NCores)
		baseCfg.PerfectLLC = false
		base, err := runSystem(baseCfg, tr)
		if err != nil {
			return row, fmt.Errorf("nonperfect %s msi: %w", p.Name, err)
		}

		ga, err := optimizeTimers(&o, tr, sc.Critical)
		if err != nil {
			return row, err
		}
		cohortCfg, err := config.CoHoRT(o.NCores, 1, ga.Timers)
		if err != nil {
			return row, err
		}
		cohortCfg.PerfectLLC = false
		cohortBounds, err := analysis.Bounds(cohortCfg, tr)
		if err != nil {
			return row, err
		}
		cohort, err := runSystem(cohortCfg, tr)
		if err != nil {
			return row, fmt.Errorf("nonperfect %s cohort: %w", p.Name, err)
		}

		pccCfg := config.PCC(o.NCores)
		pccCfg.PerfectLLC = false
		pccBounds, err := analysis.Bounds(pccCfg, tr)
		if err != nil {
			return row, err
		}
		pcc, err := runSystem(pccCfg, tr)
		if err != nil {
			return row, fmt.Errorf("nonperfect %s pcc: %w", p.Name, err)
		}

		pendCfg := config.PENDULUM(sc.Critical)
		pendCfg.PerfectLLC = false
		pend, err := runSystem(pendCfg, tr)
		if err != nil {
			return row, fmt.Errorf("nonperfect %s pendulum: %w", p.Name, err)
		}

		row.CoHoRT = float64(cohort.Cycles) / float64(base.Cycles)
		row.PCC = float64(pcc.Cycles) / float64(base.Cycles)
		row.Pendulum = float64(pend.Cycles) / float64(base.Cycles)

		var ratios []float64
		for i := 0; i < o.NCores; i++ {
			if cohort.Cores[i].TotalLatency > cohortBounds[i].WCMLBound ||
				pcc.Cores[i].TotalLatency > pccBounds[i].WCMLBound {
				row.ExpUnderBound = false
			}
			ratios = append(ratios, float64(pccBounds[i].WCMLBound)/float64(cohortBounds[i].WCMLBound))
		}
		row.CoHoRTBoundRatio = geomean(ratios)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var ch, pc, pd, br []float64
	for _, row := range rows {
		ch = append(ch, row.CoHoRT)
		pc = append(pc, row.PCC)
		pd = append(pd, row.Pendulum)
		br = append(br, row.CoHoRTBoundRatio)
		res.Rows = append(res.Rows, row)
	}
	res.AvgCoHoRT, res.AvgPCC, res.AvgPendulum = geomean(ch), geomean(pc), geomean(pd)
	res.AvgBoundRatio = geomean(br)
	return res, nil
}

// SameObservations reports whether the perfect-LLC orderings hold: CoHoRT's
// bounds stay tighter than PCC's and the slowdown ordering
// CoHoRT ≤ PCC ≤ PENDULUM is preserved.
func (r *NonPerfectResult) SameObservations() bool {
	return r.AvgBoundRatio > 1 && r.AvgCoHoRT <= r.AvgPCC && r.AvgPCC <= r.AvgPendulum
}

// Render lays out the footnote-1 comparison.
func (r *NonPerfectResult) Render() *stats.Table {
	t := stats.NewTable("Footnote 1: non-perfect LLC + fixed-latency DRAM (all-cr)",
		"bench", "CoHoRT", "PCC", "PENDULUM", "bound ratio vs PCC", "exp ≤ bound")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%.3fx", row.CoHoRT),
			fmt.Sprintf("%.3fx", row.PCC),
			fmt.Sprintf("%.3fx", row.Pendulum),
			fmt.Sprintf("%.2fx", row.CoHoRTBoundRatio),
			fmt.Sprintf("%v", row.ExpUnderBound))
	}
	t.AddRow("geomean",
		fmt.Sprintf("%.3fx", r.AvgCoHoRT),
		fmt.Sprintf("%.3fx", r.AvgPCC),
		fmt.Sprintf("%.3fx", r.AvgPendulum),
		fmt.Sprintf("%.2fx", r.AvgBoundRatio), "")
	return t
}

// Summary states the footnote-1 verdict.
func (r *NonPerfectResult) Summary() string {
	return fmt.Sprintf("Footnote 1 (non-perfect LLC): same observations = %v — slowdowns %.2fx/%.2fx/%.2fx, CoHoRT bounds %.2fx tighter than PCC",
		r.SameObservations(), r.AvgCoHoRT, r.AvgPCC, r.AvgPendulum, r.AvgBoundRatio)
}
