package experiments

import (
	"reflect"
	"strings"
	"testing"

	"cohort/internal/obs"
)

// TestAttributionDecomposition checks the runner's shape and the exact
// decomposition identity on real simulations: every (benchmark, system,
// core) row's components plus hit cycles equal its total latency (the runner
// hard-errors otherwise), all three systems appear, and only CoHoRT and
// PENDULUM — the systems with timer protection — may stall on timers.
func TestAttributionDecomposition(t *testing.T) {
	o := QuickOptions()
	res, err := Attribution(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := o.profiles()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(profiles) * len(sysNames) * o.NCores; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r.System] = true
		if sum := r.Arbitration + r.TimerStall + r.Transfer + r.DRAM + r.HitCycles; sum != r.Total {
			t.Fatalf("%s/%s core %d: components sum %d != total %d", r.Benchmark, r.System, r.Core, sum, r.Total)
		}
	}
	for _, sys := range sysNames {
		if !seen[sys] {
			t.Fatalf("no rows for %s", sys)
		}
	}
	for _, sys := range sysNames {
		if sh := res.TimerStallShare[sys]; sh < 0 || sh > 1 {
			t.Fatalf("%s timer-stall share %f out of [0,1]", sys, sh)
		}
	}
	// PCC has no timer protection, so its rows must not attribute any
	// latency to timer stalls.
	for _, r := range res.Rows {
		if r.System == "PCC" && r.TimerStall != 0 {
			t.Fatalf("PCC core %d reports %d timer-stall cycles", r.Core, r.TimerStall)
		}
	}

	out := res.Render().String()
	for _, col := range []string{"timer%", "dram%", "CoHoRT", "PENDULUM"} {
		if !strings.Contains(out, col) {
			t.Fatalf("render missing %q:\n%s", col, out)
		}
	}
	if !strings.Contains(res.Summary(), "timer-protection stalls") {
		t.Fatalf("summary missing headline: %s", res.Summary())
	}
}

// TestAttributionDeterministic checks the rows are identical for every
// worker count — attribution rides the memoized deterministic primitives,
// so it inherits their contract.
func TestAttributionDeterministic(t *testing.T) {
	base := QuickOptions()
	base.Benchmarks = []string{"fft"}

	var want []AttributionRow
	for i, jobs := range []int{1, 4} {
		ResetMemo()
		o := base
		o.Jobs = jobs
		res, err := Attribution(o, "1cr-3ncr")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Rows
			continue
		}
		if !reflect.DeepEqual(res.Rows, want) {
			t.Fatalf("rows differ between jobs=1 and jobs=%d", jobs)
		}
	}
}

// TestAttributionManifestRows checks the manifest conversion preserves every
// field and survives Manifest.Validate's identity re-check.
func TestAttributionManifestRows(t *testing.T) {
	o := QuickOptions()
	o.Benchmarks = []string{"fft"}
	res, err := Attribution(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.ManifestRows()
	if len(rows) != len(res.Rows) {
		t.Fatalf("manifest rows = %d, want %d", len(rows), len(res.Rows))
	}
	for i, mr := range rows {
		r := res.Rows[i]
		if mr.System != r.System || mr.TimerStall != r.TimerStall || mr.TotalLatency != r.Total {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, mr, r)
		}
	}
	clk := obs.ManualClock{}
	man := obs.NewManifest("cohort-bench", clk)
	man.ConfigKey = strings.Repeat("ab", 32)
	man.Workers = 1
	man.Metrics = obs.Snapshot{}
	man.Attribution = rows
	man.Finish(clk)
	if err := man.Validate(); err != nil {
		t.Fatalf("manifest with attribution rows failed validation: %v", err)
	}
}
