package experiments

import (
	"testing"
)

// The harness-level batching contract: GAConfig.OracleBatch, like Workers,
// is excluded from every memo key, so a batched run renders identically to a
// scalar run AND addresses the same cache entries.

// TestFig5BatchGridEquivalence renders Fig. 5 across the Jobs × OracleBatch
// grid from a cold memo each time; every cell must render byte-identically
// and perform the same number of memo jobs. The full hit/miss split is
// compared on the serial cells only — with racing cells it is legitimately
// scheduling-dependent (see memo.go).
func TestFig5BatchGridEquivalence(t *testing.T) {
	render := func(jobs, batch int) (string, int64, int64, int64) {
		o := QuickOptions()
		o.Jobs, o.GA.Workers, o.GA.OracleBatch = jobs, jobs, batch
		ResetMemo()
		res, err := Fig5(o, "2cr-2ncr")
		if err != nil {
			t.Fatalf("jobs %d batch %d: %v", jobs, batch, err)
		}
		ms := MemoStats()
		return res.Render().String() + res.Summary(), ms.Jobs, ms.CacheHits, ms.CacheMisses
	}
	refOut, refJobs, refHits, refMisses := render(1, 0)
	for _, jobs := range []int{1, 8} {
		for _, batch := range []int{0, 1, 2, 16, 64} {
			out, j, h, m := render(jobs, batch)
			if out != refOut {
				t.Errorf("jobs %d batch %d: rendered output differs from serial scalar run", jobs, batch)
			}
			if j != refJobs {
				t.Errorf("jobs %d batch %d: memo jobs %d, want %d", jobs, batch, j, refJobs)
			}
			if jobs == 1 && (h != refHits || m != refMisses) {
				t.Errorf("serial batch %d: memo split (%d,%d), want (%d,%d)", batch, h, m, refHits, refMisses)
			}
		}
	}
}

// TestOptimizeMemoKeyBatchIndependent is the sharp form of the key property:
// a batched re-run in a warm process must be served entirely from the memo
// populated by a scalar run. Any OracleBatch leakage into the optimizeTimers
// or runSystem keys would show up as a fresh cache miss.
func TestOptimizeMemoKeyBatchIndependent(t *testing.T) {
	o := QuickOptions()
	o.Jobs, o.GA.Workers = 1, 1
	ResetMemo()
	cold, err := Fig5(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	after := MemoStats()
	o.GA.OracleBatch = 16
	warm, err := Fig5(o, "all-cr")
	if err != nil {
		t.Fatal(err)
	}
	if got := MemoStats(); got.CacheMisses != after.CacheMisses {
		t.Fatalf("batched re-run computed %d fresh cells; OracleBatch leaked into a memo key",
			got.CacheMisses-after.CacheMisses)
	}
	if cold.Render().String() != warm.Render().String() {
		t.Fatal("memo-served batched run rendered differently")
	}
}
