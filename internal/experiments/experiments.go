// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII): the WCML comparisons of Fig. 5, the normalized
// execution times of Fig. 6, the mode-switch experiment of Fig. 7, the
// challenge matrix of Table I and the per-mode timer configurations of
// Table II — plus ablations over the design choices (arbiter, transfer
// policy, timer value). Each runner returns a structured result with a
// renderer; cmd/cohort-bench and the root bench_test.go drive them.
package experiments

import (
	"fmt"
	"math"

	"cohort/internal/obs"
	"cohort/internal/opt"
	"cohort/internal/parallel"
	"cohort/internal/trace"
)

// Options controls workload sizing and optimizer effort. The paper runs
// full SPLASH-2 executions and Matlab GA runs of up to 20 hours; the
// defaults here scale the traces so the whole suite regenerates in tens of
// seconds while preserving the sharing structure (see DESIGN.md §1).
type Options struct {
	// Scale multiplies each profile's paper-calibrated access count.
	Scale float64
	// MaxAccessesPerCore caps Λ_i after scaling (0 = no cap); keeps
	// ocean-sized profiles tractable.
	MaxAccessesPerCore int
	// Seed drives trace generation.
	Seed uint64
	// Benchmarks selects profiles by name (nil = the full suite).
	Benchmarks []string
	// GA tunes the optimization engine.
	GA opt.GAConfig
	// NCores is the platform width (the paper evaluates 4).
	NCores int
	// Jobs caps the worker pool that evaluates independent experiment cells
	// (one benchmark × one system configuration): 1 forces the legacy serial
	// path, anything below 1 selects runtime.NumCPU(). Every runner's result
	// is byte-identical for every value.
	Jobs int
	// Metrics, when non-nil, receives each runner's deterministic summary
	// metrics (figure/cell counters, headline ratios). Published post-hoc in
	// coordinator order — never probed by racing cells — so snapshots are
	// byte-identical for every Jobs value (see observe.go). The GA fields of
	// the same name are stripped before memoized Optimize calls.
	Metrics *obs.Registry
	// Recorder, when non-nil, receives one span per completed figure on the
	// obs.PidExperiments track, timestamped by figure sequence number.
	Recorder *obs.Recorder
}

// jobs resolves the effective cell worker count.
func (o *Options) jobs() int { return parallel.DefaultWorkers(o.Jobs) }

// DefaultOptions returns the settings used by cmd/cohort-bench and the
// benchmarks.
func DefaultOptions() Options {
	ga := opt.DefaultGA(1)
	ga.Pop, ga.Generations = 20, 16
	return Options{
		Scale:              0.05,
		MaxAccessesPerCore: 4000,
		Seed:               42,
		GA:                 ga,
		NCores:             4,
	}
}

// QuickOptions returns a reduced configuration for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.01
	o.MaxAccessesPerCore = 800
	o.GA.Pop, o.GA.Generations = 8, 6
	o.Benchmarks = []string{"fft", "water"}
	return o
}

// profiles resolves the selected benchmark profiles.
func (o *Options) profiles() ([]trace.Profile, error) {
	names := o.Benchmarks
	if len(names) == 0 {
		names = trace.ProfileNames()
	}
	out := make([]trace.Profile, 0, len(names))
	for _, n := range names {
		p, err := trace.ProfileByName(n)
		if err != nil {
			return nil, err
		}
		p = p.Scaled(o.Scale)
		if o.MaxAccessesPerCore > 0 && p.AccessesPerCore > o.MaxAccessesPerCore {
			p.AccessesPerCore = o.MaxAccessesPerCore
		}
		out = append(out, p)
	}
	return out, nil
}

// generate produces the trace for one profile.
func (o *Options) generate(p trace.Profile) *trace.Trace {
	return p.Generate(o.NCores, 64, o.Seed)
}

// profile resolves one named profile with the options' sizing applied.
func (o *Options) profile(name string) (trace.Profile, error) {
	p, err := trace.ProfileByName(name)
	if err != nil {
		return trace.Profile{}, err
	}
	p = p.Scaled(o.Scale)
	if o.MaxAccessesPerCore > 0 && p.AccessesPerCore > o.MaxAccessesPerCore {
		p.AccessesPerCore = o.MaxAccessesPerCore
	}
	return p, nil
}

// Scenario is one criticality configuration of Fig. 5 / Fig. 6.
type Scenario struct {
	// Name labels the sub-figure ("all-cr", "2cr-2ncr", "1cr-3ncr").
	Name string
	// Critical marks the Cr cores.
	Critical []bool
}

// Scenarios returns the paper's three configurations for n cores: all
// critical, half critical, one critical.
func Scenarios(n int) []Scenario {
	all := make([]bool, n)
	half := make([]bool, n)
	one := make([]bool, n)
	for i := 0; i < n; i++ {
		all[i] = true
		half[i] = i < (n+1)/2
		one[i] = i == 0
	}
	return []Scenario{
		{Name: "all-cr", Critical: all},
		{Name: "2cr-2ncr", Critical: half},
		{Name: "1cr-3ncr", Critical: one},
	}
}

// ScenarioByName returns the named scenario.
func ScenarioByName(n int, name string) (Scenario, error) {
	for _, sc := range Scenarios(n) {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("experiments: unknown scenario %q", name)
}

// geomean returns the geometric mean of positive values (0 when empty).
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs)))
}
