package experiments

import (
	"fmt"

	"cohort/internal/config"
	"cohort/internal/obs"
	"cohort/internal/parallel"
	"cohort/internal/stats"
)

// Fig6Row is one benchmark's normalized execution time under each system.
type Fig6Row struct {
	Benchmark string
	// BaselineCycles is the makespan under MSI + FCFS (the normalization
	// baseline).
	BaselineCycles int64
	// Slowdown maps system name → makespan / BaselineCycles.
	CoHoRT, PCC, Pendulum float64
}

// Fig6Result reproduces one sub-figure of Fig. 6: overall execution time
// normalized against standard MSI with a FCFS COTS arbiter. The paper's
// averages are 1.03× (CoHoRT), 1.13× (PCC), 1.50× (PENDULUM) in the all-Cr
// configuration.
type Fig6Result struct {
	Scenario Scenario
	Rows     []Fig6Row
	// AvgCoHoRT/AvgPCC/AvgPendulum are geometric-mean slowdowns.
	AvgCoHoRT, AvgPCC, AvgPendulum float64
}

// Fig6 runs the average-case performance comparison for the named scenario.
func Fig6(o Options, scenarioName string) (*Fig6Result, error) {
	sc, err := ScenarioByName(o.NCores, scenarioName)
	if err != nil {
		return nil, err
	}
	profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Scenario: sc}
	rows, err := parallel.MapErr(o.jobs(), len(profiles), func(pi int) (Fig6Row, error) {
		p := profiles[pi]
		tr := o.generate(p)
		row := Fig6Row{Benchmark: p.Name}

		base, err := runSystem(config.MSIFCFS(o.NCores), tr)
		if err != nil {
			return row, fmt.Errorf("fig6 %s msi: %w", p.Name, err)
		}
		row.BaselineCycles = base.Cycles

		ga, err := optimizeTimers(&o, tr, sc.Critical)
		if err != nil {
			return row, err
		}
		cohortCfg, err := config.CoHoRT(o.NCores, 1, ga.Timers)
		if err != nil {
			return row, err
		}
		cohort, err := runSystem(cohortCfg, tr)
		if err != nil {
			return row, fmt.Errorf("fig6 %s cohort: %w", p.Name, err)
		}
		pcc, err := runSystem(config.PCC(o.NCores), tr)
		if err != nil {
			return row, fmt.Errorf("fig6 %s pcc: %w", p.Name, err)
		}
		pend, err := runSystem(config.PENDULUM(sc.Critical), tr)
		if err != nil {
			return row, fmt.Errorf("fig6 %s pendulum: %w", p.Name, err)
		}
		row.CoHoRT = float64(cohort.Cycles) / float64(base.Cycles)
		row.PCC = float64(pcc.Cycles) / float64(base.Cycles)
		row.Pendulum = float64(pend.Cycles) / float64(base.Cycles)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var ch, pc, pd []float64
	for _, row := range rows {
		ch = append(ch, row.CoHoRT)
		pc = append(pc, row.PCC)
		pd = append(pd, row.Pendulum)
		res.Rows = append(res.Rows, row)
	}
	res.AvgCoHoRT, res.AvgPCC, res.AvgPendulum = geomean(ch), geomean(pc), geomean(pd)
	o.observeFigure("fig6/"+sc.Name, len(rows), func(reg *obs.Registry, lbl obs.Label) {
		reg.FloatGauge("experiments_norm_exec_cohort", lbl).Set(res.AvgCoHoRT)
		reg.FloatGauge("experiments_norm_exec_pcc", lbl).Set(res.AvgPCC)
		reg.FloatGauge("experiments_norm_exec_pendulum", lbl).Set(res.AvgPendulum)
	})
	return res, nil
}

// Render lays the result out like the paper's normalized bars.
func (r *Fig6Result) Render() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Fig. 6 (%s): execution time normalized to MSI+FCFS", r.Scenario.Name),
		"bench", "MSI+FCFS cycles", "CoHoRT", "PCC", "PENDULUM")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, stats.Cycles(row.BaselineCycles),
			fmt.Sprintf("%.3fx", row.CoHoRT),
			fmt.Sprintf("%.3fx", row.PCC),
			fmt.Sprintf("%.3fx", row.Pendulum))
	}
	t.AddRow("geomean", "",
		fmt.Sprintf("%.3fx", r.AvgCoHoRT),
		fmt.Sprintf("%.3fx", r.AvgPCC),
		fmt.Sprintf("%.3fx", r.AvgPendulum))
	return t
}

// Summary states the headline averages.
func (r *Fig6Result) Summary() string {
	return fmt.Sprintf("Fig. 6 (%s): average slowdown vs MSI+FCFS — CoHoRT %.2fx, PCC %.2fx, PENDULUM %.2fx",
		r.Scenario.Name, r.AvgCoHoRT, r.AvgPCC, r.AvgPendulum)
}
