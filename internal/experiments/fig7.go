package experiments

import (
	"fmt"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/core"
	"cohort/internal/obs"
	"cohort/internal/parallel"
	"cohort/internal/stats"
)

// PaperTable2 returns the per-mode timer configurations of Table II: cores
// c0..c3 with criticality levels 4..1; at mode m every core with
// criticality < m is degraded to MSI.
func PaperTable2() [][]config.Timer {
	return [][]config.Timer{
		{300, 20, 20, 20},                                        // mode 1
		{300, 20, 20, config.TimerMSI},                           // mode 2
		{300, 10, config.TimerMSI, config.TimerMSI},              // mode 3
		{500, config.TimerMSI, config.TimerMSI, config.TimerMSI}, // mode 4
	}
}

// Fig7Stage is one stage of the mode-switch experiment: c0's requirement,
// the bound the system would have without switching (stuck at mode 1), and
// the mode the adaptive system selects with its resulting bound.
type Fig7Stage struct {
	Stage int
	// Gamma is c0's WCML requirement at this stage.
	Gamma int64
	// BoundNoSwitch is c0's bound while the system stays at mode 1.
	BoundNoSwitch int64
	// Mode is the operating mode the switching system selects.
	Mode int
	// BoundWithSwitch is c0's bound at that mode.
	BoundWithSwitch int64
}

// MeetsNoSwitch reports whether the non-adaptive system is schedulable.
func (s Fig7Stage) MeetsNoSwitch() bool { return s.BoundNoSwitch <= s.Gamma }

// MeetsWithSwitch reports whether the adaptive system is schedulable.
func (s Fig7Stage) MeetsWithSwitch() bool { return s.BoundWithSwitch <= s.Gamma }

// Fig7Result reproduces the mode-switch experiment (Fig. 7 + Table II): c0's
// requirement tightens over three stages; without mode switching the mode-1
// bound violates the later requirements, while the adaptive system degrades
// lower-criticality cores to MSI (without suspending them) until c0's bound
// fits.
type Fig7Result struct {
	Benchmark string
	// Timers holds the per-mode timer vectors (Table II).
	Timers [][]config.Timer
	// BoundPerMode is c0's analytical WCML bound at each mode.
	BoundPerMode []int64
	// EffectiveFactors are the achieved requirement reductions at stages 2
	// and 3 after clamping to the deepest mode's bound.
	EffectiveFactors []float64
	Stages           []Fig7Stage
	// Sim reports the adaptive run: the system executes the trace with the
	// stage switches applied at run time; every core completes (none is
	// suspended).
	SimCompleted    bool
	SimModeSwitches int64
	SimFinalMode    int
}

// Fig7 runs the mode-switch experiment. stage2Factor and stage3Factor are
// the requirement reductions at stages 2 and 3 (the paper uses ≈1.5× and
// ≈1.8×).
func Fig7(o Options, benchmark string, stage2Factor, stage3Factor float64) (*Fig7Result, error) {
	if stage2Factor <= 1 || stage3Factor <= 1 {
		return nil, fmt.Errorf("experiments: stage factors must exceed 1, got %.2f/%.2f", stage2Factor, stage3Factor)
	}
	p, err := o.profile(benchmark)
	if err != nil {
		return nil, err
	}
	tr := o.generate(p)

	res := &Fig7Result{Benchmark: p.Name, Timers: PaperTable2()}
	levels := len(res.Timers)

	// c0's analytical bound at each mode (Eq. 1 + Eq. 2 with that mode's Θ);
	// the per-mode analyses are independent, so they fan out as cells.
	lat := config.PaperDefaults(o.NCores, levels).Lat
	l1 := config.PaperDefaults(o.NCores, levels).L1
	res.BoundPerMode = parallel.Map(o.jobs(), levels, func(m int) int64 {
		timers := res.Timers[m]
		wcl := analysis.WCLCoHoRT(lat, timers, 0)
		mh, mm := analysis.IsolationHits(tr.Streams[0], l1, lat, timers[0])
		return analysis.WCML(mh, mm, lat.Hit, wcl)
	})

	// Stage requirements: stage 1 is satisfiable at mode 1 with a little
	// slack, then tightens by the given factors. Each later requirement is
	// clamped to stay above c0's bound at the deepest mode — the paper's
	// factors (≈1.5×, ≈1.8×) were calibrated to its own bounds; the clamp
	// reproduces the narrative (tightening requirements that only mode
	// switching can satisfy) under our calibration. The effective factors
	// are reported in the result.
	floor := res.BoundPerMode[levels-1] + res.BoundPerMode[levels-1]/50
	g1 := res.BoundPerMode[0] + res.BoundPerMode[0]/50 // 2% slack
	g2 := int64(float64(g1) / stage2Factor)
	if g2 < floor {
		g2 = floor
	}
	g3 := int64(float64(g2) / stage3Factor)
	if g3 < floor {
		g3 = floor
	}
	gammas := []int64{g1, g2, g3}
	res.EffectiveFactors = []float64{
		float64(g1) / float64(g2),
		float64(g2) / float64(g3),
	}

	mode := 1
	for s, g := range gammas {
		st := Fig7Stage{Stage: s + 1, Gamma: g, BoundNoSwitch: res.BoundPerMode[0]}
		// Adaptive: degrade (increase mode) until the bound fits or the
		// highest mode is reached.
		for mode < levels && res.BoundPerMode[mode-1] > g {
			mode++
		}
		st.Mode = mode
		st.BoundWithSwitch = res.BoundPerMode[mode-1]
		res.Stages = append(res.Stages, st)
	}

	// Run the adaptive system: build the full LUT platform and apply the
	// stage switches at one-third and two-thirds of the baseline makespan.
	cfg := config.PaperDefaults(o.NCores, levels)
	for i := 0; i < o.NCores; i++ {
		cfg.Cores[i].Criticality = o.NCores - i // c0 highest, c3 lowest
		lut := make([]config.Timer, levels)
		for m := 0; m < levels; m++ {
			lut[m] = res.Timers[m][i]
		}
		cfg.Cores[i].TimerLUT = lut
	}
	baseline, err := runSystem(cfg.Clone(), tr)
	if err != nil {
		return nil, fmt.Errorf("fig7 baseline: %w", err)
	}
	sys, err := core.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	if res.Stages[1].Mode > 1 {
		if err := sys.ScheduleModeSwitch(baseline.Cycles/3, res.Stages[1].Mode); err != nil {
			return nil, err
		}
	}
	if res.Stages[2].Mode > res.Stages[1].Mode {
		if err := sys.ScheduleModeSwitch(2*baseline.Cycles/3, res.Stages[2].Mode); err != nil {
			return nil, err
		}
	}
	run, err := sys.Run()
	if err != nil {
		return nil, fmt.Errorf("fig7 adaptive run: %w", err)
	}
	res.SimCompleted = true
	for i := range run.Cores {
		if run.Cores[i].Accesses != int64(tr.Lambda(i)) {
			res.SimCompleted = false
		}
	}
	res.SimModeSwitches = run.ModeSwitches
	res.SimFinalMode = sys.Mode()
	o.observeFigure("fig7/"+benchmark, levels, func(reg *obs.Registry, lbl obs.Label) {
		reg.Gauge("experiments_mode_switches", lbl).Set(int64(res.SimModeSwitches))
		reg.Gauge("experiments_final_mode", lbl).Set(int64(res.SimFinalMode))
	})
	return res, nil
}

// Render lays out the stage table of Fig. 7a plus Table II.
func (r *Fig7Result) Render() []*stats.Table {
	t2 := stats.NewTable("Table II: timer configurations per mode",
		"m", "θ0", "θ1", "θ2", "θ3")
	for m, timers := range r.Timers {
		row := []string{fmt.Sprintf("%d", m+1)}
		for _, th := range timers {
			row = append(row, th.String())
		}
		t2.AddRow(row...)
	}
	t7 := stats.NewTable(
		fmt.Sprintf("Fig. 7 (%s): c0 requirement vs WCML bound, with and without mode switching", r.Benchmark),
		"stage", "Γ_c0", "bound (no switch)", "ok?", "mode (switch)", "bound (switch)", "ok?")
	for _, st := range r.Stages {
		t7.AddRow(
			fmt.Sprintf("%d", st.Stage),
			stats.Cycles(st.Gamma),
			stats.Cycles(st.BoundNoSwitch), okStr(st.MeetsNoSwitch()),
			fmt.Sprintf("%d", st.Mode),
			stats.Cycles(st.BoundWithSwitch), okStr(st.MeetsWithSwitch()))
	}
	return []*stats.Table{t2, t7}
}

func okStr(ok bool) string {
	if ok {
		return "yes"
	}
	return "VIOLATED"
}

// Summary states the qualitative outcome.
func (r *Fig7Result) Summary() string {
	noSwitchFails := 0
	withSwitchFails := 0
	for _, st := range r.Stages {
		if !st.MeetsNoSwitch() {
			noSwitchFails++
		}
		if !st.MeetsWithSwitch() {
			withSwitchFails++
		}
	}
	return fmt.Sprintf(
		"Fig. 7 (%s): without switching %d/%d stages violate Γ; with switching %d/%d violate (final mode %d, %d run-time switches, all cores completed: %v)",
		r.Benchmark, noSwitchFails, len(r.Stages), withSwitchFails, len(r.Stages),
		r.SimFinalMode, r.SimModeSwitches, r.SimCompleted)
}
