package experiments

import (
	"sync/atomic"

	"cohort/internal/obs"
)

// Live progress. The expensive primitives (runSystem, optimizeTimers) sit
// behind process-wide memos, so the natural chokepoints for progress
// accounting are the memo probes: a hit bumps the handle's memo-hit
// counter, a miss bumps the miss counter and threads the handle into the
// fresh simulation (core.System.SetProgress) or optimization
// (opt.GAConfig.Progress). Unlike Options.Metrics — which is published
// post-hoc so snapshots stay byte-identical for every Jobs value — the
// progress handle is explicitly live and scheduling-dependent: it feeds
// only the RunTracker's pull-sampled endpoints and never any canonical
// output.
//
// The handle is held in a package-level atomic alongside the memos it
// instruments (runSystem has no Options parameter to thread it through).
// RunHandle methods are atomic and nil-safe, so racing cells may bump a
// handle — or no handle — without coordination.
var progressHandle atomic.Pointer[obs.RunHandle]

// AttachProgress installs the live-progress handle the experiment
// primitives report into; nil detaches. Returns the previous handle so
// tests can restore it.
func AttachProgress(h *obs.RunHandle) *obs.RunHandle {
	return progressHandle.Swap(h)
}

// progress returns the currently attached handle (nil when detached; all
// RunHandle methods are no-ops on nil).
func progress() *obs.RunHandle {
	return progressHandle.Load()
}
