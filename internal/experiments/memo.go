package experiments

import (
	"encoding/json"
	"fmt"
	"sync"

	"cohort/internal/config"
	"cohort/internal/core"
	"cohort/internal/opt"
	"cohort/internal/parallel"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

// The experiment suite re-runs the same cells across runners — Fig. 5 and
// Fig. 6 both simulate PCC on the same traces, every ablation re-simulates
// its baselines, and the GA re-optimizes the same (trace, criticality)
// problems — so the two expensive primitives, runSystem and optimizeTimers,
// are memoized process-wide behind content-addressed keys. Both are pure:
// the same configuration and trace content always produce the same result,
// so serving a cached pointer is observationally identical to recomputing
// (callers treat the results as read-only).
//
// The memo is probed by concurrently running cells, so while its totals are
// exact, the hit/miss split can differ run to run when two cells race to
// compute the same key. Rendered experiment output therefore never includes
// these counters; they are reported out-of-band via MemoStats.
var (
	runMemo = parallel.NewCache[*stats.Run]()
	optMemo = parallel.NewCache[*opt.Result]()

	fpMu    sync.Mutex
	fpCache = map[*trace.Trace]string{}
)

// ResetMemo drops every memoized result. The serial-equivalence tests call
// it between runs so each compares from a cold cache.
func ResetMemo() {
	runMemo.Reset()
	optMemo.Reset()
	fpMu.Lock()
	fpCache = map[*trace.Trace]string{}
	fpMu.Unlock()
}

// MemoStats reports the combined memo counters (simulations + optimizations).
func MemoStats() stats.EngineStats {
	r, o := runMemo.Stats(), optMemo.Stats()
	return stats.EngineStats{
		Jobs:        r.Jobs + o.Jobs,
		CacheHits:   r.CacheHits + o.CacheHits,
		CacheMisses: r.CacheMisses + o.CacheMisses,
	}
}

// traceFingerprint content-addresses a trace by digesting every access of
// every stream. The digest is cached per *Trace (traces are immutable after
// generation), so each trace is hashed once per process.
func traceFingerprint(tr *trace.Trace) string {
	fpMu.Lock()
	fp, ok := fpCache[tr]
	fpMu.Unlock()
	if ok {
		return fp
	}
	k := parallel.NewKey("experiments/trace")
	k.Str(tr.Name)
	k.Int(len(tr.Streams))
	for _, s := range tr.Streams {
		k.Int(len(s))
		for _, a := range s {
			k.Uint64(a.Addr)
			k.Int64(int64(a.Kind))
			k.Int64(a.Gap)
		}
	}
	fp = k.Sum()
	fpMu.Lock()
	fpCache[tr] = fp
	fpMu.Unlock()
	return fp
}

// optimizeTimers runs the GA for a scenario: critical cores get optimized
// timers, non-critical cores run MSI. Results are memoized on the trace
// content, the platform width and every result-affecting GA parameter —
// Workers and the exact oracle tiers (OracleBatch, OracleCurve) return
// byte-identical Results, so the cache key must not distinguish them.
func optimizeTimers(o *Options, tr *trace.Trace, critical []bool) (*opt.Result, error) {
	k := parallel.NewKey("experiments/opt")
	k.Str(traceFingerprint(tr))
	k.Int(o.NCores)
	k.Int(len(critical))
	for _, c := range critical {
		k.Bool(c)
	}
	g := o.GA
	k.Int(g.Pop).Int(g.Generations).Int(g.Elite).Int(g.TournamentK)
	k.Float64(g.CrossoverProb).Float64(g.MutationProb).Uint64(g.Seed)
	// Workers, OracleBatch and OracleCurve are result-neutral and stay out of
	// the key. The tier-2 surrogate is not — it changes which children are
	// evaluated exactly and can move the optimum — so it joins the key, but
	// only when enabled: every surrogate-off key (and the fingerprints built
	// on them) stays byte-stable.
	if g.Surrogate {
		k.Bool(true).Float64(g.SurrogateMargin)
	}
	key := k.Sum()
	if r, ok := optMemo.Get(key); ok {
		progress().AddMemoHits(1)
		return r, nil
	}
	progress().AddMemoMisses(1)

	cfg := config.PaperDefaults(o.NCores, 1)
	prob := &opt.Problem{
		Lat:     cfg.Lat,
		L1:      cfg.L1,
		Streams: tr.Streams,
		Timed:   critical,
	}
	// Strip the deterministic observability hooks before the memoized call:
	// a cache hit skips Optimize entirely, so anything it published would
	// depend on memo state and racing cells. The harness publishes post-hoc
	// instead. The live-progress handle is attached, not stripped — it feeds
	// only the pull-sampled RunTracker, which is scheduling-dependent by
	// contract.
	ga := o.GA
	ga.Metrics, ga.Recorder = nil, nil
	ga.Progress = progress()
	r, err := opt.Optimize(prob, ga)
	if err != nil {
		return nil, err
	}
	optMemo.Put(key, r)
	return r, nil
}

// runSystem simulates one configuration and returns the measurements.
// Results are memoized on the configuration's JSON form plus the trace
// content; the returned *stats.Run is shared and must be treated as
// read-only.
func runSystem(cfg *config.System, tr *trace.Trace) (*stats.Run, error) {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: fingerprinting config: %w", err)
	}
	key := parallel.NewKey("experiments/run").Bytes(cfgJSON).Str(traceFingerprint(tr)).Sum()
	if run, ok := runMemo.Get(key); ok {
		progress().AddMemoHits(1)
		return run, nil
	}
	progress().AddMemoMisses(1)

	sys, err := core.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	// Thread the live-progress handle into the fresh simulation so the
	// tracker sees events/cycles advance while the run is in flight.
	if err := sys.SetProgress(progress()); err != nil {
		return nil, err
	}
	run, err := sys.Run()
	if err != nil {
		return nil, err
	}
	if err := sys.CheckCoherence(); err != nil {
		return nil, fmt.Errorf("experiments: coherence violated: %w", err)
	}
	runMemo.Put(key, run)
	return run, nil
}
