// Package obs is the unified observability layer: a deterministic metrics
// registry the simulator components publish into, a span/event recorder that
// exports Chrome trace-event JSON (loadable in Perfetto or chrome://tracing),
// and run manifests that make every CLI invocation a comparable, diffable
// artifact (consumed by cmd/cohort-report).
//
// Determinism rules (DESIGN.md §10):
//
//   - Every metric value and every recorded event is derived from simulated
//     cycles or logical step counts, never from the wall clock, goroutine
//     identity, or map iteration order. Metric snapshots and exported traces
//     are byte-identical for every worker count.
//   - Wall-clock time exists only in run manifests (start time, wall
//     seconds) and enters exclusively through the injected Clock, keeping
//     the rest of the repository clean under cohort-vet's walltime analyzer.
//   - Observability is pay-as-you-go: components count into plain value
//     counters whether or not a Registry is attached (an integer add, no
//     allocation), and the simulator's event hooks are nil-checked, so an
//     unobserved run allocates exactly what it did before this package
//     existed (guarded by BenchmarkSimulatorThroughput).
package obs

// Trace-event process IDs: each domain gets its own "process" row group in
// the Perfetto UI. Timestamps are simulated cycles for PidSim and logical
// step counts (generation index, figure sequence) for the others.
const (
	// PidSim is the cycle-accurate simulator (timestamps are cycles).
	PidSim = 1
	// PidOpt is the optimization engine (timestamps are generation indices).
	PidOpt = 2
	// PidExperiments is the experiment harness (timestamps are figure
	// sequence numbers).
	PidExperiments = 3
)
