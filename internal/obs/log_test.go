package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestLoggerTextByteIdentical pins the compatibility contract: text mode
// emits exactly fmt.Sprintf(format, args...) plus a newline, byte for byte
// what the pre-logger fmt.Fprintf call sites produced.
func TestLoggerTextByteIdentical(t *testing.T) {
	cases := []struct {
		format string
		args   []any
	}{
		{"wrote manifest to %s", []any{"out/manifest.json"}},
		{"gen %3d/%d  best WCML %d", []any{7, 40, 1234}},
		{"%6.2f%% done", []any{99.5}},
		{"plain message, no args", nil},
	}
	var b strings.Builder
	log := NewLogger(&b, LevelInfo, false, "cohort-bench", nil)
	var want strings.Builder
	for _, c := range cases {
		log.Infof(c.format, c.args...)
		fmt.Fprintf(&want, c.format+"\n", c.args...)
	}
	if b.String() != want.String() {
		t.Errorf("text mode diverged from fmt.Fprintf:\n--- got ---\n%s--- want ---\n%s", b.String(), want.String())
	}
}

func TestLoggerJSON(t *testing.T) {
	clk := ManualClock{T: time.Date(2026, 8, 8, 15, 4, 5, 0, time.UTC)}
	var b strings.Builder
	log := NewLogger(&b, LevelInfo, true, "cohort-opt", clk)
	log.Infof("gen %d/%d", 3, 40)
	want := `{"ts":"2026-08-08T15:04:05Z","level":"info","tool":"cohort-opt","msg":"gen 3/40"}` + "\n"
	if b.String() != want {
		t.Errorf("JSON record:\n got %q\nwant %q", b.String(), want)
	}

	b.Reset()
	log.WithRun("cohort-opt-1").Warnf("memo cold")
	want = `{"ts":"2026-08-08T15:04:05Z","level":"warn","tool":"cohort-opt","run":"cohort-opt-1","msg":"memo cold"}` + "\n"
	if b.String() != want {
		t.Errorf("JSON record with run id:\n got %q\nwant %q", b.String(), want)
	}
}

func TestLoggerLevels(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, LevelWarn, false, "t", nil)
	log.Debugf("hidden")
	log.Infof("hidden")
	log.Warnf("visible warn")
	log.Errorf("visible error")
	if got, want := b.String(), "visible warn\nvisible error\n"; got != want {
		t.Errorf("level gating: got %q, want %q", got, want)
	}

	b.Reset()
	off := NewLogger(&b, LevelOff, false, "t", nil)
	off.Errorf("never")
	if b.Len() != 0 {
		t.Errorf("LevelOff emitted %q", b.String())
	}
}

func TestLoggerNil(t *testing.T) {
	var log *Logger
	log.Debugf("no panic %d", 1)
	log.Infof("no panic")
	log.Warnf("no panic")
	log.Errorf("no panic")
	if log.WithRun("id") != nil {
		t.Errorf("nil WithRun returned non-nil")
	}
	if log.Level() != LevelOff {
		t.Errorf("nil Level() = %v, want off", log.Level())
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]LogLevel{
		"debug":   LevelDebug,
		"info":    LevelInfo,
		"":        LevelInfo,
		"Warn":    LevelWarn,
		"WARNING": LevelWarn,
		"error":   LevelError,
		"off":     LevelOff,
		"none":    LevelOff,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Errorf("ParseLogLevel(verbose) accepted")
	}
	if LevelDebug.String() != "debug" || LevelOff.String() != "off" {
		t.Errorf("String(): %q %q", LevelDebug, LevelOff)
	}
}
