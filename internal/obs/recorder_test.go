package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Complete(PidSim, 0, "span", "bus", 10, 5, nil)
	r.Instant(PidSim, 0, "inst", "mode", 3, nil)
	r.Count(PidSim, 0, "ctr", 1, 2)
	r.NameProcess(PidSim, "sim")
	r.NameThread(PidSim, 0, "core0")
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained events")
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents": []`)) {
		t.Fatalf("nil recorder trace:\n%s", buf.String())
	}
}

func TestRecorderOrderIndependent(t *testing.T) {
	// The exported stream must not depend on arrival order: record the same
	// events forwards and backwards and compare the bytes.
	evs := []func(r *Recorder){
		func(r *Recorder) { r.NameProcess(PidSim, "simulator") },
		func(r *Recorder) { r.NameThread(PidSim, 1, "core1") },
		func(r *Recorder) { r.Complete(PidSim, 1, "miss", "l1", 100, 40, nil) },
		func(r *Recorder) { r.Complete(PidSim, 0, "bus", "bus", 100, 10, nil) },
		func(r *Recorder) { r.Instant(PidSim, 1, "invalidate", "coh", 100, nil) },
		func(r *Recorder) { r.Count(PidSim, 0, "mode", 140, 1) },
	}
	fwd, bwd := NewRecorder(), NewRecorder()
	for i := range evs {
		evs[i](fwd)
		evs[len(evs)-1-i](bwd)
	}
	var a, b bytes.Buffer
	if err := fwd.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := bwd.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export depends on arrival order:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Metadata (ts 0) leads; within ts 100 the lower tid sorts first.
	out := fwd.Events()
	if out[0].Ph != "M" || out[1].Ph != "M" {
		t.Fatalf("metadata not first: %+v", out[:2])
	}
}

func TestRecorderConcurrentAdds(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Complete(PidExperiments, w, "cell", "fig", int64(i), 1, nil)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("lost events: %d", r.Len())
	}
}

// TestChromeTraceGolden locks the Chrome trace-event JSON schema: field
// names, phase types, metadata records, counter args, and document shape.
// Refresh with: go test ./internal/obs -run ChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	r := NewRecorder()
	r.NameProcess(PidSim, "cohort simulator")
	r.NameThread(PidSim, 0, "bus")
	r.NameThread(PidSim, 1, "core 0")
	r.NameProcess(PidOpt, "cohort optimizer")
	r.NameThread(PidOpt, 0, "ga")
	r.Complete(PidSim, 0, "broadcast", "bus", 100, 40, map[string]string{"core": "0", "line": "0x40"})
	r.Complete(PidSim, 1, "miss", "l1", 100, 160, map[string]string{"line": "0x40"})
	r.Complete(PidSim, 1, "timer window", "coherence", 140, 300, map[string]string{"theta": "300"})
	r.Instant(PidSim, 1, "invalidate", "coherence", 440, map[string]string{"line": "0x40"})
	r.Instant(PidSim, 0, "mode switch", "mode", 500, map[string]string{"to": "HI"})
	r.Count(PidSim, 0, "mode", 500, 1)
	r.Complete(PidOpt, 0, "generation 0", "ga", 0, 1, map[string]string{"best": "123"})
	r.Count(PidSim, 1, "cum latency", 512, 4096)

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden:\n got:\n%s\nwant:\n%s", buf.String(), want)
	}

	// Structural checks so the golden cannot silently encode a broken schema.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != r.Len() {
		t.Fatalf("traceEvents has %d entries, recorded %d", len(doc.TraceEvents), r.Len())
	}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("instant event missing thread scope: %v", ev)
			}
		case "C", "M":
			if _, ok := ev["args"]; !ok {
				t.Fatalf("%s event missing args: %v", ph, ev)
			}
		default:
			t.Fatalf("unexpected phase %q: %v", ph, ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
	}
}
