package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cohort/internal/stats"
)

// Metric kinds as they appear in snapshots and manifests.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindFloat     = "float"
	KindHistogram = "histogram"
)

// entry is one registered metric: either an owned handle created by the
// registry or a component-owned value read through a closure at snapshot
// time.
type entry struct {
	name    string
	labels  []Label
	kind    string
	intFn   func() int64
	floatFn func() float64
	hist    *stats.Histogram
	// owner is the registry- or component-owned handle behind intFn/floatFn,
	// when there is one; it lets the get-or-create constructors hand back the
	// same handle on repeated calls.
	owner any
}

func (e *entry) ownedCounter() (*Counter, bool) {
	c, ok := e.owner.(*Counter)
	return c, ok
}

func (e *entry) ownedGauge() (*Gauge, bool) {
	g, ok := e.owner.(*Gauge)
	return g, ok
}

// Registry is a deterministic metrics registry. Components either ask it
// for owned handles (Counter/Gauge/FloatGauge/Histogram) or register
// closures over counters they already maintain (RegisterFunc,
// RegisterCounter, RegisterHistogram) so that attaching observability never
// changes the hot path. Snapshot renders every metric in a canonical order
// (name, then labels), making snapshots byte-comparable across runs and
// worker counts.
//
// A nil *Registry is valid: handle constructors return detached metrics and
// Register* calls are no-ops, so callers never need nil checks.
//
// Snapshots and the Prometheus exporter read metric values under a separate
// publication lock (valMu) that publishers take via Sync, so a live scrape
// (the debug server's /metrics) and a coordinator publishing post-hoc
// values never race. Code that only ever snapshots after the run — the
// pre-existing manifest path — needs no Sync.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	// valMu serializes value reads (Snapshot, WriteProm) against value
	// writes published through Sync. Kept apart from mu so Sync callbacks
	// may call the handle constructors and Register* methods freely.
	valMu sync.Mutex
}

// Sync runs fn under the registry's publication lock: a concurrent Snapshot
// or WriteProm observes either none or all of fn's metric writes. fn may
// create and register metrics but must not call Snapshot or WriteProm
// itself. On a nil registry fn runs without locking (there is nothing to
// scrape).
func (r *Registry) Sync(fn func()) {
	if r == nil {
		fn()
		return
	}
	r.valMu.Lock()
	defer r.valMu.Unlock()
	fn()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func metricID(name string, labels []Label) string {
	lk := labelKey(labels)
	if lk == "" {
		return name
	}
	return name + "{" + lk + "}"
}

// put registers e under its (name, labels) identity, replacing any prior
// registration — re-attaching a fresh System to a long-lived registry must
// see the new run's counters, not the dead run's.
func (r *Registry) put(e *entry) {
	r.mu.Lock()
	r.entries[metricID(e.name, e.labels)] = e
	r.mu.Unlock()
}

// lookup returns the existing entry for (name, labels), or nil.
func (r *Registry) lookup(name string, labels []Label) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[metricID(name, labels)]
}

// Counter returns the registry-owned counter for (name, labels), creating
// it on first use. On a nil registry it returns a detached counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	if e := r.lookup(name, labels); e != nil && e.kind == KindCounter {
		if c, ok := e.ownedCounter(); ok {
			return c
		}
	}
	c := &Counter{}
	r.RegisterCounter(name, c, labels...)
	return c
}

// Gauge returns the registry-owned gauge for (name, labels), creating it on
// first use. On a nil registry it returns a detached gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	if e := r.lookup(name, labels); e != nil && e.kind == KindGauge {
		if g, ok := e.ownedGauge(); ok {
			return g
		}
	}
	g := &Gauge{}
	r.put(&entry{name: name, labels: sortedLabels(labels), kind: KindGauge, intFn: g.Value, owner: g})
	return g
}

// FloatGauge returns the registry-owned float gauge for (name, labels),
// creating it on first use. On a nil registry it returns a detached gauge.
func (r *Registry) FloatGauge(name string, labels ...Label) *FloatGauge {
	if r == nil {
		return &FloatGauge{}
	}
	if e := r.lookup(name, labels); e != nil && e.kind == KindFloat {
		if g, ok := e.owner.(*FloatGauge); ok {
			return g
		}
	}
	g := &FloatGauge{}
	r.put(&entry{name: name, labels: sortedLabels(labels), kind: KindFloat, floatFn: g.Value, owner: g})
	return g
}

// Histogram returns the registry-owned histogram for (name, labels),
// creating it on first use. On a nil registry it returns a detached
// histogram.
func (r *Registry) Histogram(name string, labels ...Label) *stats.Histogram {
	if r == nil {
		return &stats.Histogram{}
	}
	if e := r.lookup(name, labels); e != nil && e.kind == KindHistogram {
		return e.hist
	}
	h := &stats.Histogram{}
	r.RegisterHistogram(name, h, labels...)
	return h
}

// RegisterCounter exposes a component-owned counter under (name, labels).
// The component keeps counting into its own field; the registry reads the
// value at snapshot time. No-op on a nil registry.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	if r == nil || c == nil {
		return
	}
	r.put(&entry{name: name, labels: sortedLabels(labels), kind: KindCounter, intFn: c.Value, owner: c})
}

// RegisterFunc exposes a derived integer gauge computed by fn at snapshot
// time. fn must be deterministic and safe to call after the observed run
// completes. No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() int64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.put(&entry{name: name, labels: sortedLabels(labels), kind: KindGauge, intFn: fn})
}

// RegisterCounterFunc exposes a derived counter computed by fn at snapshot
// time (for components whose counts live in plain int64 fields). No-op on a
// nil registry.
func (r *Registry) RegisterCounterFunc(name string, fn func() int64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.put(&entry{name: name, labels: sortedLabels(labels), kind: KindCounter, intFn: fn})
}

// RegisterFloatFunc exposes a derived float gauge computed by fn at
// snapshot time. No-op on a nil registry.
func (r *Registry) RegisterFloatFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.put(&entry{name: name, labels: sortedLabels(labels), kind: KindFloat, floatFn: fn})
}

// RegisterHistogram exposes a component-owned histogram under (name,
// labels). No-op on a nil registry.
func (r *Registry) RegisterHistogram(name string, h *stats.Histogram, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	r.put(&entry{name: name, labels: sortedLabels(labels), kind: KindHistogram, hist: h})
}

// Metric is one snapshotted metric value.
type Metric struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  int64   `json:"value"`
	Float  float64 `json:"float,omitempty"`
	// Histogram payload (kind == "histogram" only).
	Max          int64   `json:"max,omitempty"`
	P50          int64   `json:"p50,omitempty"`
	P99          int64   `json:"p99,omitempty"`
	BucketUppers []int64 `json:"bucket_uppers,omitempty"`
	BucketCounts []int64 `json:"bucket_counts,omitempty"`
}

// Snapshot is the full registry state in canonical (name, labels) order.
type Snapshot []Metric

// Snapshot reads every registered metric. The result is sorted by metric
// identity so identical runs produce byte-identical snapshots regardless of
// registration or map order. Safe to call on a nil registry (returns nil).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]*entry, 0, len(ids))
	for _, id := range ids {
		entries = append(entries, r.entries[id])
	}
	r.mu.Unlock()

	r.valMu.Lock()
	defer r.valMu.Unlock()
	snap := make(Snapshot, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindFloat:
			m.Float = e.floatFn()
		case KindHistogram:
			m.Value = e.hist.Total()
			m.Max = e.hist.Max()
			m.P50 = e.hist.Percentile(0.5)
			m.P99 = e.hist.Percentile(0.99)
			m.BucketUppers, m.BucketCounts = e.hist.Buckets()
		default:
			m.Value = e.intFn()
		}
		snap = append(snap, m)
	}
	return snap
}

// Get returns the snapshotted metric with the given name and labels, and
// whether it exists.
func (s Snapshot) Get(name string, labels ...Label) (Metric, bool) {
	want := metricID(name, labels)
	for _, m := range s {
		if metricID(m.Name, m.Labels) == want {
			return m, true
		}
	}
	return Metric{}, false
}

// JSON renders the snapshot as deterministic, indented JSON.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only plain values; marshal cannot fail.
		panic("obs: snapshot marshal: " + err.Error())
	}
	return b
}

// String renders the snapshot as an aligned text table.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, m := range s {
		id := m.Name
		if len(m.Labels) > 0 {
			id = metricID(m.Name, m.Labels)
		}
		switch m.Kind {
		case KindFloat:
			fmt.Fprintf(&b, "%-52s %14.6g\n", id, m.Float)
		case KindHistogram:
			fmt.Fprintf(&b, "%-52s %14d samples, p50 ≤ %d, p99 ≤ %d, max %d\n",
				id, m.Value, m.P50, m.P99, m.Max)
		default:
			fmt.Fprintf(&b, "%-52s %14d\n", id, m.Value)
		}
	}
	return b.String()
}
