package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one Chrome trace-event. The exported JSON follows the trace
// event format understood by Perfetto and chrome://tracing:
//
//	{"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ..., ...}]}
//
// Timestamps are in "microseconds", which this repository maps 1:1 to
// simulated cycles (PidSim) or logical step indices (PidOpt,
// PidExperiments) — never wall-clock time, so traces are deterministic.
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// phRank orders phase types within one timestamp so sorting is total.
func phRank(ph string) int {
	switch ph {
	case "M":
		return 0
	case "X":
		return 1
	case "C":
		return 2
	case "i":
		return 3
	default:
		return 4
	}
}

// Recorder collects trace events. It is safe for concurrent use; the
// exported event stream is sorted into a total deterministic order, so the
// bytes written by WriteChrome do not depend on arrival order or worker
// count as long as the events themselves are deterministic.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) add(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev) //cohort:allow hotalloc: span buffer of an opt-in recorder; growth is amortized
	r.mu.Unlock()
}

// Complete records a duration span [ts, ts+dur) on the (pid, tid) track.
// Safe on a nil recorder.
func (r *Recorder) Complete(pid, tid int, name, cat string, ts, dur int64, args map[string]string) {
	r.add(Event{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant records a point event at ts on the (pid, tid) track. Safe on a
// nil recorder.
func (r *Recorder) Instant(pid, tid int, name, cat string, ts int64, args map[string]string) {
	r.add(Event{Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t", Args: args})
}

// Count records a counter sample at ts; Perfetto renders counter tracks as
// step charts. Safe on a nil recorder.
func (r *Recorder) Count(pid, tid int, name string, ts, value int64) {
	r.add(Event{Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: tid,
		Args: map[string]string{"value": fmt.Sprintf("%d", value)}})
}

// NameProcess attaches a human-readable name to a pid row group.
// Safe on a nil recorder.
func (r *Recorder) NameProcess(pid int, name string) {
	r.add(Event{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]string{"name": name}})
}

// NameThread attaches a human-readable name to a (pid, tid) track.
// Safe on a nil recorder.
func (r *Recorder) NameThread(pid, tid int, name string) {
	r.add(Event{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]string{"name": name}})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events in canonical order:
// (Ts, Pid, Tid, phase rank, Name, Dur, Cat). Metadata events (Ph "M") have
// Ts 0 and therefore lead the stream.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	evs := make([]Event, len(r.events))
	copy(evs, r.events)
	r.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if phRank(a.Ph) != phRank(b.Ph) {
			return phRank(a.Ph) < phRank(b.Ph)
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Cat < b.Cat
	})
	return evs
}

// chromeTrace is the top-level Chrome trace-event JSON document.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChrome writes the trace as Chrome trace-event JSON, loadable at
// https://ui.perfetto.dev (or chrome://tracing). The output is
// deterministic: events are emitted in canonical order and map-valued args
// are marshaled with sorted keys by encoding/json.
func (r *Recorder) WriteChrome(w io.Writer) error {
	doc := chromeTrace{TraceEvents: r.Events(), DisplayTimeUnit: "ns"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
