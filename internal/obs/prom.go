package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the registry. The
// exporter renders the same deterministic (name, labels) order as Snapshot,
// grouped into metric families so every series of a family sits under one
// # TYPE header. Metric and label names are sanitized into the Prometheus
// grammar; label values are escaped per the exposition rules.

// PromContentType is the Content-Type of the /metrics payload.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a metric name into [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid
// runes become '_'; an empty or digit-leading name gains a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabelName sanitizes a label name into [a-zA-Z_][a-zA-Z0-9_]* (':' is
// not legal in label names, unlike metric names).
func promLabelName(name string) string {
	s := promName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// promLabelValue escapes a label value per the exposition format: backslash,
// double quote and newline. It iterates bytes, not runes — the escaped
// characters are all single-byte ASCII, and byte iteration passes invalid
// UTF-8 through unchanged instead of mangling it into U+FFFD.
func promLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promLabels renders a label set as {k="v",...}, with an extra le pair
// appended for histogram buckets (le == "" omits it). Returns "" for an
// empty set.
func promLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(promLabelValue(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(promLabelValue(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promType maps a registry kind to the exposition TYPE keyword.
func promType(kind string) string {
	switch kind {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge" // gauges and float gauges
	}
}

// WriteProm renders every registered metric in the Prometheus text format.
// Values are read under the registry's publication lock (Sync), so a live
// scrape observes a consistent view even while a coordinator publishes.
// Safe on a nil registry (writes nothing).
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := make([]string, 0, len(r.entries))
	//cohort:allow maprange: collect-then-sort; the family sort below restores a canonical order
	for id := range r.entries {
		ids = append(ids, id)
	}
	entries := make([]*entry, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		entries = append(entries, r.entries[id])
	}
	r.mu.Unlock()

	// Group into families (by sanitized name) so all series of one family
	// sit under a single # TYPE line, as the format requires. Families are
	// emitted in sorted-name order; series keep their canonical id order
	// within a family.
	type family struct {
		name    string
		kind    string
		entries []*entry
	}
	byName := make(map[string]*family, len(entries))
	var names []string
	for _, e := range entries {
		fn := promName(e.name)
		f, ok := byName[fn]
		if !ok {
			f = &family{name: fn, kind: e.kind}
			byName[fn] = f
			names = append(names, fn)
		}
		f.entries = append(f.entries, e)
	}
	sort.Strings(names)

	var b strings.Builder
	r.valMu.Lock()
	defer r.valMu.Unlock()
	for _, fn := range names {
		f := byName[fn]
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, promType(f.kind))
		for _, e := range f.entries {
			switch e.kind {
			case KindFloat:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, promLabels(e.labels, ""),
					strconv.FormatFloat(e.floatFn(), 'g', -1, 64))
			case KindHistogram:
				uppers, counts := e.hist.Buckets()
				var cum int64
				for i := range uppers {
					cum += counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						promLabels(e.labels, strconv.FormatInt(uppers[i], 10)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabels(e.labels, "+Inf"), e.hist.Total())
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name, promLabels(e.labels, ""), e.hist.Sum())
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, promLabels(e.labels, ""), e.hist.Total())
			default:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(e.labels, ""), e.intFn())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePromRuns renders a tracker sample as Prometheus series — the live
// progress counters the debug server merges into /metrics, labeled by run
// id and tool. Nil-safe on an empty sample (writes nothing).
func WritePromRuns(w io.Writer, sample []RunStatus) error {
	if len(sample) == 0 {
		return nil
	}
	var b strings.Builder
	type col struct {
		name string
		kind string
		val  func(*RunStatus) string
	}
	cols := []col{
		{"cohort_run_events_total", "counter", func(s *RunStatus) string { return strconv.FormatInt(s.Events, 10) }},
		{"cohort_run_cycles_total", "counter", func(s *RunStatus) string { return strconv.FormatInt(s.Cycles, 10) }},
		{"cohort_run_cells_done", "gauge", func(s *RunStatus) string { return strconv.FormatInt(s.CellsDone, 10) }},
		{"cohort_run_cells_total", "gauge", func(s *RunStatus) string { return strconv.FormatInt(s.CellsTotal, 10) }},
		{"cohort_run_generation", "gauge", func(s *RunStatus) string { return strconv.FormatInt(s.Generation, 10) }},
		{"cohort_run_memo_hits_total", "counter", func(s *RunStatus) string { return strconv.FormatInt(s.MemoHits, 10) }},
		{"cohort_run_memo_misses_total", "counter", func(s *RunStatus) string { return strconv.FormatInt(s.MemoMisses, 10) }},
		{"cohort_run_lanes_total", "counter", func(s *RunStatus) string { return strconv.FormatInt(s.Lanes, 10) }},
		{"cohort_run_elapsed_seconds", "gauge", func(s *RunStatus) string { return strconv.FormatFloat(s.ElapsedSeconds, 'g', -1, 64) }},
		{"cohort_run_events_per_second", "gauge", func(s *RunStatus) string { return strconv.FormatFloat(s.EventsPerSecond, 'g', -1, 64) }},
		{"cohort_run_eta_seconds", "gauge", func(s *RunStatus) string { return strconv.FormatFloat(s.ETASeconds, 'g', -1, 64) }},
		{"cohort_run_done", "gauge", func(s *RunStatus) string {
			if s.Done {
				return "1"
			}
			return "0"
		}},
	}
	for _, c := range cols {
		fmt.Fprintf(&b, "# TYPE %s %s\n", c.name, c.kind)
		for i := range sample {
			s := &sample[i]
			labels := []Label{L("run", s.ID), L("tool", s.Tool)}
			if s.Name != "" {
				labels = append(labels, L("name", s.Name))
			}
			fmt.Fprintf(&b, "%s%s %s\n", c.name, promLabels(labels, ""), c.val(s))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
