package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RunTracker is a registry of in-flight runs for live observability: each
// run registers a RunHandle up front and bumps its atomic counters from
// wherever work happens; samplers (the debug server's /runs and /metrics
// endpoints) pull a consistent point-in-time view without ever blocking the
// run. The tracker is the live complement of the post-hoc Manifest — its
// samples are wall-clock- and scheduling-dependent by nature, so they are
// never folded into canonical snapshots, manifests or fingerprints.
//
// A nil *RunTracker is valid: Register returns a nil handle (whose methods
// are no-ops) and Sample returns nil, so untracked tools need no nil checks.
type RunTracker struct {
	clk Clock

	mu   sync.Mutex
	seq  int64
	runs map[string]*RunHandle
}

// NewRunTracker returns an empty tracker reading wall time from clk
// (WallClock in the CLIs, ManualClock in tests).
func NewRunTracker(clk Clock) *RunTracker {
	return &RunTracker{clk: clk, runs: make(map[string]*RunHandle)}
}

// Register adds a run and returns its live handle. The id is
// "<tool>-<seq>", unique within the tracker. Safe on a nil tracker
// (returns nil, whose methods are no-ops).
func (t *RunTracker) Register(tool, name string) *RunHandle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	h := &RunHandle{
		id:        fmt.Sprintf("%s-%d", tool, t.seq),
		tool:      tool,
		name:      name,
		startedAt: t.clk.Now(),
	}
	t.runs[h.id] = h
	return h
}

// Unregister removes a run from the tracker. No-op on a nil tracker or
// handle; the handle's counters keep working detached.
func (t *RunTracker) Unregister(h *RunHandle) {
	if t == nil || h == nil {
		return
	}
	t.mu.Lock()
	delete(t.runs, h.id)
	t.mu.Unlock()
}

// Sample returns a point-in-time status of every tracked run, sorted by run
// id. Handles are collected under the lock and read outside it (the
// counters are atomics), so a sample never blocks counter updates.
func (t *RunTracker) Sample() []RunStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	handles := make([]*RunHandle, 0, len(t.runs))
	//cohort:allow maprange: collect-then-sort; the sort below restores a canonical order
	for _, h := range t.runs {
		handles = append(handles, h)
	}
	t.mu.Unlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].id < handles[j].id })

	now := t.clk.Now()
	out := make([]RunStatus, len(handles))
	for i, h := range handles {
		out[i] = h.status(now)
	}
	return out
}

// WriteJSON renders the current sample as indented JSON (the /runs
// endpoint's payload).
func (t *RunTracker) WriteJSON(w io.Writer) error {
	sample := t.Sample()
	if sample == nil {
		sample = []RunStatus{}
	}
	b, err := json.MarshalIndent(sample, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// RunHandle is one run's live progress surface: a fixed set of atomic
// counters pre-registered before the run starts, so bumping them from the
// simulator or optimizer adds no allocation and no lock to any hot path.
// Every method is safe on a nil handle (no-op), letting call sites update
// unconditionally.
type RunHandle struct {
	id        string
	tool      string
	name      string
	startedAt time.Time

	events      atomic.Int64 // trace accesses processed
	cycles      atomic.Int64 // simulated cycles completed
	cellsDone   atomic.Int64 // experiment cells finished
	cellsTotal  atomic.Int64 // experiment cells planned (0 unknown)
	generation  atomic.Int64 // GA generation reached
	generations atomic.Int64 // GA generations planned (0 unknown)
	memoHits    atomic.Int64
	memoMisses  atomic.Int64
	lanes       atomic.Int64 // oracle batch lanes completed
	done        atomic.Bool
}

// ID returns the tracker-assigned run id ("" on a nil handle).
func (h *RunHandle) ID() string {
	if h == nil {
		return ""
	}
	return h.id
}

// AddEvents adds n processed trace accesses.
func (h *RunHandle) AddEvents(n int64) {
	if h != nil {
		h.events.Add(n)
	}
}

// AddCycles adds n simulated cycles.
func (h *RunHandle) AddCycles(n int64) {
	if h != nil {
		h.cycles.Add(n)
	}
}

// SetCellsTotal records how many experiment cells the run plans to finish
// (enables the ETA estimate).
func (h *RunHandle) SetCellsTotal(n int64) {
	if h != nil {
		h.cellsTotal.Store(n)
	}
}

// AddCellsDone adds n finished experiment cells.
func (h *RunHandle) AddCellsDone(n int64) {
	if h != nil {
		h.cellsDone.Add(n)
	}
}

// SetGeneration records the GA generation most recently completed.
func (h *RunHandle) SetGeneration(gen int64) {
	if h != nil {
		h.generation.Store(gen)
	}
}

// SetGenerations records the planned GA generation count.
func (h *RunHandle) SetGenerations(n int64) {
	if h != nil {
		h.generations.Store(n)
	}
}

// AddMemoHits adds n memo-cache hits.
func (h *RunHandle) AddMemoHits(n int64) {
	if h != nil {
		h.memoHits.Add(n)
	}
}

// AddMemoMisses adds n memo-cache misses.
func (h *RunHandle) AddMemoMisses(n int64) {
	if h != nil {
		h.memoMisses.Add(n)
	}
}

// AddLanes adds n completed oracle batch lanes.
func (h *RunHandle) AddLanes(n int64) {
	if h != nil {
		h.lanes.Add(n)
	}
}

// Finish marks the run complete (it stays visible until Unregister).
func (h *RunHandle) Finish() {
	if h != nil {
		h.done.Store(true)
	}
}

// status snapshots the handle at the given wall time.
func (h *RunHandle) status(now time.Time) RunStatus {
	elapsed := now.Sub(h.startedAt).Seconds()
	if elapsed < 0 {
		elapsed = 0
	}
	st := RunStatus{
		ID:             h.id,
		Tool:           h.tool,
		Name:           h.name,
		StartedAt:      h.startedAt.UTC().Format(time.RFC3339Nano),
		ElapsedSeconds: elapsed,
		Done:           h.done.Load(),
		Events:         h.events.Load(),
		Cycles:         h.cycles.Load(),
		CellsDone:      h.cellsDone.Load(),
		CellsTotal:     h.cellsTotal.Load(),
		Generation:     h.generation.Load(),
		Generations:    h.generations.Load(),
		MemoHits:       h.memoHits.Load(),
		MemoMisses:     h.memoMisses.Load(),
		Lanes:          h.lanes.Load(),
		ETASeconds:     -1,
	}
	if elapsed > 0 {
		st.EventsPerSecond = float64(st.Events) / elapsed
		st.CyclesPerSecond = float64(st.Cycles) / elapsed
	}
	if !st.Done && st.CellsTotal > 0 && st.CellsDone > 0 {
		st.ETASeconds = elapsed * float64(st.CellsTotal-st.CellsDone) / float64(st.CellsDone)
	}
	if st.Done {
		st.ETASeconds = 0
	}
	return st
}

// RunStatus is one run's pull-sampled progress: raw counters plus derived
// per-run rates and a cell-based ETA (-1 when unknown). Samples depend on
// wall time and scheduling — they serve live dashboards only and never
// enter canonical output.
type RunStatus struct {
	ID              string  `json:"id"`
	Tool            string  `json:"tool"`
	Name            string  `json:"name,omitempty"`
	StartedAt       string  `json:"started_at"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	Done            bool    `json:"done"`
	Events          int64   `json:"events"`
	Cycles          int64   `json:"cycles"`
	CellsDone       int64   `json:"cells_done"`
	CellsTotal      int64   `json:"cells_total"`
	Generation      int64   `json:"generation"`
	Generations     int64   `json:"generations"`
	MemoHits        int64   `json:"memo_hits"`
	MemoMisses      int64   `json:"memo_misses"`
	Lanes           int64   `json:"lanes"`
	EventsPerSecond float64 `json:"events_per_second"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
	ETASeconds      float64 `json:"eta_seconds"`
}
