package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Debug-server read/write deadlines. A debug endpoint must never let one
// stuck client pin a handler goroutine: ReadHeaderTimeout bounds a
// slow-header (slowloris) connection, WriteTimeout bounds a scrape that
// stops reading mid-body. Package variables rather than constants so tests
// can shrink them without waiting wall-clock seconds; production code never
// mutates them. The values bound I/O on an operator-facing debug port, so
// they are deliberately generous — pprof profile captures stream for up to
// 30s by default and must fit inside the write deadline.
var (
	serverReadHeaderTimeout = 5 * time.Second
	serverWriteTimeout      = 60 * time.Second
)

// DebugServer is the opt-in (-listen) HTTP surface over a live process: the
// Prometheus exposition of a registry plus the RunTracker's progress
// counters on /metrics, the tracker's JSON sample on /runs, a liveness
// probe on /healthz, and the runtime profiler under /debug/pprof/. It is
// deliberately shaped as the seed of the cohort-serve daemon (ROADMAP):
// a long-lived listener beside a batch computation, sharing nothing with
// the deterministic result path — every payload it serves is explicitly
// scheduling-dependent and never enters canonical output.
//
// The handlers run on their own goroutines inside net/http; they touch the
// computation only through the tracker's atomics and the registry's
// publication lock, so serving never perturbs results.
type DebugServer struct {
	ln      net.Listener
	srv     *http.Server
	reg     *Registry
	tracker *RunTracker
}

// StartDebugServer listens on addr (host:port; ":0" picks a free port) and
// serves in the background until Close. reg and tracker may each be nil —
// the corresponding sections of /metrics and /runs are simply empty.
// Publishers feeding reg concurrently with scrapes must write under
// reg.Sync.
func StartDebugServer(addr string, reg *Registry, tracker *RunTracker) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	s := &DebugServer{ln: ln, reg: reg, tracker: tracker}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/runs", s.handleRuns)
	// The profiler handlers are mounted explicitly on this private mux —
	// importing net/http/pprof for its DefaultServeMux side effect would
	// expose the profiler on any default-mux server a future caller starts.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: serverReadHeaderTimeout,
		WriteTimeout:      serverWriteTimeout,
	}
	go s.srv.Serve(ln) // returns ErrServerClosed on Close; nothing to report
	return s, nil
}

// Addr returns the bound listen address (resolves ":0" to the picked port).
func (s *DebugServer) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and all handler goroutines. Nil-safe, so CLIs
// may defer Close on an optional server.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// handleHealthz is the liveness probe: constant body, no shared state.
//
//cohort:server
func (s *DebugServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleMetrics serves the Prometheus exposition. Everything it reaches
// holds locks for microseconds (registry snapshot, tracker atomics); the
// ctxflow analyzer verifies nothing on this path can block unboundedly.
//
//cohort:server
func (s *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	if err := WritePromRuns(w, s.tracker.Sample()); err != nil {
		return // client went away mid-write; nothing to clean up
	}
	s.reg.WriteProm(w)
}

// handleRuns serves the tracker's JSON sample.
//
//cohort:server
func (s *DebugServer) handleRuns(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.tracker.WriteJSON(w)
}
