package obs

import (
	"strings"
	"testing"
)

// TestWritePromGolden pins the full exposition format: family grouping (the
// unlabeled and labeled "foo" series must share one # TYPE header even
// though "foo_bar" sorts between their metric ids), name sanitation, label
// escaping, cumulative histogram buckets with _sum/_count, and float
// formatting.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("foo").Add(1)
	reg.Counter("foo", L("core", "0")).Add(2)
	reg.Gauge("foo_bar").Set(5)
	reg.FloatGauge("ratio").Set(0.25)
	h := reg.Histogram("lat cycles") // space must sanitize to '_'
	h.Observe(1)
	h.Observe(3)
	h.Observe(17)
	reg.Counter("esc", L("path", "a\"b\\c\nd")).Add(9)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	want := "# TYPE esc counter\n" +
		"esc{path=\"a\\\"b\\\\c\\nd\"} 9\n" +
		"# TYPE foo counter\n" +
		"foo 1\n" +
		"foo{core=\"0\"} 2\n" +
		"# TYPE foo_bar gauge\n" +
		"foo_bar 5\n" +
		"# TYPE lat_cycles histogram\n" +
		"lat_cycles_bucket{le=\"1\"} 1\n" +
		"lat_cycles_bucket{le=\"3\"} 2\n" +
		"lat_cycles_bucket{le=\"31\"} 3\n" +
		"lat_cycles_bucket{le=\"+Inf\"} 3\n" +
		"lat_cycles_sum 21\n" +
		"lat_cycles_count 3\n" +
		"# TYPE ratio gauge\n" +
		"ratio 0.25\n"
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatalf("nil WriteProm: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q", b.String())
	}
}

func TestWritePromRuns(t *testing.T) {
	var b strings.Builder
	if err := WritePromRuns(&b, nil); err != nil {
		t.Fatalf("empty WritePromRuns: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("empty sample wrote %q", b.String())
	}
	sample := []RunStatus{{
		ID: "bench-1", Tool: "cohort-bench", Name: "fig5a",
		Events: 100, Cycles: 2000, CellsDone: 2, CellsTotal: 8,
		MemoHits: 3, MemoMisses: 5, Lanes: 4,
		ElapsedSeconds: 1.5, EventsPerSecond: 66.5, ETASeconds: 4.5,
	}}
	b.Reset()
	if err := WritePromRuns(&b, sample); err != nil {
		t.Fatalf("WritePromRuns: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cohort_run_events_total counter\n",
		`cohort_run_events_total{run="bench-1",tool="cohort-bench",name="fig5a"} 100` + "\n",
		`cohort_run_cells_total{run="bench-1",tool="cohort-bench",name="fig5a"} 8` + "\n",
		`cohort_run_eta_seconds{run="bench-1",tool="cohort-bench",name="fig5a"} 4.5` + "\n",
		`cohort_run_done{run="bench-1",tool="cohort-bench",name="fig5a"} 0` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromNameEdgeCases(t *testing.T) {
	cases := map[string]string{
		"sim_events_total": "sim_events_total",
		"lat cycles":       "lat_cycles",
		"0abc":             "_0abc",
		"":                 "_",
		"a-b.c":            "a_b_c",
		"ns:metric":        "ns:metric",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promLabelName("ns:metric"); got != "ns_metric" {
		t.Errorf("promLabelName(ns:metric) = %q, want ns_metric", got)
	}
}

func promNameValid(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == ':':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func FuzzPromName(f *testing.F) {
	for _, seed := range []string{"", "sim_events_total", "0abc", "lat cycles", "αβ", "a:b", "9", "_"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		got := promName(name)
		if !promNameValid(got) {
			t.Errorf("promName(%q) = %q: not a valid Prometheus metric name", name, got)
		}
	})
}

// promUnescape inverts promLabelValue's escaping.
func promUnescape(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", false // dangling backslash: not a valid escape
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", false
		}
	}
	return b.String(), true
}

func FuzzPromLabelValue(f *testing.F) {
	for _, seed := range []string{"", `a\b`, "quote\"inside", "line\nbreak", `\\n`, `trailing\`} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v string) {
		esc := promLabelValue(v)
		// The escaped form must never contain a raw newline or an unescaped
		// double quote — either would corrupt the exposition line.
		if strings.ContainsRune(esc, '\n') {
			t.Errorf("promLabelValue(%q) = %q contains a raw newline", v, esc)
		}
		got, ok := promUnescape(esc)
		if !ok {
			t.Fatalf("promLabelValue(%q) = %q: not a valid escape sequence", v, esc)
		}
		if got != v {
			t.Errorf("round trip: promUnescape(promLabelValue(%q)) = %q", v, got)
		}
	})
}
