package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cohort/internal/stats"
)

func fixedClock(sec int) ManualClock {
	return ManualClock{T: time.Date(2026, 1, 2, 3, 4, sec, 0, time.UTC)}
}

func sampleManifest() *Manifest {
	m := NewManifest("cohort-bench", fixedClock(0))
	m.Args = []string{"-run", "fig5a", "-j", "8"}
	m.ConfigKey = "0123456789abcdef0123456789abcdef"
	m.Traces = []TraceRef{{Name: "fft", Fingerprint: "aabbccdd"}}
	m.Seed = 42
	m.Workers = 8
	m.Engine = &stats.EngineStats{Jobs: 10, CacheHits: 4, CacheMisses: 6}
	r := NewRegistry()
	r.Counter("experiments_figures_total").Inc()
	m.Metrics = r.Snapshot()
	m.Finish(fixedClock(5))
	return m
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	if m.WallSeconds != 5 {
		t.Fatalf("wall seconds = %g, want 5", m.WallSeconds)
	}
	dir := t.TempDir()
	path, err := m.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "cohort-bench-0123456789ab-j8.manifest.json") {
		t.Fatalf("unexpected manifest path %q", path)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.JSON()
	b, _ := got.JSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip drift:\n%s\nvs\n%s", a, b)
	}
	ms, err := LoadDir(dir)
	if err != nil || len(ms) != 1 {
		t.Fatalf("LoadDir: %v, %d manifests", err, len(ms))
	}
}

func TestManifestDeterministicBytes(t *testing.T) {
	a, _ := sampleManifest().JSON()
	b, _ := sampleManifest().JSON()
	if !bytes.Equal(a, b) {
		t.Fatal("manifest JSON not reproducible under a fixed clock")
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"wrong schema", func(m *Manifest) { m.Schema = "v0" }, "schema"},
		{"empty tool", func(m *Manifest) { m.Tool = "" }, "tool"},
		{"empty key", func(m *Manifest) { m.ConfigKey = "" }, "config_key"},
		{"uppercase key", func(m *Manifest) { m.ConfigKey = "ABCDEF" }, "config_key"},
		{"zero workers", func(m *Manifest) { m.Workers = 0 }, "workers"},
		{"bad time", func(m *Manifest) { m.StartedAt = "yesterday" }, "started_at"},
		{"negative wall", func(m *Manifest) { m.WallSeconds = -1 }, "wall_seconds"},
		{"bad trace", func(m *Manifest) { m.Traces[0].Fingerprint = "zz" }, "trace"},
		{"bad metric kind", func(m *Manifest) { m.Metrics[0].Kind = "weird" }, "kind"},
	}
	for _, tc := range cases {
		m := sampleManifest()
		tc.mutate(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := sampleManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

func TestManifestFinishNegativeClamped(t *testing.T) {
	m := NewManifest("t", fixedClock(30))
	m.Finish(fixedClock(0)) // clock moved backwards: clamp, don't go negative
	if m.WallSeconds != 0 {
		t.Fatalf("wall seconds = %g, want 0", m.WallSeconds)
	}
}

func TestShortKey(t *testing.T) {
	if ShortKey("0123456789abcdef") != "0123456789ab" {
		t.Fatal("long key not truncated")
	}
	if ShortKey("abc") != "abc" {
		t.Fatal("short key changed")
	}
}
