package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a mutable test clock; Advance moves it forward.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func newStepClock() *stepClock {
	return &stepClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRunTrackerSample(t *testing.T) {
	clk := newStepClock()
	tr := NewRunTracker(clk)
	h1 := tr.Register("cohort-bench", "fig5a")
	h2 := tr.Register("cohort-opt", "")
	if h1.ID() != "cohort-bench-1" || h2.ID() != "cohort-opt-2" {
		t.Fatalf("ids = %q, %q", h1.ID(), h2.ID())
	}

	h1.AddEvents(1000)
	h1.AddCycles(50000)
	h1.SetCellsTotal(8)
	h1.AddCellsDone(2)
	h1.AddMemoHits(3)
	h1.AddMemoMisses(5)
	h2.SetGenerations(40)
	h2.SetGeneration(7)
	h2.AddLanes(16)
	clk.Advance(2 * time.Second)

	sample := tr.Sample()
	if len(sample) != 2 {
		t.Fatalf("sample has %d runs, want 2", len(sample))
	}
	// Sorted by id: bench before opt.
	s1, s2 := sample[0], sample[1]
	if s1.ID != "cohort-bench-1" || s2.ID != "cohort-opt-2" {
		t.Fatalf("sample order: %q, %q", s1.ID, s2.ID)
	}
	if s1.Events != 1000 || s1.Cycles != 50000 || s1.CellsDone != 2 || s1.CellsTotal != 8 {
		t.Errorf("s1 counters: %+v", s1)
	}
	if s1.MemoHits != 3 || s1.MemoMisses != 5 {
		t.Errorf("s1 memo: %+v", s1)
	}
	if s1.ElapsedSeconds != 2 {
		t.Errorf("elapsed = %v, want 2", s1.ElapsedSeconds)
	}
	if s1.EventsPerSecond != 500 || s1.CyclesPerSecond != 25000 {
		t.Errorf("rates: %v ev/s, %v cy/s", s1.EventsPerSecond, s1.CyclesPerSecond)
	}
	// ETA: 2s for 2 of 8 cells → 6s remaining.
	if s1.ETASeconds != 6 {
		t.Errorf("ETA = %v, want 6", s1.ETASeconds)
	}
	if s2.Generation != 7 || s2.Generations != 40 || s2.Lanes != 16 {
		t.Errorf("s2 GA progress: %+v", s2)
	}
	// No cell plan on s2 → ETA unknown.
	if s2.ETASeconds != -1 {
		t.Errorf("s2 ETA = %v, want -1", s2.ETASeconds)
	}

	h1.Finish()
	sample = tr.Sample()
	if !sample[0].Done || sample[0].ETASeconds != 0 {
		t.Errorf("finished run: done=%v eta=%v", sample[0].Done, sample[0].ETASeconds)
	}

	tr.Unregister(h1)
	sample = tr.Sample()
	if len(sample) != 1 || sample[0].ID != "cohort-opt-2" {
		t.Fatalf("after unregister: %+v", sample)
	}
	// Detached handles keep counting without panicking.
	h1.AddEvents(1)
}

func TestRunTrackerNil(t *testing.T) {
	var tr *RunTracker
	h := tr.Register("tool", "name")
	if h != nil {
		t.Fatalf("nil tracker returned non-nil handle")
	}
	if got := tr.Sample(); got != nil {
		t.Fatalf("nil tracker sample = %v", got)
	}
	tr.Unregister(h)
	// Every handle method must be a no-op on nil.
	h.AddEvents(1)
	h.AddCycles(1)
	h.SetCellsTotal(1)
	h.AddCellsDone(1)
	h.SetGeneration(1)
	h.SetGenerations(1)
	h.AddMemoHits(1)
	h.AddMemoMisses(1)
	h.AddLanes(1)
	h.Finish()
	if h.ID() != "" {
		t.Errorf("nil handle id = %q", h.ID())
	}
}

func TestRunTrackerWriteJSON(t *testing.T) {
	clk := newStepClock()
	tr := NewRunTracker(clk)
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON empty: %v", err)
	}
	if got := strings.TrimSpace(b.String()); got != "[]" {
		t.Errorf("empty tracker JSON = %q, want []", got)
	}

	h := tr.Register("cohort-sim", "trace.csv")
	h.AddEvents(12)
	b.Reset()
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []RunStatus
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("payload does not parse: %v\n%s", err, b.String())
	}
	if len(decoded) != 1 || decoded[0].ID != "cohort-sim-1" || decoded[0].Events != 12 {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded[0].StartedAt != "2026-08-08T12:00:00Z" {
		t.Errorf("started_at = %q", decoded[0].StartedAt)
	}
}

// TestRunTrackerConcurrent drives registration, counter updates, sampling
// and unregistration from many goroutines at once; it exists to run under
// -race (the CI race gate includes this package).
func TestRunTrackerConcurrent(t *testing.T) {
	clk := newStepClock()
	tr := NewRunTracker(clk)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := tr.Register("worker", "")
				h.AddEvents(10)
				h.AddCycles(100)
				h.AddMemoHits(1)
				h.Finish()
				if i%2 == 0 {
					tr.Unregister(h)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			clk.Advance(time.Millisecond)
			tr.Sample()
			var b strings.Builder
			tr.WriteJSON(&b)
		}
	}()
	wg.Wait()

	sample := tr.Sample()
	// Half the runs (odd i) stay registered: workers * 25.
	if len(sample) != workers*25 {
		t.Fatalf("got %d residual runs, want %d", len(sample), workers*25)
	}
	for _, s := range sample {
		if s.Events != 10 || s.Cycles != 100 || !s.Done {
			t.Fatalf("inconsistent run %+v", s)
		}
	}
}
