package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Structured logging for the CLIs. Two renderings share one call surface:
//
//   - Text mode (the default) writes exactly fmt.Sprintf(format, args...)
//     plus a newline — byte-for-byte what the ad-hoc fmt.Fprintf progress
//     prints produced before the logger existed, so default CLI output is
//     unchanged.
//   - JSON mode emits one slog-style object per line with a timestamp read
//     from the injected Clock, the level, the tool, an optional run id for
//     correlation with the RunTracker, and the formatted message.
//
// Levels gate what is emitted; the wall clock enters only through the
// injected Clock, so tests with a ManualClock produce byte-reproducible
// JSON logs.

// LogLevel orders log severities. LevelOff suppresses everything.
type LogLevel int8

const (
	LevelDebug LogLevel = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String returns the level's lowercase name.
func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// ParseLogLevel parses a -log-level flag value.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error|off)", s)
	}
}

// Logger writes leveled, optionally structured log lines. A nil *Logger
// discards everything, so call sites never need nil checks. Loggers are
// safe for concurrent use.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level LogLevel
	json  bool
	clk   Clock
	tool  string
	runID string
}

// NewLogger returns a logger writing to w at the given level. jsonMode
// selects the structured rendering; clk stamps JSON records (text mode
// never reads it).
func NewLogger(w io.Writer, level LogLevel, jsonMode bool, tool string, clk Clock) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, json: jsonMode, clk: clk, tool: tool}
}

// WithRun returns a copy of the logger whose JSON records carry the given
// run id (text output is unchanged). Nil-safe.
func (l *Logger) WithRun(id string) *Logger {
	if l == nil {
		return nil
	}
	c := *l
	c.runID = id
	return &c
}

// Level returns the logger's threshold (LevelOff on nil).
func (l *Logger) Level() LogLevel {
	if l == nil {
		return LevelOff
	}
	return l.level
}

// logRecord is the JSON-mode line layout. Field order is fixed by the
// struct, so records are byte-deterministic given a fixed clock.
type logRecord struct {
	TS    string `json:"ts"`
	Level string `json:"level"`
	Tool  string `json:"tool,omitempty"`
	Run   string `json:"run,omitempty"`
	Msg   string `json:"msg"`
}

func (l *Logger) log(level LogLevel, format string, args ...any) {
	if l == nil || level < l.level || l.level == LevelOff {
		return
	}
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.json {
		fmt.Fprintf(l.w, "%s\n", msg)
		return
	}
	rec := logRecord{Level: level.String(), Tool: l.tool, Run: l.runID, Msg: msg}
	if l.clk != nil {
		rec.TS = l.clk.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		// A string-only record cannot fail to marshal.
		panic("obs: log record marshal: " + err.Error())
	}
	l.w.Write(append(b, '\n'))
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.log(LevelDebug, format, args...) }

// Infof logs at info level — the level of the pre-logger progress prints.
func (l *Logger) Infof(format string, args ...any) { l.log(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.log(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.log(LevelError, format, args...) }
