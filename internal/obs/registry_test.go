package obs

import (
	"bytes"
	"sync"
	"testing"

	"cohort/internal/stats"
)

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("detached counter broken")
	}
	r.Gauge("g").Set(7)
	r.FloatGauge("f").Set(1.5)
	r.Histogram("h").Observe(3)
	r.RegisterCounter("rc", &Counter{})
	r.RegisterFunc("rf", func() int64 { return 1 })
	r.RegisterCounterFunc("rcf", func() int64 { return 1 })
	r.RegisterFloatFunc("rff", func() float64 { return 1 })
	r.RegisterHistogram("rh", &stats.Histogram{})
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v", snap)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs", L("pool", "p1"))
	b := r.Counter("jobs", L("pool", "p1"))
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	other := r.Counter("jobs", L("pool", "p2"))
	if a == other {
		t.Fatal("distinct labels returned same counter")
	}
	a.Add(3)
	a.Add(-1) // negative delta ignored: counters stay monotone
	snap := r.Snapshot()
	m, ok := snap.Get("jobs", L("pool", "p1"))
	if !ok || m.Value != 3 || m.Kind != KindCounter {
		t.Fatalf("snapshot jobs{pool=p1} = %+v ok=%v", m, ok)
	}
	if g := r.Gauge("depth"); g != r.Gauge("depth") {
		t.Fatal("gauge get-or-create broken")
	}
	if f := r.FloatGauge("ratio"); f != r.FloatGauge("ratio") {
		t.Fatal("float gauge get-or-create broken")
	}
	if h := r.Histogram("lat"); h != r.Histogram("lat") {
		t.Fatal("histogram get-or-create broken")
	}
}

func TestRegistryReRegistrationReplaces(t *testing.T) {
	r := NewRegistry()
	var first, second Counter
	first.Add(10)
	second.Add(99)
	r.RegisterCounter("sim_cycles", &first)
	r.RegisterCounter("sim_cycles", &second)
	m, ok := r.Snapshot().Get("sim_cycles")
	if !ok || m.Value != 99 {
		t.Fatalf("re-registration did not replace: %+v", m)
	}
}

func TestSnapshotCanonicalOrder(t *testing.T) {
	// Register in scrambled order with scrambled label order; snapshots must
	// come out identical and sorted.
	build := func(order []int) Snapshot {
		r := NewRegistry()
		reg := []func(){
			func() { r.Counter("b_metric").Add(2) },
			func() { r.Counter("a_metric", L("core", "1"), L("zone", "x")).Add(1) },
			func() { r.Counter("a_metric", L("zone", "x"), L("core", "0")).Add(1) },
			func() { r.RegisterFloatFunc("ratio", func() float64 { return 0.5 }) },
		}
		for _, i := range order {
			reg[i]()
		}
		return r.Snapshot()
	}
	s1 := build([]int{0, 1, 2, 3})
	s2 := build([]int{3, 2, 1, 0})
	if !bytes.Equal(s1.JSON(), s2.JSON()) {
		t.Fatalf("snapshot order depends on registration order:\n%s\nvs\n%s", s1.JSON(), s2.JSON())
	}
	if len(s1) != 4 || s1[0].Name != "a_metric" || s1[0].Labels[0].Value != "0" {
		t.Fatalf("snapshot not in canonical order: %s", s1.JSON())
	}
	// Label order within one metric is canonicalized too: core sorts before
	// zone regardless of argument order.
	if s1[1].Labels[0].Key != "core" || s1[1].Labels[1].Key != "zone" {
		t.Fatalf("labels not key-sorted: %+v", s1[1].Labels)
	}
}

func TestSnapshotHistogramFields(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", L("core", "0"))
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(1000)
	m, ok := r.Snapshot().Get("latency", L("core", "0"))
	if !ok || m.Kind != KindHistogram {
		t.Fatalf("histogram metric missing: %+v", m)
	}
	if m.Value != 100 || m.Max != 1000 || m.P50 != 1 {
		t.Fatalf("histogram fields: %+v", m)
	}
	if len(m.BucketUppers) != len(m.BucketCounts) || len(m.BucketUppers) == 0 {
		t.Fatalf("histogram buckets: %+v", m)
	}
}

func TestRegisterFuncReadsLiveValue(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.RegisterFunc("live", func() int64 { return v })
	v = 41
	if m, _ := r.Snapshot().Get("live"); m.Value != 41 {
		t.Fatalf("func gauge read %d, want 41", m.Value)
	}
	v = 42
	if m, _ := r.Snapshot().Get("live"); m.Value != 42 {
		t.Fatalf("func gauge read %d, want 42", m.Value)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	// The registry itself must tolerate concurrent registration and
	// snapshotting (the experiment harness registers from its coordinator
	// while tests snapshot); run under -race in CI.
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.RegisterFunc("g", func() int64 { return 1 }, L("w", string(rune('a'+g))))
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if len(r.Snapshot()) != 8 {
		t.Fatalf("want 8 metrics, got %d", len(r.Snapshot()))
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_cycles").Add(123)
	r.FloatGauge("ratio").Set(0.75)
	r.Histogram("lat").Observe(9)
	out := r.Snapshot().String()
	for _, want := range []string{"sim_cycles", "123", "ratio", "0.75", "lat", "samples"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("snapshot text missing %q:\n%s", want, out)
		}
	}
}
