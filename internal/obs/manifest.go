package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"cohort/internal/stats"
)

// ManifestSchema identifies the manifest document format. cohort-report
// refuses documents with any other schema string.
const ManifestSchema = "cohort/run-manifest/v1"

// Clock abstracts wall-clock time so that it enters the repository in
// exactly one place. Production code uses WallClock; tests inject
// ManualClock so manifests are byte-reproducible.
type Clock interface {
	Now() time.Time
}

// WallClock reads the real time. This is the only wall-clock read in the
// repository; everything outside run manifests is simulated-cycle or
// logical time (enforced by cohort-vet's walltime analyzer).
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time {
	//cohort:allow walltime: sole sanctioned wall-clock read; used only for run-manifest timestamps, never simulator state
	return time.Now()
}

// ManualClock is a fixed-time Clock for tests and reproducible manifests.
type ManualClock struct{ T time.Time }

// Now returns the fixed time.
func (m ManualClock) Now() time.Time { return m.T }

// TraceRef names one input trace and its content fingerprint.
type TraceRef struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
}

// HostInfo records the execution host's parallel capacity. Wall times are
// only comparable with this context: a workers=8 run on a 1-CPU container
// is legitimately slower than workers=1, not a regression. Optional in the
// schema — manifests written before it existed still parse and validate.
type HostInfo struct {
	NumCPU     int `json:"num_cpu,omitempty"`
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
}

// CaptureHost reads the current process's host capacity.
func CaptureHost() *HostInfo {
	return &HostInfo{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
}

// AttributionRow is one core's miss-latency decomposition under one system
// on one benchmark (stats.Attribution, DESIGN.md §15). The components plus
// the hit cycles sum exactly to the core's total memory latency — Validate
// enforces the identity, so a manifest can never carry an inconsistent
// decomposition.
type AttributionRow struct {
	Benchmark    string `json:"benchmark"`
	System       string `json:"system"`
	Core         int    `json:"core"`
	Critical     bool   `json:"critical"`
	Misses       int64  `json:"misses"`
	Arbitration  int64  `json:"arbitration_cycles"`
	TimerStall   int64  `json:"timer_stall_cycles"`
	Transfer     int64  `json:"transfer_cycles"`
	DRAM         int64  `json:"dram_cycles"`
	HitCycles    int64  `json:"hit_cycles"`
	TotalLatency int64  `json:"total_latency"`
}

// Manifest describes one CLI invocation: what ran (tool, args, config
// fingerprint, input traces, seed, workers, oracle batch width), when and
// for how long (the only wall-clock fields in the repository), and what it
// measured (engine counters, the full metrics snapshot, and optionally the
// per-core WCML latency attribution). Manifests are the unit of comparison
// for cmd/cohort-report. Note -fingerprints digests only the Metrics
// snapshot, so the attribution rows extend manifests without disturbing
// committed fingerprints.
type Manifest struct {
	Schema      string             `json:"schema"`
	Tool        string             `json:"tool"`
	Args        []string           `json:"args,omitempty"`
	ConfigKey   string             `json:"config_key"`
	Traces      []TraceRef         `json:"traces,omitempty"`
	Seed        int64              `json:"seed"`
	Workers     int                `json:"workers"`
	OracleBatch int                `json:"oracle_batch,omitempty"`
	Curve       bool               `json:"curve,omitempty"`
	StartedAt   string             `json:"started_at"`
	WallSeconds float64            `json:"wall_seconds"`
	Host        *HostInfo          `json:"host,omitempty"`
	Engine      *stats.EngineStats `json:"engine,omitempty"`
	Metrics     Snapshot           `json:"metrics,omitempty"`
	Attribution []AttributionRow   `json:"attribution,omitempty"`
	Notes       string             `json:"notes,omitempty"`
}

// NewManifest returns a manifest stamped with the schema, tool name and
// start time read from clk. The start time keeps nanosecond precision:
// Finish subtracts it from the finish time, and sub-second runs would
// otherwise report the clock's second-fraction as their wall time.
// time.Parse with the RFC3339 layout accepts the fractional seconds, so
// manifests written at either precision validate and compare identically.
func NewManifest(tool string, clk Clock) *Manifest {
	return &Manifest{
		Schema:    ManifestSchema,
		Tool:      tool,
		StartedAt: clk.Now().UTC().Format(time.RFC3339Nano),
		Host:      CaptureHost(),
	}
}

// Finish records the elapsed wall time against the manifest's start time.
func (m *Manifest) Finish(clk Clock) {
	start, err := time.Parse(time.RFC3339, m.StartedAt)
	if err != nil {
		return
	}
	m.WallSeconds = clk.Now().UTC().Sub(start).Seconds()
	if m.WallSeconds < 0 {
		m.WallSeconds = 0
	}
}

func isHex(s string) bool {
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// Validate checks the manifest against the schema contract; cohort-report
// -check fails CI on the first violation.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("manifest: schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Tool == "" {
		return fmt.Errorf("manifest: empty tool")
	}
	if m.ConfigKey == "" || !isHex(m.ConfigKey) {
		return fmt.Errorf("manifest: config_key %q is not lowercase hex", m.ConfigKey)
	}
	if m.Workers < 1 {
		return fmt.Errorf("manifest: workers %d < 1", m.Workers)
	}
	if m.OracleBatch < 0 {
		return fmt.Errorf("manifest: negative oracle_batch %d", m.OracleBatch)
	}
	if _, err := time.Parse(time.RFC3339, m.StartedAt); err != nil {
		return fmt.Errorf("manifest: started_at: %v", err)
	}
	if m.WallSeconds < 0 {
		return fmt.Errorf("manifest: negative wall_seconds %g", m.WallSeconds)
	}
	if m.Host != nil && (m.Host.NumCPU < 0 || m.Host.GoMaxProcs < 0) {
		return fmt.Errorf("manifest: negative host capacity %+v", *m.Host)
	}
	for _, tr := range m.Traces {
		if tr.Name == "" || tr.Fingerprint == "" || !isHex(tr.Fingerprint) {
			return fmt.Errorf("manifest: bad trace ref %+v", tr)
		}
	}
	for _, met := range m.Metrics {
		switch met.Kind {
		case KindCounter, KindGauge, KindFloat, KindHistogram:
		default:
			return fmt.Errorf("manifest: metric %q has unknown kind %q", met.Name, met.Kind)
		}
		if met.Name == "" {
			return fmt.Errorf("manifest: metric with empty name")
		}
	}
	for _, a := range m.Attribution {
		if a.Benchmark == "" || a.System == "" {
			return fmt.Errorf("manifest: attribution row missing benchmark/system: %+v", a)
		}
		if a.Core < 0 || a.Misses < 0 || a.Arbitration < 0 || a.TimerStall < 0 ||
			a.Transfer < 0 || a.DRAM < 0 || a.HitCycles < 0 {
			return fmt.Errorf("manifest: negative attribution component: %+v", a)
		}
		if sum := a.Arbitration + a.TimerStall + a.Transfer + a.DRAM + a.HitCycles; sum != a.TotalLatency {
			return fmt.Errorf("manifest: attribution of %s/%s core %d does not decompose: components sum to %d, total %d",
				a.Benchmark, a.System, a.Core, sum, a.TotalLatency)
		}
	}
	return nil
}

// JSON renders the manifest as deterministic, indented JSON (trailing
// newline included).
func (m *Manifest) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FileName returns the manifest's deterministic file name:
// <tool>-<key12>-j<workers>.manifest.json.
func (m *Manifest) FileName() string {
	key := m.ConfigKey
	if len(key) > 12 {
		key = key[:12]
	}
	if key == "" {
		key = "run"
	}
	return fmt.Sprintf("%s-%s-j%d.manifest.json", m.Tool, key, m.Workers)
}

// Write validates the manifest and writes it into dir (created if needed)
// under its deterministic file name, returning the full path.
func (m *Manifest) Write(dir string) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := m.JSON()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, m.FileName())
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadManifest parses one manifest file and validates it.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &m, nil
}

// LoadDir reads every *.manifest.json in dir in sorted filename order.
func LoadDir(dir string) ([]*Manifest, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.manifest.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var ms []*Manifest
	for _, name := range names {
		m, err := ReadManifest(name)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// ShortKey abbreviates a hex config key for display.
func ShortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return strings.TrimSpace(key)
}
