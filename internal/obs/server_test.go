package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	clk := newStepClock()
	tr := NewRunTracker(clk)
	h := tr.Register("cohort-bench", "fig5a")
	h.AddEvents(42)
	reg := NewRegistry()
	reg.Sync(func() { reg.Counter("demo_total").Add(7) })

	srv, err := StartDebugServer("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp
	}

	body, _ := get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, PromContentType)
	}
	for _, want := range []string{
		`cohort_run_events_total{run="cohort-bench-1",tool="cohort-bench",name="fig5a"} 42`,
		"demo_total 7",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, resp = get("/runs")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/runs Content-Type = %q", ct)
	}
	var runs []RunStatus
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs does not parse: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].Events != 42 {
		t.Errorf("/runs = %+v", runs)
	}

	// The profiler index and a cheap sub-handler must both be mounted.
	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profile list:\n%.400s", body)
	}
	get("/debug/pprof/cmdline")
}

func TestDebugServerNilSources(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("nil-source /metrics: status %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/runs", srv.Addr()))
	if err != nil {
		t.Fatalf("GET /runs: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Errorf("nil-tracker /runs = %q, want []", got)
	}
}

func TestDebugServerClose(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	addr := srv.Addr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr() did not resolve the port: %q", addr)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Errorf("server still serving after Close")
	}
	var nilSrv *DebugServer
	if nilSrv.Close() != nil || nilSrv.Addr() != "" {
		t.Errorf("nil DebugServer methods not nil-safe")
	}
}
