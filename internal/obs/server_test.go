package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	clk := newStepClock()
	tr := NewRunTracker(clk)
	h := tr.Register("cohort-bench", "fig5a")
	h.AddEvents(42)
	reg := NewRegistry()
	reg.Sync(func() { reg.Counter("demo_total").Add(7) })

	srv, err := StartDebugServer("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp
	}

	body, _ := get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, PromContentType)
	}
	for _, want := range []string{
		`cohort_run_events_total{run="cohort-bench-1",tool="cohort-bench",name="fig5a"} 42`,
		"demo_total 7",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, resp = get("/runs")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/runs Content-Type = %q", ct)
	}
	var runs []RunStatus
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs does not parse: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].Events != 42 {
		t.Errorf("/runs = %+v", runs)
	}

	// The profiler index and a cheap sub-handler must both be mounted.
	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profile list:\n%.400s", body)
	}
	get("/debug/pprof/cmdline")
}

func TestDebugServerNilSources(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("nil-source /metrics: status %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/runs", srv.Addr()))
	if err != nil {
		t.Fatalf("GET /runs: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Errorf("nil-tracker /runs = %q, want []", got)
	}
}

func TestDebugServerClose(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	addr := srv.Addr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr() did not resolve the port: %q", addr)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Errorf("server still serving after Close")
	}
	var nilSrv *DebugServer
	if nilSrv.Close() != nil || nilSrv.Addr() != "" {
		t.Errorf("nil DebugServer methods not nil-safe")
	}
}

// TestDebugServerDropsSlowHeaderClient pins the ReadHeaderTimeout wiring: a
// client that opens a connection and trickles (or never finishes) its request
// headers must be disconnected once the deadline passes, instead of pinning a
// handler goroutine forever. The timeout is shrunk for the test — the
// mechanism under test is that the deadline is wired into the http.Server at
// all, not its production value.
func TestDebugServerDropsSlowHeaderClient(t *testing.T) {
	defer func(read, write time.Duration) {
		serverReadHeaderTimeout = read
		serverWriteTimeout = write
	}(serverReadHeaderTimeout, serverWriteTimeout)
	serverReadHeaderTimeout = 50 * time.Millisecond

	srv, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()

	if got := srv.srv.ReadHeaderTimeout; got != 50*time.Millisecond {
		t.Fatalf("ReadHeaderTimeout = %v, want the configured 50ms", got)
	}
	if srv.srv.WriteTimeout != serverWriteTimeout {
		t.Fatalf("WriteTimeout = %v, want %v", srv.srv.WriteTimeout, serverWriteTimeout)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// Send a partial request line and then stall: the server must close the
	// connection once ReadHeaderTimeout elapses. The read deadline here is a
	// test harness bound (generous so slow CI cannot flake), not the wait we
	// expect — the server-side timeout fires at 50ms.
	if _, err := io.WriteString(conn, "GET /healthz HTTP/1.1\r\nHost: stalled"); err != nil {
		t.Fatalf("write partial header: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(make([]byte, 1))
	if err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("slow-header connection still open after ReadHeaderTimeout (read %d bytes, err %v)", n, err)
	}

	// The server itself must still be healthy for well-behaved clients.
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz after slow client dropped: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after slow client: status %d", resp.StatusCode)
	}
}
