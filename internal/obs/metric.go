package obs

import (
	"sort"
	"strings"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use, so components embed Counter by value and count into it
// unconditionally — an Inc is an integer add whether or not a Registry ever
// snapshots it. Counters are not internally synchronized: the simulator is
// single-goroutine per System, and parallel engines publish per-run counters
// only after the run completes.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta (negative deltas are ignored to keep counters monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v += delta
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an integer metric that can move in either direction.
// The zero value is ready to use.
type Gauge struct {
	v int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// FloatGauge is a float-valued gauge for derived ratios (geomeans, hit
// rates). Float metrics are terminal outputs — they are never accumulated
// across events, so cohort-vet's floataccum rules are not in play.
type FloatGauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return g.v }

// Label is one key=value dimension on a metric. Families of metrics (per
// core, per benchmark) share a name and differ in labels.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelKey renders labels canonically (sorted by key) for registry keying
// and snapshot ordering.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortedLabels returns a canonical (key-sorted) copy of labels.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}
