package sched

import (
	"testing"

	"cohort/internal/analysis"
)

func bound(core int, wcml int64) analysis.CoreBound {
	return analysis.CoreBound{Core: core, WCMLBound: wcml, WCL: 100}
}

func TestTaskValidate(t *testing.T) {
	good := Task{Name: "t", Core: 0, Criticality: 1, ComputeCycles: 10, Deadline: 100}
	if err := good.Validate(2, 2); err != nil {
		t.Fatal(err)
	}
	cases := []Task{
		{Name: "core", Core: 5, Criticality: 1, Deadline: 1},
		{Name: "crit", Core: 0, Criticality: 0, Deadline: 1},
		{Name: "crit2", Core: 0, Criticality: 3, Deadline: 1},
		{Name: "compute", Core: 0, Criticality: 1, ComputeCycles: -1, Deadline: 1},
		{Name: "deadline", Core: 0, Criticality: 1, Deadline: 0},
		{Name: "gamma", Core: 0, Criticality: 1, Deadline: 1, Gamma: []int64{1}},
	}
	for _, c := range cases {
		if err := c.Validate(2, 2); err == nil {
			t.Errorf("task %q: invalid accepted", c.Name)
		}
	}
}

func TestWCET(t *testing.T) {
	task := Task{ComputeCycles: 1000}
	if got := task.WCET(5000); got != 6000 {
		t.Fatalf("WCET = %d", got)
	}
	if got := task.WCET(analysis.Unbounded); got != analysis.Unbounded {
		t.Fatalf("unbounded WCET = %d", got)
	}
}

func TestAdmission(t *testing.T) {
	tasks := []Task{
		{Name: "ctrl", Core: 0, Criticality: 2, ComputeCycles: 1000, Deadline: 10_000,
			Gamma: []int64{8000, 8000}},
		{Name: "info", Core: 1, Criticality: 1, ComputeCycles: 500, Deadline: 5_000},
	}
	bounds := []analysis.CoreBound{bound(0, 7000), bound(1, 4000)}
	vs, err := Admission(tasks, bounds, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].Schedulable() || !vs[1].Schedulable() {
		t.Fatalf("expected schedulable: %+v", vs)
	}
	if vs[0].WCET != 8000 {
		t.Fatalf("WCET = %d", vs[0].WCET)
	}
	if !SetSchedulable(vs) {
		t.Fatal("set should be schedulable")
	}

	// Tighten core 0's bound past its deadline: unschedulable.
	bounds[0] = bound(0, 12_000)
	vs, err = Admission(tasks, bounds, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].Schedulable() || SetSchedulable(vs) {
		t.Fatal("deadline violation missed")
	}

	// Γ violation with a met deadline is still a failure.
	bounds[0] = bound(0, 8_500) // WCET 9500 ≤ 10000 but Γ = 8000 < 8500
	vs, _ = Admission(tasks, bounds, 1, 2)
	if vs[0].MeetsDeadline != true || vs[0].MeetsGamma != false || vs[0].Schedulable() {
		t.Fatalf("Γ violation missed: %+v", vs[0])
	}
}

func TestDegradedTasksAreExempt(t *testing.T) {
	tasks := []Task{
		{Name: "lo", Core: 0, Criticality: 1, ComputeCycles: 1, Deadline: 10,
			Gamma: []int64{5, 5}},
	}
	// At mode 2 the task is degraded: unbounded WCML is acceptable.
	bounds := []analysis.CoreBound{bound(0, analysis.Unbounded)}
	vs, err := Admission(tasks, bounds, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].Degraded || !vs[0].Schedulable() {
		t.Fatalf("degraded task should be exempt: %+v", vs[0])
	}
	// At mode 1 the same unbounded task fails.
	vs, _ = Admission(tasks, bounds, 1, 2)
	if vs[0].Schedulable() {
		t.Fatal("unbounded non-degraded task accepted")
	}
}

func TestAdmissionValidation(t *testing.T) {
	tasks := []Task{{Name: "x", Core: 0, Criticality: 1, Deadline: 1}}
	bounds := []analysis.CoreBound{bound(0, 1)}
	if _, err := Admission(tasks, bounds, 0, 2); err == nil {
		t.Fatal("mode 0 accepted")
	}
	if _, err := Admission(tasks, bounds, 3, 2); err == nil {
		t.Fatal("mode beyond levels accepted")
	}
	bad := []Task{{Name: "x", Core: 9, Criticality: 1, Deadline: 1}}
	if _, err := Admission(bad, bounds, 1, 2); err == nil {
		t.Fatal("bad task accepted")
	}
}

func TestLowestFeasibleMode(t *testing.T) {
	tasks := []Task{
		{Name: "hi", Core: 0, Criticality: 3, ComputeCycles: 0, Deadline: 5000},
		{Name: "lo", Core: 1, Criticality: 1, ComputeCycles: 0, Deadline: 1 << 40},
	}
	// Bounds shrink as the mode deepens (co-runner timers drop out).
	perMode := [][]analysis.CoreBound{
		{bound(0, 9000), bound(1, 9000)},               // mode 1: hi misses deadline
		{bound(0, 6000), bound(1, 9000)},               // mode 2: still misses
		{bound(0, 4000), bound(1, analysis.Unbounded)}, // mode 3: hi fits, lo degraded
	}
	mode, vs, ok, err := LowestFeasibleMode(tasks, perMode, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || mode != 3 {
		t.Fatalf("mode = %d ok = %v, want 3/true", mode, ok)
	}
	if !vs[1].Degraded {
		t.Fatal("low task should be degraded at mode 3")
	}
	// Never de-escalates below `from`.
	mode, _, ok, _ = LowestFeasibleMode(tasks, perMode, 3)
	if !ok || mode != 3 {
		t.Fatalf("from=3: mode = %d", mode)
	}
	// Infeasible everywhere.
	hopeless := []Task{{Name: "h", Core: 0, Criticality: 3, Deadline: 1}}
	_, _, ok, err = LowestFeasibleMode(hopeless, perMode, 1)
	if err != nil || ok {
		t.Fatalf("hopeless set: ok=%v err=%v", ok, err)
	}
}

func TestUtilizationSchedulable(t *testing.T) {
	// Two tasks on core 0, one on core 1.
	tasks := []Task{
		{Name: "a", Core: 0, Criticality: 2, ComputeCycles: 100, Deadline: 10_000},
		{Name: "b", Core: 0, Criticality: 2, ComputeCycles: 100, Deadline: 20_000},
		{Name: "c", Core: 1, Criticality: 1, ComputeCycles: 0, Deadline: 1_000},
	}
	bounds := []analysis.CoreBound{bound(0, 4000), bound(1, 500)}
	util, ok, err := UtilizationSchedulable(tasks, bounds, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0: 4100/10000 + 4100/20000 = 0.615; core 1: 0.5.
	if !ok {
		t.Fatalf("should be schedulable: util = %v", util)
	}
	if util[0] < 0.61 || util[0] > 0.62 {
		t.Fatalf("core 0 utilization = %f", util[0])
	}
	// Overload core 0.
	tasks = append(tasks, Task{Name: "d", Core: 0, Criticality: 2, Deadline: 5_000})
	_, ok, err = UtilizationSchedulable(tasks, bounds, 1, 2)
	if err != nil || ok {
		t.Fatalf("overload not detected: ok=%v err=%v", ok, err)
	}
	// At mode 2 the criticality-1 task is excluded from the test.
	lowOnly := []Task{{Name: "lo", Core: 0, Criticality: 1, Deadline: 1}}
	util, ok, err = UtilizationSchedulable(lowOnly, bounds, 2, 2)
	if err != nil || !ok || util[0] != 0 {
		t.Fatalf("degraded exclusion broken: util=%v ok=%v err=%v", util, ok, err)
	}
	// Unbounded WCET on a guaranteed task fails.
	ub := []Task{{Name: "u", Core: 0, Criticality: 2, Deadline: 100}}
	ubBounds := []analysis.CoreBound{{Core: 0, WCMLBound: analysis.Unbounded}}
	_, ok, err = UtilizationSchedulable(ub, ubBounds, 1, 2)
	if err != nil || ok {
		t.Fatalf("unbounded WCET accepted: ok=%v err=%v", ok, err)
	}
	// Validation errors propagate.
	if _, _, err := UtilizationSchedulable(tasks, bounds, 0, 2); err == nil {
		t.Fatal("bad mode accepted")
	}
	bad := []Task{{Name: "x", Core: 9, Criticality: 1, Deadline: 1}}
	if _, _, err := UtilizationSchedulable(bad, bounds, 1, 2); err == nil {
		t.Fatal("bad task accepted")
	}
}
