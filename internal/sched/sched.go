// Package sched implements the task-level schedulability layer over the
// paper's analysis: tasks follow the §II model τ_j = ⟨l_j, Λ_j, Γ_j^m⟩ (a
// criticality level, a memory-access count, and a per-mode WCML
// requirement), one task per core as in the evaluation. The package turns
// per-core WCML bounds into WCET bounds and admission verdicts, and selects
// the lowest operating mode at which a task set is schedulable — the policy
// the Fig. 7 mode-switch experiment applies by hand.
package sched

import (
	"fmt"

	"cohort/internal/analysis"
)

// Task is one mixed-criticality task mapped to one core.
type Task struct {
	// Name labels the task.
	Name string
	// Core is the core the task runs on.
	Core int
	// Criticality is l_j (higher = more critical).
	Criticality int
	// ComputeCycles is the pure processing time excluding memory latency.
	ComputeCycles int64
	// Deadline is the relative deadline in cycles (= period; implicit
	// deadlines).
	Deadline int64
	// Gamma is Γ_j^m: the per-mode WCML requirement in cycles (index 0 =
	// mode 1; 0 entries mean unconstrained). May be nil.
	Gamma []int64
}

// Validate checks one task's fields.
func (t *Task) Validate(nCores, levels int) error {
	switch {
	case t.Core < 0 || t.Core >= nCores:
		return fmt.Errorf("sched: task %q core %d out of range [0,%d)", t.Name, t.Core, nCores)
	case t.Criticality < 1 || t.Criticality > levels:
		return fmt.Errorf("sched: task %q criticality %d out of range [1,%d]", t.Name, t.Criticality, levels)
	case t.ComputeCycles < 0:
		return fmt.Errorf("sched: task %q negative compute %d", t.Name, t.ComputeCycles)
	case t.Deadline <= 0:
		return fmt.Errorf("sched: task %q deadline %d must be positive", t.Name, t.Deadline)
	case t.Gamma != nil && len(t.Gamma) != levels:
		return fmt.Errorf("sched: task %q has %d Γ entries for %d modes", t.Name, len(t.Gamma), levels)
	}
	return nil
}

// WCET bounds the task's execution time given its core's WCML bound
// (compute + memory). Returns Unbounded when the memory side is unbounded.
func (t *Task) WCET(memBound int64) int64 {
	if memBound == analysis.Unbounded {
		return analysis.Unbounded
	}
	return t.ComputeCycles + memBound
}

// Verdict is one task's admission result at one mode.
type Verdict struct {
	Task *Task
	// Mode is the analyzed operating mode.
	Mode int
	// Degraded reports whether the task's core runs MSI at this mode
	// (criticality below mode).
	Degraded bool
	// WCET is the execution-time bound (Unbounded when none exists).
	WCET int64
	// MeetsDeadline reports WCET ≤ Deadline.
	MeetsDeadline bool
	// MeetsGamma reports the WCML requirement for this mode (true when
	// unconstrained).
	MeetsGamma bool
}

// Schedulable reports whether the verdict passes both checks. Degraded
// tasks are exempt from Γ (the paper assumes requirements only for the
// still-guaranteed tasks) but must still meet their deadline if they have a
// bounded WCET.
func (v Verdict) Schedulable() bool {
	if v.Degraded {
		return true // best-effort at this mode: kept running, no guarantees
	}
	return v.MeetsDeadline && v.MeetsGamma
}

// Admission checks every task at the given 1-based mode using the per-core
// WCML bounds produced by analysis.Bounds (or opt.Evaluation.PerCore).
func Admission(tasks []Task, bounds []analysis.CoreBound, mode, levels int) ([]Verdict, error) {
	if mode < 1 || mode > levels {
		return nil, fmt.Errorf("sched: mode %d out of range [1,%d]", mode, levels)
	}
	out := make([]Verdict, 0, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		if err := t.Validate(len(bounds), levels); err != nil {
			return nil, err
		}
		b := bounds[t.Core]
		v := Verdict{
			Task:     t,
			Mode:     mode,
			Degraded: t.Criticality < mode,
			WCET:     t.WCET(b.WCMLBound),
		}
		v.MeetsDeadline = v.WCET != analysis.Unbounded && v.WCET <= t.Deadline
		v.MeetsGamma = true
		if t.Gamma != nil && t.Gamma[mode-1] > 0 {
			v.MeetsGamma = b.WCMLBound != analysis.Unbounded && b.WCMLBound <= t.Gamma[mode-1]
		}
		out = append(out, v)
	}
	return out, nil
}

// SetSchedulable reports whether every verdict passes.
func SetSchedulable(vs []Verdict) bool {
	for _, v := range vs {
		if !v.Schedulable() {
			return false
		}
	}
	return true
}

// LowestFeasibleMode walks modes 1..levels (never de-escalating below
// from) and returns the first mode at which the task set is schedulable
// under the per-mode bounds. boundsPerMode[m-1] holds the cores' bounds at
// mode m. ok is false when no mode works.
func LowestFeasibleMode(tasks []Task, boundsPerMode [][]analysis.CoreBound, from int) (mode int, verdicts []Verdict, ok bool, err error) {
	levels := len(boundsPerMode)
	if from < 1 {
		from = 1
	}
	for m := from; m <= levels; m++ {
		vs, e := Admission(tasks, boundsPerMode[m-1], m, levels)
		if e != nil {
			return 0, nil, false, e
		}
		if SetSchedulable(vs) {
			return m, vs, true, nil
		}
	}
	return 0, nil, false, nil
}

// UtilizationSchedulable runs an EDF utilization test for multiple tasks
// sharing cores: per core, Σ WCET_j / Deadline_j ≤ 1 (implicit deadlines =
// periods). The paper leaves task scheduling open ("we do not impose
// constraints on how task scheduling is done", §II); this is the standard
// single-core admission test layered over the WCML bounds. Degraded tasks
// (criticality below mode) are excluded — they run best-effort.
func UtilizationSchedulable(tasks []Task, bounds []analysis.CoreBound, mode, levels int) (perCore []float64, ok bool, err error) {
	if mode < 1 || mode > levels {
		return nil, false, fmt.Errorf("sched: mode %d out of range [1,%d]", mode, levels)
	}
	perCore = make([]float64, len(bounds))
	ok = true
	for i := range tasks {
		t := &tasks[i]
		if err := t.Validate(len(bounds), levels); err != nil {
			return nil, false, err
		}
		if t.Criticality < mode {
			continue // degraded: best effort
		}
		wcet := t.WCET(bounds[t.Core].WCMLBound)
		if wcet == analysis.Unbounded {
			perCore[t.Core] = 2 // sentinel: trivially over-utilized
			ok = false
			continue
		}
		perCore[t.Core] += float64(wcet) / float64(t.Deadline)
	}
	for _, u := range perCore {
		if u > 1 {
			ok = false
		}
	}
	return perCore, ok, nil
}
