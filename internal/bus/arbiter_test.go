package bus

import (
	"testing"
	"testing/quick"
)

func cands(n int, ready ...int) []Candidate {
	cs := make([]Candidate, n)
	for i := range cs {
		cs[i] = Candidate{Core: i, Critical: true}
	}
	for _, r := range ready {
		cs[r].Ready = true
		cs[r].Pending = true
	}
	return cs
}

func TestRROFGrantsInOrder(t *testing.T) {
	a := NewRROF(4)
	if got := a.Pick(0, cands(4, 2, 3)); got != 2 {
		t.Fatalf("Pick = %d, want 2 (first ready in order)", got)
	}
	if got := a.Pick(0, cands(4)); got != -1 {
		t.Fatalf("Pick with none ready = %d, want -1", got)
	}
}

func TestRROFKeepsPositionUntilServed(t *testing.T) {
	a := NewRROF(4)
	// Core 0 is granted (e.g. broadcast) but not served: it keeps position.
	if a.Pick(0, cands(4, 0, 1)) != 0 {
		t.Fatal("expected core 0 first")
	}
	if a.Pick(0, cands(4, 0, 1)) != 0 {
		t.Fatal("core 0 must keep its position until served")
	}
	a.Served(0)
	if got := a.Order(); got[3] != 0 {
		t.Fatalf("after Served(0), order = %v, want 0 at tail", got)
	}
	if a.Pick(0, cands(4, 0, 1)) != 1 {
		t.Fatal("after service, core 1 must win")
	}
}

func TestRROFServedUnknownCoreNoop(t *testing.T) {
	a := NewRROF(2)
	a.Served(99) // must not panic or corrupt
	if got := a.Order(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("order corrupted: %v", got)
	}
}

func TestRRRotatesOnGrant(t *testing.T) {
	a := NewRR(3)
	if a.Pick(0, cands(3, 0, 1, 2)) != 0 {
		t.Fatal("want 0 first")
	}
	if a.Pick(0, cands(3, 0, 1, 2)) != 1 {
		t.Fatal("RR must rotate after grant")
	}
	if a.Pick(0, cands(3, 0, 1, 2)) != 2 {
		t.Fatal("RR must rotate after grant")
	}
	if a.Pick(0, cands(3, 0, 1, 2)) != 0 {
		t.Fatal("RR must wrap")
	}
}

func TestFCFSOldestFirst(t *testing.T) {
	a := NewFCFS()
	cs := cands(3, 0, 1, 2)
	cs[0].Enqueued = 30
	cs[1].Enqueued = 10
	cs[2].Enqueued = 20
	if got := a.Pick(0, cs); got != 1 {
		t.Fatalf("FCFS picked %d, want 1 (oldest)", got)
	}
	// Tie: lowest core id wins.
	cs[0].Enqueued = 10
	if got := a.Pick(0, cs); got != 0 {
		t.Fatalf("FCFS tie picked %d, want 0", got)
	}
	if got := a.Pick(0, cands(3)); got != -1 {
		t.Fatal("FCFS with none ready must idle")
	}
}

func TestTDMSlotBoundaries(t *testing.T) {
	a := NewTDM([]bool{true, true, false, false}, 54, true)
	// Slot 0 belongs to core 0.
	if a.SlotOwner(0) != 0 || a.SlotOwner(53) != 0 || a.SlotOwner(54) != 1 || a.SlotOwner(108) != 0 {
		t.Fatal("slot ownership wrong")
	}
	cs := cands(4, 0, 1)
	if got := a.Pick(0, cs); got != 0 {
		t.Fatalf("slot 0 owner ready, picked %d", got)
	}
	// Mid-slot: no grant even if ready.
	if got := a.Pick(10, cs); got != -1 {
		t.Fatalf("mid-slot grant: %d", got)
	}
	// Slot 1 boundary: owner is core 1.
	if got := a.Pick(54, cs); got != 1 {
		t.Fatalf("slot 1 picked %d, want 1", got)
	}
	if a.NextWake(0) != 54 || a.NextWake(53) != 54 || a.NextWake(54) != 108 {
		t.Fatal("NextWake boundaries wrong")
	}
}

func TestTDMIdleSlotAndCritOnly(t *testing.T) {
	a := NewTDM([]bool{true, true, false, false}, 54, true)
	cs := cands(4)
	cs[2].Critical = false
	cs[3].Critical = false
	// Only non-critical core 3 ready, no critical ready: it may use the slot.
	cs[3].Ready = true
	if got := a.Pick(0, cs); got != 3 {
		t.Fatalf("idle slot should serve nCr core 3, got %d", got)
	}
	// Critical core 1 ready but slot 0 belongs to core 0: idle slot, and the
	// unfair rule blocks the non-critical core too.
	cs[1].Ready = true
	if got := a.Pick(0, cs); got != -1 {
		t.Fatalf("crit-only rule violated: picked %d", got)
	}
	// Without the unfair rule the nCr core is served in the idle slot.
	b := NewTDM([]bool{true, true, false, false}, 54, false)
	if got := b.Pick(0, cs); got != 3 {
		t.Fatalf("work-conserving TDM should pick 3, got %d", got)
	}
}

func TestTDMNoCriticalCores(t *testing.T) {
	a := NewTDM([]bool{false, false}, 10, false)
	cs := cands(2, 1)
	cs[0].Critical = false
	cs[1].Critical = false
	// Slot 0 owner is core 0 (fallback schedule covers all cores); core 0 is
	// not ready, and the work-conserving fallback serves non-critical core 1.
	if got := a.Pick(0, cs); got != 1 {
		t.Fatalf("Pick = %d, want 1 (idle-slot fallback)", got)
	}
	if got := a.Pick(10, cs); got != 1 {
		t.Fatalf("slot 1 owner ready: got %d, want 1", got)
	}
}

func TestTDMBadSlotWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTDM([]bool{true}, 0, false)
}

func TestNames(t *testing.T) {
	if NewRROF(1).Name() != "rrof" || NewRR(1).Name() != "rr" ||
		NewFCFS().Name() != "fcfs" || NewTDM([]bool{true}, 1, false).Name() != "tdm" {
		t.Fatal("arbiter names wrong")
	}
	if NewRROF(1).NextWake(5) != -1 || NewRR(1).NextWake(5) != -1 || NewFCFS().NextWake(5) != -1 {
		t.Fatal("readiness-driven arbiters must return -1 from NextWake")
	}
}

// Property: RROF never grants a non-ready core, and the order remains a
// permutation of 0..n-1 under arbitrary Served sequences.
func TestPropertyRROFPermutation(t *testing.T) {
	f := func(serves []uint8, readyMask uint8) bool {
		const n = 5
		a := NewRROF(n)
		for _, s := range serves {
			a.Served(int(s) % (n + 2)) // include out-of-range ids
		}
		order := a.Order()
		if len(order) != n {
			return false
		}
		seen := map[int]bool{}
		for _, c := range order {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
		}
		cs := make([]Candidate, n)
		for i := range cs {
			cs[i] = Candidate{Core: i, Ready: readyMask&(1<<i) != 0}
		}
		got := a.Pick(0, cs)
		if got == -1 {
			return readyMask&((1<<n)-1) == 0
		}
		return cs[got].Ready
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TDM only ever grants at slot boundaries and never grants a
// non-ready candidate.
func TestPropertyTDMBoundary(t *testing.T) {
	f := func(nowRaw uint16, readyMask uint8) bool {
		a := NewTDM([]bool{true, true, true}, 7, true)
		now := int64(nowRaw)
		cs := make([]Candidate, 3)
		for i := range cs {
			cs[i] = Candidate{Core: i, Critical: true, Ready: readyMask&(1<<i) != 0}
		}
		got := a.Pick(now, cs)
		if got == -1 {
			return true
		}
		if now%7 != 0 {
			return false
		}
		return cs[got].Ready && got == a.SlotOwner(now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: RROF is starvation-free — a continuously-ready core is granted
// within N picks no matter how the other cores' readiness flips.
func TestPropertyRROFNoStarvation(t *testing.T) {
	f := func(readySeq []uint8, victim uint8) bool {
		const n = 4
		target := int(victim) % n
		a := NewRROF(n)
		picksSinceReady := 0
		for step := 0; step < len(readySeq); step++ {
			cs := make([]Candidate, n)
			for i := range cs {
				cs[i] = Candidate{Core: i, Ready: readySeq[step]&(1<<i) != 0}
			}
			cs[target].Ready = true // the victim is always ready
			got := a.Pick(0, cs)
			if got == -1 {
				return false // someone is ready, so the bus must not idle
			}
			if got == target {
				picksSinceReady = 0
				a.Served(got)
				continue
			}
			picksSinceReady++
			if picksSinceReady >= n {
				return false // starved beyond one full round
			}
			a.Served(got)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FCFS never inverts arrival order among ready candidates.
func TestPropertyFCFSOrder(t *testing.T) {
	f := func(enq []uint16, readyMask uint8) bool {
		n := len(enq)
		if n == 0 || n > 8 {
			return true
		}
		a := NewFCFS()
		cs := make([]Candidate, n)
		for i := range cs {
			cs[i] = Candidate{Core: i, Ready: readyMask&(1<<i) != 0, Enqueued: int64(enq[i])}
		}
		got := a.Pick(0, cs)
		if got == -1 {
			for _, c := range cs {
				if c.Ready {
					return false
				}
			}
			return true
		}
		for _, c := range cs {
			if c.Ready && (c.Enqueued < cs[got].Enqueued ||
				(c.Enqueued == cs[got].Enqueued && c.Core < got)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
