// Package bus implements the shared-bus arbitration policies of the paper
// and its baselines: RROF (Round-Robin Oldest-First, §III-B), plain
// round-robin, FCFS (the COTS baseline of Fig. 6), and TDM with
// critical-core-only service (the PENDULUM baseline).
//
// The arbiters are pure decision procedures over a snapshot of per-core
// request state; bus occupancy and transaction timing live in internal/core.
package bus

import (
	"fmt"

	"cohort/internal/obs"
)

// Candidate is the arbiter's view of one core when the bus is free.
type Candidate struct {
	// Core is the core index.
	Core int
	// Ready reports whether the core has an action that could use the bus
	// right now (a request broadcast, or a data transfer whose owner has
	// released the line).
	Ready bool
	// Pending reports whether the core has an outstanding request at all
	// (ready or still blocked on an owner's timer).
	Pending bool
	// Enqueued is the cycle the core's oldest pending request was enqueued
	// (meaningful when Pending; used by FCFS).
	Enqueued int64
	// Critical reports whether the core is critical at the current mode
	// (used by the TDM/PENDULUM policy).
	Critical bool
}

// Arbiter selects which core may use the bus.
type Arbiter interface {
	// Name identifies the policy.
	Name() string
	// Pick returns the index into cands of the winner, or -1 for an idle
	// bus. cands is ordered by core id and has one entry per core.
	Pick(now int64, cands []Candidate) int
	// Served tells the arbiter that core's oldest request completed
	// (received data). RROF uses this to rotate its sequence.
	Served(core int)
	// NextWake returns the next cycle strictly after now at which Pick
	// could succeed even without new readiness (TDM slot boundaries),
	// or -1 when readiness changes are the only trigger.
	NextWake(now int64) int64
}

// --- RROF ---------------------------------------------------------------

// RROF is Round-Robin Oldest-First: cores are kept in a cyclic sequence and
// a core keeps its position until its oldest request is served, at which
// point it moves to the back. Broadcasting or waiting for an owner's timer
// does not cost the position, which is what tightens the per-request bound
// (paper §III-B, [18]).
type RROF struct {
	order  []int
	grants obs.Counter
}

// NewRROF builds an RROF arbiter over n cores, initially ordered 0..n-1.
func NewRROF(n int) *RROF {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return &RROF{order: order}
}

// Name implements Arbiter.
func (a *RROF) Name() string { return "rrof" }

// Pick grants the first ready core in sequence order.
//
//cohort:hotpath
func (a *RROF) Pick(_ int64, cands []Candidate) int {
	for _, core := range a.order {
		if cands[core].Ready {
			a.grants.Inc()
			return core
		}
	}
	return -1
}

// Served moves the core to the back of the sequence (in place; the sequence
// is a permutation of fixed length, so no allocation is ever needed).
func (a *RROF) Served(core int) {
	for i, c := range a.order {
		if c == core {
			copy(a.order[i:], a.order[i+1:])
			a.order[len(a.order)-1] = core
			return
		}
	}
}

// NextWake implements Arbiter; RROF is purely readiness-driven.
func (a *RROF) NextWake(int64) int64 { return -1 }

// Order exposes the current sequence for tests and tracing.
func (a *RROF) Order() []int { return append([]int(nil), a.order...) }

// --- plain round-robin ----------------------------------------------------

// RR is a conventional round-robin arbiter: any grant (including a bare
// broadcast) rotates the core to the back of the sequence.
type RR struct {
	order  []int
	grants obs.Counter
}

// NewRR builds a plain round-robin arbiter over n cores.
func NewRR(n int) *RR {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return &RR{order: order}
}

// Name implements Arbiter.
func (a *RR) Name() string { return "rr" }

// Pick grants the first ready core and rotates it to the back.
//
//cohort:hotpath
func (a *RR) Pick(_ int64, cands []Candidate) int {
	for i, core := range a.order {
		if cands[core].Ready {
			copy(a.order[i:], a.order[i+1:])
			a.order[len(a.order)-1] = core
			a.grants.Inc()
			return core
		}
	}
	return -1
}

// Served implements Arbiter; RR rotates on grant instead.
func (a *RR) Served(int) {}

// Order exposes the current sequence for tests and state snapshots.
func (a *RR) Order() []int { return append([]int(nil), a.order...) }

// NextWake implements Arbiter.
func (a *RR) NextWake(int64) int64 { return -1 }

// --- FCFS -----------------------------------------------------------------

// FCFS grants the ready core whose oldest pending request was enqueued
// first (ties broken by core id). This is the COTS arbiter the paper
// normalizes Fig. 6 against.
type FCFS struct {
	grants obs.Counter
}

// NewFCFS builds a first-come-first-served arbiter.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Arbiter.
func (a *FCFS) Name() string { return "fcfs" }

// Pick grants the ready candidate with the earliest enqueue time.
//
//cohort:hotpath
func (a *FCFS) Pick(_ int64, cands []Candidate) int {
	best := -1
	for i := range cands {
		if !cands[i].Ready {
			continue
		}
		if best == -1 || cands[i].Enqueued < cands[best].Enqueued {
			best = i
		}
	}
	if best == -1 {
		return -1
	}
	a.grants.Inc()
	return cands[best].Core
}

// Served implements Arbiter.
func (a *FCFS) Served(int) {}

// NextWake implements Arbiter.
func (a *FCFS) NextWake(int64) int64 { return -1 }

// --- TDM (PENDULUM) ---------------------------------------------------------

// TDM divides bus time into fixed slots of SlotWidth cycles, cycling over
// the critical cores. A slot may only be used by its owner, starting at the
// slot boundary; an owner with nothing ready wastes the slot (the idle-slot
// penalty the paper attributes PENDULUM's slowdown to). When CritOnly is
// set, non-critical cores are served inside otherwise-idle slots only when
// no critical core has anything ready — PENDULUM's unfair service rule.
type TDM struct {
	schedule  []int // slot owners (critical cores)
	slotWidth int64
	critOnly  bool
	grants    obs.Counter
}

// NewTDM builds the PENDULUM arbiter. critical flags each core; slotWidth
// is SW. If no core is critical the schedule covers all cores.
func NewTDM(critical []bool, slotWidth int64, critOnly bool) *TDM {
	if slotWidth <= 0 {
		panic(fmt.Sprintf("bus: TDM slot width %d", slotWidth))
	}
	var sched []int
	for core, cr := range critical {
		if cr {
			sched = append(sched, core)
		}
	}
	if len(sched) == 0 {
		for core := range critical {
			sched = append(sched, core)
		}
	}
	return &TDM{schedule: sched, slotWidth: slotWidth, critOnly: critOnly}
}

// Name implements Arbiter.
func (a *TDM) Name() string { return "tdm" }

// SlotOwner returns the core owning the slot containing cycle now.
func (a *TDM) SlotOwner(now int64) int {
	slot := now / a.slotWidth
	return a.schedule[int(slot)%len(a.schedule)]
}

// Pick grants the slot owner at slot boundaries, or a non-critical core in
// an idle slot when permitted.
//
//cohort:hotpath
func (a *TDM) Pick(now int64, cands []Candidate) int {
	atBoundary := now%a.slotWidth == 0
	if !atBoundary {
		return -1
	}
	owner := a.SlotOwner(now)
	if cands[owner].Ready {
		a.grants.Inc()
		return owner
	}
	// Idle slot: optionally serve a non-critical core.
	if a.critOnly {
		for i := range cands {
			if cands[i].Critical && cands[i].Ready {
				return -1 // critical work exists; idle anyway (unfair rule)
			}
		}
	}
	for i := range cands {
		if !cands[i].Critical && cands[i].Ready {
			a.grants.Inc()
			return cands[i].Core
		}
	}
	return -1
}

// Served implements Arbiter.
func (a *TDM) Served(int) {}

// NextWake returns the next slot boundary after now.
func (a *TDM) NextWake(now int64) int64 {
	return (now/a.slotWidth + 1) * a.slotWidth
}

// --- observability ----------------------------------------------------------

// Grants returns the number of bus grants this arbiter instance has issued.
// Every policy counts grants; core.System.SetMetrics reads the value through
// this accessor so the metric follows arbiter replacement (the TDM schedule
// is rebuilt on a mode switch).
func (a *RROF) Grants() int64 { return a.grants.Value() }

// Grants returns the number of bus grants issued (see RROF.Grants).
func (a *RR) Grants() int64 { return a.grants.Value() }

// Grants returns the number of bus grants issued (see RROF.Grants).
func (a *FCFS) Grants() int64 { return a.grants.Value() }

// Grants returns the number of bus grants issued by this instance (see
// RROF.Grants; a mode switch resets the count with the schedule).
func (a *TDM) Grants() int64 { return a.grants.Value() }
