package cliutil

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cohort/internal/obs"
)

func testLogger(t *testing.T, buf *bytes.Buffer, c *Common) *obs.Logger {
	t.Helper()
	log, err := c.Logger(buf, obs.ManualClock{T: time.Unix(0, 0).UTC()})
	if err != nil {
		t.Fatalf("Logger: %v", err)
	}
	return log
}

// TestFlagMatrix parses the flag vectors the three shipping tools accept
// (cohort-sim registers obs+profile, cohort-bench and cohort-opt all three
// groups) and checks every value lands in the right field with the right
// default. The matrix pins the shared-surface contract: same flag names,
// same defaults, same semantics, whichever tool registers them.
func TestFlagMatrix(t *testing.T) {
	type groups struct{ work, obs, profile bool }
	cases := []struct {
		tool string
		reg  groups
		args []string
		want Common
	}{
		{
			tool: "cohort-sim",
			reg:  groups{obs: true, profile: true},
			args: []string{"-out-dir", "art", "-listen", ":0", "-cpuprofile", "cpu.out"},
			want: Common{OutDir: "art", Listen: ":0", LogLevel: "info", CPUProfile: "cpu.out"},
		},
		{
			tool: "cohort-bench",
			reg:  groups{work: true, obs: true, profile: true},
			args: []string{"-j", "4", "-batch", "8", "-log-level", "debug", "-log-json", "-memprofile", "mem.out"},
			want: Common{Jobs: 4, Batch: 8, Curve: true, LogLevel: "debug", LogJSON: true, MemProfile: "mem.out"},
		},
		{
			tool: "cohort-opt",
			reg:  groups{work: true, obs: true, profile: true},
			args: nil, // defaults only: curve oracle on, surrogate off
			want: Common{Curve: true, LogLevel: "info"},
		},
		{
			tool: "cohort-opt",
			reg:  groups{work: true, obs: true, profile: true},
			args: []string{"-curve=false", "-surrogate"},
			want: Common{Curve: false, Surrogate: true, LogLevel: "info"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.tool, func(t *testing.T) {
			c := New(tc.tool)
			fs := flag.NewFlagSet(tc.tool, flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			if tc.reg.work {
				c.RegisterWork(fs)
			}
			if tc.reg.obs {
				c.RegisterObs(fs)
			}
			if tc.reg.profile {
				c.RegisterProfile(fs)
			}
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse %v: %v", tc.args, err)
			}
			tc.want.Tool = tc.tool
			if *c != tc.want {
				t.Errorf("parsed %v:\n got  %+v\n want %+v", tc.args, *c, tc.want)
			}
		})
	}

	// A group that was not registered must reject its flags: cohort-sim has
	// no worker pool, so -j there is a usage error, not a silent no-op.
	c := New("cohort-sim")
	fs := flag.NewFlagSet("cohort-sim", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.RegisterObs(fs)
	if err := fs.Parse([]string{"-j", "4"}); err == nil {
		t.Errorf("unregistered -j parsed without error")
	}
}

// TestStartServerLifecycle covers the -listen path end to end: the server
// starts, logs its bound address, serves, and Close tears it down.
func TestStartServerLifecycle(t *testing.T) {
	c := New("cohort-test")
	c.Listen = "127.0.0.1:0"
	c.LogLevel = "info"
	var buf bytes.Buffer
	log := testLogger(t, &buf, c)

	srv, err := c.StartServer(nil, nil, log)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	if srv == nil {
		t.Fatal("StartServer returned nil server for a set -listen")
	}
	defer srv.Close()

	if !strings.Contains(buf.String(), srv.Addr()) {
		t.Errorf("bound address %q not logged in %q", srv.Addr(), buf.String())
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Errorf("server still serving after Close")
	}
}

// TestStartServerDisabled: without -listen the accessor returns (nil, nil)
// and the nil server's Close stays a safe no-op, so tools can defer
// unconditionally.
func TestStartServerDisabled(t *testing.T) {
	c := New("cohort-test")
	var buf bytes.Buffer
	log := testLogger(t, &buf, c)
	srv, err := c.StartServer(nil, nil, log)
	if err != nil || srv != nil {
		t.Fatalf("StartServer without -listen = (%v, %v), want (nil, nil)", srv, err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("nil server Close: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("disabled server logged %q", buf.String())
	}
}

// TestStartServerBadAddress: an unbindable address is a startup error the
// tool reports, not a silent skip.
func TestStartServerBadAddress(t *testing.T) {
	c := New("cohort-test")
	c.Listen = "256.256.256.256:http"
	var buf bytes.Buffer
	log := testLogger(t, &buf, c)
	if srv, err := c.StartServer(nil, nil, log); err == nil {
		srv.Close()
		t.Fatal("StartServer bound an impossible address")
	}
}

// TestLoggerJSONInterplay: -log-json flips the logger's wire format while
// -log-level keeps gating it, and an unknown level is a startup error.
func TestLoggerJSONInterplay(t *testing.T) {
	c := New("cohort-test")
	c.LogLevel = "info"
	c.LogJSON = true
	var buf bytes.Buffer
	log := testLogger(t, &buf, c)
	log.Infof("hello %d", 7)
	line := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(line, "{") || !strings.Contains(line, `"msg":"hello 7"`) {
		t.Errorf("-log-json line = %q, want JSON with msg field", line)
	}
	if !strings.Contains(line, `"tool":"cohort-test"`) {
		t.Errorf("JSON line %q missing tool attribution", line)
	}

	buf.Reset()
	c.LogJSON = false
	log = testLogger(t, &buf, c)
	log.Infof("hello %d", 7)
	if got := buf.String(); strings.HasPrefix(strings.TrimSpace(got), "{") {
		t.Errorf("text-mode line %q is JSON", got)
	}

	c.LogLevel = "verbose"
	if _, err := c.Logger(io.Discard, obs.WallClock{}); err == nil {
		t.Error("unknown -log-level accepted")
	}

	// Level gating applies in both formats.
	c.LogLevel = "error"
	c.LogJSON = true
	buf.Reset()
	log = testLogger(t, &buf, c)
	log.Infof("suppressed")
	if buf.Len() != 0 {
		t.Errorf("info line emitted at -log-level error: %q", buf.String())
	}
}

// TestStartProfilesErrors: an uncreatable -cpuprofile fails startup; an
// uncreatable -memprofile is logged at stop without failing the run (results
// are already out); the success path writes both files.
func TestStartProfilesErrors(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "no", "such", "dir")

	c := New("cohort-test")
	c.CPUProfile = filepath.Join(missing, "cpu.out")
	var buf bytes.Buffer
	log := testLogger(t, &buf, c)
	if stop, err := c.StartProfiles(log); err == nil {
		stop()
		t.Fatal("StartProfiles created a CPU profile in a missing directory")
	}

	c = New("cohort-test")
	c.MemProfile = filepath.Join(missing, "mem.out")
	buf.Reset()
	log = testLogger(t, &buf, c)
	stop, err := c.StartProfiles(log)
	if err != nil {
		t.Fatalf("StartProfiles with only -memprofile: %v", err)
	}
	stop()
	if !strings.Contains(buf.String(), "memprofile") {
		t.Errorf("memprofile creation failure not logged: %q", buf.String())
	}

	c = New("cohort-test")
	c.CPUProfile = filepath.Join(dir, "cpu.out")
	c.MemProfile = filepath.Join(dir, "mem.out")
	buf.Reset()
	log = testLogger(t, &buf, c)
	stop, err = c.StartProfiles(log)
	if err != nil {
		t.Fatalf("StartProfiles: %v", err)
	}
	stop()
	for _, p := range []string{c.CPUProfile, c.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s not written: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("successful profile run logged errors: %q", buf.String())
	}

	// No profile flags: the stop func must still be non-nil and harmless.
	c = New("cohort-test")
	stop, err = c.StartProfiles(testLogger(t, &buf, c))
	if err != nil || stop == nil {
		t.Fatalf("StartProfiles without flags: err=%v, stop nil=%v; want non-nil no-op", err, stop == nil)
	}
	stop()
}
