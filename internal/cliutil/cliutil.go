// Package cliutil unifies the flag surface and runtime plumbing the cohort
// CLIs share: the worker/oracle knobs (-j, -batch, -curve, -surrogate),
// artifact output
// (-out-dir), profiling (-cpuprofile, -memprofile), and the observability
// additions — the opt-in debug server (-listen) and the structured logger
// (-log-level, -log-json). Before this package each tool declared and wired
// its own copies; now a tool registers one Common and gets identical flag
// names, help strings and semantics.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"cohort/internal/obs"
)

// Common holds the shared flag values of one CLI invocation. Register the
// groups a tool needs, Parse, then use the accessors.
type Common struct {
	Tool string

	// Work flags (RegisterWork).
	Jobs      int
	Batch     int
	Curve     bool
	Surrogate bool

	// Observability flags (RegisterObs).
	OutDir   string
	Listen   string
	LogLevel string
	LogJSON  bool

	// Profiling flags (RegisterProfile).
	CPUProfile string
	MemProfile string
}

// New returns a Common for the named tool.
func New(tool string) *Common {
	return &Common{Tool: tool}
}

// RegisterWork installs the parallelism flags: -j and -batch. Tools whose
// results are independent of these (by the deterministic-parallelism
// contract) share one help text stating so.
func (c *Common) RegisterWork(fs *flag.FlagSet) {
	fs.IntVar(&c.Jobs, "j", 0, "evaluation workers (1 = serial, <1 = NumCPU); output is identical for every value")
	fs.IntVar(&c.Batch, "batch", 0, "analysis-oracle batch width (0 or 1 = scalar oracle, >=2 = batched SoA oracle); output is identical for every value")
	fs.BoolVar(&c.Curve, "curve", true, "answer optimizer oracle queries from per-core hit-curve indexes (tier 1, exact; takes precedence over -batch); output is identical for every value")
	fs.BoolVar(&c.Surrogate, "surrogate", false, "prefilter GA children with the curve-bound surrogate fitness (tier 2, approximate: fewer exact evaluations, optimum may differ); requires -curve")
}

// RegisterObs installs the observability flags: -out-dir, -listen,
// -log-level and -log-json.
func (c *Common) RegisterObs(fs *flag.FlagSet) {
	fs.StringVar(&c.OutDir, "out-dir", "", "write a run manifest (and tool-specific artifacts) into this directory")
	fs.StringVar(&c.Listen, "listen", "", "serve /metrics, /runs, /healthz and /debug/pprof/ on this address (e.g. :8723) for the lifetime of the run")
	fs.StringVar(&c.LogLevel, "log-level", "info", "log threshold: debug, info, warn, error or off")
	fs.BoolVar(&c.LogJSON, "log-json", false, "emit structured JSON log lines instead of plain text")
}

// RegisterProfile installs the profiling flags: -cpuprofile and
// -memprofile.
func (c *Common) RegisterProfile(fs *flag.FlagSet) {
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
}

// Logger builds the tool's logger from -log-level/-log-json, writing to w
// (the tools pass os.Stderr). In text mode at the default level the output
// is byte-for-byte what the pre-logger fmt.Fprintf call sites produced.
func (c *Common) Logger(w io.Writer, clk obs.Clock) (*obs.Logger, error) {
	level, err := obs.ParseLogLevel(c.LogLevel)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, level, c.LogJSON, c.Tool, clk), nil
}

// StartServer starts the debug server when -listen is set; without the
// flag it returns (nil, nil) and the nil *DebugServer's Close is a no-op.
// The bound address is logged so ":0" runs are scrapeable.
func (c *Common) StartServer(reg *obs.Registry, tracker *obs.RunTracker, log *obs.Logger) (*obs.DebugServer, error) {
	if c.Listen == "" {
		return nil, nil
	}
	srv, err := obs.StartDebugServer(c.Listen, reg, tracker)
	if err != nil {
		return nil, err
	}
	log.Infof("%s: serving /metrics, /runs, /healthz, /debug/pprof/ on http://%s", c.Tool, srv.Addr())
	return srv, nil
}

// StartProfiles starts the CPU profile when -cpuprofile is set and returns
// a stop function that finishes it and writes the heap profile when
// -memprofile is set. The stop function is never nil; defer it
// unconditionally. Heap-profile failures are logged, not fatal — the run's
// results are already out by then.
func (c *Common) StartProfiles(log *obs.Logger) (func(), error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if c.MemProfile == "" {
			return
		}
		f, err := os.Create(c.MemProfile)
		if err != nil {
			log.Errorf("%s: memprofile: %v", c.Tool, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Errorf("%s: memprofile: %v", c.Tool, err)
		}
	}, nil
}

// Fatal prints a tool-prefixed error to stderr and exits 1 — the shared
// shape of every CLI's error path.
func Fatal(tool string, err error) {
	fmt.Fprintln(os.Stderr, tool+":", err)
	os.Exit(1)
}
