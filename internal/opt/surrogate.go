// Tier-2 surrogate fitness: a curve-bound replica of the exact evaluation
// used to prefilter GA children before the exact oracle runs. The surrogate
// reads each timed core's (hits, misses) split straight from the hit-curve
// index with Lookup — no memo, no allocation, no Evaluation assembly — and
// mirrors evaluateSrc's arithmetic in the same floating-point order, so
// wherever the curve answers, the surrogate fitness *equals* the exact
// fitness bit for bit. Where an incomplete curve cannot answer, the
// surrogate substitutes the optimistic all-hit split, which only lowers the
// objective and can only clear — never raise — constraint violations:
// either way the surrogate never exceeds the exact fitness, which is the
// safety property the pruning rule in Optimize relies on (a pruned child's
// exact fitness is provably above the elite frontier).
package opt

import (
	"cohort/internal/analysis"
	"cohort/internal/config"
)

// DefaultSurrogateMargin is the relative frontier margin used when
// GAConfig.SurrogateMargin is left zero: children whose surrogate fitness
// is within 25% above the worst elite are still evaluated exactly.
const DefaultSurrogateMargin = 0.25

// surrogateFitness computes the tier-2 fitness bound of a gene vector. Only
// valid in curve mode (e.curves installed by thetaISCurve). The full timer
// vector is expanded into a scratch buffer reused across children, so the
// prefilter allocates nothing per child.
func (e *evaluator) surrogateFitness(genes []config.Timer) float64 {
	c := e.c
	p := c.p
	if e.surrTimers == nil {
		e.surrTimers = make([]config.Timer, len(p.Streams))
	}
	timers := e.surrTimers
	g := 0
	for i := range p.Streams {
		if p.Timed[i] {
			timers[i] = genes[g]
			g++
		} else {
			timers[i] = config.TimerMSI
		}
	}
	// Timer-dependent part of every core's WCL — the same hoist as
	// evaluateSrc.
	var timerSum int64
	for _, th := range timers {
		if th >= 0 {
			timerSum += int64(th) + c.sw
		}
	}
	var objective, violation float64
	for i := range p.Streams {
		wcl := c.wclBase + timerSum
		if timers[i] >= 0 {
			wcl -= int64(timers[i]) + c.sw
		}
		lambda := c.lambdas[i]
		var wcml int64
		if timers[i].Timed() {
			h, m, ok := e.curves[i].Lookup(timers[i])
			if !ok {
				// Beyond an incomplete curve's frontier: assume every access
				// a guaranteed hit — the optimistic extreme of the split.
				h, m = lambda, 0
			}
			wcml = analysis.WCML(h, m, p.Lat.Hit, wcl)
		} else {
			wcml = analysis.WCMLAllMiss(lambda, wcl)
		}
		if lambda > 0 {
			term := float64(wcml) / float64(lambda)
			if p.Timed[i] {
				objective += term
			} else {
				objective += c.msiW * term
			}
		}
		if timers[i].Timed() && p.Gamma != nil && p.Gamma[i] > 0 && wcml > p.Gamma[i] {
			violation += float64(wcml-p.Gamma[i]) / float64(p.Gamma[i])
		}
	}
	// Same violation folding as fitness().
	if violation == 0 {
		return objective
	}
	return 1e18 * (1 + violation)
}
