package opt

import (
	"reflect"
	"testing"

	"cohort/internal/analysis"
	"cohort/internal/config"
)

// The curve-oracle contract: OracleCurve changes only the cost of a run,
// never its Result — for both engines, every seed, cold and warm curve
// cache, and across the full Workers × OracleBatch grid. The fail-closed
// tests prove a seeded curve fault (a skewed breakpoint) makes exactly
// these comparisons trip, and the surrogate tests pin tier 2: pruning saves
// evaluations without ever moving the reported optimum.

// eagerCurves forces curve installation regardless of run size for one
// test: these suites pin the curve-served query path itself; the
// amortization gate that decides *when* curves install has its own test
// (TestCurveAmortizationGate). No opt test runs parallel, so mutating the
// package var is race-free.
func eagerCurves(t *testing.T) {
	t.Helper()
	old := curveBuildBudget
	curveBuildBudget = 0
	t.Cleanup(func() { curveBuildBudget = old })
}

func TestOptimizeCurveOracleEquivalence(t *testing.T) {
	eagerCurves(t)
	for _, cfg := range []struct {
		name  string
		timed []bool
	}{
		{"all-timed", []bool{true, true, true, true}},
		{"half-timed", []bool{true, true, false, false}},
	} {
		p := problemFor("fft", 0.01, cfg.timed)
		for _, seed := range equivalenceSeeds {
			gc := DefaultGA(seed)
			gc.Pop, gc.Generations = 10, 6
			scalar, err := Optimize(p, gc)
			if err != nil {
				t.Fatalf("%s seed %d scalar: %v", cfg.name, seed, err)
			}
			gc.OracleCurve = true
			ResetCurveCache()
			for _, cache := range []string{"cold", "warm"} {
				curve, err := Optimize(p, gc)
				if err != nil {
					t.Fatalf("%s seed %d curve (%s): %v", cfg.name, seed, cache, err)
				}
				if !reflect.DeepEqual(scalar, curve) {
					t.Errorf("%s seed %d: scalar and curve (%s cache) GA results differ\nscalar: %+v\ncurve: %+v",
						cfg.name, seed, cache, scalar, curve)
				}
			}
		}
	}
}

func TestHillClimbCurveOracleEquivalence(t *testing.T) {
	eagerCurves(t)
	p := problemFor("water", 0.01, []bool{true, true, true, false})
	for _, seed := range equivalenceSeeds {
		hc := DefaultHC(seed)
		hc.Restarts, hc.MaxSteps = 3, 20
		scalar, err := HillClimb(p, hc)
		if err != nil {
			t.Fatalf("seed %d scalar: %v", seed, err)
		}
		hc.OracleCurve = true
		curve, err := HillClimb(p, hc)
		if err != nil {
			t.Fatalf("seed %d curve: %v", seed, err)
		}
		if !reflect.DeepEqual(scalar, curve) {
			t.Errorf("seed %d: scalar and curve hill-climb results differ\nscalar: %+v\ncurve: %+v",
				seed, scalar, curve)
		}
	}
}

// TestCurveOracleWorkersCross is the acceptance grid: curve on/off ×
// Workers {1, 4, 8} × OracleBatch {1, 16}, every cell against the serial
// scalar reference.
func TestCurveOracleWorkersCross(t *testing.T) {
	eagerCurves(t)
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(42)
	gc.Pop, gc.Generations = 10, 6
	ref, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	ResetCurveCache()
	for _, curve := range []bool{false, true} {
		for _, w := range []int{1, 4, 8} {
			for _, ob := range []int{1, 16} {
				gc.OracleCurve, gc.Workers, gc.OracleBatch = curve, w, ob
				got, err := Optimize(p, gc)
				if err != nil {
					t.Fatalf("curve %v workers %d batch %d: %v", curve, w, ob, err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("curve %v workers %d batch %d: Result differs from serial scalar reference", curve, w, ob)
				}
			}
		}
	}
}

// TestCurveOracleFailsClosed proves the curve equivalence suite cannot pass
// vacuously: a seeded breakpoint skew — applied after construction
// verification, so only the query path is wrong — must make the
// scalar-vs-curve comparison report a mismatch.
func TestCurveOracleFailsClosed(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(42)
	gc.Pop, gc.Generations = 10, 6
	scalar, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	analysis.TestHooks.CurveBreakpointSkew = 1
	defer func() { analysis.TestHooks.CurveBreakpointSkew = 0 }()
	gc.OracleCurve = true
	skewed, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(scalar, skewed) {
		t.Fatal("seeded curve fault not detected: skewed curve Result equals scalar Result")
	}
}

// TestSurrogatePrunes pins tier 2's effect and its guarantee at once: with
// the prefilter on, the GA computes strictly fewer exact evaluations, yet
// the reported optimum is exactly the scalar run's — on this workload the
// curves are complete, so the surrogate equals the exact fitness wherever
// it is consulted and pruning can only skip children that provably cannot
// improve the best. The returned Eval must also re-derive bit-identically
// from the returned timers.
func TestSurrogatePrunes(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(42)
	gc.Pop, gc.Generations = 20, 12
	scalar, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	gc.OracleCurve, gc.Surrogate = true, true
	surr, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	if surr.Evaluations >= scalar.Evaluations {
		t.Fatalf("surrogate pruned nothing: %d evaluations vs %d exact", surr.Evaluations, scalar.Evaluations)
	}
	if !reflect.DeepEqual(surr.Timers, scalar.Timers) || !reflect.DeepEqual(surr.Eval, scalar.Eval) {
		t.Errorf("surrogate moved the optimum:\nexact: %v %+v\nsurrogate: %v %+v",
			scalar.Timers, scalar.Eval, surr.Timers, surr.Eval)
	}
	if re := p.Evaluate(surr.Timers); !reflect.DeepEqual(re, surr.Eval) {
		t.Errorf("reported Eval does not re-derive from reported Timers")
	}
}

// TestSurrogateHugeMarginIdentical pins the degenerate property: a margin
// wide enough to keep every child makes the surrogate run bit-identical to
// the exact curve run — Evaluations, Engine counters and all.
func TestSurrogateHugeMarginIdentical(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(7777)
	gc.Pop, gc.Generations = 10, 6
	gc.OracleCurve = true
	exact, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	gc.Surrogate, gc.SurrogateMargin = true, 1e18
	wide, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, wide) {
		t.Errorf("huge-margin surrogate run differs from exact curve run\nexact: %+v\nsurrogate: %+v", exact, wide)
	}
}

// TestSurrogateFailsClosed proves tier 2 inherits the fail-closed property:
// under a seeded breakpoint skew the surrogate run must diverge from the
// clean surrogate run — the skew reaches both the surrogate fitness and the
// exact re-check's memo, so it cannot cancel out.
func TestSurrogateFailsClosed(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(42)
	gc.Pop, gc.Generations = 10, 6
	gc.OracleCurve, gc.Surrogate = true, true
	clean, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	analysis.TestHooks.CurveBreakpointSkew = 1
	defer func() { analysis.TestHooks.CurveBreakpointSkew = 0 }()
	skewed, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(clean, skewed) {
		t.Fatal("seeded curve fault not detected through the surrogate tier")
	}
}

// TestSurrogateRequiresCurve pins the configuration contract: tier 2 cannot
// run without tier 1.
func TestSurrogateRequiresCurve(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(1)
	gc.Surrogate = true
	if _, err := Optimize(p, gc); err == nil {
		t.Fatal("Surrogate without OracleCurve accepted")
	}
}

// TestCurveAmortizationGate pins the installation policy itself: a cold run
// shorter than curveBuildBudget never constructs an index (the fallback
// exact oracle serves everything), a longer run installs the curves
// mid-flight at the budget boundary, a warm evaluator installs eagerly at
// construction — and the evaluations are bit-identical on every side of
// every switch.
func TestCurveAmortizationGate(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	genomes := make([][]config.Timer, 24)
	for i := range genomes {
		th := config.Timer(i + 1)
		genomes[i] = []config.Timer{th, th + 3, 2*th + 1, th}
	}
	scalar := newEvaluator(p, 1, 0, false, false, nil)
	want := scalar.batch(genomes)

	old := curveBuildBudget
	t.Cleanup(func() { curveBuildBudget = old })

	// Short cold run: the budget is out of reach, so the index must never be
	// built and the scalar path must serve the whole run.
	curveBuildBudget = int64(len(genomes)) + 1
	ResetCurveCache()
	lazy := newEvaluator(p, 1, 0, true, false, nil)
	if lazy.curves != nil {
		t.Fatal("cold evaluator installed curves at construction despite the budget")
	}
	if got := lazy.batch(genomes); !reflect.DeepEqual(got, want) {
		t.Fatal("lazy curve evaluator diverged from scalar")
	}
	if lazy.curves != nil {
		t.Fatalf("curves built below the budget (%d misses < %d)", lazy.cacheMisses, curveBuildBudget)
	}

	// Crossing the budget mid-run: the second batch must trigger
	// installation, and the combined results must still match.
	curveBuildBudget = 8
	ResetCurveCache()
	mid := newEvaluator(p, 1, 0, true, false, nil)
	first := mid.batch(genomes[:12])
	if mid.curves == nil {
		t.Fatalf("curves not built after %d misses with budget %d", mid.cacheMisses, curveBuildBudget)
	}
	second := mid.batch(genomes[12:])
	if got := append(append([]Evaluation(nil), first...), second...); !reflect.DeepEqual(got, want) {
		t.Fatal("mid-run curve switch changed evaluations")
	}

	// Warm process cache: the curves built above are memoized, so a fresh
	// evaluator over the same problem installs them eagerly — a fetch, not
	// a build — even though the budget is far away.
	curveBuildBudget = 1 << 30
	warm := newEvaluator(p, 1, 0, true, false, nil)
	if warm.curves == nil {
		t.Fatal("warm evaluator did not install cached curves eagerly")
	}
	if got := warm.batch(genomes); !reflect.DeepEqual(got, want) {
		t.Fatal("warm curve evaluator diverged from scalar")
	}
}
