package opt

import (
	"testing"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/trace"
)

func paperLat() config.Latencies { return config.Latencies{Hit: 1, Req: 4, Data: 50, DRAM: 100} }

func geomL1() config.CacheGeometry {
	return config.CacheGeometry{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 1}
}

func problemFor(name string, scale float64, timed []bool) *Problem {
	p, err := trace.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	tr := p.Scaled(scale).Generate(len(timed), 64, 21)
	return &Problem{
		Lat:     paperLat(),
		L1:      geomL1(),
		Streams: tr.Streams,
		Timed:   timed,
	}
}

func TestProblemValidate(t *testing.T) {
	p := problemFor("fft", 0.005, []bool{true, true, true, true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Timed = []bool{true}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched Timed accepted")
	}
	bad2 := *p
	bad2.Gamma = []int64{1}
	if err := bad2.Validate(); err == nil {
		t.Fatal("mismatched Gamma accepted")
	}
	bad3 := *p
	bad3.Streams = nil
	if err := bad3.Validate(); err == nil {
		t.Fatal("empty streams accepted")
	}
}

func TestTimersExpansion(t *testing.T) {
	p := problemFor("fft", 0.005, []bool{true, false, true, false})
	got := p.Timers([]config.Timer{7, 9})
	want := []config.Timer{7, config.TimerMSI, 9, config.TimerMSI}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Timers = %v, want %v", got, want)
		}
	}
}

func TestEvaluateMatchesAnalysis(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, false, false})
	timers := p.Timers([]config.Timer{100, 50})
	ev := p.Evaluate(timers)
	for i := range p.Streams {
		wantWCL := analysis.WCLCoHoRT(p.Lat, timers, i)
		if ev.PerCore[i].WCL != wantWCL {
			t.Fatalf("core %d WCL %d != %d", i, ev.PerCore[i].WCL, wantWCL)
		}
	}
	if ev.Objective <= 0 {
		t.Fatal("objective not positive")
	}
	if !ev.Feasible() {
		t.Fatal("unconstrained evaluation must be feasible")
	}
}

func TestEvaluateConstraintViolation(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	p.Gamma = []int64{1, 0, 0, 0} // impossible requirement on core 0
	ev := p.Evaluate(p.Timers([]config.Timer{100, 100, 100, 100}))
	if ev.Feasible() {
		t.Fatal("impossible Γ reported feasible")
	}
	if fitness(&ev) < 1e18 {
		t.Fatal("infeasible fitness must dominate any feasible objective")
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	p := problemFor("water", 0.01, []bool{true, true, false, false})
	gc := DefaultGA(5)
	gc.Pop, gc.Generations = 12, 8
	a, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Timers {
		if a.Timers[i] != b.Timers[i] {
			t.Fatalf("nondeterministic GA: %v vs %v", a.Timers, b.Timers)
		}
	}
	if a.Evaluations == 0 || len(a.BestHistory) != gc.Generations {
		t.Fatalf("bookkeeping: evals=%d history=%d", a.Evaluations, len(a.BestHistory))
	}
}

func TestOptimizeImprovesOverExtremes(t *testing.T) {
	// The GA's best must be at least as good as both seeded extremes
	// (θ=1 everywhere and θ=θ_is everywhere), which are in the initial
	// population by construction.
	p := problemFor("fft", 0.02, []bool{true, true, true, true})
	gc := DefaultGA(7)
	gc.Pop, gc.Generations = 16, 12
	res, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	ones := p.Evaluate(p.Timers([]config.Timer{1, 1, 1, 1}))
	sat := p.Evaluate(p.Timers(res.ThetaIS))
	if res.Eval.Objective > ones.Objective || res.Eval.Objective > sat.Objective {
		t.Fatalf("GA best %.1f worse than extremes (%.1f, %.1f)",
			res.Eval.Objective, ones.Objective, sat.Objective)
	}
	// Monotone best-so-far history.
	for i := 1; i < len(res.BestHistory); i++ {
		if res.BestHistory[i] > res.BestHistory[i-1] {
			t.Fatal("best-so-far history regressed")
		}
	}
	// Genes respect the θ_is bounds.
	g := 0
	for i, timed := range p.Timed {
		if !timed {
			continue
		}
		if res.Timers[i] < 1 || res.Timers[i] > res.ThetaIS[g] {
			t.Fatalf("gene %d = %v outside [1, %v]", g, res.Timers[i], res.ThetaIS[g])
		}
		g++
	}
}

func TestOptimizeRespectsFeasibleConstraint(t *testing.T) {
	p := problemFor("fft", 0.02, []bool{true, true, true, true})
	// A requirement satisfiable with θ=1 everywhere: use that evaluation
	// plus slack as Γ for core 0.
	ones := p.Evaluate(p.Timers([]config.Timer{1, 1, 1, 1}))
	p.Gamma = []int64{ones.PerCore[0].WCMLBound + 1000, 0, 0, 0}
	gc := DefaultGA(11)
	gc.Pop, gc.Generations = 16, 12
	res, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Eval.Feasible() {
		t.Fatalf("feasible point exists (θ=1…) but GA returned violation %.3f", res.Eval.Violation)
	}
	if res.Eval.PerCore[0].WCMLBound > p.Gamma[0] {
		t.Fatalf("returned point violates Γ: %d > %d", res.Eval.PerCore[0].WCMLBound, p.Gamma[0])
	}
}

func TestOptimizeNoTimedCores(t *testing.T) {
	p := problemFor("fft", 0.005, []bool{false, false, false, false})
	res, err := Optimize(p, DefaultGA(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range res.Timers {
		if th != config.TimerMSI {
			t.Fatalf("no-timed result: %v", res.Timers)
		}
	}
	if res.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want 1", res.Evaluations)
	}
}

func TestOptimizeConfigValidation(t *testing.T) {
	p := problemFor("fft", 0.005, []bool{true, true, true, true})
	if _, err := Optimize(p, GAConfig{Pop: 1, Generations: 5}); err == nil {
		t.Fatal("degenerate population accepted")
	}
	if _, err := Optimize(p, GAConfig{Pop: 4, Generations: 0}); err == nil {
		t.Fatal("zero generations accepted")
	}
	gc := DefaultGA(1)
	gc.Elite = gc.Pop
	if _, err := Optimize(p, gc); err == nil {
		t.Fatal("elite ≥ pop accepted")
	}
}

func BenchmarkEvaluate(b *testing.B) {
	p := problemFor("fft", 0.05, []bool{true, true, true, true})
	timers := p.Timers([]config.Timer{100, 50, 20, 10})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Evaluate(timers)
	}
}

func TestHillClimbDeterministic(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, false, false})
	hc := DefaultHC(3)
	hc.Restarts, hc.MaxSteps = 3, 20
	a, err := HillClimb(p, hc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(p, hc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Timers {
		if a.Timers[i] != b.Timers[i] {
			t.Fatalf("nondeterministic HC: %v vs %v", a.Timers, b.Timers)
		}
	}
	if a.Evaluations == 0 {
		t.Fatal("no oracle calls recorded")
	}
}

func TestHillClimbComparableToGA(t *testing.T) {
	p := problemFor("water", 0.02, []bool{true, true, true, true})
	gaRes, err := Optimize(p, DefaultGA(1))
	if err != nil {
		t.Fatal(err)
	}
	hcRes, err := HillClimb(p, DefaultHC(1))
	if err != nil {
		t.Fatal(err)
	}
	// Both engines drive the same oracle; neither should be wildly worse.
	if hcRes.Eval.Objective > 1.5*gaRes.Eval.Objective {
		t.Fatalf("HC objective %.1f far above GA %.1f", hcRes.Eval.Objective, gaRes.Eval.Objective)
	}
	if gaRes.Eval.Objective > 1.5*hcRes.Eval.Objective {
		t.Fatalf("GA objective %.1f far above HC %.1f", gaRes.Eval.Objective, hcRes.Eval.Objective)
	}
	// Both respect the gene bounds.
	for _, r := range []*Result{gaRes, hcRes} {
		g := 0
		for i, timed := range p.Timed {
			if !timed {
				continue
			}
			if r.Timers[i] < 1 || r.Timers[i] > r.ThetaIS[g] {
				t.Fatalf("timer %v outside [1, %v]", r.Timers[i], r.ThetaIS[g])
			}
			g++
		}
	}
}

func TestHillClimbRespectsConstraint(t *testing.T) {
	p := problemFor("fft", 0.02, []bool{true, true, true, true})
	ones := p.Evaluate(p.Timers([]config.Timer{1, 1, 1, 1}))
	p.Gamma = []int64{ones.PerCore[0].WCMLBound + 1000, 0, 0, 0}
	res, err := HillClimb(p, DefaultHC(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Eval.Feasible() {
		t.Fatalf("feasible point exists but HC returned violation %.3f", res.Eval.Violation)
	}
}

func TestHillClimbValidation(t *testing.T) {
	p := problemFor("fft", 0.005, []bool{true, true, true, true})
	if _, err := HillClimb(p, HCConfig{Restarts: 0, MaxSteps: 5}); err == nil {
		t.Fatal("zero restarts accepted")
	}
	if _, err := HillClimb(p, HCConfig{Restarts: 1, MaxSteps: 0}); err == nil {
		t.Fatal("zero steps accepted")
	}
	none := problemFor("fft", 0.005, []bool{false, false, false, false})
	res, err := HillClimb(none, DefaultHC(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timers[0] != config.TimerMSI {
		t.Fatal("no-timed HC result wrong")
	}
}
