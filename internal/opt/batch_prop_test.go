package opt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cohort/internal/config"
	"cohort/internal/parallel"
)

// Property tests for the invariants batching must not disturb: the
// genome-level memo key is a pure function of the timer vector (so scalar
// and batched runs address the same cache entries), job seeding is a pure
// function of (base, index) (so no batched fan-out can perturb RNG streams),
// and the evaluator's per-core memo content and counters are a pure function
// of the genome sequence.

func TestGenomeKeyPureFunction(t *testing.T) {
	prop := func(raw []int16) bool {
		timers := make([]config.Timer, len(raw))
		for i, v := range raw {
			timers[i] = config.Timer(v)
		}
		clone := append([]config.Timer(nil), timers...)
		if genomeKey(timers) != genomeKey(clone) {
			return false
		}
		if len(timers) > 0 {
			mutated := append([]config.Timer(nil), timers...)
			mutated[len(mutated)/2]++
			if genomeKey(mutated) == genomeKey(timers) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Vector length is part of the key: a vector must never collide with its own
// prefix (the classic concatenation ambiguity).
func TestGenomeKeyLengthDomainSeparated(t *testing.T) {
	v := []config.Timer{3, 5, 9}
	if genomeKey(v) == genomeKey(v[:2]) {
		t.Fatal("genome key collides with its prefix")
	}
}

func TestJobSeedIndexPure(t *testing.T) {
	prop := func(base uint64, index uint16) bool {
		return parallel.JobSeed(base, int(index)) == parallel.JobSeed(base, int(index))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
	// No collisions across a realistic index range for a fixed base: a
	// collision would make two jobs share an RNG stream.
	seen := make(map[uint64]int, 1<<14)
	for i := 0; i < 1<<14; i++ {
		s := parallel.JobSeed(42, i)
		if j, ok := seen[s]; ok {
			t.Fatalf("JobSeed(42, %d) == JobSeed(42, %d)", i, j)
		}
		seen[s] = i
	}
}

// TestEvaluatorCoreMemoDeterministic drives identical genome sequences
// through evaluators at every Workers × OracleBatch combination and asserts
// the observable state — evaluations returned, genome-cache counters,
// computed count, and the per-core memo content — is identical everywhere.
func TestEvaluatorCoreMemoDeterministic(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, false, true})
	// Three batches with deliberate overlap (cross-batch memo hits) and
	// shared genes across genomes (per-core memo hits).
	sequences := [][][]config.Timer{
		{{1, 1, 1}, {5, 9, 13}, {5, 9, 13}, {1, 9, 13}},
		{{5, 9, 13}, {7, 9, 2}},
		{{1, 1, 1}, {7, 1, 2}, {4000, 17, 23}},
	}
	type snapshot struct {
		evals    [][]Evaluation
		computed int
		jobs     int64
		hits     int64
		misses   int64
		memo     []map[config.Timer][2]int64
	}
	run := func(workers, oracleBatch int, curve bool) snapshot {
		e := newEvaluator(p, workers, oracleBatch, curve, false, nil)
		if curve {
			// Force eager installation: this harness pins the curve-served
			// path itself, not the amortization gate (tested separately).
			if e.curves == nil {
				e.installCurves()
			}
			thetaISCurve(p, e)
		}
		var evals [][]Evaluation
		for _, seq := range sequences {
			evals = append(evals, e.batch(seq))
		}
		st := e.engineStats()
		return snapshot{
			evals:    evals,
			computed: e.computed,
			jobs:     st.Jobs,
			hits:     st.CacheHits,
			misses:   st.CacheMisses,
			memo:     e.coreMemo,
		}
	}
	ref := run(1, 2, false)
	if len(ref.memo) == 0 || len(ref.memo[0]) == 0 {
		t.Fatal("batched reference evaluator built no per-core memo")
	}
	scalar := run(1, 0, false)
	if !reflect.DeepEqual(ref.evals, scalar.evals) {
		t.Fatal("batched and scalar evaluations differ")
	}
	if ref.computed != scalar.computed || ref.jobs != scalar.jobs ||
		ref.hits != scalar.hits || ref.misses != scalar.misses {
		t.Fatalf("batched counters (%d,%d,%d,%d) != scalar (%d,%d,%d,%d)",
			ref.computed, ref.jobs, ref.hits, ref.misses,
			scalar.computed, scalar.jobs, scalar.hits, scalar.misses)
	}
	for _, workers := range []int{1, 4, 8} {
		for _, ob := range []int{2, 3, 7, 64} {
			got := run(workers, ob, false)
			if !reflect.DeepEqual(got.evals, ref.evals) {
				t.Fatalf("workers %d batch %d: evaluations differ", workers, ob)
			}
			if got.computed != ref.computed || got.jobs != ref.jobs ||
				got.hits != ref.hits || got.misses != ref.misses {
				t.Fatalf("workers %d batch %d: counters differ", workers, ob)
			}
			if !reflect.DeepEqual(got.memo, ref.memo) {
				t.Fatalf("workers %d batch %d: per-core memo content differs", workers, ob)
			}
		}
	}
	// The curve oracle reads the index directly — no per-core memo — but
	// every value it serves is an exact IsolationHits split, so evaluations
	// and every counter must still be identical. Cold curve cache first, warm
	// afterwards.
	ResetCurveCache()
	for _, workers := range []int{1, 4, 8} {
		got := run(workers, 0, true)
		if !reflect.DeepEqual(got.evals, ref.evals) {
			t.Fatalf("curve workers %d: evaluations differ", workers)
		}
		if got.computed != ref.computed || got.jobs != ref.jobs ||
			got.hits != ref.hits || got.misses != ref.misses {
			t.Fatalf("curve workers %d: counters differ", workers)
		}
		if got.memo != nil {
			t.Fatalf("curve workers %d: curve oracle built a per-core memo", workers)
		}
	}
}
