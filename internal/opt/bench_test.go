package opt

import (
	"fmt"
	"reflect"
	"testing"

	"cohort/internal/config"
)

// BenchmarkOptimize measures the GA on the default problem shape from the
// acceptance criterion (population 20 × 16 generations) across worker counts
// and oracle batch widths. On a multi-core machine -j 4 should come in at
// ≥2× over -j 1; on a single-CPU host the worker pool degrades to ~1× with
// bounded overhead, and the speedup must come from the batched oracle
// instead: batch ≥ 16 amortizes the stream analysis across configurations
// (one SoA walk per fresh timer chunk plus a run-lifetime per-core memo) and
// is the PR-7 acceptance-criterion cell. Every sub-benchmark's Result is
// asserted byte-identical against the serial scalar baseline, so the
// benchmark doubles as an equivalence check at full problem size.
//
//	go test -bench Optimize -benchtime 3x ./internal/opt
func BenchmarkOptimize(b *testing.B) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	var baseline *Result
	for _, cell := range []struct{ workers, batch int }{
		{1, 0}, {2, 0}, {4, 0}, {8, 0},
		{1, 4}, {1, 16}, {1, 64}, {4, 16},
	} {
		b.Run(fmt.Sprintf("j=%d/batch=%d", cell.workers, cell.batch), func(b *testing.B) {
			gc := DefaultGA(42)
			gc.Pop, gc.Generations = 20, 16
			gc.Workers = cell.workers
			gc.OracleBatch = cell.batch
			b.ReportAllocs()
			var last *Result
			for i := 0; i < b.N; i++ {
				res, err := Optimize(p, gc)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			if baseline == nil {
				baseline = last
			} else if !reflect.DeepEqual(baseline, last) {
				b.Fatalf("j=%d/batch=%d result differs from j=1 scalar baseline", cell.workers, cell.batch)
			}
		})
	}
}

// BenchmarkEvaluateCompiled isolates the hoisted single-vector oracle (the
// satellite fix: the timer-independent WCL terms are computed once per
// vector); contrast with BenchmarkEvaluate, which pays compile() per call.
func BenchmarkEvaluateCompiled(b *testing.B) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	c := p.compile()
	tv := p.Timers([]config.Timer{50, 500, 1139, 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.evaluate(tv)
	}
}
