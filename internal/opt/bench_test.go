package opt

import (
	"fmt"
	"reflect"
	"testing"

	"cohort/internal/config"
)

// BenchmarkOptimize measures the GA on the default problem shape from the
// acceptance criterion (population 20 × 16 generations) across worker counts
// and oracle tiers. On a multi-core machine -j 4 should come in at
// ≥2× over -j 1; on a single-CPU host the worker pool degrades to ~1× with
// bounded overhead, and the speedup must come from the oracle tiers
// instead: batch ≥ 16 amortizes the stream analysis across configurations
// (one SoA walk per fresh timer chunk plus a run-lifetime per-core memo,
// the PR-7 acceptance-criterion cell), and the curve cells replace every
// fresh stream walk with an O(log k) index query — the PR-10 criterion is
// the curve cells at ≥5× over the batched baseline, exact tier only. Every
// exact sub-benchmark's Result is asserted byte-identical against the
// serial scalar baseline, so the benchmark doubles as an equivalence check
// at full problem size; the surrogate cell (tier 2, approximate) is
// excluded from that comparison and reported for reference.
//
// The curve cells pin curveBuildBudget to 0 (always eager) so they measure
// the index steady state — construction runs once per process and every
// later iteration fetches from the curve cache — independent of where the
// production amortization gate sits. The gate itself is pinned by
// TestCurveAmortizationGate, and BENCH_pr10.json records that cold default
// CLI runs are unaffected.
//
//	go test -bench Optimize -benchtime 3x ./internal/opt
func BenchmarkOptimize(b *testing.B) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	oldBudget := curveBuildBudget
	curveBuildBudget = 0
	b.Cleanup(func() { curveBuildBudget = oldBudget })
	var baseline *Result
	for _, cell := range []struct {
		workers, batch int
		curve, surr    bool
	}{
		{workers: 1}, {workers: 2}, {workers: 4}, {workers: 8},
		{workers: 1, batch: 4}, {workers: 1, batch: 16}, {workers: 1, batch: 64}, {workers: 4, batch: 16},
		{workers: 1, curve: true}, {workers: 4, curve: true}, {workers: 8, curve: true},
		{workers: 1, batch: 16, curve: true}, {workers: 4, batch: 16, curve: true},
		{workers: 8, batch: 16, curve: true},
		{workers: 1, curve: true, surr: true},
	} {
		name := fmt.Sprintf("j=%d/batch=%d", cell.workers, cell.batch)
		if cell.curve {
			name += "/curve"
		}
		if cell.surr {
			name += "/surrogate"
		}
		b.Run(name, func(b *testing.B) {
			gc := DefaultGA(42)
			gc.Pop, gc.Generations = 20, 16
			gc.Workers = cell.workers
			gc.OracleBatch = cell.batch
			gc.OracleCurve = cell.curve
			gc.Surrogate = cell.surr
			b.ReportAllocs()
			var last *Result
			for i := 0; i < b.N; i++ {
				res, err := Optimize(p, gc)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			if cell.surr {
				return // tier 2 trades exactness for cost; not in the DeepEqual set
			}
			if baseline == nil {
				baseline = last
			} else if !reflect.DeepEqual(baseline, last) {
				b.Fatalf("%s result differs from j=1 scalar baseline", name)
			}
		})
	}
}

// BenchmarkEvaluateCompiled isolates the hoisted single-vector oracle (the
// satellite fix: the timer-independent WCL terms are computed once per
// vector); contrast with BenchmarkEvaluate, which pays compile() per call.
func BenchmarkEvaluateCompiled(b *testing.B) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	c := p.compile()
	tv := p.Timers([]config.Timer{50, 500, 1139, 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.evaluate(tv)
	}
}
