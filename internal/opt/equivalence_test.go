package opt

import (
	"reflect"
	"strings"
	"testing"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/obs"
)

// The deterministic-parallelism contract: Optimize and HillClimb return a
// byte-identical Result for every Workers value. The tests compare the full
// Result structs (timers, evaluations, histories, engine counters) between
// the forced-serial path (Workers=1) and an oversubscribed pool (Workers=8),
// table-driven over seeds. CI runs this package under -race, so scheduling
// interleavings are exercised, not just the final values.

var equivalenceSeeds = []uint64{1, 42, 7777}

func TestOptimizeSerialParallelEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		timed []bool
	}{
		{"all-timed", []bool{true, true, true, true}},
		{"half-timed", []bool{true, true, false, false}},
	} {
		p := problemFor("fft", 0.01, cfg.timed)
		for _, seed := range equivalenceSeeds {
			gc := DefaultGA(seed)
			gc.Pop, gc.Generations = 10, 6

			gc.Workers = 1
			serial, err := Optimize(p, gc)
			if err != nil {
				t.Fatalf("%s seed %d serial: %v", cfg.name, seed, err)
			}
			gc.Workers = 8
			par, err := Optimize(p, gc)
			if err != nil {
				t.Fatalf("%s seed %d parallel: %v", cfg.name, seed, err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s seed %d: -j 1 and -j 8 GA results differ\nserial: %+v\nparallel: %+v",
					cfg.name, seed, serial, par)
			}
		}
	}
}

func TestHillClimbSerialParallelEquivalence(t *testing.T) {
	p := problemFor("water", 0.01, []bool{true, true, true, false})
	for _, seed := range equivalenceSeeds {
		hc := DefaultHC(seed)
		hc.Restarts, hc.MaxSteps = 3, 20

		hc.Workers = 1
		serial, err := HillClimb(p, hc)
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		hc.Workers = 8
		par, err := HillClimb(p, hc)
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("seed %d: -j 1 and -j 8 hill-climb results differ\nserial: %+v\nparallel: %+v",
				seed, serial, par)
		}
	}
}

// The batched-oracle contract: OracleBatch changes only the cost of a run,
// never its Result. The differential tests compare full Result structs
// between the scalar oracle and every batch width, for both engines, across
// seeds; the fail-closed test proves a seeded oracle fault makes exactly
// this comparison trip.

var oracleBatchWidths = []int{1, 2, 7, 64}

func TestOptimizeBatchedOracleEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		timed []bool
	}{
		{"all-timed", []bool{true, true, true, true}},
		{"half-timed", []bool{true, true, false, false}},
	} {
		p := problemFor("fft", 0.01, cfg.timed)
		for _, seed := range equivalenceSeeds {
			gc := DefaultGA(seed)
			gc.Pop, gc.Generations = 10, 6
			scalar, err := Optimize(p, gc)
			if err != nil {
				t.Fatalf("%s seed %d scalar: %v", cfg.name, seed, err)
			}
			for _, w := range oracleBatchWidths {
				gc.OracleBatch = w
				batched, err := Optimize(p, gc)
				if err != nil {
					t.Fatalf("%s seed %d batch %d: %v", cfg.name, seed, w, err)
				}
				if !reflect.DeepEqual(scalar, batched) {
					t.Errorf("%s seed %d: scalar and batch-%d GA results differ\nscalar: %+v\nbatched: %+v",
						cfg.name, seed, w, scalar, batched)
				}
			}
		}
	}
}

func TestHillClimbBatchedOracleEquivalence(t *testing.T) {
	p := problemFor("water", 0.01, []bool{true, true, true, false})
	for _, seed := range equivalenceSeeds {
		hc := DefaultHC(seed)
		hc.Restarts, hc.MaxSteps = 3, 20
		scalar, err := HillClimb(p, hc)
		if err != nil {
			t.Fatalf("seed %d scalar: %v", seed, err)
		}
		for _, w := range oracleBatchWidths {
			hc.OracleBatch = w
			batched, err := HillClimb(p, hc)
			if err != nil {
				t.Fatalf("seed %d batch %d: %v", seed, w, err)
			}
			if !reflect.DeepEqual(scalar, batched) {
				t.Errorf("seed %d: scalar and batch-%d hill-climb results differ\nscalar: %+v\nbatched: %+v",
					seed, w, scalar, batched)
			}
		}
	}
}

// TestBatchedOracleWorkersCross runs the full Workers × OracleBatch grid on
// one configuration: every combination must produce the same Result as the
// serial scalar reference.
func TestBatchedOracleWorkersCross(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(42)
	gc.Pop, gc.Generations = 10, 6
	ref, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, 8} {
		for _, ob := range oracleBatchWidths {
			gc.Workers, gc.OracleBatch = w, ob
			got, err := Optimize(p, gc)
			if err != nil {
				t.Fatalf("workers %d batch %d: %v", w, ob, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("workers %d batch %d: Result differs from serial scalar reference", w, ob)
			}
		}
	}
}

// TestBatchedOracleFailsClosed proves the equivalence suite cannot pass
// vacuously: a seeded fault in the batched oracle (a +1 skew on every
// memo-served hit count) must make the scalar-vs-batched comparison report a
// mismatch. If this test fails, the differential tests above are comparing
// something that cannot detect an oracle divergence.
func TestBatchedOracleFailsClosed(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(42)
	gc.Pop, gc.Generations = 10, 6
	scalar, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	TestHooks.BatchedOracleHitSkew = 1
	defer func() { TestHooks.BatchedOracleHitSkew = 0 }()
	gc.OracleBatch = 16
	skewed, err := Optimize(p, gc)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(scalar, skewed) {
		t.Fatal("seeded batched-oracle fault not detected: skewed batched Result equals scalar Result")
	}
}

// TestOptimizeMemoCountersDeterministic pins the engine counters themselves:
// the coordinator probes the cache serially, so hits/misses must not depend
// on the worker count or the run.
func TestOptimizeMemoCountersDeterministic(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, true, true})
	gc := DefaultGA(42)
	gc.Pop, gc.Generations = 10, 6
	var engines []struct {
		jobs, hits, misses int64
		evals              int
	}
	for _, w := range []int{1, 4, 8} {
		gc.Workers = w
		res, err := Optimize(p, gc)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, struct {
			jobs, hits, misses int64
			evals              int
		}{res.Engine.Jobs, res.Engine.CacheHits, res.Engine.CacheMisses, res.Evaluations})
	}
	for i := 1; i < len(engines); i++ {
		if engines[i] != engines[0] {
			t.Fatalf("engine counters vary with worker count: %+v vs %+v", engines[0], engines[i])
		}
	}
	if engines[0].jobs == 0 || engines[0].evals == 0 {
		t.Fatalf("counters not populated: %+v", engines[0])
	}
	// Pop×(Generations+1) genomes were requested; dedup must make the
	// computed count strictly smaller once elites repeat across generations.
	if engines[0].evals > 10*7 {
		t.Fatalf("computed %d evaluations for at most %d genomes", engines[0].evals, 10*7)
	}
	if engines[0].hits == 0 {
		t.Fatalf("memo-cache never hit across %d requests — elites alone must repeat", engines[0].jobs)
	}
}

// TestOptimizeMetricsSnapshotEquivalence pins the observability side of the
// contract: with a Registry and Recorder attached, the metrics snapshot and
// the Chrome trace export must be byte-identical for every worker count.
func TestOptimizeMetricsSnapshotEquivalence(t *testing.T) {
	p := problemFor("fft", 0.01, []bool{true, true, false, false})
	for _, seed := range equivalenceSeeds {
		observe := func(workers int) (string, string) {
			gc := DefaultGA(seed)
			gc.Pop, gc.Generations = 10, 6
			gc.Workers = workers
			gc.Metrics = obs.NewRegistry()
			gc.Recorder = obs.NewRecorder()
			if _, err := Optimize(p, gc); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			var sb strings.Builder
			if err := gc.Recorder.WriteChrome(&sb); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			return string(gc.Metrics.Snapshot().JSON()), sb.String()
		}
		serialM, serialT := observe(1)
		parM, parT := observe(8)
		if serialM != parM {
			t.Errorf("seed %d: metrics snapshots differ across worker counts\n--- j1 ---\n%s\n--- j8 ---\n%s",
				seed, serialM, parM)
		}
		if serialT != parT {
			t.Errorf("seed %d: GA chrome traces differ across worker counts", seed)
		}
		if !strings.Contains(serialT, "generation 0") {
			t.Errorf("seed %d: recorder captured no generation spans:\n%s", seed, serialT)
		}
	}
}

// TestEvaluateHoistWCL cross-checks the hoisted O(n) WCL computation against
// analysis.WCLCoHoRT per core on a spread of timer vectors, including
// MSI-only cores (the satellite fix: the invariant part is computed once per
// vector, not once per core).
func TestEvaluateHoistWCL(t *testing.T) {
	p := problemFor("lu", 0.01, []bool{true, false, true, false})
	c := p.compile()
	for _, genes := range [][]config.Timer{
		{1, 1},
		{50, 500},
		{1139, 1},
	} {
		tv := p.Timers(genes)
		ev := c.evaluate(tv)
		for i := range tv {
			want := analysis.WCLCoHoRT(p.Lat, tv, i)
			if ev.PerCore[i].WCL != want {
				t.Fatalf("genes %v core %d: hoisted WCL %d, analysis %d", genes, i, ev.PerCore[i].WCL, want)
			}
		}
	}
}
