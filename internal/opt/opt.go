// Package opt implements the paper's requirement-aware optimization engine
// (§V, Fig. 2a): a genetic algorithm explores the space of timer vectors Θ,
// querying the static cache analysis as a black-box oracle for the
// Θ → M_hit relationship, and minimizes the system's average per-request
// worst-case memory latency subject to the per-task WCML requirements (C1).
//
// The paper used Matlab's GA with default parameters; this is a
// from-scratch, deterministic, stdlib-only equivalent with tournament
// selection, uniform crossover, geometric mutation, and elitism.
//
// Oracle evaluations are independent of each other, so both engines batch
// them through internal/parallel: chromosomes are generated on the
// coordinating goroutine (keeping the RNG stream identical to a serial run),
// deduped against a content-addressed memo-cache, and only the distinct
// misses are fanned out across workers. Results land in index-addressed
// slots, so every Result is byte-identical for every worker count.
package opt

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/obs"
	"cohort/internal/parallel"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

// Problem describes one optimization instance: the platform latencies and
// L1 geometry, the per-core workload streams, which cores receive a
// GA-chosen timer (the rest stay at MSI, θ = −1), and the per-core WCML
// requirements Γ (0 = unconstrained).
type Problem struct {
	// Lat holds the platform latencies (SW, L_hit).
	Lat config.Latencies
	// L1 is the private-cache geometry used by the analysis oracle.
	L1 config.CacheGeometry
	// Streams holds the per-core access streams (Λ_i = len(Streams[i])).
	Streams []trace.Stream
	// Timed marks the cores whose timers the GA optimizes; a false entry
	// fixes that core to θ = −1 (MSI).
	Timed []bool
	// Gamma is the per-core WCML requirement in cycles (0 = none). It is
	// enforced only for timed cores — constraint C1.
	Gamma []int64
	// MSIWeight scales the contribution of non-timed (MSI) cores' Eq.-3
	// bounds to the objective. The paper's objective sums over all cores;
	// taken literally with all-miss MSI terms it pushes every timer toward
	// its minimum, while ignoring MSI cores entirely lets a lone critical
	// core starve its co-runners' average case. The zero value selects
	// DefaultMSIWeight; MSIWeightNone disables the term.
	MSIWeight float64
}

// DefaultMSIWeight is the MSI-core objective weight used when
// Problem.MSIWeight is left zero: it keeps the timed cores' bounds in
// charge while pricing the latency their timers impose on best-effort
// cores.
const DefaultMSIWeight = 0.01

// MSIWeightNone removes non-timed cores from the objective entirely.
const MSIWeightNone = -1

// msiWeight resolves the effective weight.
func (p *Problem) msiWeight() float64 {
	switch {
	case p.MSIWeight == 0:
		return DefaultMSIWeight
	case p.MSIWeight < 0:
		return 0
	default:
		return p.MSIWeight
	}
}

// Validate checks the problem dimensions.
func (p *Problem) Validate() error {
	n := len(p.Streams)
	if n == 0 {
		return fmt.Errorf("opt: no streams")
	}
	if len(p.Timed) != n {
		return fmt.Errorf("opt: Timed has %d entries for %d cores", len(p.Timed), n)
	}
	if p.Gamma != nil && len(p.Gamma) != n {
		return fmt.Errorf("opt: Gamma has %d entries for %d cores", len(p.Gamma), n)
	}
	if p.Lat.Hit < 1 || p.Lat.Req < 1 || p.Lat.Data < 1 {
		return fmt.Errorf("opt: invalid latencies %+v", p.Lat)
	}
	return nil
}

// Timers materializes a full timer vector from a chromosome (one gene per
// timed core, in core order).
func (p *Problem) Timers(genes []config.Timer) []config.Timer {
	out := make([]config.Timer, len(p.Streams))
	g := 0
	for i := range p.Streams {
		if p.Timed[i] {
			out[i] = genes[g]
			g++
		} else {
			out[i] = config.TimerMSI
		}
	}
	return out
}

// numGenes returns the chromosome length.
func (p *Problem) numGenes() int {
	n := 0
	for _, t := range p.Timed {
		if t {
			n++
		}
	}
	return n
}

// Evaluation is the oracle's verdict on one timer vector.
type Evaluation struct {
	// Timers is the full evaluated vector.
	Timers []config.Timer
	// PerCore holds the analytical bound per core at these timers.
	PerCore []analysis.CoreBound
	// Objective is the paper's target: Σ_i WCML_i / Λ_i (average worst-case
	// latency per request, summed over cores).
	Objective float64
	// Violation sums the relative WCML overshoot of violated constraints
	// (0 = feasible).
	Violation float64
}

// Feasible reports whether every requirement is met.
func (e *Evaluation) Feasible() bool { return e.Violation == 0 }

// compiled holds the per-problem invariants of the oracle, hoisted out of
// the per-genome loop: the per-core request counts Λ_i, the resolved MSI
// weight, and the timer-independent part of the WCL bound. With the hoist
// one evaluation is O(n) in the core count instead of O(n²) — WCL_i is
// wclBase + Σ_{θ_j≥0}(θ_j+sw) minus core i's own term, all integer
// arithmetic, so the result is bit-identical to analysis.WCLCoHoRT.
//
// A compiled problem is immutable after compile and safe to share across
// evaluation workers.
type compiled struct {
	p       *Problem
	lambdas []int64
	msiW    float64
	sw      int64
	wclBase int64
}

func (p *Problem) compile() *compiled {
	n := len(p.Streams)
	c := &compiled{
		p:       p,
		lambdas: make([]int64, n),
		msiW:    p.msiWeight(),
		sw:      p.Lat.SlotWidth(),
	}
	for i := range p.Streams {
		c.lambdas[i] = int64(len(p.Streams[i]))
	}
	c.wclBase = c.sw + 2*int64(n-1)*c.sw
	return c
}

func (c *compiled) evaluate(timers []config.Timer) Evaluation {
	return c.evaluateSrc(timers, nil, nil)
}

// evaluateSrc is evaluate with a pluggable isolation-analysis source: when
// curves is non-nil, timed cores' (MHit, MMiss) splits are answered by the
// per-core hit-curve index; otherwise, when memo is non-nil, they are read
// from memo[core][θ]; otherwise analysis.IsolationHits runs per core.
// Everything else — the WCL hoist, the float summation order, the constraint
// handling — is the shared code path, so a memoized or curve-served
// evaluation is bit-identical to a scalar one whenever the source serves
// true IsolationHits results.
func (c *compiled) evaluateSrc(timers []config.Timer, memo []map[config.Timer][2]int64, curves []*analysis.HitCurve) Evaluation {
	return c.evaluateSrcOwned(append([]config.Timer(nil), timers...), memo, curves)
}

// evaluateSrcOwned is evaluateSrc taking ownership of timers: the slice is
// stored in the returned Evaluation without a defensive copy, so callers
// must never mutate it afterwards. The evaluator's batch path qualifies —
// every job's vector is freshly materialized and dropped after evaluation.
func (c *compiled) evaluateSrcOwned(timers []config.Timer, memo []map[config.Timer][2]int64, curves []*analysis.HitCurve) Evaluation {
	p := c.p
	n := len(p.Streams)
	ev := Evaluation{
		Timers:  timers,
		PerCore: make([]analysis.CoreBound, n),
	}
	// Timer-dependent part of every core's WCL, computed once per vector.
	var timerSum int64
	for _, th := range timers {
		if th >= 0 {
			timerSum += int64(th) + c.sw
		}
	}
	for i := 0; i < n; i++ {
		b := analysis.CoreBound{Core: i, Theta: timers[i]}
		b.WCL = c.wclBase + timerSum
		if timers[i] >= 0 {
			b.WCL -= int64(timers[i]) + c.sw
		}
		lambda := c.lambdas[i]
		if timers[i].Timed() {
			if curves != nil {
				// Curve oracle: O(log k) exact query (with the scalar fallback
				// beyond an incomplete curve's frontier).
				b.MHit, b.MMiss = curves[i].Eval(timers[i])
			} else if memo != nil {
				hm, ok := memo[i][timers[i]]
				if !ok {
					panic(fmt.Sprintf("opt: batched oracle missing core %d θ=%d", i, timers[i]))
				}
				b.MHit, b.MMiss = hm[0]+TestHooks.BatchedOracleHitSkew*int64(timers[i]), hm[1]
			} else {
				// The paper's oracle: in-isolation hit analysis (Fig. 2a).
				b.MHit, b.MMiss = analysis.IsolationHits(p.Streams[i], p.L1, p.Lat, timers[i])
			}
			b.WCMLBound = analysis.WCML(b.MHit, b.MMiss, p.Lat.Hit, b.WCL)
		} else {
			b.MMiss = lambda
			b.WCMLBound = analysis.WCMLAllMiss(lambda, b.WCL)
		}
		ev.PerCore[i] = b
		// Timed cores contribute their per-request bound fully; MSI cores
		// contribute with the resolved MSIWeight (see the field's comment).
		if lambda > 0 {
			term := float64(b.WCMLBound) / float64(lambda)
			if p.Timed[i] {
				ev.Objective += term
			} else {
				ev.Objective += c.msiW * term
			}
		}
		// C1: enforced for timed cores with a requirement.
		if timers[i].Timed() && p.Gamma != nil && p.Gamma[i] > 0 && b.WCMLBound > p.Gamma[i] {
			ev.Violation += float64(b.WCMLBound-p.Gamma[i]) / float64(p.Gamma[i])
		}
	}
	return ev
}

// Evaluate computes the objective and constraint state of a timer vector.
func (p *Problem) Evaluate(timers []config.Timer) Evaluation {
	return p.compile().evaluate(timers)
}

// fitness folds constraint violations into a single minimized scalar: any
// infeasible point ranks strictly worse than every feasible one.
func fitness(ev *Evaluation) float64 {
	if ev.Violation == 0 {
		return ev.Objective
	}
	return 1e18 * (1 + ev.Violation)
}

// evaluator runs oracle evaluations for one optimization run: a compiled
// problem, a worker count, and a content-addressed memo-cache keyed by the
// timer vector, so a genome that reappears (elites, converged populations,
// revisited neighbors) is never recomputed.
//
// With oracleBatch ≥ 2 the evaluator additionally memoizes the isolation
// analysis per (core, θ) for the lifetime of the run, and computes fresh
// pairs through analysis.BatchAnalyzer in SoA walks of up to oracleBatch
// columns. Distinct genomes routinely share genes — elites mutate one
// coordinate, hill-climb neighborhoods vary one gene at a time — so the
// per-core memo turns the oracle's cost from (distinct genomes × cores)
// stream walks into (distinct (core, θ) pairs ÷ batch width) walks. The
// genome-level memo-cache, its key, and every counter are untouched:
// results are bit-identical to the scalar oracle for every batch width.
//
// With curve set, the hit-curve oracle replaces the batched one (taking
// precedence over oracleBatch) once its indexes are installed: one
// analysis.HitCurve per timed core — served from a process-wide
// content-addressed cache, so repeated runs over the same streams skip
// construction entirely — answers every (core, θ) pair with an O(log k)
// query instead of a stream walk, directly in the evaluation assembly — no
// per-core memo, no prefill pass. Installation is amortization-gated:
// eager when the curves are already cached (a fetch, not a build) or when
// the surrogate needs them, otherwise deferred until the run has brought
// curveBuildBudget fresh genomes — cold short runs never pay construction
// and keep serving from the batched or scalar oracle. Every source is
// exact and the genome cache and all counters behave identically, so
// Results stay bit-identical wherever the switch lands.
type evaluator struct {
	p           *Problem
	c           *compiled
	workers     int
	oracleBatch int
	curve       bool
	// evalCache is the genome-level memo (keyed by the raw genome key of the
	// gene vector). Every probe and store happens on the coordinator
	// goroutine, so a plain map with explicit counters stands in for
	// parallel.Cache with identical counter semantics — and lets the probe
	// reuse keyBuf without materializing a key string per genome.
	evalCache              map[string]Evaluation
	cacheHits, cacheMisses int64
	// keyBuf is the reusable genome-key scratch buffer; only the coordinator
	// touches it.
	keyBuf []byte
	// surrTimers is surrogateFitness's scratch timer vector, reused across
	// children (tier 2 runs on the coordinator too).
	surrTimers []config.Timer
	// curves[i] is timed core i's hit-curve index (nil for untimed cores).
	// The slice itself is nil until installCurves runs — eagerly from
	// newEvaluator for warm or surrogate runs, or mid-run once the fresh-
	// genome count crosses curveBuildBudget.
	curves []*analysis.HitCurve
	// coreMemo[i][θ] is core i's memoized IsolationHits split (hits, misses).
	// Lookup-only maps (never ranged), populated in deterministic submission
	// order by prefill and the batched saturation sweep. Nil outside batched
	// mode — scalar mode runs the analysis per genome, curve mode reads the
	// index directly.
	coreMemo []map[config.Timer][2]int64
	// computed counts oracle evaluations actually performed (cache misses
	// deduped within each batch).
	computed int
	// progress, when non-nil, receives live memo-hit/miss and batch-lane
	// counts (obs.RunTracker). Bumped only on the serial coordinator
	// goroutine, after parallel sections merge.
	progress *obs.RunHandle
}

func newEvaluator(p *Problem, workers, oracleBatch int, curve, surrogate bool, progress *obs.RunHandle) *evaluator {
	e := &evaluator{
		p:           p,
		c:           p.compile(),
		workers:     workers,
		oracleBatch: oracleBatch,
		curve:       curve,
		evalCache:   make(map[string]Evaluation, 256),
		progress:    progress,
	}
	if e.curve && (surrogate || curveBuildBudget <= 0 || curvesWarm(p)) {
		e.installCurves()
	}
	if e.oracleBatch > 1 && e.curves == nil {
		e.coreMemo = make([]map[config.Timer][2]int64, len(p.Streams))
		for i := range e.coreMemo {
			e.coreMemo[i] = make(map[config.Timer][2]int64, 256)
		}
	}
	return e
}

// engineStats reports the genome-cache probe counters in the same shape as
// parallel.Cache.Stats: every probe is a job, split into hits and misses.
func (e *evaluator) engineStats() stats.EngineStats {
	return stats.EngineStats{
		Jobs:        e.cacheHits + e.cacheMisses,
		CacheHits:   e.cacheHits,
		CacheMisses: e.cacheMisses,
	}
}

// oracleUnit is one batched-analysis job: a contiguous chunk of fresh timers
// for one core, at most oracleBatch wide.
type oracleUnit struct {
	core   int
	thetas []config.Timer
}

// prefill runs the isolation analysis for every (core, θ) pair the genomes
// need that the per-core memo does not yet hold. Fresh pairs are collected
// in submission order, chunked per core into SoA walks of up to oracleBatch
// columns, fanned across workers, and merged back serially — so the memo
// content is a pure function of the genome sequence, identical for every
// worker count and batch width.
func (e *evaluator) prefill(genomes [][]config.Timer) {
	n := len(e.p.Streams)
	fresh := make([][]config.Timer, n)
	seen := make([]map[config.Timer]bool, n)
	for _, timers := range genomes {
		for i, th := range timers {
			if !th.Timed() {
				continue
			}
			if _, ok := e.coreMemo[i][th]; ok {
				continue
			}
			if seen[i] == nil {
				seen[i] = make(map[config.Timer]bool)
			}
			if seen[i][th] {
				continue
			}
			seen[i][th] = true
			fresh[i] = append(fresh[i], th)
		}
	}
	var units []oracleUnit
	for i := 0; i < n; i++ {
		for off := 0; off < len(fresh[i]); off += e.oracleBatch {
			end := off + e.oracleBatch
			if end > len(fresh[i]) {
				end = len(fresh[i])
			}
			units = append(units, oracleUnit{core: i, thetas: fresh[i][off:end]})
		}
	}
	type unitResult struct{ hits, misses []int64 }
	results := parallel.Map(e.workers, len(units), func(u int) unitResult {
		ba := analysis.NewBatchAnalyzer(e.p.L1)
		r := unitResult{
			hits:   make([]int64, len(units[u].thetas)),
			misses: make([]int64, len(units[u].thetas)),
		}
		ba.IsolationHitsBatch(e.p.Streams[units[u].core], e.p.Lat, units[u].thetas, r.hits, r.misses)
		return r
	})
	for u := range units {
		for k, th := range units[u].thetas {
			e.coreMemo[units[u].core][th] = [2]int64{results[u].hits[k], results[u].misses[k]}
		}
	}
	e.progress.AddLanes(int64(len(units)))
}

// genomeKey builds the memo-cache key of a timer vector (the evaluator keys
// on the gene vector — the untimed cores are fixed for the run, so genes
// alone address the evaluation). The key is a raw injective byte string —
// the domain prefix followed by each timer as a fixed-width little-endian
// word — rather than a digest: the keys live only in the evaluator's private
// cache, so collision resistance buys nothing and hashing is pure overhead
// on the hot path. Fixed-width words keep distinct vectors distinct, and the
// overall length separates a vector from its prefixes.
func genomeKey(timers []config.Timer) string {
	return string(appendGenomeKey(make([]byte, 0, len(genomeKeyDomain)+4*len(timers)), timers))
}

// appendGenomeKey appends the genome key of timers to buf and returns the
// extended buffer — the allocation-free core of genomeKey, fed by the
// evaluator's reusable scratch buffer.
func appendGenomeKey(buf []byte, timers []config.Timer) []byte {
	buf = append(buf, genomeKeyDomain...)
	for _, th := range timers {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(th))
	}
	return buf
}

const genomeKeyDomain = "opt/eval"

// batch evaluates one chromosome batch and returns the evaluations in
// submission order. Every cache probe happens here, on the calling
// goroutine, before anything is dispatched: repeats — within the batch or
// across generations — are deduped up front, so the hit/miss counters and
// the set of computed jobs are a pure function of the genome sequence,
// identical for every worker count.
func (e *evaluator) batch(genomes [][]config.Timer) []Evaluation {
	out := make([]Evaluation, len(genomes))
	// slot[i] is the job index computing out[i], or -1 when cached.
	slot := make([]int, len(genomes))
	var jobs [][]config.Timer
	var jobKeys []string
	var cached int64
	queued := make(map[string]int, len(genomes))
	for i, g := range genomes {
		// Probe with the scratch buffer; map access through string(buf) does
		// not allocate, so only fresh genomes materialize a key string. The
		// timer vector is materialized lazily too — cache hits skip it.
		e.keyBuf = appendGenomeKey(e.keyBuf[:0], g)
		if v, ok := e.evalCache[string(e.keyBuf)]; ok {
			out[i], slot[i] = v, -1
			e.cacheHits++
			cached++
			continue
		}
		e.cacheMisses++
		if j, ok := queued[string(e.keyBuf)]; ok {
			slot[i] = j
			continue
		}
		key := string(e.keyBuf)
		queued[key] = len(jobs)
		slot[i] = len(jobs)
		jobs = append(jobs, e.p.Timers(g))
		jobKeys = append(jobKeys, key)
	}
	// Deferred curve installation: once the run has brought enough fresh
	// genomes to amortize construction, build the indexes and serve every
	// later batch from them. Exact either way, so the switch point is
	// invisible in the results.
	if e.curve && e.curves == nil && e.cacheMisses >= curveBuildBudget {
		e.installCurves()
	}
	var results []Evaluation
	switch {
	case e.curves != nil:
		// Curve oracle: every (core, θ) query is an O(log k) index lookup, so
		// the assembly runs serially with no prefill pass. Same per-core order
		// and arithmetic as the scalar path — results are bit-identical.
		results = make([]Evaluation, len(jobs))
		for j := range jobs {
			results[j] = e.c.evaluateSrcOwned(jobs[j], nil, e.curves)
		}
	case e.oracleBatch > 1:
		// Batched oracle: resolve all fresh (core, θ) pairs first, then
		// assemble the evaluations serially from the memo. The assembly is
		// pure integer/float arithmetic in the same per-core order as the
		// scalar path, so the results are bit-identical.
		e.prefill(jobs)
		results = make([]Evaluation, len(jobs))
		for j := range jobs {
			results[j] = e.c.evaluateSrcOwned(jobs[j], e.coreMemo, nil)
		}
	default:
		results = parallel.Map(e.workers, len(jobs), func(j int) Evaluation {
			return e.c.evaluateSrcOwned(jobs[j], nil, nil)
		})
	}
	for j := range jobKeys {
		e.evalCache[jobKeys[j]] = results[j]
	}
	e.computed += len(jobs)
	e.progress.AddMemoHits(cached)
	e.progress.AddMemoMisses(int64(len(jobs)))
	for i := range genomes {
		if slot[i] >= 0 {
			out[i] = results[slot[i]]
		}
	}
	return out
}

// thetaIS computes the per-gene saturation timers (§V) — one independent
// analysis sweep per timed core, fanned out across workers.
func thetaIS(p *Problem, workers int) []config.Timer {
	timed := make([]int, 0, len(p.Timed))
	for i, t := range p.Timed {
		if t {
			timed = append(timed, i)
		}
	}
	return parallel.Map(workers, len(timed), func(g int) config.Timer {
		th, _ := analysis.SaturationTimer(p.Streams[timed[g]], p.L1, p.Lat)
		return th
	})
}

// thetaISBatched is thetaIS on the batched oracle: each timed core's
// saturation sweep evaluates its doubling grid in one SoA stream walk, and
// every (θ → hits, misses) sample the sweep produced seeds the evaluator's
// per-core memo — so the boundary individuals of the initial population
// (all-ones, all-θ_is) evaluate without re-running the analysis. The sweep
// is bit-identical to analysis.SaturationTimer per core.
func thetaISBatched(p *Problem, workers int, e *evaluator) []config.Timer {
	timed := make([]int, 0, len(p.Timed))
	for i, t := range p.Timed {
		if t {
			timed = append(timed, i)
		}
	}
	type satResult struct {
		theta   config.Timer
		samples []analysis.TimerSample
	}
	results := parallel.Map(workers, len(timed), func(g int) satResult {
		ba := analysis.NewBatchAnalyzer(p.L1)
		th, _, samples := ba.SaturationTimer(p.Streams[timed[g]], p.Lat)
		return satResult{theta: th, samples: samples}
	})
	out := make([]config.Timer, len(timed))
	for g := range results {
		out[g] = results[g].theta
		for _, smp := range results[g].samples {
			e.coreMemo[timed[g]][smp.Theta] = [2]int64{smp.Hits, smp.Misses}
		}
	}
	return out
}

// TestHooks injects seeded faults for the batched-oracle differential suite
// (and nothing else). All hooks default to off; production code must never
// set them.
var TestHooks struct {
	// BatchedOracleHitSkew adds skew·θ guaranteed hits to every memo-served
	// isolation result. The θ-proportional shape mimics a real batching bug
	// (a window-test off-by-one is θ-dependent) and perturbs candidate
	// *ranking*, not just absolute fitness, so the fault surfaces all the
	// way up to rendered tables — a uniform shift would cancel out of the
	// argmax. Only the batched oracle path reads it — the scalar oracle is
	// untouched — so the equivalence suite can prove its batched ≡ scalar
	// comparison fails closed: with a nonzero skew it must report a
	// mismatch.
	BatchedOracleHitSkew int64
}

// GAConfig tunes the genetic algorithm. DefaultGA mirrors a conventional
// small-population setup.
type GAConfig struct {
	// Pop is the population size.
	Pop int
	// Generations is the number of evolution rounds.
	Generations int
	// Elite is the number of best individuals copied unchanged.
	Elite int
	// TournamentK is the tournament selection size.
	TournamentK int
	// CrossoverProb is the per-offspring probability of uniform crossover.
	CrossoverProb float64
	// MutationProb is the per-gene mutation probability.
	MutationProb float64
	// Seed makes runs deterministic.
	Seed uint64
	// Workers caps the evaluation worker pool: 1 forces the serial path,
	// anything below 1 selects runtime.NumCPU(). The Result is byte-identical
	// for every value.
	Workers int
	// OracleBatch selects the analysis-oracle batching width: with a value
	// ≥ 2, the isolation analysis is memoized per (core, θ) across the run
	// and fresh pairs are evaluated in SoA walks of up to OracleBatch
	// columns (analysis.BatchAnalyzer). 0 and 1 select the scalar oracle —
	// one full analysis pass per core per distinct genome. The Result is
	// byte-identical for every value; only the oracle's cost changes.
	OracleBatch int
	// OracleCurve selects the hit-curve oracle (tier 1): one
	// analysis.HitCurve per timed core answers every (core, θ) query with a
	// binary search instead of a stream walk, and θ_is is read off the curve
	// through the shared saturation sweep. Takes precedence over OracleBatch.
	// The Result is byte-identical to the scalar and batched oracles; only
	// the cost changes.
	OracleCurve bool
	// Surrogate enables the tier-2 surrogate prefilter: each generation's
	// children are scored by a cheap curve-bound fitness first, and only
	// those within SurrogateMargin of the elite frontier are evaluated
	// exactly. Elites and the reported best are always exact; pruned
	// children keep their surrogate fitness for selection only. Requires
	// OracleCurve. Unlike the exact oracles this changes Result counters
	// (fewer Evaluations), so it participates in result cache keys.
	Surrogate bool
	// SurrogateMargin is the relative margin around the elite frontier
	// within which children are still evaluated exactly: a child is pruned
	// only when its surrogate fitness exceeds frontier·(1+margin). 0 selects
	// DefaultSurrogateMargin; negative values collapse the margin to 0
	// (prune everything above the frontier).
	SurrogateMargin float64
	// Metrics, when non-nil, receives the optimizer's end-of-run counters
	// (runs, evaluations, memo-engine totals, best fitness). Purely
	// observational: it never affects the Result. The experiment harness
	// strips it before memoized Optimize calls so cached and fresh results
	// publish identically.
	Metrics *obs.Registry
	// Recorder, when non-nil, receives one span per GA generation
	// (timestamped by generation index under obs.PidOpt). Purely
	// observational, like Metrics.
	Recorder *obs.Recorder
	// Progress, when non-nil, receives live pull-sampled progress: the
	// planned and completed generation counts, memo-cache hits/misses, and
	// batched-oracle lane completions (obs.RunTracker). Purely observational,
	// like Metrics: samples are scheduling-dependent and never affect the
	// Result. Unlike Metrics and Recorder it survives the experiment
	// harness's memoization strip — live progress is allowed to depend on
	// memo state, canonical output is not.
	Progress *obs.RunHandle
}

// DefaultGA returns the parameters used by the experiment harness.
func DefaultGA(seed uint64) GAConfig {
	return GAConfig{
		Pop:           32,
		Generations:   40,
		Elite:         2,
		TournamentK:   3,
		CrossoverProb: 0.9,
		MutationProb:  0.25,
		Seed:          seed,
	}
}

// Result is the optimizer's output.
type Result struct {
	// Timers is the best full timer vector found.
	Timers []config.Timer
	// Eval is the evaluation of Timers.
	Eval Evaluation
	// ThetaIS is the per-gene search upper bound θ_is (core order over
	// timed cores).
	ThetaIS []config.Timer
	// BestHistory records the best fitness per generation.
	BestHistory []float64
	// Evaluations counts the oracle evaluations actually computed; genomes
	// repeated across the run are served by the memo-cache and counted once.
	Evaluations int
	// Engine reports the memo-cache counters (requests, hits, misses). The
	// coordinator probes the cache serially, so these are deterministic and
	// identical for every Workers value. Note CacheMisses can exceed
	// Evaluations: a genome repeated inside one batch misses twice but is
	// computed once.
	Engine stats.EngineStats
}

// Optimize runs the GA and returns the best timer vector found. With no
// timed cores it returns the all-MSI vector immediately.
//
// Chromosome generation (all RNG use) happens on the calling goroutine in
// the same order as a serial run; only the deduped oracle evaluations are
// dispatched to workers. Optimize therefore returns a byte-identical Result
// for every GAConfig.Workers value.
//cohort:hotpath determinism
func Optimize(p *Problem, gc GAConfig) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if gc.Pop < 2 || gc.Generations < 1 {
		return nil, fmt.Errorf("opt: degenerate GA config %+v", gc)
	}
	if gc.Elite >= gc.Pop {
		return nil, fmt.Errorf("opt: elite %d must be below population %d", gc.Elite, gc.Pop)
	}
	if gc.Surrogate && !gc.OracleCurve {
		return nil, fmt.Errorf("opt: surrogate prefilter requires the curve oracle")
	}
	nGenes := p.numGenes()
	res := &Result{}
	if nGenes == 0 {
		timers := p.Timers(nil)
		ev := p.Evaluate(timers)
		res.Timers = timers
		res.Eval = ev
		res.Evaluations = 1
		publishMetrics(gc.Metrics, res)
		return res, nil
	}

	oracle := newEvaluator(p, gc.Workers, gc.OracleBatch, gc.OracleCurve, gc.Surrogate, gc.Progress)
	gc.Progress.SetGenerations(int64(gc.Generations))

	// Per-gene upper bounds: θ_is from the saturation sweep (§V). An
	// eagerly-installed curve oracle reads the sweep off the per-core
	// index; a deferred one sweeps like its fallback (bit-identical) and
	// leaves construction to the amortization gate in batch. The batched
	// sweep seeds the oracle's per-core memo from its samples.
	switch {
	case oracle.curves != nil:
		res.ThetaIS = thetaISCurve(p, oracle)
	case gc.OracleBatch > 1:
		res.ThetaIS = thetaISBatched(p, gc.Workers, oracle)
	default:
		res.ThetaIS = thetaIS(p, gc.Workers)
	}

	rng := trace.NewRNG(gc.Seed ^ 0x6f7074) // "opt"
	randGene := func(g int) config.Timer {
		hi := int64(res.ThetaIS[g])
		// Log-uniform draw over [1, θ_is] so small timers are explored.
		u := rng.Float64()
		v := math.Exp(u * math.Log(float64(hi)))
		th := config.Timer(v)
		if th < 1 {
			th = 1
		}
		if th > res.ThetaIS[g] {
			th = res.ThetaIS[g]
		}
		return th
	}

	type indiv struct {
		genes []config.Timer
		ev    Evaluation
		fit   float64
		// exact marks fitness values computed by the exact oracle; surrogate-
		// pruned children carry their tier-2 bound instead and may influence
		// selection, but never the elites, the best, or the Result.
		exact bool
	}
	evalAll := func(genomes [][]config.Timer) []indiv {
		evs := oracle.batch(genomes)
		out := make([]indiv, len(genomes))
		for i := range genomes {
			out[i] = indiv{genes: genomes[i], ev: evs[i], fit: fitness(&evs[i]), exact: true}
		}
		return out
	}
	margin := gc.SurrogateMargin
	switch {
	case margin == 0:
		margin = DefaultSurrogateMargin
	case margin < 0:
		margin = 0
	}

	genomes := make([][]config.Timer, gc.Pop)
	for i := range genomes {
		genes := make([]config.Timer, nGenes)
		for g := range genes {
			switch {
			case i == 0:
				genes[g] = 1 // minimal timers: lowest interference
			case i == 1:
				genes[g] = res.ThetaIS[g] // saturated hits
			default:
				genes[g] = randGene(g)
			}
		}
		genomes[i] = genes
	}
	pop := evalAll(genomes)

	best := pop[0]
	for i := range pop {
		if pop[i].exact && pop[i].fit < best.fit {
			best = pop[i]
		}
	}

	tournament := func() indiv {
		w := pop[rng.Intn(len(pop))]
		for k := 1; k < gc.TournamentK; k++ {
			c := pop[rng.Intn(len(pop))]
			if c.fit < w.fit {
				w = c
			}
		}
		return w
	}

	for gen := 0; gen < gc.Generations; gen++ {
		next := make([]indiv, 0, gc.Pop)
		// Elitism: keep the best individuals (selection sort over a copy).
		order := make([]int, len(pop))
		for i := range order {
			order[i] = i
		}
		for e := 0; e < gc.Elite; e++ {
			bi := e
			for j := e + 1; j < len(order); j++ {
				if pop[order[j]].fit < pop[order[bi]].fit {
					bi = j
				}
			}
			order[e], order[bi] = order[bi], order[e]
			next = append(next, pop[order[e]])
		}
		// Selection and variation draw only from the previous generation's
		// pop and the RNG, never from an evaluation of this generation, so
		// all children can be bred first and evaluated as one batch.
		children := make([][]config.Timer, 0, gc.Pop-len(next))
		for len(next)+len(children) < gc.Pop {
			a, b := tournament(), tournament()
			child := make([]config.Timer, nGenes)
			if rng.Float64() < gc.CrossoverProb {
				for g := range child {
					if rng.Float64() < 0.5 {
						child[g] = a.genes[g]
					} else {
						child[g] = b.genes[g]
					}
				}
			} else {
				copy(child, a.genes)
			}
			for g := range child {
				if rng.Float64() < gc.MutationProb {
					// Geometric step around the current value, or a fresh
					// log-uniform draw 20% of the time.
					if rng.Float64() < 0.2 {
						child[g] = randGene(g)
					} else {
						factor := 0.5 + rng.Float64()*1.5
						v := config.Timer(float64(child[g]) * factor)
						if v < 1 {
							v = 1
						}
						if v > res.ThetaIS[g] {
							v = res.ThetaIS[g]
						}
						child[g] = v
					}
				}
			}
			children = append(children, child)
		}
		if gc.Surrogate && len(children) > 0 {
			// Tier 2: score every child with the curve-bound surrogate and
			// evaluate exactly only those within the margin of the elite
			// frontier (the worst kept elite; the global best when Elite is
			// 0). The surrogate never exceeds the exact fitness, so a pruned
			// child provably cannot reach the frontier — let alone improve
			// the best — and elites can never be pruned individuals: their
			// fitness exceeds a past frontier, while elites sit at or below
			// every frontier since.
			frontier := best.fit
			if gc.Elite > 0 {
				frontier = next[len(next)-1].fit
			}
			threshold := frontier * (1 + margin)
			surrFits := make([]float64, len(children))
			keep := make([]int, 0, len(children))
			for ci, child := range children {
				surrFits[ci] = oracle.surrogateFitness(child)
				if surrFits[ci] <= threshold {
					keep = append(keep, ci)
				}
			}
			exactGenomes := make([][]config.Timer, len(keep))
			for k, ci := range keep {
				exactGenomes[k] = children[ci]
			}
			evaluated := evalAll(exactGenomes)
			childIndivs := make([]indiv, len(children))
			for ci := range children {
				childIndivs[ci] = indiv{genes: children[ci], fit: surrFits[ci]}
			}
			for k, ci := range keep {
				childIndivs[ci] = evaluated[k]
			}
			next = append(next, childIndivs...)
		} else {
			next = append(next, evalAll(children)...)
		}
		pop = next
		for i := range pop {
			if pop[i].exact && pop[i].fit < best.fit {
				best = pop[i]
			}
		}
		res.BestHistory = append(res.BestHistory, best.fit)
		gc.Progress.SetGeneration(int64(gen + 1))
		if gc.Recorder != nil {
			gc.Recorder.Complete(obs.PidOpt, 0, fmt.Sprintf("generation %d", gen), "ga",
				int64(gen), 1, map[string]string{
					"best_fitness": strconv.FormatFloat(best.fit, 'g', -1, 64),
					"children":     strconv.Itoa(len(pop) - gc.Elite),
				})
		}
	}

	res.Timers = p.Timers(best.genes)
	res.Eval = best.ev
	res.Evaluations = oracle.computed
	res.Engine = oracle.engineStats()
	publishMetrics(gc.Metrics, res)
	return res, nil
}

// publishMetrics folds one Optimize run's counters into a registry. The
// counters accumulate across runs sharing the registry; the gauges describe
// the most recent run. Callers invoke Optimize in a deterministic order, so
// the published totals are deterministic too. No-op on a nil registry.
func publishMetrics(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	// Publish under the registry's Sync lock so a concurrent live scrape
	// (the debug server's /metrics) sees either none or all of this run's
	// counters.
	reg.Sync(func() {
		reg.Counter("opt_runs_total").Inc()
		reg.Counter("opt_evaluations_total").Add(int64(res.Evaluations))
		reg.Counter("opt_engine_jobs_total").Add(res.Engine.Jobs)
		reg.Counter("opt_engine_cache_hits_total").Add(res.Engine.CacheHits)
		reg.Counter("opt_engine_cache_misses_total").Add(res.Engine.CacheMisses)
		reg.Gauge("opt_generations").Set(int64(len(res.BestHistory)))
		if n := len(res.BestHistory); n > 0 {
			reg.FloatGauge("opt_best_fitness").Set(res.BestHistory[n-1])
		}
	})
}
