// Tier-1 curve oracle glue: per-core analysis.HitCurve construction with a
// process-wide content-addressed cache and the curve-backed θ_is sweep (the
// evaluation assembly itself reads the installed curves directly — see
// evaluateSrcOwned). The curves are exact — every value they serve equals an
// analysis.IsolationHits result — so this file changes only the oracle's
// cost, never its answers; the equivalence suites in curve_equiv_test.go
// hold the curve oracle to bit-identity with the scalar and batched paths.
package opt

import (
	"sync"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/parallel"
	"cohort/internal/trace"
)

// curveMemo caches hit curves process-wide, keyed by everything that defines
// one: stream content, geometry, and the latencies the isolation analysis
// reads. Optimization runs — and above them the experiment harness and the
// GA benchmark — repeatedly analyze the same streams, so construction is
// paid once per distinct (stream, platform) pair per process. Purity makes a
// cache hit observationally identical to rebuilding.
var curveMemo = parallel.NewCache[*analysis.HitCurve]()

// ResetCurveCache drops every cached hit curve and stream fingerprint.
// Equivalence tests call it to compare cold-cache runs.
func ResetCurveCache() {
	curveMemo.Reset()
	streamFPMu.Lock()
	streamFPCache = map[streamID]string{}
	streamFPMu.Unlock()
}

// streamID identifies a stream by slice identity (backing array head plus
// length). Streams are immutable after generation, so identity implies
// content equality; two streams with equal content but different backing
// arrays simply fingerprint twice — the digests agree, so the curve cache
// still unifies them.
type streamID struct {
	head *trace.Access
	n    int
}

var (
	streamFPMu    sync.Mutex
	streamFPCache = map[streamID]string{}
)

// streamFingerprint content-addresses a stream, digesting every access once
// per distinct slice per process (the digest is memoized by slice identity —
// the same trick as the experiment harness's per-*Trace fingerprint cache).
// Without the memo, re-hashing the full stream per Optimize call would
// rival the curve queries themselves on short runs.
func streamFingerprint(s trace.Stream) string {
	var id streamID
	if len(s) > 0 {
		id = streamID{head: &s[0], n: len(s)}
		streamFPMu.Lock()
		fp, ok := streamFPCache[id]
		streamFPMu.Unlock()
		if ok {
			return fp
		}
	}
	k := parallel.NewKey("opt/stream")
	k.Int(len(s))
	for i := range s {
		a := &s[i]
		k.Uint64(a.Addr).Int64(int64(a.Kind)).Int64(a.Gap)
	}
	fp := k.Sum()
	if len(s) > 0 {
		streamFPMu.Lock()
		streamFPCache[id] = fp
		streamFPMu.Unlock()
	}
	return fp
}

// curveKey content-addresses a hit curve: the geometry, the two latency
// components the analysis consumes (hit cost and per-miss slot width), and
// the stream fingerprint.
func curveKey(s trace.Stream, geom config.CacheGeometry, lat config.Latencies) string {
	k := parallel.NewKey("opt/hitcurve")
	k.Int(geom.SizeBytes).Int(geom.LineBytes).Int(geom.Ways)
	k.Int64(lat.Hit).Int64(lat.SlotWidth())
	k.Str(streamFingerprint(s))
	return k.Sum()
}

// curveForStream returns the (possibly cached) hit curve for one core's
// stream. Curves built under an active seeded fault are never cached: the
// skew would otherwise leak into unrelated runs and mask — or fabricate —
// divergences the fault-injection tests reason about.
func curveForStream(s trace.Stream, geom config.CacheGeometry, lat config.Latencies) *analysis.HitCurve {
	if analysis.TestHooks.CurveBreakpointSkew != 0 {
		return analysis.NewIsolationHitCurve(s, geom, lat)
	}
	return curveMemo.GetOrCompute(curveKey(s, geom, lat), func() *analysis.HitCurve {
		return analysis.NewIsolationHitCurve(s, geom, lat)
	})
}

// curveBuildBudget is the number of genome-cache misses after which a
// curve-mode evaluator stops serving queries from its fallback exact oracle
// and builds the per-core hit-curve indexes. Construction costs one replay
// per regime plus the batched verification walk — roughly twice the regime
// count in stream walks — and at paper scale the regime count rivals or
// exceeds a default GA's entire fresh-genome count (a pop 20 × 16 run
// dedups to ~250-340 fresh genomes while full-scale streams carry hundreds
// of regimes), so building mid-way through a one-shot default run is a
// guaranteed net loss: measured on fig5a, every budget that fires costs
// ~0.5 s of construction against queries the fallback serves in less. The
// budget therefore sits above every one-shot run we ship; only genuinely
// large searches — cohort-opt at exploratory pop/gens, where thousands of
// fresh genomes follow the trigger — build cold. The big wins need no
// trigger at all: warm runs (curves already in the process-wide cache —
// repeated searches over the same streams, every benchmark iteration after
// the first) and surrogate runs (tier 2 reads the curves per child)
// install eagerly at construction time. The switch point cannot change
// results — every source is exact — so tests pin one path by setting the
// budget to 0 (always eager) or a huge value (never build).
var curveBuildBudget int64 = 2048

// curvesWarm reports whether every timed core's hit curve is already in the
// process-wide cache, i.e. installing them is a fetch, not a build. An
// active breakpoint-skew fault forces eager installation so the fail-closed
// suites exercise the skewed query path regardless of run size.
func curvesWarm(p *Problem) bool {
	if analysis.TestHooks.CurveBreakpointSkew != 0 {
		return true
	}
	for i, t := range p.Timed {
		if !t {
			continue
		}
		if _, ok := curveMemo.Get(curveKey(p.Streams[i], p.L1, p.Lat)); !ok {
			return false
		}
	}
	return true
}

// installCurves builds (or fetches) one hit curve per timed core, fanned
// across the evaluator's workers, and installs them: from here on every
// (core, θ) query is answered by the index. Each curve counts as one
// completed oracle lane for live progress.
func (e *evaluator) installCurves() {
	p := e.p
	timed := make([]int, 0, len(p.Timed))
	for i, t := range p.Timed {
		if t {
			timed = append(timed, i)
		}
	}
	curves := parallel.Map(e.workers, len(timed), func(g int) *analysis.HitCurve {
		return curveForStream(p.Streams[timed[g]], p.L1, p.Lat)
	})
	e.curves = make([]*analysis.HitCurve, len(p.Streams))
	for g := range timed {
		e.curves[timed[g]] = curves[g]
	}
	e.progress.AddLanes(int64(len(timed)))
}

// thetaISCurve is thetaIS on the curve oracle: θ_is read off each installed
// curve through the shared saturation sweep — the same probe sequence as
// the scalar sweep, answered in O(log k) per probe, so the result is
// bit-identical. Requires installCurves to have run (eager curve mode).
func thetaISCurve(p *Problem, e *evaluator) []config.Timer {
	timed := make([]int, 0, len(p.Timed))
	for i, t := range p.Timed {
		if t {
			timed = append(timed, i)
		}
	}
	out := make([]config.Timer, len(timed))
	for g := range timed {
		out[g], _ = e.curves[timed[g]].SaturationTimer()
	}
	return out
}

