package opt

import (
	"fmt"
	"math"

	"cohort/internal/config"
	"cohort/internal/obs"
	"cohort/internal/trace"
)

// HCConfig tunes the hill-climbing optimizer.
type HCConfig struct {
	// Restarts is the number of random restarts.
	Restarts int
	// MaxSteps caps the improvement steps per restart.
	MaxSteps int
	// Seed makes runs deterministic.
	Seed uint64
	// Workers caps the evaluation worker pool: 1 forces the serial path,
	// anything below 1 selects runtime.NumCPU(). The Result is byte-identical
	// for every value.
	Workers int
	// OracleBatch selects the analysis-oracle batching width, with the same
	// semantics as GAConfig.OracleBatch: ≥ 2 memoizes the isolation analysis
	// per (core, θ) and evaluates fresh pairs in SoA walks of up to this
	// many columns; 0 and 1 keep the scalar oracle. The Result is
	// byte-identical for every value.
	OracleBatch int
	// OracleCurve selects the hit-curve oracle, with the same semantics as
	// GAConfig.OracleCurve: per-core hit curves answer every (core, θ) query
	// in O(log k), taking precedence over OracleBatch. The Result is
	// byte-identical for every oracle.
	OracleCurve bool
	// Progress, when non-nil, receives live pull-sampled progress with the
	// same semantics as GAConfig.Progress; restarts are reported as
	// generations. Purely observational.
	Progress *obs.RunHandle
}

// DefaultHC returns the parameters used by the optimizer ablation.
func DefaultHC(seed uint64) HCConfig {
	return HCConfig{Restarts: 6, MaxSteps: 80, Seed: seed}
}

// HillClimb is an alternative optimization engine: random-restart steepest-
// descent coordinate search with multiplicative steps over the same Θ space,
// objective and constraint handling as the GA. The paper notes the engine
// is pluggable ("the optimization algorithm (GA in our case)", §V);
// providing a second engine validates that the framework — the
// analysis-oracle loop of Fig. 2a — is algorithm-agnostic, and the
// optimizer ablation quantifies the difference.
//
// Each step breeds the full gene × factor neighborhood of the current point,
// evaluates it as one parallel batch, and moves to the best improving
// neighbor (ties broken by lowest neighbor index). Steepest descent makes
// the step a pure function of the current point — unlike first-improvement
// descent, whose trajectory depends on evaluation order — so the Result is
// byte-identical for every HCConfig.Workers value.
//cohort:hotpath determinism
func HillClimb(p *Problem, hc HCConfig) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if hc.Restarts < 1 || hc.MaxSteps < 1 {
		return nil, fmt.Errorf("opt: degenerate HC config %+v", hc)
	}
	nGenes := p.numGenes()
	res := &Result{}
	if nGenes == 0 {
		timers := p.Timers(nil)
		res.Timers = timers
		res.Eval = p.Evaluate(timers)
		res.Evaluations = 1
		return res, nil
	}
	oracle := newEvaluator(p, hc.Workers, hc.OracleBatch, hc.OracleCurve, false, hc.Progress)
	hc.Progress.SetGenerations(int64(hc.Restarts))
	switch {
	case oracle.curves != nil:
		res.ThetaIS = thetaISCurve(p, oracle)
	case hc.OracleBatch > 1:
		res.ThetaIS = thetaISBatched(p, hc.Workers, oracle)
	default:
		res.ThetaIS = thetaIS(p, hc.Workers)
	}

	rng := trace.NewRNG(hc.Seed ^ 0x6863) // "hc"
	clamp := func(g int, v config.Timer) config.Timer {
		if v < 1 {
			return 1
		}
		if v > res.ThetaIS[g] {
			return res.ThetaIS[g]
		}
		return v
	}
	evalOne := func(genes []config.Timer) (Evaluation, float64) {
		ev := oracle.batch([][]config.Timer{genes})[0]
		return ev, fitness(&ev)
	}

	var bestGenes []config.Timer
	var bestEval Evaluation
	bestFit := math.Inf(1)
	// Multiplicative step factors tried per coordinate, best-of sweep.
	factors := []float64{0.25, 0.5, 0.8, 1.25, 2, 4}
	for r := 0; r < hc.Restarts; r++ {
		genes := make([]config.Timer, nGenes)
		for g := range genes {
			switch r {
			case 0:
				genes[g] = 1
			case 1:
				genes[g] = res.ThetaIS[g]
			default:
				u := rng.Float64()
				genes[g] = clamp(g, config.Timer(math.Exp(u*math.Log(float64(res.ThetaIS[g])))))
			}
		}
		cur, curFit := evalOne(genes)
		for step := 0; step < hc.MaxSteps; step++ {
			// The whole gene × factor neighborhood of the current point, as
			// one batch.
			neighbors := make([][]config.Timer, 0, nGenes*len(factors))
			for g := 0; g < nGenes; g++ {
				for _, f := range factors {
					nv := clamp(g, config.Timer(float64(genes[g])*f))
					if nv == genes[g] {
						continue
					}
					cand := append([]config.Timer(nil), genes...)
					cand[g] = nv
					neighbors = append(neighbors, cand)
				}
			}
			if len(neighbors) == 0 {
				break
			}
			evs := oracle.batch(neighbors)
			bestN := -1
			bestNFit := curFit
			for i := range evs {
				if fit := fitness(&evs[i]); fit < bestNFit {
					bestN, bestNFit = i, fit
				}
			}
			if bestN == -1 {
				break
			}
			genes, cur, curFit = neighbors[bestN], evs[bestN], bestNFit
		}
		res.BestHistory = append(res.BestHistory, curFit)
		hc.Progress.SetGeneration(int64(r + 1))
		if curFit < bestFit {
			bestFit, bestGenes, bestEval = curFit, genes, cur
		}
	}
	res.Timers = p.Timers(bestGenes)
	res.Eval = bestEval
	res.Evaluations = oracle.computed
	res.Engine = oracle.engineStats()
	return res, nil
}
