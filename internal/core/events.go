package core

import (
	"fmt"

	"cohort/internal/cache"
	"cohort/internal/sim"
)

// Typed event kinds dispatched through the System jump table. The simulator
// hot path schedules these as plain data (kind + receiver + payload words)
// instead of closures: scheduling a typed event performs zero allocations,
// where the closure path allocated a capture record per callback. Cold paths
// (governor, latency sampler, test scaffolding) keep the Schedule-closure
// escape hatch.
const (
	// evCoreWake resumes core recv's issue loop (dedup through coreState.wakeAt).
	evCoreWake sim.Kind = iota
	// evKick runs an arbitration round at a bus-release/slot-boundary cycle.
	evKick
	// evFinishBroadcast completes core recv's request broadcast (c.miss).
	evFinishBroadcast
	// evFinishData completes core recv's data transfer (c.miss).
	evFinishData
	// evOwnerRelease fires a scheduled owner timer expiry; p0 indexes the
	// pooled timerRec carrying the guard state.
	evOwnerRelease
	// evSharerInval fires a scheduled sharer timer expiry; p0 indexes the
	// pooled timerRec.
	evSharerInval
	// evModeSwitch applies a scheduled mode switch; p0 carries the mode.
	evModeSwitch
)

// timerRec is the pooled record behind a scheduled owner-release or
// sharer-invalidation event: everything the guarded re-check at fire time
// needs. Records live in a System-owned free list (allocTimerRec /
// freeTimerRec) and are referenced from queue items by index, so scheduling
// a timer expiry allocates nothing once the pool has warmed up.
type timerRec struct {
	line       uint64
	fetchStamp int64 // epoch the expiry was computed against
	reqVisible int64 // request cycle (Fig. 3 expiry base) for exact-release checks
	next       int32 // free-list link
	core       int32 // owner core (evOwnerRelease) or sharer core (evSharerInval)
	write      bool  // head waiter's request kind at schedule time
}

// allocTimerRec takes a record from the free list (or grows the pool) and
// returns its index.
func (s *System) allocTimerRec(r timerRec) int32 {
	if i := s.timerFree; i >= 0 {
		s.timerFree = s.timerRecs[i].next
		s.timerRecs[i] = r
		return i
	}
	s.timerRecs = append(s.timerRecs, r) //cohort:allow hotalloc: pool grows to the outstanding-timer high-water mark, then the free list recycles
	return int32(len(s.timerRecs) - 1)
}

// freeTimerRec returns a record to the free list.
func (s *System) freeTimerRec(i int32) {
	s.timerRecs[i].next = s.timerFree
	s.timerFree = i
}

// atEvent schedules a typed event at an absolute cycle; scheduling in the
// past is a simulator bug, so it panics rather than returning an error
// (mirrors System.at for closures).
func (s *System) atEvent(cycle int64, kind sim.Kind, recv int32, p0, p1 uint64) {
	if err := s.eng.ScheduleKindAt(sim.Cycle(cycle), kind, recv, p0, p1); err != nil {
		panic(err)
	}
}

// HandleEvent is the per-system jump table: it implements sim.Handler and
// routes each typed event to the same logic the closure path used to invoke,
// preserving the exact (at, seq) firing order and therefore bit-identical
// results.
//
//cohort:hotpath
func (s *System) HandleEvent(now sim.Cycle, kind sim.Kind, recv int32, p0, _ uint64) {
	n := int64(now)
	switch kind {
	case evCoreWake:
		c := s.cores[recv]
		if c.wakeAt == n {
			c.wakeAt = -1
		}
		s.coreWake(c, n)
	case evKick:
		s.clearKick(n)
		s.kickArbiter(n)
	case evFinishBroadcast:
		// c.miss is necessarily the miss that scheduled this event: a miss
		// cannot complete (or be replaced) while its broadcast is in flight.
		c := s.cores[recv]
		s.finishBroadcast(c, c.miss, n)
	case evFinishData:
		// Same argument: the miss occupies the bus until finishData clears it.
		c := s.cores[recv]
		s.finishData(c, c.miss, n)
	case evOwnerRelease:
		s.firedOwnerRelease(int32(p0), n)
	case evSharerInval:
		s.firedSharerInval(int32(p0), n)
	case evModeSwitch:
		s.applyModeSwitch(n, int(p0))
	default:
		panic(fmt.Sprintf("core: unknown event kind %d", kind))
	}
}

// firedOwnerRelease re-checks a scheduled owner timer expiry and applies the
// release when the world still matches the schedule-time snapshot (ownership
// transfer, eviction, or a mode switch re-basing the epoch all void it).
func (s *System) firedOwnerRelease(idx int32, now int64) {
	r := s.timerRecs[idx]
	s.freeTimerRec(idx)
	li := s.dir.Peek(r.line)
	if li == nil {
		return // unreachable: the line existed when the expiry was scheduled
	}
	if li.Owner != int(r.core) || li.OwnerReleased || li.OwnerFetch != r.fetchStamp || !li.PendingInv() {
		return
	}
	if li.HeadWaiter().Write != r.write {
		return
	}
	s.checkTimerRelease(now, r.line, int(r.core), r.fetchStamp, s.cores[r.core].theta, r.reqVisible)
	s.releaseOwner(r.line, li, r.write, now)
}

// firedSharerInval re-checks a scheduled sharer timer expiry; the copy must
// still be the exact Shared copy (same fetch epoch) the expiry was computed
// for, with a remote store still pending.
func (s *System) firedSharerInval(idx int32, now int64) {
	r := s.timerRecs[idx]
	s.freeTimerRec(idx)
	cj := s.cores[r.core]
	e := cj.l1.Lookup(r.line)
	if e == nil || e.State != cache.Shared || e.FetchedAt != r.fetchStamp {
		return
	}
	li := s.dir.Get(r.line)
	if !li.PendingInv() {
		return
	}
	s.checkTimerRelease(now, r.line, int(r.core), r.fetchStamp, cj.theta, r.reqVisible)
	s.invalidateSharer(cj, r.line, li)
}
