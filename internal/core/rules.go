package core

import (
	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/config"
)

// This file isolates the pure transition rules of the heterogeneous protocol
// — the decisions bus_txn.go applies to the directory and the private caches
// — as side-effect-free functions over (timer, request kind, global line
// state). The event-driven simulator calls them at the moment it mutates
// state, and the exhaustive model checker (internal/model) explores the very
// same simulator, so each rule exists exactly once in the tree: the checker
// can only ever disagree with the simulator if a rule disagrees with itself.
// The seeded-fault TestHooks thread through here so a mutation perturbs both
// call sites of a rule identically.

// HandoverAction is how an owner's private copy is disposed of when the line
// is handed to a remote requester.
type HandoverAction uint8

const (
	// HandoverInvalidate: the owner's copy dies. Timed owners always
	// invalidate at expiry — keeping a timer-protected Shared copy after a
	// remote load would make a later remote store wait out the same core's
	// timer twice, breaking Equation 1. MSI owners invalidate on a remote
	// store.
	HandoverInvalidate HandoverAction = iota
	// HandoverDowngrade: an MSI owner demotes its copy to Shared on a remote
	// load (standard MSI) and registers as a sharer.
	HandoverDowngrade
	// HandoverKeep: the stale owned copy survives untouched. Only reachable
	// under the seeded fault TestHooks.SkipMSIDowngrade.
	HandoverKeep
)

// OwnerHandover returns the disposition of an owner copy held with timer
// theta when a remote requester (write = store) takes the line over. Both
// hand-over sites — releaseOwner at timer expiry and finishData when the
// expiry lands on the grant itself — apply this one rule.
func OwnerHandover(theta config.Timer, write bool) HandoverAction {
	if write || theta != config.TimerMSI {
		return HandoverInvalidate
	}
	if TestHooks.SkipMSIDowngrade {
		return HandoverKeep // seeded fault (mutation tests only)
	}
	return HandoverDowngrade
}

// OwnerReleaseAt returns the cycle an unreleased owner that (re)fetched the
// line at ownerFetch, running with timer theta, hands the line over for a
// request that became visible at reqVisible — the Fig. 3 closed form.
// TestHooks.TimerReleaseSkew shifts timed releases for mutation tests.
func OwnerReleaseAt(ownerFetch, reqVisible int64, theta config.Timer) int64 {
	rel := coherence.ReleaseTime(ownerFetch, reqVisible, theta)
	if TestHooks.TimerReleaseSkew != 0 && theta.Timed() {
		rel += TestHooks.TimerReleaseSkew // seeded fault (mutation tests only)
	}
	return rel
}

// SharerReleaseAt returns the cycle a timer-protected Shared copy fetched at
// fetchedAt dies for a pending store whose request became visible at
// reqVisible.
func SharerReleaseAt(fetchedAt, reqVisible int64, theta config.Timer) int64 {
	return coherence.ReleaseTime(fetchedAt, reqVisible, theta)
}

// FillState returns the state a requester installs after its data transfer
// completes: Modified for a store; for a load, Shared — or, under MESI,
// Exclusive when the memory served the line and no other cached copy remains.
func FillState(write bool, snoop config.Snoop, prevOwner int, sharers uint64) cache.State {
	if write {
		return cache.Modified
	}
	if snoop == config.SnoopMESI && prevOwner == coherence.MemOwner && sharers == 0 {
		return cache.Exclusive
	}
	return cache.Shared
}
