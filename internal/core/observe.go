package core

import (
	"errors"
	"fmt"
	"strconv"

	"cohort/internal/coherence"
	"cohort/internal/obs"
)

// Trace-event thread IDs within obs.PidSim: tid 0 is the shared bus, core i
// renders on tid i+1.
const simTidBus = 0

func simTidCore(core int) int { return core + 1 }

// SetMetrics registers the system's measurement surface with a registry:
// run-level counters (cycles, bus occupancy, transactions, mode switches),
// the per-core access/latency family including the latency histograms, the
// LLC and arbiter counters, timer-protection-window totals, and contention
// summaries. Values are read when the registry is snapshotted — attach the
// registry, Run, then Snapshot. Must be called before Run; passing nil is a
// no-op. Attaching a registry does not touch the simulator hot path.
func (s *System) SetMetrics(reg *obs.Registry) error {
	if s.ran {
		return errors.New("core: SetMetrics after Run")
	}
	if reg == nil {
		return nil
	}
	s.metrics = reg
	reg.RegisterFunc("sim_cycles", func() int64 { return s.run.Cycles })
	reg.RegisterCounterFunc("sim_bus_busy_cycles", func() int64 { return s.run.BusBusy })
	reg.RegisterCounterFunc("sim_bus_transactions", func() int64 { return s.run.Transactions })
	reg.RegisterCounterFunc("sim_mode_switches", func() int64 { return int64(s.run.ModeSwitches) })
	reg.RegisterFunc("sim_mode", func() int64 { return int64(s.mode) })
	reg.RegisterCounter("sim_timer_windows", &s.timerWindows)
	reg.RegisterCounter("sim_timer_window_cycles", &s.timerWindowCycles)

	for i := range s.cores {
		c := s.cores[i]
		st := &s.run.Cores[i]
		lbl := obs.L("core", strconv.Itoa(i))
		reg.RegisterCounterFunc("sim_core_accesses", func() int64 { return st.Accesses }, lbl)
		reg.RegisterCounterFunc("sim_core_hits", func() int64 { return st.Hits }, lbl)
		reg.RegisterCounterFunc("sim_core_misses", func() int64 { return st.Misses }, lbl)
		reg.RegisterCounterFunc("sim_core_total_latency", func() int64 { return st.TotalLatency }, lbl)
		reg.RegisterFunc("sim_core_max_miss_latency", func() int64 { return st.MaxMissLatency }, lbl)
		reg.RegisterCounterFunc("sim_core_writebacks", func() int64 { return st.Writebacks }, lbl)
		reg.RegisterCounterFunc("sim_core_invalidations", func() int64 { return st.Invalidations }, lbl)
		reg.RegisterCounterFunc("sim_core_upgrades", func() int64 { return st.Upgrades }, lbl)
		reg.RegisterFunc("sim_core_finish_cycle", func() int64 { return st.FinishCycle }, lbl)
		reg.RegisterFunc("sim_core_theta", func() int64 { return int64(c.theta) }, lbl)
		reg.RegisterFunc("sim_core_l1_valid_lines", func() int64 { return int64(c.l1.CountValid()) }, lbl)
		reg.RegisterHistogram("sim_core_latency", &st.Latency, lbl)
	}

	s.llc.RegisterMetrics(reg)
	// The arbiter is read through s.arb at snapshot time: a mode switch
	// reprograms the TDM schedule by replacing the instance, and the counter
	// must follow the replacement (counts are per current instance).
	reg.RegisterCounterFunc("bus_arbiter_grants", func() int64 {
		if g, ok := s.arb.(interface{ Grants() int64 }); ok {
			return g.Grants()
		}
		return 0
	}, obs.L("arbiter", s.arb.Name()))

	reg.RegisterFunc("sim_directory_lines", func() int64 {
		var n int64
		s.dir.ForEach(func(uint64, *coherence.LineInfo) { n++ })
		return n
	})
	reg.RegisterFunc("sim_contended_lines", func() int64 { return int64(len(s.contention)) })
	reg.RegisterCounterFunc("sim_line_requests_total", func() int64 {
		var total int64
		//cohort:allow maprange: order-independent integer sum over the contention map
		for _, lc := range s.contention {
			total += lc.Requests
		}
		return total
	})
	reg.RegisterCounterFunc("sim_line_handovers_total", func() int64 {
		var total int64
		//cohort:allow maprange: order-independent integer sum over the contention map
		for _, lc := range s.contention {
			total += lc.Handovers
		}
		return total
	})
	reg.RegisterCounterFunc("sim_timer_stall_cycles_total", func() int64 {
		var total int64
		//cohort:allow maprange: order-independent integer sum over the contention map
		for _, lc := range s.contention {
			total += lc.TimerStalls
		}
		return total
	})
	return nil
}

// RegisterAttribution exposes the per-core miss-latency decomposition
// (stats.Attribution) as metrics: the four component totals and their
// per-miss histograms. It is deliberately separate from SetMetrics — the
// attribution family is opt-in so the canonical snapshots and fingerprints
// of pre-existing runs stay byte-identical. The underlying counters
// accumulate unconditionally (plain integer adds in the recycled per-core
// miss record); registering only exposes them. Must be called before Run;
// passing nil is a no-op.
func (s *System) RegisterAttribution(reg *obs.Registry) error {
	if s.ran {
		return errors.New("core: RegisterAttribution after Run")
	}
	if reg == nil {
		return nil
	}
	for i := range s.cores {
		st := &s.run.Cores[i]
		lbl := obs.L("core", strconv.Itoa(i))
		reg.RegisterCounterFunc("sim_core_attr_arbitration_cycles", func() int64 { return st.Attr.ArbitrationCycles }, lbl)
		reg.RegisterCounterFunc("sim_core_attr_timer_stall_cycles", func() int64 { return st.Attr.TimerStallCycles }, lbl)
		reg.RegisterCounterFunc("sim_core_attr_transfer_cycles", func() int64 { return st.Attr.TransferCycles }, lbl)
		reg.RegisterCounterFunc("sim_core_attr_dram_cycles", func() int64 { return st.Attr.DRAMCycles }, lbl)
		reg.RegisterHistogram("sim_core_attr_arbitration", &st.Attr.Arbitration, lbl)
		reg.RegisterHistogram("sim_core_attr_timer_stall", &st.Attr.TimerStall, lbl)
		reg.RegisterHistogram("sim_core_attr_transfer", &st.Attr.Transfer, lbl)
		reg.RegisterHistogram("sim_core_attr_dram", &st.Attr.DRAM, lbl)
	}
	return nil
}

// SetProgress attaches a live-progress handle (obs.RunTracker): the system
// bumps the handle's event and cycle counters as accesses complete, batched
// progressBatch at a time so the steady-state hot-path cost is one plain
// integer increment and one branch per access — no allocation, no lock.
// Samples of the handle are wall-clock-dependent and never feed canonical
// output. Must be called before Run; passing nil is a no-op.
func (s *System) SetProgress(h *obs.RunHandle) error {
	if s.ran {
		return errors.New("core: SetProgress after Run")
	}
	if h == nil {
		return nil
	}
	s.progress = h
	return nil
}

// noteProgress accounts one completed access, flushing the batch to the
// handle's atomics every progressBatch completions. now is nondecreasing
// across calls (the event loop dispatches in cycle order).
func (s *System) noteProgress(now int64) {
	if s.progress == nil {
		return
	}
	s.progressEvents++
	if s.progressEvents >= progressBatch {
		s.progress.AddEvents(s.progressEvents)
		s.progress.AddCycles(now - s.progressCycle)
		s.progressEvents = 0
		s.progressCycle = now
	}
}

// SetRecorder attaches a span/event recorder: bus occupancy spans
// (broadcast and data phases), per-core miss intervals, timer-protection
// windows, invalidation and mode-switch instants, and the latency-sampler
// series become Chrome trace events (obs.Recorder.WriteChrome → Perfetto).
// Timestamps are simulated cycles. Must be called before Run; passing nil
// is a no-op. Recording is fully independent of SetTracer (both may be
// attached) and has zero cost when detached.
func (s *System) SetRecorder(rec *obs.Recorder) error {
	if s.ran {
		return errors.New("core: SetRecorder after Run")
	}
	if rec == nil {
		return nil
	}
	s.rec = rec
	s.missStart = make([]int64, len(s.cores))
	for i := range s.missStart {
		s.missStart[i] = -1
	}
	rec.NameProcess(obs.PidSim, "cohort simulator")
	rec.NameThread(obs.PidSim, simTidBus, "bus")
	for i := range s.cores {
		rec.NameThread(obs.PidSim, simTidCore(i), "core "+strconv.Itoa(i))
	}
	return nil
}

// recordEvent translates one simulator event into trace spans/instants.
// Only called when a recorder is attached.
func (s *System) recordEvent(ev TraceEvent) {
	switch ev.Kind {
	case EvBroadcast:
		s.rec.Complete(obs.PidSim, simTidBus, "broadcast", "bus", ev.Cycle, ev.Until-ev.Cycle,
			map[string]string{"core": strconv.Itoa(ev.Core), "line": fmt.Sprintf("%#x", ev.Line)})
	case EvData:
		s.rec.Complete(obs.PidSim, simTidBus, "data", "bus", ev.Cycle, ev.Until-ev.Cycle,
			map[string]string{"core": strconv.Itoa(ev.Core), "line": fmt.Sprintf("%#x", ev.Line)})
	case EvMissStart:
		s.missStart[ev.Core] = ev.Cycle
	case EvMissEnd:
		if start := s.missStart[ev.Core]; start >= 0 {
			s.rec.Complete(obs.PidSim, simTidCore(ev.Core), "miss", "l1", start, ev.Cycle-start,
				map[string]string{"line": fmt.Sprintf("%#x", ev.Line)})
			s.missStart[ev.Core] = -1
		}
	case EvInvalidate:
		s.rec.Instant(obs.PidSim, simTidCore(ev.Core), "invalidate", "coherence", ev.Cycle,
			map[string]string{"line": fmt.Sprintf("%#x", ev.Line)})
	case EvModeSwitch:
		s.rec.Instant(obs.PidSim, simTidBus, "mode switch", "mode", ev.Cycle,
			map[string]string{"mode": strconv.FormatUint(ev.Line, 10)})
		s.rec.Count(obs.PidSim, simTidBus, "mode", ev.Cycle, int64(ev.Line))
	}
}

// recordTimerWindow accounts one timer-protection window [from, to) on a
// core's copy of a line: the counters always accumulate (plain integer
// adds), and with a recorder attached the window becomes a span on the
// core's track. Timer windows start at the copy's fetch, which predates the
// release event driving this call — they are emitted here, off the Tracer
// stream, because Tracer consumers (the VCD recorder) require nondecreasing
// event cycles.
func (s *System) recordTimerWindow(core int, line uint64, from, to int64) {
	if to < from {
		from = to
	}
	s.timerWindows.Inc()
	s.timerWindowCycles.Add(to - from)
	if s.rec != nil {
		s.rec.Complete(obs.PidSim, simTidCore(core), "timer window", "coherence", from, to-from,
			// Attaching a recorder opts out of the zero-alloc guarantee.
			map[string]string{"line": fmt.Sprintf("%#x", line)}) //cohort:allow hotalloc: recorder branch allocates only when a recorder is attached
	}
}
