package core

import "sort"

// LineContention summarizes bus traffic on one cache line over a run.
type LineContention struct {
	// Line is the line-granularity address.
	Line uint64
	// Requests counts bus requests (broadcasts) for the line.
	Requests int64
	// Handovers counts ownership transfers sourced from another cache
	// (the coherence traffic the timers arbitrate).
	Handovers int64
	// TimerStalls accumulates cycles requesters spent waiting for timer
	// releases on this line.
	TimerStalls int64
	// Cores is a bitmask of cores that requested the line.
	Cores uint64
}

// Sharers counts the distinct requesting cores.
func (lc LineContention) Sharers() int {
	n := 0
	for m := lc.Cores; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// recordRequest folds one broadcast into the line's contention record.
func (s *System) recordRequest(line uint64, core int) {
	lc := s.contention[line]
	if lc == nil {
		lc = &LineContention{Line: line} //cohort:allow hotalloc: one record per distinct line, first touch only (covers the map write below)
		s.contention[line] = lc
	}
	lc.Requests++
	lc.Cores |= 1 << uint(core)
}

// recordHandover notes a cache-to-cache ownership transfer and the timer
// wait the requester paid for it (broadcast-to-ready distance).
func (s *System) recordHandover(line uint64, wait int64) {
	lc := s.contention[line]
	if lc == nil {
		lc = &LineContention{Line: line} //cohort:allow hotalloc: one record per distinct line, first touch only (covers the map write below)
		s.contention[line] = lc
	}
	lc.Handovers++
	if wait > 0 {
		lc.TimerStalls += wait
	}
}

// TopContended returns the k most requested lines in descending request
// order (ties broken by line address for determinism). Available after Run.
func (s *System) TopContended(k int) []LineContention {
	out := make([]LineContention, 0, len(s.contention))
	for _, lc := range s.contention {
		out = append(out, *lc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Line < out[j].Line
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
