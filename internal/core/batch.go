package core

import (
	"fmt"

	"cohort/internal/config"
	"cohort/internal/parallel"
	"cohort/internal/sim"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

// ModeSwitch is one scheduled run-time criticality change in a batched lane:
// switch to Mode at cycle At (the same contract as System.ScheduleModeSwitch).
type ModeSwitch struct {
	At   int64
	Mode int
}

// BatchLane is one configuration in a batched evaluation: a full system
// configuration plus its mode-switch schedule. Lanes in one batch may differ
// arbitrarily — timers, protocol, arbiter, criticality map — because each
// lane runs its own event loop; only the decoded trace is shared.
type BatchLane struct {
	Cfg          *config.System
	ModeSwitches []ModeSwitch
}

// RunBatch evaluates every lane against one shared decoded trace and returns
// the per-lane measurements, index-aligned with lanes. It is the full-system
// counterpart of analysis.BatchAnalyzer: the trace is decoded once and every
// lane replays it, so a parameter sweep pays trace generation once instead of
// once per configuration.
//
// Batching here is at lane granularity, not event granularity: heterogeneous
// configurations diverge in timing from the first miss, so there is no shared
// event order to walk in lockstep (DESIGN.md §14 spells this out). What is
// shared is the trace and — with workers ≤ 1 — one engine whose queue backing
// is Reset-reused across lanes, so a fleet of N configurations performs the
// queue growth of the deepest single run, not the sum over runs.
//
// workers > 1 runs lanes concurrently under the whole-jobs-only parallelism
// rule: each lane gets its own engine, results land in index-addressed slots,
// and the returned slice is bit-identical for every worker count.
func RunBatch(lanes []BatchLane, tr *trace.Trace, workers int) ([]*stats.Run, error) {
	if len(lanes) == 0 {
		return nil, nil
	}
	skew := TestHooks.BatchLaneTimerSkew
	runLane := func(eng *sim.Engine, lane BatchLane) (*stats.Run, error) {
		sys, err := newOn(eng, lane.Cfg, tr)
		if err != nil {
			return nil, err
		}
		for _, sw := range lane.ModeSwitches {
			if err := sys.ScheduleModeSwitch(sw.At+skew, sw.Mode); err != nil {
				return nil, err
			}
		}
		return sys.Run()
	}
	if workers <= 1 {
		eng := sim.New()
		out := make([]*stats.Run, len(lanes))
		for i, lane := range lanes {
			eng.Reset()
			run, err := runLane(eng, lane)
			if err != nil {
				return nil, fmt.Errorf("core: batch lane %d: %w", i, err)
			}
			out[i] = run
		}
		return out, nil
	}
	b := sim.NewBatch(len(lanes))
	out, err := parallel.MapErr(workers, len(lanes), func(i int) (*stats.Run, error) {
		run, err := runLane(b.Lane(i), lanes[i])
		if err != nil {
			return nil, fmt.Errorf("core: batch lane %d: %w", i, err) //cohort:allow hotalloc: lane failure path; the batch aborts
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
