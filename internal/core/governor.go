package core

import (
	"errors"
	"fmt"
)

// Governor is a closed-loop mode-switch controller: it samples one core's
// accumulated memory latency every Window cycles and escalates the operating
// mode when a window's latency exceeds Budget. This automates the Fig. 7
// flow — where the experiment schedules switches at fixed instants, the
// governor derives them from observed behaviour, realizing the paper's §I
// direction of hardware cooperating with the system scheduler on mode
// switches instead of blindly suspending low-criticality tasks.
type Governor struct {
	// Core is the monitored core (the highest-criticality one in the
	// paper's scenario).
	Core int
	// Window is the sampling period in cycles.
	Window int64
	// Budget is the maximum memory latency (cycles) the monitored core may
	// accumulate per window before the governor escalates.
	Budget int64
	// MaxMode caps the escalation (defaults to the system's level count
	// when 0).
	MaxMode int
}

// GovernorDecision records one sampling point.
type GovernorDecision struct {
	// At is the sampling cycle.
	At int64
	// WindowLatency is the memory latency the monitored core accumulated
	// since the previous sample.
	WindowLatency int64
	// Escalated reports whether this sample triggered a mode switch.
	Escalated bool
	// Mode is the operating mode after the sample.
	Mode int
}

// SetGovernor installs the controller. Must be called before Run.
func (s *System) SetGovernor(g Governor) error {
	if s.ran {
		return errors.New("core: SetGovernor after Run")
	}
	if g.Core < 0 || g.Core >= len(s.cores) {
		return fmt.Errorf("core: governor core %d out of range", g.Core)
	}
	if g.Window <= 0 {
		return fmt.Errorf("core: governor window %d must be positive", g.Window)
	}
	if g.Budget <= 0 {
		return fmt.Errorf("core: governor budget %d must be positive", g.Budget)
	}
	if g.MaxMode == 0 {
		g.MaxMode = s.cfg.Levels
	}
	if g.MaxMode < 1 || g.MaxMode > s.cfg.Levels {
		return fmt.Errorf("core: governor max mode %d out of range [1,%d]", g.MaxMode, s.cfg.Levels)
	}
	s.governor = &g
	return nil
}

// GovernorHistory returns the decisions taken during the run.
func (s *System) GovernorHistory() []GovernorDecision {
	return append([]GovernorDecision(nil), s.governorLog...)
}

// startGovernor schedules the first sample; called from Run.
func (s *System) startGovernor() {
	if s.governor == nil {
		return
	}
	s.at(s.governor.Window, s.governorSample)
}

// governorSample evaluates one window and escalates if over budget.
func (s *System) governorSample(now int64) {
	g := s.governor
	mon := &s.run.Cores[g.Core]
	delta := mon.TotalLatency - s.governorLast
	s.governorLast = mon.TotalLatency
	dec := GovernorDecision{At: now, WindowLatency: delta, Mode: s.mode}
	if delta > g.Budget && s.mode < g.MaxMode {
		s.applyModeSwitch(now, s.mode+1)
		dec.Escalated = true
		dec.Mode = s.mode
	}
	s.governorLog = append(s.governorLog, dec)
	// Keep sampling while the monitored core is still working.
	if !s.cores[g.Core].finished {
		s.at(now+g.Window, s.governorSample)
	}
}
