package core

import "errors"

// EventKind classifies the micro-architectural events the simulator can
// stream to an attached Tracer (e.g. the VCD waveform recorder in
// internal/vcd).
type EventKind uint8

const (
	// EvBroadcast: a request broadcast occupies the bus [Cycle, Until).
	EvBroadcast EventKind = iota
	// EvData: a data transfer occupies the bus [Cycle, Until).
	EvData
	// EvMissStart: the core's access missed and a bus request was created.
	EvMissStart
	// EvMissEnd: the miss completed (data received).
	EvMissEnd
	// EvInvalidate: the core's copy of Line was invalidated (remote request
	// or back-invalidation).
	EvInvalidate
	// EvModeSwitch: the system switched operating mode (Line carries the
	// new mode; Core is −1).
	EvModeSwitch
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvBroadcast:
		return "broadcast"
	case EvData:
		return "data"
	case EvMissStart:
		return "miss-start"
	case EvMissEnd:
		return "miss-end"
	case EvInvalidate:
		return "invalidate"
	case EvModeSwitch:
		return "mode-switch"
	default:
		return "event"
	}
}

// TraceEvent is one simulator event. Events are delivered in nondecreasing
// Cycle order.
type TraceEvent struct {
	Cycle int64
	Kind  EventKind
	Core  int
	Line  uint64
	// Until is the end of the bus occupancy for EvBroadcast/EvData.
	Until int64
}

// Tracer receives simulator events; attach one with SetTracer.
type Tracer interface {
	Trace(TraceEvent)
}

// SetTracer attaches an event consumer. Must be called before Run. Passing
// nil detaches. Tracing has zero cost when no tracer is attached.
func (s *System) SetTracer(t Tracer) error {
	if s.ran {
		return errors.New("core: SetTracer after Run")
	}
	s.tracer = t
	return nil
}

// emit delivers an event to the attached tracer and span recorder, if any.
//
// Observability fan-out: zero cost when nothing is attached, and runs that
// attach a tracer or recorder opt out of the zero-allocation guarantee.
//
//cohort:hotpath exempt
func (s *System) emit(ev TraceEvent) {
	if s.tracer != nil {
		s.tracer.Trace(ev)
	}
	if s.rec != nil {
		s.recordEvent(ev)
	}
}
