package core

import (
	"errors"
	"strings"
	"testing"

	"cohort/internal/cache"
	"cohort/internal/config"
	"cohort/internal/invariant"
	"cohort/internal/trace"
)

// runChecked builds and runs a system with the invariant checker enabled and
// requires a clean completion with at least one sweep.
func runChecked(t *testing.T, cfg *config.System, tr *trace.Trace) *System {
	t.Helper()
	cfg.CheckInvariants = true
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatalf("run with invariant checker: %v", err)
	}
	if sys.InvariantChecks() == 0 {
		t.Fatal("invariant checker enabled but never ran")
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatalf("coherence: %v", err)
	}
	return sys
}

// TestInvariantCheckerMSI runs a plain-MSI contention workload under the
// checker: write ping-pong plus a reader, exercising downgrade, upgrade and
// invalidation paths.
func TestInvariantCheckerMSI(t *testing.T) {
	cfg := cfgN(3, config.TimerMSI, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{
			{Addr: lineA, Kind: trace.Write},
			{Addr: lineA, Kind: trace.Write, Gap: 300},
			{Addr: lineB, Kind: trace.Read, Gap: 10},
		},
		trace.Stream{
			{Addr: lineA, Kind: trace.Write, Gap: 20},
			{Addr: lineB, Kind: trace.Write, Gap: 200},
		},
		trace.Stream{
			{Addr: lineA, Kind: trace.Read, Gap: 40},
			{Addr: lineA, Kind: trace.Write, Gap: 500},
		},
	)
	runChecked(t, cfg, tr)
}

// TestInvariantCheckerTimed runs a timer-based workload (uniform θ) under
// the checker: the remote read and write must wait out the owner's epochs,
// driving the scheduled-release path the event-driven check validates.
func TestInvariantCheckerTimed(t *testing.T) {
	cfg := cfgN(3, 200, 200, 200)
	tr := mkTrace(
		trace.Stream{
			{Addr: lineA, Kind: trace.Write},
			{Addr: lineA, Kind: trace.Write, Gap: 900},
		},
		trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 60}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 120}},
	)
	runChecked(t, cfg, tr)
}

// TestInvariantCheckerHeterogeneous runs the paper's headline configuration —
// different timers per core (MSI, θ = 0, timed) — under the checker.
func TestInvariantCheckerHeterogeneous(t *testing.T) {
	cfg := cfgN(4, config.TimerMSI, 0, 150, 800)
	rng := trace.NewRNG(11)
	var streams []trace.Stream
	for c := 0; c < 4; c++ {
		var s trace.Stream
		for i := 0; i < 60; i++ {
			kind := trace.Read
			if rng.Intn(3) == 0 {
				kind = trace.Write
			}
			s = append(s, trace.Access{
				Addr: lineA + uint64(rng.Intn(4))*64,
				Kind: kind,
				Gap:  int64(rng.Intn(30)),
			})
		}
		streams = append(streams, s)
	}
	runChecked(t, cfg, mkTrace(streams...))
}

// TestMutationMSIDowngradeCaught seeds the classic stale-dirty-copy bug —
// releaseOwner keeps the MSI owner's Modified copy on a remote load — and
// asserts the checker fails closed at the exact cycle the mutation fires,
// with the violation naming the line, cycle and per-core states.
func TestMutationMSIDowngradeCaught(t *testing.T) {
	TestHooks.SkipMSIDowngrade = true
	t.Cleanup(func() { TestHooks.SkipMSIDowngrade = false })

	cfg := cfgN(2, config.TimerMSI, config.TimerMSI)
	cfg.CheckInvariants = true
	// Core 0 owns lineA in M at 54 (4-cycle broadcast fused with 50-cycle
	// data). Core 1's read broadcasts 60..64; the MSI owner releases at 64 —
	// the mutated release keeps the stale M copy, so the post-broadcast
	// sweep at cycle 64 must report it.
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 60}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run()
	if err == nil {
		t.Fatal("mutated MSI downgrade path ran clean; checker missed the stale M copy")
	}
	var verr *invariant.Error
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T (%v), want *invariant.Error", err, err)
	}
	if verr.Kind != invariant.KindSWMR {
		t.Fatalf("kind = %s, want swmr (%v)", verr.Kind, verr)
	}
	if verr.Cycle != 64 {
		t.Fatalf("cycle = %d, want 64 (the release the mutation skipped): %v", verr.Cycle, verr)
	}
	wantLine := sys.cores[0].l1.LineAddr(lineA)
	if verr.Line != wantLine {
		t.Fatalf("line = %#x, want %#x: %v", verr.Line, wantLine, verr)
	}
	if verr.Core != 0 {
		t.Fatalf("core = %d, want 0 (the stale owner): %v", verr.Core, verr)
	}
	found := false
	for _, st := range verr.States {
		if st.Core == 0 && st.State == cache.Modified {
			found = true
		}
	}
	if !found {
		t.Fatalf("states %v missing core 0 in M", verr.States)
	}
}

// TestMutationTimerReleaseSkewCaught seeds a skew into the timed owner's
// release schedule (late and early variants) and asserts the event-driven
// check fails closed at the exact skewed cycle, naming the true expiry.
func TestMutationTimerReleaseSkewCaught(t *testing.T) {
	for _, tc := range []struct {
		name string
		skew int64
		side string
	}{
		{name: "late", skew: 7, side: "late"},
		{name: "early", skew: -7, side: "early"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			TestHooks.TimerReleaseSkew = tc.skew
			t.Cleanup(func() { TestHooks.TimerReleaseSkew = 0 })

			cfg := cfgN(2, 500, config.TimerMSI)
			cfg.CheckInvariants = true
			// Core 0 (θ = 500) owns lineA in M at 54 (OwnerFetch = 54).
			// Core 1's read broadcasts 60..64; the true release is the first
			// epoch expiry ≥ 64: 54 + 500 = 554. The skewed schedule fires
			// at 554 + skew, and nothing else runs in between, so the first
			// violation must land exactly there.
			tr := mkTrace(
				trace.Stream{{Addr: lineA, Kind: trace.Write}},
				trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 60}},
			)
			sys, err := New(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			_, err = sys.Run()
			if err == nil {
				t.Fatal("skewed timer release ran clean; checker missed it")
			}
			var verr *invariant.Error
			if !errors.As(err, &verr) {
				t.Fatalf("error is %T (%v), want *invariant.Error", err, err)
			}
			if verr.Kind != invariant.KindTimerProtection {
				t.Fatalf("kind = %s, want timer-protection (%v)", verr.Kind, verr)
			}
			if want := int64(554 + tc.skew); verr.Cycle != want {
				t.Fatalf("cycle = %d, want %d (the skewed release): %v", verr.Cycle, want, verr)
			}
			wantLine := sys.cores[0].l1.LineAddr(lineA)
			if verr.Line != wantLine {
				t.Fatalf("line = %#x, want %#x: %v", verr.Line, wantLine, verr)
			}
			if verr.Core != 0 {
				t.Fatalf("core = %d, want 0 (the timed owner): %v", verr.Core, verr)
			}
			if !strings.Contains(verr.Detail, tc.side) || !strings.Contains(verr.Detail, "554") {
				t.Fatalf("detail %q does not name the %s release against expiry 554", verr.Detail, tc.side)
			}
		})
	}
}
