// Package core wires the full CoHoRT platform together: trace-driven cores
// with non-blocking private caches, the snooping bus with pluggable
// arbitration, the heterogeneous coherence engine (per-core timers, θ = −1
// reducing to MSI), the shared LLC, and run-time mode switching through the
// per-core Mode-Switch LUT. It is the cycle-accurate simulator substrate the
// paper built on Octopus, rebuilt from scratch (DESIGN.md §1).
package core

import (
	"errors"
	"fmt"
	"sort"

	"cohort/internal/bus"
	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/config"
	"cohort/internal/invariant"
	"cohort/internal/memctrl"
	"cohort/internal/obs"
	"cohort/internal/sim"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

// missState tracks one core's outstanding bus request (MSHR of depth 1).
type missState struct {
	line        uint64
	write       bool
	wasShared   bool  // upgrade: the core held the line in S
	issuedAt    int64 // cycle the access started (latency base; FCFS key)
	broadcasted bool
	broadcastAt int64
	dataReadyAt int64 // earliest cycle the data transfer may be granted; -1 unknown
	inFlight    bool  // currently occupying the bus
	// Latency-attribution stamps (stats.Attribution): the broadcast- and
	// data-grant cycles and the LLC/DRAM fetch penalty folded into the data
	// phase. Plain integer fields in the recycled per-core record.
	grantAt     int64
	dataGrantAt int64
	dramPenalty int64
}

// coreState is the simulator-side state of one core.
type coreState struct {
	id    int
	l1    *cache.Cache
	lut   *coherence.ModeLUT
	theta config.Timer // timer register at the current mode

	stream        trace.Stream
	pos           int
	nextEligible  int64 // earliest issue cycle of the next access
	miss          *missState
	missBuf       missState // backing for miss: MSHR depth 1 means one record per core, recycled in place
	maxCompletion int64
	finished      bool
	wakeAt        int64 // scheduled coreWake cycle (-1 none)
}

// System is a runnable simulation instance. Build one with New, run it with
// Run; a System is single-use.
type System struct {
	cfg *config.System
	eng *sim.Engine
	arb bus.Arbiter
	llc *memctrl.LLC
	dir *coherence.Directory

	cores []*coreState
	run   *stats.Run
	mode  int

	busBusyUntil int64
	busHeld      bool    // a transaction owner may still extend its tenure
	kickPending  []int64 // cycles with a scheduled evKick (bounded by cores+2; linear scan beats a map here)
	contention   map[uint64]*LineContention

	// Hot-path scratch, preallocated in New / pooled across events so the
	// steady-state simulation loop performs no heap allocations.
	cands     []bus.Candidate   // arbiter candidate snapshot, one slot per core
	timerRecs []timerRec        // pooled owner-release / sharer-invalidation records
	timerFree int32             // head of the timerRecs free list (-1 empty)
	pinnedFn  func(uint64) bool // s.pinnedInL1 bound once (a method value allocates per use)

	inv    *invariant.Checker // nil unless cfg.CheckInvariants
	invErr error              // first invariant violation, latched

	modeSwitches []scheduledSwitch
	tracer       Tracer
	samplers     []*latencySampler
	governor     *Governor
	governorLog  []GovernorDecision
	governorLast int64
	ran          bool

	// Observability (internal/obs). metrics and rec stay nil unless
	// SetMetrics/SetRecorder are called, keeping the unobserved hot path
	// allocation-free; the timer-window counters are plain value fields and
	// count unconditionally (an integer add each).
	metrics           *obs.Registry
	rec               *obs.Recorder
	missStart         []int64 // per-core miss-start cycle for recorder spans
	timerWindows      obs.Counter
	timerWindowCycles obs.Counter

	// Live-progress handle (obs.RunTracker). Updates are batched through
	// plain integer fields so the steady-state cost with a handle attached is
	// one increment and one branch per completed access; the atomics are
	// touched once per progressBatch completions and once at the end of Run.
	progress       *obs.RunHandle
	progressEvents int64 // completions since the last flush
	progressCycle  int64 // simulated cycle at the last flush
}

// progressBatch is how many access completions accumulate locally before
// being flushed to the progress handle's atomics.
const progressBatch = 1024

type scheduledSwitch struct {
	at   int64
	mode int
}

// New builds a system from a validated configuration and a workload trace
// with one stream per core.
func New(cfg *config.System, tr *trace.Trace) (*System, error) {
	return newOn(sim.New(), cfg, tr)
}

// newOn builds a system on an existing engine. The engine must be fresh or
// freshly Reset — newOn installs the system as the typed-event handler and
// assumes cycle 0. RunBatch uses this to reuse one engine's queue backing
// across a fleet of configurations.
func newOn(eng *sim.Engine, cfg *config.System, tr *trace.Trace) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.NumCores() != cfg.N() {
		return nil, fmt.Errorf("core: trace has %d streams for %d cores", tr.NumCores(), cfg.N())
	}
	cfg = cfg.Clone()

	var arb bus.Arbiter
	switch cfg.Arbiter {
	case config.ArbiterRROF:
		arb = bus.NewRROF(cfg.N())
	case config.ArbiterRR:
		arb = bus.NewRR(cfg.N())
	case config.ArbiterFCFS:
		arb = bus.NewFCFS()
	case config.ArbiterTDM:
		crit := make([]bool, cfg.N())
		for i := range crit {
			crit[i] = cfg.Critical(i)
		}
		arb = bus.NewTDM(crit, cfg.Lat.SlotWidth(), cfg.PendulumCritOnly)
	default:
		return nil, fmt.Errorf("core: unknown arbiter %v", cfg.Arbiter)
	}

	s := &System{
		cfg:        cfg,
		eng:        eng,
		arb:        arb,
		llc:        memctrl.New(cfg.LLC, cfg.PerfectLLC, cfg.Lat.DRAM),
		dir:        coherence.NewDirectory(),
		run:        stats.NewRun(cfg.N()),
		mode:       cfg.Mode,
		contention: make(map[uint64]*LineContention),
		kickPending: make([]int64, 0, cfg.N()+4),
		cands:       make([]bus.Candidate, cfg.N()),
		timerRecs:   make([]timerRec, 0, 4*cfg.N()),
		timerFree:   -1,
	}
	s.eng.SetHandler(s)
	s.pinnedFn = s.pinnedInL1
	// Steady-state queue depth: one wake/kick per core plus in-flight bus
	// events and timer expiries — far below this; reserve once so the heap
	// backing never reallocates mid-run.
	s.eng.Reserve(8*cfg.N() + 32)
	for i := 0; i < cfg.N(); i++ {
		lut, err := coherence.NewModeLUT(cfg.Cores[i].TimerLUT)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, &coreState{
			id:     i,
			l1:     cache.New(cfg.L1.SizeBytes, cfg.L1.LineBytes, cfg.L1.Ways),
			lut:    lut,
			theta:  cfg.Cores[i].TimerAt(cfg.Mode),
			stream: tr.Streams[i],
			wakeAt: -1,
		})
	}
	if cfg.CheckInvariants {
		s.inv = invariant.NewChecker(s)
	}
	return s, nil
}

// at schedules fn at an absolute cycle; scheduling in the past is a
// simulator bug, so it panics rather than returning an error.
func (s *System) at(cycle int64, fn func(now int64)) {
	if err := s.eng.ScheduleAt(sim.Cycle(cycle), func(now sim.Cycle) { fn(int64(now)) }); err != nil {
		panic(err)
	}
}

// Mode returns the current operating mode.
func (s *System) Mode() int { return s.mode }

// BusArbiter exposes the live arbiter instance (replaced on TDM mode
// switches). The exhaustive model checker folds its rotation state into the
// canonical state encoding; everyone else should treat it as read-only.
func (s *System) BusArbiter() bus.Arbiter { return s.arb }

// Quiescent reports whether the system has no in-flight protocol activity:
// every core finished its stream with no outstanding miss, the bus is free,
// and no directory line has waiters or an untransferred owner release. The
// exhaustive model checker snapshots states only at quiescence, where this
// must hold.
func (s *System) Quiescent() bool {
	for _, c := range s.cores {
		if !c.finished || c.miss != nil {
			return false
		}
	}
	if s.busHeld {
		return false
	}
	quiet := true
	s.dir.ForEach(func(_ uint64, li *coherence.LineInfo) {
		if li.HeadWaiter() != nil || li.OwnerReleased {
			quiet = false
		}
	})
	return quiet
}

// Config returns the system's (cloned) configuration.
func (s *System) Config() *config.System { return s.cfg }

// ScheduleModeSwitch arranges a switch to the given mode at the given cycle.
// Must be called before Run.
func (s *System) ScheduleModeSwitch(at int64, mode int) error {
	if s.ran {
		return errors.New("core: ScheduleModeSwitch after Run")
	}
	if mode < 1 || mode > s.cfg.Levels {
		return fmt.Errorf("core: mode %d out of range [1,%d]", mode, s.cfg.Levels)
	}
	if at < 0 {
		return fmt.Errorf("core: negative switch cycle %d", at)
	}
	s.modeSwitches = append(s.modeSwitches, scheduledSwitch{at: at, mode: mode})
	return nil
}

// ErrDeadlock is returned by Run when the event queue drains with unfinished
// cores — a protocol bug, never expected in a correct build.
var ErrDeadlock = errors.New("core: simulation deadlocked")

// Run executes the workload to completion and returns the measurements.
func (s *System) Run() (*stats.Run, error) {
	if s.ran {
		return nil, errors.New("core: System is single-use")
	}
	s.ran = true
	// Livelock guard: a correct protocol finishes every access within its
	// (loose) per-request bound; anything beyond this generous budget is a
	// protocol bug and fails fast instead of hanging the caller.
	var totalAccesses int64
	for _, c := range s.cores {
		totalAccesses += int64(len(c.stream))
	}
	s.eng.SetBudget(sim.Cycle(10_000_000 + totalAccesses*1_000_000))
	for _, sw := range s.modeSwitches {
		s.atEvent(sw.at, evModeSwitch, 0, uint64(sw.mode), 0)
	}
	s.startGovernor()
	s.startSampler()
	for _, c := range s.cores {
		if len(c.stream) == 0 {
			c.finished = true
			continue
		}
		c.nextEligible = c.stream[0].Gap
		s.atEvent(c.nextEligible, evCoreWake, int32(c.id), 0, 0)
	}
	err := s.eng.Run()
	// An invariant violation outranks any downstream symptom (budget
	// exhaustion, deadlock): report the first breach, not the wreckage.
	if s.invErr != nil {
		return nil, s.invErr
	}
	if err != nil {
		return nil, err
	}
	for _, c := range s.cores {
		if !c.finished {
			return nil, fmt.Errorf("%w: core %d stalled at access %d/%d",
				ErrDeadlock, c.id, c.pos, len(c.stream))
		}
		s.run.Cores[c.id].FinishCycle = c.maxCompletion
		if c.maxCompletion > s.run.Cycles {
			s.run.Cycles = c.maxCompletion
		}
	}
	// Flush the batched progress remainder so a sampler sees exact final
	// totals even before the run is unregistered.
	if s.progress != nil {
		s.progress.AddEvents(s.progressEvents)
		if d := s.run.Cycles - s.progressCycle; d > 0 {
			s.progress.AddCycles(d)
		}
		s.progressEvents = 0
		s.progressCycle = s.run.Cycles
	}
	return s.run, nil
}

// applyModeSwitch re-programs every core's timer register from its
// Mode-Switch LUT (paper §VI) and re-bases the timer epochs of resident
// lines at the switch instant.
//
// Mode switches are rare, bounded-per-run reconfiguration events, not
// steady-state traffic; the arbiter rebuild and LUT sweep below allocate by
// design, so the subtree is exempt from the hot-path allocation contract
// (the runtime ceiling in TestAllocationCeiling still bounds the total).
//
//cohort:hotpath exempt
func (s *System) applyModeSwitch(now int64, mode int) {
	if mode == s.mode {
		return
	}
	s.mode = mode
	s.run.ModeSwitches++
	s.emit(TraceEvent{Cycle: now, Kind: EvModeSwitch, Core: -1, Line: uint64(mode)})
	for _, c := range s.cores {
		th, err := c.lut.Lookup(mode)
		if err != nil {
			panic(err) // LUT length was validated against Levels
		}
		c.theta = th
		// The programmed register must equal the configured LUT entry,
		// resolved through the raw per-mode slice rather than the ModeLUT
		// hardware model — the predicate that catches a corrupted LUT path.
		if s.inv != nil && s.invErr == nil {
			if err := invariant.CheckModeSwitch(now, mode, c.id, s.cfg.Cores[c.id].TimerAt(mode), th); err != nil {
				s.invErr = err
			}
		}
		// Re-base timer epochs: resident lines start a fresh epoch under the
		// new θ. For θ = −1 this makes them plain MSI lines immediately.
		c.l1.ForEach(func(e *cache.Entry) { e.FetchedAt = now })
	}
	// The TDM schedule is part of the mode configuration: reprogram it so
	// every core critical at the new mode owns slots — a statically built
	// schedule would strand a core that became critical (the crit-only rule
	// forbids serving critical cores in idle slots), livelocking the bus.
	if s.cfg.Arbiter == config.ArbiterTDM {
		crit := make([]bool, s.cfg.N())
		for i := range crit {
			crit[i] = s.critical(i)
		}
		s.arb = bus.NewTDM(crit, s.cfg.Lat.SlotWidth(), s.cfg.PendulumCritOnly)
	}
	// Owner epochs follow the re-based entries; recompute pending releases.
	s.dir.ForEach(func(line uint64, li *coherence.LineInfo) {
		if li.Owner != coherence.MemOwner {
			li.OwnerFetch = now
		}
		if li.PendingInv() {
			s.refreshLine(line, li, now)
		}
	})
	s.kickArbiter(now)
}

// Critical reports whether core i is critical at the current (dynamic) mode.
func (s *System) critical(i int) bool { return s.cfg.Cores[i].Criticality >= s.mode }

// pinnedInL1 reports whether some timed core currently holds the line; the
// LLC never back-invalidates such lines (non-perfect mode).
func (s *System) pinnedInL1(line uint64) bool {
	for _, c := range s.cores {
		if c.theta.Timed() && c.l1.Lookup(line) != nil {
			return true
		}
	}
	return false
}

// CheckCoherence validates the coherence invariants across all caches and
// the directory: at most one Modified copy per line; a Modified copy excludes
// all other copies; every valid copy is registered in the directory; and
// every copy's data version matches the line's committed version. Intended
// for tests; cost is proportional to cache capacity.
func (s *System) CheckCoherence() error {
	type copyInfo struct {
		core  int
		state cache.State
		ver   uint64
	}
	copies := make(map[uint64][]copyInfo)
	for _, c := range s.cores {
		c.l1.ForEach(func(e *cache.Entry) {
			copies[e.LineAddr] = append(copies[e.LineAddr], copyInfo{c.id, e.State, e.Version})
		})
	}
	lines := make([]uint64, 0, len(copies))
	for line := range copies {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		cs := copies[line]
		li := s.dir.Peek(line)
		if li == nil {
			return fmt.Errorf("line %#x cached but not in directory", line)
		}
		modified := 0
		for _, ci := range cs {
			switch ci.state {
			case cache.Invalid:
				// Unreachable: ForEach yields valid entries only. Listed so
				// the switch stays exhaustive over cache.State.
			case cache.Modified, cache.Exclusive:
				modified++
				if li.Owner != ci.core {
					return fmt.Errorf("line %#x: M in core %d but directory owner %d", line, ci.core, li.Owner)
				}
				if li.OwnerReleased {
					return fmt.Errorf("line %#x: M copy present but marked released", line)
				}
			case cache.Shared:
				if !li.IsSharer(ci.core) {
					return fmt.Errorf("line %#x: S in core %d not registered as sharer", line, ci.core)
				}
			}
			if ci.ver != li.Version {
				return fmt.Errorf("line %#x: core %d holds version %d, committed %d", line, ci.core, ci.ver, li.Version)
			}
		}
		if modified > 1 {
			return fmt.Errorf("line %#x: %d owned (M/E) copies", line, modified)
		}
		if modified == 1 && len(cs) > 1 {
			return fmt.Errorf("line %#x: owned copy coexists with %d other copies", line, len(cs)-1)
		}
	}
	return nil
}
