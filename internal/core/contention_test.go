package core

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

func TestContentionTracking(t *testing.T) {
	// Cores 0 and 1 fight over lineA (write ping-pong); core 0 also touches
	// a private line once.
	cfg := cfgN(2, 100, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{
			{Addr: lineA, Kind: trace.Write},
			{Addr: lineB, Kind: trace.Read, Gap: 10},
			{Addr: lineA, Kind: trace.Write, Gap: 400},
		},
		trace.Stream{
			{Addr: lineA, Kind: trace.Write, Gap: 30},
		},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	top := sys.TopContended(0)
	if len(top) != 2 {
		t.Fatalf("tracked lines = %d, want 2", len(top))
	}
	hot := top[0]
	if hot.Line != sys.cores[0].l1.LineAddr(lineA) {
		t.Fatalf("hottest line = %#x, want lineA", hot.Line)
	}
	if hot.Requests != 3 {
		t.Fatalf("lineA requests = %d, want 3", hot.Requests)
	}
	if hot.Sharers() != 2 {
		t.Fatalf("lineA sharers = %d, want 2", hot.Sharers())
	}
	// Core 1's write waited out core 0's θ=100 timer: a handover with a
	// timer stall must be recorded.
	if hot.Handovers < 1 {
		t.Fatalf("lineA handovers = %d, want ≥ 1", hot.Handovers)
	}
	if hot.TimerStalls <= 0 {
		t.Fatalf("lineA timer stalls = %d, want > 0", hot.TimerStalls)
	}
	cold := top[1]
	if cold.Requests != 1 || cold.Sharers() != 1 || cold.Handovers != 0 {
		t.Fatalf("lineB contention = %+v", cold)
	}
	// TopContended(1) truncates.
	if got := sys.TopContended(1); len(got) != 1 || got[0].Line != hot.Line {
		t.Fatalf("TopContended(1) = %+v", got)
	}
}

func TestContentionDeterministicOrder(t *testing.T) {
	p, _ := trace.ProfileByName("radix")
	tr := p.Scaled(0.02).Generate(4, 64, 3)
	run := func() []LineContention {
		cfg := cfgN(4, 50, 50, 50, 50)
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.TopContended(10)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic contention list length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic contention at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Descending by requests.
	for i := 1; i < len(a); i++ {
		if a[i].Requests > a[i-1].Requests {
			t.Fatal("TopContended not sorted")
		}
	}
}
