package core

import (
	"fmt"

	"cohort/internal/bus"
	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/config"
)

// kickArbiter runs one arbitration round if the bus is free. It is
// idempotent and safe to call at any time; duplicate calls in one cycle are
// cheap no-ops.
func (s *System) kickArbiter(now int64) {
	if s.busHeld || s.busBusyUntil > now {
		return // a kick is scheduled for the cycle the bus frees
	}
	cands := make([]bus.Candidate, len(s.cores))
	anyPending := false
	for i, c := range s.cores {
		cand := bus.Candidate{Core: i, Critical: s.critical(i)}
		if m := c.miss; m != nil && !m.inFlight {
			anyPending = true
			cand.Pending = true
			cand.Enqueued = m.issuedAt
			if !m.broadcasted {
				cand.Ready = true
			} else if m.dataReadyAt >= 0 && now >= m.dataReadyAt && s.isHeadWaiter(c, m) {
				cand.Ready = true
			}
		}
		cands[i] = cand
	}
	if !anyPending {
		return
	}
	winner := s.arb.Pick(now, cands)
	if winner < 0 {
		if wake := s.arb.NextWake(now); wake > now {
			s.scheduleKick(wake)
		}
		return
	}
	c := s.cores[winner]
	m := c.miss
	if !m.broadcasted {
		s.grantBroadcast(c, m, now)
	} else {
		s.grantData(c, m, now)
	}
}

// isHeadWaiter reports whether the core's miss is first in its line's FIFO.
func (s *System) isHeadWaiter(c *coreState, m *missState) bool {
	li := s.dir.Peek(m.line)
	if li == nil {
		return false
	}
	h := li.HeadWaiter()
	return h != nil && h.Core == c.id
}

// scheduleKick schedules an arbitration round at the given cycle, once.
func (s *System) scheduleKick(at int64) {
	if s.kickScheduled[at] {
		return
	}
	s.kickScheduled[at] = true
	s.at(at, func(now int64) {
		delete(s.kickScheduled, now)
		s.kickArbiter(now)
	})
}

// occupyBus reserves the bus for dur cycles starting now and schedules the
// arbitration round at the release cycle.
func (s *System) occupyBus(now, dur int64) {
	if s.busBusyUntil > now {
		panic(fmt.Sprintf("core: bus double-granted: busy until %d, grant at %d", s.busBusyUntil, now))
	}
	s.busHeld = true
	s.busBusyUntil = now + dur
	s.run.BusBusy += dur
	s.scheduleKick(now + dur)
}

// releaseBus ends the current transaction owner's tenure.
func (s *System) releaseBus() { s.busHeld = false }

// grantBroadcast puts the core's request on the bus for the request latency.
func (s *System) grantBroadcast(c *coreState, m *missState, now int64) {
	m.inFlight = true
	s.run.Transactions++
	s.emit(TraceEvent{Cycle: now, Kind: EvBroadcast, Core: c.id, Line: m.line, Until: now + s.cfg.Lat.Req})
	// finishBroadcast must run before the bus-free arbitration kick at the
	// same cycle so a fused data phase can extend the occupancy first.
	s.at(now+s.cfg.Lat.Req, func(n int64) { s.finishBroadcast(c, m, n) })
	s.occupyBus(now, s.cfg.Lat.Req)
}

// finishBroadcast makes the request globally visible: it joins the line's
// waiter FIFO, and if the requester is the head and the owner has already
// released the line, the data transfer is fused onto the same bus tenure.
func (s *System) finishBroadcast(c *coreState, m *missState, now int64) {
	m.inFlight = false
	m.broadcasted = true
	m.broadcastAt = now
	s.recordRequest(m.line, c.id)
	li := s.dir.Get(m.line)
	// Upgrade: the stale S copy dies with the GetM broadcast.
	if m.wasShared {
		if e := c.l1.Lookup(m.line); e != nil && e.State == cache.Shared {
			c.l1.Invalidate(e)
		}
		li.RemoveSharer(c.id)
	}
	if err := li.Enqueue(coherence.Waiter{Core: c.id, Write: m.write, Broadcast: now}); err != nil {
		panic(err) // unreachable: one outstanding miss per core
	}
	// Recompute the head waiter's readiness unconditionally: an upgrade
	// broadcast may have just removed this core's own Shared copy, which
	// could be exactly what the head (and everyone queued behind it) was
	// waiting out — a stale release time would charge phantom timer
	// latency beyond Equation 1.
	s.refreshLine(m.line, li, now)
	s.verifyInvariants(now)
	if li.HeadWaiter().Core == c.id {
		// Fuse the data phase onto the same bus tenure when the data is
		// already available. The broadcaster still holds the bus (busHeld),
		// so no same-cycle kick can have granted it elsewhere.
		if m.dataReadyAt >= 0 && m.dataReadyAt <= now {
			s.busHeld = false // hand tenure to the fused data grant
			s.grantData(c, m, now)
			return
		}
	}
	s.releaseBus()
	s.kickArbiter(now)
}

// refreshLine recomputes when the head waiter of a line can receive data:
// the owner's release time (timer expiry, or immediately for MSI owners) and,
// for stores, the release of every timer-protected Shared copy. It schedules
// the corresponding hand-over/invalidation events and an arbitration kick at
// the ready cycle.
func (s *System) refreshLine(line uint64, li *coherence.LineInfo, now int64) {
	head := li.HeadWaiter()
	if head == nil {
		return
	}
	c := s.cores[head.Core]
	m := c.miss
	if m == nil || m.line != line || !m.broadcasted || m.inFlight {
		return
	}
	base := head.Broadcast
	if now > base {
		base = now
	}
	ready := base
	if li.Owner != coherence.MemOwner && !li.OwnerReleased {
		owner := s.cores[li.Owner]
		rel := OwnerReleaseAt(li.OwnerFetch, base, owner.theta)
		if rel > ready {
			ready = rel
		}
		if rel <= now {
			s.checkTimerRelease(now, line, li.Owner, li.OwnerFetch, owner.theta, base)
			s.releaseOwner(line, li, head.Write, now)
		} else {
			s.scheduleOwnerRelease(line, li, li.Owner, li.OwnerFetch, head.Write, base, rel)
		}
	}
	if head.Write {
		for _, j := range li.SharerList(len(s.cores)) {
			if j == head.Core {
				continue
			}
			cj := s.cores[j]
			e := cj.l1.Lookup(line)
			if e == nil || e.State != cache.Shared {
				li.RemoveSharer(j)
				continue
			}
			rel := SharerReleaseAt(e.FetchedAt, base, cj.theta)
			if rel > ready {
				ready = rel
			}
			if rel <= now {
				s.checkTimerRelease(now, line, j, e.FetchedAt, cj.theta, base)
				s.invalidateSharer(cj, line, li)
			} else {
				s.scheduleSharerInvalidation(cj, line, e.FetchedAt, base, rel)
			}
		}
	}
	m.dataReadyAt = ready
	if ready > now {
		s.scheduleKick(ready)
	}
}

// releaseOwner applies the owner's hand-over per the OwnerHandover rule
// (rules.go). The data waits in the transfer buffer until the bus grant.
func (s *System) releaseOwner(line uint64, li *coherence.LineInfo, write bool, now int64) {
	if li.Owner == coherence.MemOwner || li.OwnerReleased {
		return
	}
	oc := s.cores[li.Owner]
	if e := oc.l1.Lookup(line); e != nil {
		if oc.theta.Timed() {
			s.recordTimerWindow(oc.id, line, li.OwnerFetch, now)
		}
		s.applyHandover(oc, e, li, OwnerHandover(oc.theta, write))
	}
	li.OwnerReleased = true
	li.OwnerReleasedAt = now
}

// applyHandover executes an OwnerHandover decision on the owner's copy.
func (s *System) applyHandover(oc *coreState, e *cache.Entry, li *coherence.LineInfo, act HandoverAction) {
	switch act {
	case HandoverInvalidate:
		oc.l1.Invalidate(e)
		s.run.Cores[oc.id].Invalidations++
	case HandoverDowngrade:
		e.State = cache.Shared
		li.AddSharer(oc.id)
	case HandoverKeep:
		// Seeded fault (TestHooks.SkipMSIDowngrade): the stale owned copy
		// survives the remote request.
	}
}

// scheduleOwnerRelease schedules releaseOwner at the computed expiry, guarded
// against the world changing in between (ownership transfer, eviction, mode
// switch re-basing the epoch). reqVisible is the request cycle the expiry was
// computed against; the invariant checker replays the computation at fire
// time to pin the release to the exact Fig. 3 expiry.
func (s *System) scheduleOwnerRelease(line uint64, li *coherence.LineInfo, owner int, fetchStamp int64, write bool, reqVisible, at int64) {
	s.at(at, func(n int64) {
		if li.Owner != owner || li.OwnerReleased || li.OwnerFetch != fetchStamp || !li.PendingInv() {
			return
		}
		if li.HeadWaiter().Write != write {
			return
		}
		s.checkTimerRelease(n, line, owner, fetchStamp, s.cores[owner].theta, reqVisible)
		s.releaseOwner(line, li, write, n)
	})
}

// invalidateSharer drops a Shared copy whose release time has passed.
func (s *System) invalidateSharer(cj *coreState, line uint64, li *coherence.LineInfo) {
	if e := cj.l1.Lookup(line); e != nil && e.State == cache.Shared {
		if TestHooks.StaleSharerBitmask {
			// Seeded fault (mutation tests only): clear the directory bit but
			// leave the Shared copy in the cache — the sharer bitmask and the
			// caches disagree, and the stale copy survives the remote store.
			li.RemoveSharer(cj.id)
			return
		}
		if cj.theta.Timed() {
			s.recordTimerWindow(cj.id, line, e.FetchedAt, int64(s.eng.Now()))
		}
		cj.l1.Invalidate(e)
		s.run.Cores[cj.id].Invalidations++
		s.emit(TraceEvent{Cycle: int64(s.eng.Now()), Kind: EvInvalidate, Core: cj.id, Line: line})
	}
	li.RemoveSharer(cj.id)
}

// scheduleSharerInvalidation schedules a guarded invalidation at the copy's
// release time; reqVisible plays the same role as in scheduleOwnerRelease.
func (s *System) scheduleSharerInvalidation(cj *coreState, line uint64, fetchStamp, reqVisible, at int64) {
	s.at(at, func(n int64) {
		e := cj.l1.Lookup(line)
		if e == nil || e.State != cache.Shared || e.FetchedAt != fetchStamp {
			return
		}
		li := s.dir.Get(line)
		if !li.PendingInv() {
			return
		}
		s.checkTimerRelease(n, line, cj.id, fetchStamp, cj.theta, reqVisible)
		s.invalidateSharer(cj, line, li)
	})
}

// grantData puts the data transfer on the bus. Data comes cache-to-cache in
// one data latency (TransferDirect), through the shared memory in two
// (TransferViaMemory — the PCC baseline), or from the LLC/DRAM when the
// memory owns the line.
func (s *System) grantData(c *coreState, m *missState, now int64) {
	li := s.dir.Get(m.line)
	m.inFlight = true
	dur := s.cfg.Lat.Data
	if li.Owner != coherence.MemOwner {
		s.recordHandover(m.line, m.dataReadyAt-m.broadcastAt)
		if s.cfg.Transfer == config.TransferViaMemory {
			dur = 2 * s.cfg.Lat.Data // write back to memory, then re-fetch
		}
	} else {
		penalty, backInv := s.llc.Fetch(m.line, now, s.pinnedInL1)
		dur += penalty
		s.applyBackInvalidations(backInv, now)
	}
	s.run.Transactions++
	s.emit(TraceEvent{Cycle: now, Kind: EvData, Core: c.id, Line: m.line, Until: now + dur})
	s.at(now+dur, func(n int64) { s.finishData(c, m, n) })
	s.occupyBus(now, dur)
}

// finishData completes the head waiter's transfer: ownership moves, stale
// copies die, the requester installs the line and its access completes.
func (s *System) finishData(c *coreState, m *missState, now int64) {
	m.inFlight = false
	li := s.dir.Get(m.line)
	w := li.PopWaiter()
	if w.Core != c.id {
		panic(fmt.Sprintf("core: transfer completed for core %d but head waiter is %d", c.id, w.Core))
	}
	prevOwner := li.Owner
	if prevOwner != coherence.MemOwner {
		if prevOwner != c.id && !li.OwnerReleased {
			// Owner not yet released (expiry aligned with the grant):
			// apply the same OwnerHandover rule as releaseOwner.
			po := s.cores[prevOwner]
			if e := po.l1.Lookup(m.line); e != nil {
				s.applyHandover(po, e, li, OwnerHandover(po.theta, m.write))
			}
		}
		// The memory observes the transfer (snarf) for loads, and always
		// under the via-memory policy. Installing the line may victimize
		// another LLC entry; inclusion demands its private copies die too.
		if !m.write || s.cfg.Transfer == config.TransferViaMemory {
			backInv := s.llc.WriteBack(m.line, now, s.pinnedInL1)
			s.applyBackInvalidations(backInv, now)
		}
	}
	li.Owner = coherence.MemOwner
	li.OwnerReleased = false
	if m.write {
		// Stragglers' release times were ≤ the grant; force-drop them.
		for _, j := range li.SharerList(len(s.cores)) {
			if j != c.id {
				s.invalidateSharer(s.cores[j], m.line, li)
			}
		}
		li.Sharers = 0
	}
	s.releaseBus()
	s.completeMiss(c, m, FillState(m.write, s.cfg.Snoop, prevOwner, li.Sharers), now)
	if li.PendingInv() {
		s.refreshLine(m.line, li, now)
	}
	s.verifyInvariants(now)
	s.kickArbiter(now)
}

// applyBackInvalidations enforces LLC inclusion: lines evicted from the LLC
// disappear from every private cache (dirty copies drain to DRAM through the
// write buffer).
func (s *System) applyBackInvalidations(lines []uint64, now int64) {
	for _, line := range lines {
		li := s.dir.Get(line)
		for _, c := range s.cores {
			if e := c.l1.Lookup(line); e != nil {
				c.l1.Invalidate(e)
				s.run.Cores[c.id].Invalidations++
			}
		}
		li.Sharers = 0
		if li.Owner != coherence.MemOwner {
			li.Owner = coherence.MemOwner
			li.OwnerReleased = false
		}
		if li.PendingInv() {
			s.refreshLine(line, li, now)
		}
	}
}
