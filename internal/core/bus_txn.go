package core

import (
	"fmt"
	"math/bits"

	"cohort/internal/bus"
	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/config"
)

// kickArbiter runs one arbitration round if the bus is free. It is
// idempotent and safe to call at any time; duplicate calls in one cycle are
// cheap no-ops.
func (s *System) kickArbiter(now int64) {
	if s.busHeld || s.busBusyUntil > now {
		return // a kick is scheduled for the cycle the bus frees
	}
	// s.cands is preallocated in New and fully overwritten each round; the
	// arbiters treat it as a read-only snapshot and never retain it.
	cands := s.cands
	anyPending := false
	for i, c := range s.cores {
		cand := bus.Candidate{Core: i, Critical: s.critical(i)}
		if m := c.miss; m != nil && !m.inFlight {
			anyPending = true
			cand.Pending = true
			cand.Enqueued = m.issuedAt
			if !m.broadcasted {
				cand.Ready = true
			} else if m.dataReadyAt >= 0 && now >= m.dataReadyAt && s.isHeadWaiter(c, m) {
				cand.Ready = true
			}
		}
		cands[i] = cand
	}
	if !anyPending {
		return
	}
	winner := s.arb.Pick(now, cands)
	if winner < 0 {
		if wake := s.arb.NextWake(now); wake > now {
			s.scheduleKick(wake)
		}
		return
	}
	c := s.cores[winner]
	m := c.miss
	if !m.broadcasted {
		s.grantBroadcast(c, m, now)
	} else {
		s.grantData(c, m, now)
	}
}

// isHeadWaiter reports whether the core's miss is first in its line's FIFO.
func (s *System) isHeadWaiter(c *coreState, m *missState) bool {
	li := s.dir.Peek(m.line)
	if li == nil {
		return false
	}
	h := li.HeadWaiter()
	return h != nil && h.Core == c.id
}

// scheduleKick schedules an arbitration round at the given cycle, once. The
// pending set holds only future cycles (bus release, arbiter wake, data
// ready) and stays a handful of entries deep, so a linear scan over a small
// slice replaces the old map without a hashing cost or per-entry allocation.
func (s *System) scheduleKick(at int64) {
	for _, t := range s.kickPending {
		if t == at {
			return
		}
	}
	s.kickPending = append(s.kickPending, at) //cohort:allow hotalloc: pending-kick set reaches its high-water mark early, then reuses capacity
	s.atEvent(at, evKick, 0, 0, 0)
}

// clearKick removes a fired kick cycle from the pending set (order-free
// swap-remove; the set is membership-only).
func (s *System) clearKick(now int64) {
	for i, t := range s.kickPending {
		if t == now {
			last := len(s.kickPending) - 1
			s.kickPending[i] = s.kickPending[last]
			s.kickPending = s.kickPending[:last]
			return
		}
	}
}

// occupyBus reserves the bus for dur cycles starting now and schedules the
// arbitration round at the release cycle.
func (s *System) occupyBus(now, dur int64) {
	if s.busBusyUntil > now {
		panic(fmt.Sprintf("core: bus double-granted: busy until %d, grant at %d", s.busBusyUntil, now))
	}
	s.busHeld = true
	s.busBusyUntil = now + dur
	s.run.BusBusy += dur
	s.scheduleKick(now + dur)
}

// releaseBus ends the current transaction owner's tenure.
func (s *System) releaseBus() { s.busHeld = false }

// grantBroadcast puts the core's request on the bus for the request latency.
func (s *System) grantBroadcast(c *coreState, m *missState, now int64) {
	m.inFlight = true
	m.grantAt = now
	s.run.Transactions++
	s.emit(TraceEvent{Cycle: now, Kind: EvBroadcast, Core: c.id, Line: m.line, Until: now + s.cfg.Lat.Req})
	// finishBroadcast must run before the bus-free arbitration kick at the
	// same cycle so a fused data phase can extend the occupancy first.
	s.atEvent(now+s.cfg.Lat.Req, evFinishBroadcast, int32(c.id), 0, 0)
	s.occupyBus(now, s.cfg.Lat.Req)
}

// finishBroadcast makes the request globally visible: it joins the line's
// waiter FIFO, and if the requester is the head and the owner has already
// released the line, the data transfer is fused onto the same bus tenure.
func (s *System) finishBroadcast(c *coreState, m *missState, now int64) {
	m.inFlight = false
	m.broadcasted = true
	m.broadcastAt = now
	s.recordRequest(m.line, c.id)
	li := s.dir.Get(m.line)
	// Upgrade: the stale S copy dies with the GetM broadcast.
	if m.wasShared {
		if e := c.l1.Lookup(m.line); e != nil && e.State == cache.Shared {
			c.l1.Invalidate(e)
		}
		li.RemoveSharer(c.id)
	}
	if err := li.Enqueue(coherence.Waiter{Core: c.id, Write: m.write, Broadcast: now}); err != nil {
		panic(err) // unreachable: one outstanding miss per core
	}
	// Recompute the head waiter's readiness unconditionally: an upgrade
	// broadcast may have just removed this core's own Shared copy, which
	// could be exactly what the head (and everyone queued behind it) was
	// waiting out — a stale release time would charge phantom timer
	// latency beyond Equation 1.
	s.refreshLine(m.line, li, now)
	s.verifyInvariants(now)
	if li.HeadWaiter().Core == c.id {
		// Fuse the data phase onto the same bus tenure when the data is
		// already available. The broadcaster still holds the bus (busHeld),
		// so no same-cycle kick can have granted it elsewhere.
		if m.dataReadyAt >= 0 && m.dataReadyAt <= now {
			s.busHeld = false // hand tenure to the fused data grant
			s.grantData(c, m, now)
			return
		}
	}
	s.releaseBus()
	s.kickArbiter(now)
}

// refreshLine recomputes when the head waiter of a line can receive data:
// the owner's release time (timer expiry, or immediately for MSI owners) and,
// for stores, the release of every timer-protected Shared copy. It schedules
// the corresponding hand-over/invalidation events and an arbitration kick at
// the ready cycle.
func (s *System) refreshLine(line uint64, li *coherence.LineInfo, now int64) {
	head := li.HeadWaiter()
	if head == nil {
		return
	}
	c := s.cores[head.Core]
	m := c.miss
	if m == nil || m.line != line || !m.broadcasted || m.inFlight {
		return
	}
	base := head.Broadcast
	if now > base {
		base = now
	}
	ready := base
	if li.Owner != coherence.MemOwner && !li.OwnerReleased {
		owner := s.cores[li.Owner]
		rel := OwnerReleaseAt(li.OwnerFetch, base, owner.theta)
		if rel > ready {
			ready = rel
		}
		if rel <= now {
			s.checkTimerRelease(now, line, li.Owner, li.OwnerFetch, owner.theta, base)
			s.releaseOwner(line, li, head.Write, now)
		} else {
			s.scheduleOwnerRelease(line, li, li.Owner, li.OwnerFetch, head.Write, base, rel)
		}
	}
	if head.Write {
		// Snapshot the bitmask up front (the loop body removes sharers) and
		// iterate set bits ascending — same visit order as the old SharerList
		// slice, without materializing it.
		for mask := li.Sharers; mask != 0; mask &= mask - 1 {
			j := bits.TrailingZeros64(mask)
			if j == head.Core {
				continue
			}
			cj := s.cores[j]
			e := cj.l1.Lookup(line)
			if e == nil || e.State != cache.Shared {
				li.RemoveSharer(j)
				continue
			}
			rel := SharerReleaseAt(e.FetchedAt, base, cj.theta)
			if rel > ready {
				ready = rel
			}
			if rel <= now {
				s.checkTimerRelease(now, line, j, e.FetchedAt, cj.theta, base)
				s.invalidateSharer(cj, line, li)
			} else {
				s.scheduleSharerInvalidation(cj, line, e.FetchedAt, base, rel)
			}
		}
	}
	m.dataReadyAt = ready
	if ready > now {
		s.scheduleKick(ready)
	}
}

// releaseOwner applies the owner's hand-over per the OwnerHandover rule
// (rules.go). The data waits in the transfer buffer until the bus grant.
func (s *System) releaseOwner(line uint64, li *coherence.LineInfo, write bool, now int64) {
	if li.Owner == coherence.MemOwner || li.OwnerReleased {
		return
	}
	oc := s.cores[li.Owner]
	if e := oc.l1.Lookup(line); e != nil {
		if oc.theta.Timed() {
			s.recordTimerWindow(oc.id, line, li.OwnerFetch, now)
		}
		s.applyHandover(oc, e, li, OwnerHandover(oc.theta, write))
	}
	li.OwnerReleased = true
	li.OwnerReleasedAt = now
}

// applyHandover executes an OwnerHandover decision on the owner's copy.
func (s *System) applyHandover(oc *coreState, e *cache.Entry, li *coherence.LineInfo, act HandoverAction) {
	switch act {
	case HandoverInvalidate:
		oc.l1.Invalidate(e)
		s.run.Cores[oc.id].Invalidations++
	case HandoverDowngrade:
		e.State = cache.Shared
		li.AddSharer(oc.id)
	case HandoverKeep:
		// Seeded fault (TestHooks.SkipMSIDowngrade): the stale owned copy
		// survives the remote request.
	}
}

// scheduleOwnerRelease schedules releaseOwner at the computed expiry, guarded
// against the world changing in between (ownership transfer, eviction, mode
// switch re-basing the epoch). reqVisible is the request cycle the expiry was
// computed against; the invariant checker replays the computation at fire
// time to pin the release to the exact Fig. 3 expiry.
func (s *System) scheduleOwnerRelease(line uint64, li *coherence.LineInfo, owner int, fetchStamp int64, write bool, reqVisible, at int64) {
	_ = li // the guard re-reads the line at fire time (firedOwnerRelease)
	idx := s.allocTimerRec(timerRec{
		line: line, fetchStamp: fetchStamp, reqVisible: reqVisible,
		core: int32(owner), write: write,
	})
	s.atEvent(at, evOwnerRelease, 0, uint64(idx), 0)
}

// invalidateSharer drops a Shared copy whose release time has passed.
func (s *System) invalidateSharer(cj *coreState, line uint64, li *coherence.LineInfo) {
	if e := cj.l1.Lookup(line); e != nil && e.State == cache.Shared {
		if TestHooks.StaleSharerBitmask {
			// Seeded fault (mutation tests only): clear the directory bit but
			// leave the Shared copy in the cache — the sharer bitmask and the
			// caches disagree, and the stale copy survives the remote store.
			li.RemoveSharer(cj.id)
			return
		}
		if cj.theta.Timed() {
			s.recordTimerWindow(cj.id, line, e.FetchedAt, int64(s.eng.Now()))
		}
		cj.l1.Invalidate(e)
		s.run.Cores[cj.id].Invalidations++
		s.emit(TraceEvent{Cycle: int64(s.eng.Now()), Kind: EvInvalidate, Core: cj.id, Line: line})
	}
	li.RemoveSharer(cj.id)
}

// scheduleSharerInvalidation schedules a guarded invalidation at the copy's
// release time; reqVisible plays the same role as in scheduleOwnerRelease.
func (s *System) scheduleSharerInvalidation(cj *coreState, line uint64, fetchStamp, reqVisible, at int64) {
	idx := s.allocTimerRec(timerRec{
		line: line, fetchStamp: fetchStamp, reqVisible: reqVisible,
		core: int32(cj.id),
	})
	s.atEvent(at, evSharerInval, 0, uint64(idx), 0)
}

// grantData puts the data transfer on the bus. Data comes cache-to-cache in
// one data latency (TransferDirect), through the shared memory in two
// (TransferViaMemory — the PCC baseline), or from the LLC/DRAM when the
// memory owns the line.
func (s *System) grantData(c *coreState, m *missState, now int64) {
	li := s.dir.Get(m.line)
	m.inFlight = true
	m.dataGrantAt = now
	dur := s.cfg.Lat.Data
	if li.Owner != coherence.MemOwner {
		s.recordHandover(m.line, m.dataReadyAt-m.broadcastAt)
		if s.cfg.Transfer == config.TransferViaMemory {
			dur = 2 * s.cfg.Lat.Data // write back to memory, then re-fetch
		}
	} else {
		penalty, backInv := s.llc.Fetch(m.line, now, s.pinnedFn)
		dur += penalty
		m.dramPenalty = penalty
		s.applyBackInvalidations(backInv, now)
	}
	s.run.Transactions++
	s.emit(TraceEvent{Cycle: now, Kind: EvData, Core: c.id, Line: m.line, Until: now + dur})
	s.atEvent(now+dur, evFinishData, int32(c.id), 0, 0)
	s.occupyBus(now, dur)
}

// finishData completes the head waiter's transfer: ownership moves, stale
// copies die, the requester installs the line and its access completes.
func (s *System) finishData(c *coreState, m *missState, now int64) {
	m.inFlight = false
	li := s.dir.Get(m.line)
	w := li.PopWaiter()
	if w.Core != c.id {
		panic(fmt.Sprintf("core: transfer completed for core %d but head waiter is %d", c.id, w.Core))
	}
	prevOwner := li.Owner
	if prevOwner != coherence.MemOwner {
		if prevOwner != c.id && !li.OwnerReleased {
			// Owner not yet released (expiry aligned with the grant):
			// apply the same OwnerHandover rule as releaseOwner.
			po := s.cores[prevOwner]
			if e := po.l1.Lookup(m.line); e != nil {
				s.applyHandover(po, e, li, OwnerHandover(po.theta, m.write))
			}
		}
		// The memory observes the transfer (snarf) for loads, and always
		// under the via-memory policy. Installing the line may victimize
		// another LLC entry; inclusion demands its private copies die too.
		if !m.write || s.cfg.Transfer == config.TransferViaMemory {
			backInv := s.llc.WriteBack(m.line, now, s.pinnedFn)
			s.applyBackInvalidations(backInv, now)
		}
	}
	li.Owner = coherence.MemOwner
	li.OwnerReleased = false
	if m.write {
		// Stragglers' release times were ≤ the grant; force-drop them.
		// Bitmask snapshot, ascending — see refreshLine.
		for mask := li.Sharers; mask != 0; mask &= mask - 1 {
			if j := bits.TrailingZeros64(mask); j != c.id {
				s.invalidateSharer(s.cores[j], m.line, li)
			}
		}
		li.Sharers = 0
	}
	s.releaseBus()
	// completeMiss resumes the core, which may start its next miss in the
	// same per-core record — m must not be read after this call.
	line := m.line
	s.completeMiss(c, m, FillState(m.write, s.cfg.Snoop, prevOwner, li.Sharers), now)
	if li.PendingInv() {
		s.refreshLine(line, li, now)
	}
	s.verifyInvariants(now)
	s.kickArbiter(now)
}

// applyBackInvalidations enforces LLC inclusion: lines evicted from the LLC
// disappear from every private cache (dirty copies drain to DRAM through the
// write buffer).
func (s *System) applyBackInvalidations(lines []uint64, now int64) {
	for _, line := range lines {
		li := s.dir.Get(line)
		for _, c := range s.cores {
			if e := c.l1.Lookup(line); e != nil {
				c.l1.Invalidate(e)
				s.run.Cores[c.id].Invalidations++
			}
		}
		li.Sharers = 0
		if li.Owner != coherence.MemOwner {
			li.Owner = coherence.MemOwner
			li.OwnerReleased = false
		}
		if li.PendingInv() {
			s.refreshLine(line, li, now)
		}
	}
}
