package core

import (
	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/config"
	"cohort/internal/memctrl"
)

// System implements invariant.SystemView so the checker can inspect a
// running platform without internal/invariant importing internal/core.

// NumCores returns the number of cores.
func (s *System) NumCores() int { return len(s.cores) }

// CoreTheta returns core i's current timer register value.
func (s *System) CoreTheta(i int) config.Timer { return s.cores[i].theta }

// CoreL1 returns core i's private cache.
func (s *System) CoreL1(i int) *cache.Cache { return s.cores[i].l1 }

// Directory returns the global coherence bookkeeping.
func (s *System) Directory() *coherence.Directory { return s.dir }

// LLC returns the shared last-level cache controller.
func (s *System) LLC() *memctrl.LLC { return s.llc }

// HeadDataReady returns the cycle the line's head waiter may be granted its
// data transfer (as last computed by refreshLine), or -1 when the line has
// no refreshed head request.
func (s *System) HeadDataReady(line uint64) int64 {
	li := s.dir.Peek(line)
	if li == nil {
		return -1
	}
	head := li.HeadWaiter()
	if head == nil {
		return -1
	}
	m := s.cores[head.Core].miss
	if m == nil || m.line != line || !m.broadcasted {
		return -1
	}
	return m.dataReadyAt
}

// TestHooks injects seeded protocol faults for the correctness tooling's
// mutation tests (and nothing else): each hook breaks one hand-over rule so
// a test can assert the dynamic invariant checker and the exhaustive model
// checker (internal/model) fail closed. All hooks default to off; production
// code must never set them. A fourth seeded fault, LUTLookupOffByOne, lives
// in coherence.TestHooks next to the ModeLUT it corrupts.
var TestHooks struct {
	// SkipMSIDowngrade makes the OwnerHandover rule keep an MSI owner's
	// Modified copy intact on a remote load instead of downgrading it to
	// Shared — the classic "stale dirty copy" coherence bug.
	SkipMSIDowngrade bool
	// TimerReleaseSkew shifts every timed owner release by this many cycles
	// (positive = late, breaking the WCML bound; negative = early, breaking
	// the owner's own WCET protection).
	TimerReleaseSkew int64
	// StaleSharerBitmask makes invalidateSharer clear a sharer's directory
	// bit without invalidating its cached Shared copy, so the bitmask and
	// the caches disagree and the stale copy survives a remote store.
	StaleSharerBitmask bool
	// BatchLaneTimerSkew shifts every batched lane's mode-switch schedule by
	// this many cycles. Only RunBatch reads it — scalar New/Run paths are
	// untouched — so the differential batch suite can prove the batched ≡
	// scalar comparison fails closed: with a nonzero skew the suite must
	// report a mismatch.
	BatchLaneTimerSkew int64
}

// verifyInvariants sweeps the protocol invariants after a completed bus
// transaction. The first violation is latched and returned from Run;
// further checks stop so the report names the original breach, not the
// wreckage downstream of it.
//
// Opt-in debug machinery: a no-op unless a checker is attached, so it is
// deliberately outside the steady-state allocation budget.
//
//cohort:hotpath exempt
func (s *System) verifyInvariants(now int64) {
	if s.inv == nil || s.invErr != nil {
		return
	}
	if err := s.inv.CheckTransaction(now); err != nil {
		s.invErr = err
	}
}

// checkTimerRelease validates one release/invalidation event against the
// closed-form expiry (Fig. 3 semantics) just before it is applied.
//
// Opt-in debug machinery, like verifyInvariants: a no-op unless a checker
// is attached.
//
//cohort:hotpath exempt
func (s *System) checkTimerRelease(now int64, line uint64, core int, fetchedAt int64, theta config.Timer, reqVisible int64) {
	if s.inv == nil || s.invErr != nil {
		return
	}
	if err := s.inv.CheckTimerRelease(now, line, core, fetchedAt, theta, reqVisible); err != nil {
		s.invErr = err
	}
}

// InvariantChecks reports how many post-transaction sweeps ran (0 when the
// checker is disabled); tests use it to prove the checker was live.
func (s *System) InvariantChecks() int64 {
	if s.inv == nil {
		return 0
	}
	return s.inv.Checks()
}
