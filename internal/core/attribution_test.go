package core

import (
	"fmt"
	"testing"

	"cohort/internal/config"
	"cohort/internal/obs"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

// attrIdentity asserts the exact-decomposition contract of stats.Attribution
// for every core of a finished run: the four components are individually
// non-negative totals, each per-miss distribution holds exactly one sample
// per miss, and the components plus the hit latencies reconstruct the
// measured total latency to the cycle.
func attrIdentity(t *testing.T, label string, cfg *config.System, run *stats.Run) {
	t.Helper()
	for i := range run.Cores {
		c := &run.Cores[i]
		a := &c.Attr
		for _, comp := range []struct {
			name  string
			total int64
			hist  *stats.Histogram
		}{
			{"arbitration", a.ArbitrationCycles, &a.Arbitration},
			{"timer_stall", a.TimerStallCycles, &a.TimerStall},
			{"transfer", a.TransferCycles, &a.Transfer},
			{"dram", a.DRAMCycles, &a.DRAM},
		} {
			if comp.total < 0 {
				t.Fatalf("%s: core %d: negative %s total %d", label, i, comp.name, comp.total)
			}
			if comp.hist.Total() != c.Misses {
				t.Fatalf("%s: core %d: %s histogram holds %d samples for %d misses",
					label, i, comp.name, comp.hist.Total(), c.Misses)
			}
		}
		got := a.TotalCycles() + c.Hits*cfg.Lat.Hit
		if got != c.TotalLatency {
			t.Fatalf("%s: core %d: attribution %d + hits %d·%d = %d, want total latency %d (attr %+v)",
				label, i, a.TotalCycles(), c.Hits, cfg.Lat.Hit, got, c.TotalLatency, *a)
		}
	}
}

// TestAttributionSingleMiss pins the decomposition of the simplest possible
// request: one uncontended miss on an idle bus with a perfect LLC is pure
// transfer time — the fused broadcast (L_req) plus data (L_data) tenure.
func TestAttributionSingleMiss(t *testing.T) {
	cfg := cfgN(1, config.TimerMSI)
	tr := mkTrace(trace.Stream{{Addr: lineA, Kind: trace.Read}})
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := run.Cores[0].Attr
	want := cfg.Lat.Req + cfg.Lat.Data
	if a.TransferCycles != want || a.ArbitrationCycles != 0 || a.TimerStallCycles != 0 || a.DRAMCycles != 0 {
		t.Fatalf("uncontended miss attribution = %+v, want transfer %d and zero elsewhere", a, want)
	}
	attrIdentity(t, "single", cfg, run)
}

// TestAttributionDRAMPenalty checks that a memory-sourced fill on a
// non-perfect LLC books its fetch penalty under the DRAM component, not
// transfer.
func TestAttributionDRAMPenalty(t *testing.T) {
	cfg := cfgN(1, config.TimerMSI)
	cfg.PerfectLLC = false
	tr := mkTrace(trace.Stream{{Addr: lineA, Kind: trace.Read}})
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := run.Cores[0].Attr
	if a.DRAMCycles != cfg.Lat.DRAM {
		t.Fatalf("cold LLC miss DRAM component = %d, want %d", a.DRAMCycles, cfg.Lat.DRAM)
	}
	if a.TransferCycles != cfg.Lat.Req+cfg.Lat.Data {
		t.Fatalf("transfer component = %d, want %d", a.TransferCycles, cfg.Lat.Req+cfg.Lat.Data)
	}
	attrIdentity(t, "dram", cfg, run)
}

// TestAttributionContention exercises timer-protected sharing: core 1's
// store to a line core 0 holds under a long timer must book the protection
// window under timer-stall.
func TestAttributionContention(t *testing.T) {
	cfg := cfgN(2, 400, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 10}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Cores[1].Attr.TimerStallCycles; got <= 0 {
		t.Fatalf("store against a timer-protected copy booked %d timer-stall cycles, want > 0", got)
	}
	attrIdentity(t, "contention", cfg, run)
}

// TestAttributionIdentity sweeps randomized platforms (arbiters, snoop
// protocols, transfer policies, LLC modes, timers, mode switches) and checks
// the exact-decomposition identity on every run.
func TestAttributionIdentity(t *testing.T) {
	rng := trace.NewRNG(8088)
	arbiters := []config.Arbiter{config.ArbiterRROF, config.ArbiterRR, config.ArbiterFCFS, config.ArbiterTDM}
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		nCores := 2 + rng.Intn(4) // 2..5
		levels := 1 + rng.Intn(2)
		p := trace.Profile{
			Name:            fmt.Sprintf("attr%d", iter),
			AccessesPerCore: 40 + rng.Intn(200),
			SharedLines:     1 + rng.Intn(16),
			PrivateLines:    1 + rng.Intn(32),
			PShared:         0.2 + 0.7*rng.Float64(),
			ZipfS:           rng.Float64(),
			PWrite:          rng.Float64(),
			PRepeat:         rng.Float64() * 0.8,
			RepeatWindow:    1 + rng.Intn(6),
			MeanGap:         float64(rng.Intn(5)),
		}
		tr := p.Generate(nCores, 64, rng.Uint64())

		cfg := config.PaperDefaults(nCores, levels)
		cfg.Arbiter = arbiters[rng.Intn(len(arbiters))]
		cfg.PerfectLLC = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			cfg.Snoop = config.SnoopMESI
		}
		if rng.Intn(3) == 0 {
			cfg.Transfer = config.TransferViaMemory
		}
		for i := 0; i < nCores; i++ {
			cfg.Cores[i].Criticality = 1 + rng.Intn(levels)
			for m := 0; m < levels; m++ {
				switch rng.Intn(4) {
				case 0:
					cfg.Cores[i].TimerLUT[m] = config.TimerMSI
				case 1:
					cfg.Cores[i].TimerLUT[m] = config.TimerNoCache
				default:
					cfg.Cores[i].TimerLUT[m] = config.Timer(1 + rng.Intn(600))
				}
			}
		}
		cfg.Mode = 1 + rng.Intn(levels)

		label := fmt.Sprintf("iter %d (n=%d arb=%s snoop=%s transfer=%s perfect=%v)",
			iter, nCores, cfg.Arbiter, cfg.Snoop, cfg.Transfer, cfg.PerfectLLC)
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if levels > 1 && rng.Intn(2) == 0 {
			if err := sys.ScheduleModeSwitch(int64(50+rng.Intn(500)), 1+rng.Intn(levels)); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
		run, err := sys.Run()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		attrIdentity(t, label, cfg, run)
	}
}

// TestRegisterAttribution checks the opt-in metric surface: the component
// families appear with per-core labels, reconcile with the run's counters,
// and stay out of SetMetrics so pre-existing snapshots are untouched.
func TestRegisterAttribution(t *testing.T) {
	cfg := cfgN(2, 300, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write}, {Addr: lineB, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 5}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	base := obs.NewRegistry()
	if err := sys.SetMetrics(base); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if err := sys.RegisterAttribution(reg); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := base.Snapshot().Get("sim_core_attr_arbitration_cycles", obs.L("core", "0")); ok {
		t.Fatal("attribution metrics leaked into the SetMetrics registry")
	}
	snap := reg.Snapshot()
	for i := range run.Cores {
		lbl := obs.L("core", fmt.Sprintf("%d", i))
		m, ok := snap.Get("sim_core_attr_timer_stall_cycles", lbl)
		if !ok {
			t.Fatalf("core %d: sim_core_attr_timer_stall_cycles missing", i)
		}
		if m.Value != run.Cores[i].Attr.TimerStallCycles {
			t.Fatalf("core %d: snapshot %d, run %d", i, m.Value, run.Cores[i].Attr.TimerStallCycles)
		}
		h, ok := snap.Get("sim_core_attr_transfer", lbl)
		if !ok {
			t.Fatalf("core %d: sim_core_attr_transfer histogram missing", i)
		}
		if h.Value != run.Cores[i].Misses {
			t.Fatalf("core %d: transfer histogram %d samples for %d misses", i, h.Value, run.Cores[i].Misses)
		}
	}
	if err := sys.RegisterAttribution(obs.NewRegistry()); err == nil {
		t.Fatal("RegisterAttribution after Run should fail")
	}
}
