package core

import (
	"testing"

	"cohort/internal/cache"
	"cohort/internal/config"
	"cohort/internal/trace"
)

// TestBackInvalidationPath forces LLC evictions in non-perfect mode and
// checks that inclusion is enforced without breaking pending requests.
func TestBackInvalidationPath(t *testing.T) {
	cfg := cfgN(2, config.TimerMSI, config.TimerMSI)
	cfg.PerfectLLC = false
	// Tiny LLC: 2 sets × 1 way ⇒ heavy eviction pressure. L1 must be ≤ LLC
	// for the config validator, so shrink L1 too (1 line each).
	cfg.L1 = config.CacheGeometry{SizeBytes: 64, LineBytes: 64, Ways: 1}
	cfg.LLC = config.CacheGeometry{SizeBytes: 2 * 64, LineBytes: 64, Ways: 1}
	var s0, s1 trace.Stream
	for i := 0; i < 30; i++ {
		s0 = append(s0, trace.Access{Addr: uint64(0x1000 + (i%4)*64), Kind: trace.Write, Gap: 2})
		s1 = append(s1, trace.Access{Addr: uint64(0x1000 + (i%4)*64), Kind: trace.Read, Gap: 3})
	}
	sys, err := New(cfg, mkTrace(s0, s1))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Accesses != 30 || run.Cores[1].Accesses != 30 {
		t.Fatal("accesses lost under back-invalidation pressure")
	}
}

// TestNoCacheOwnerServesWaiters exercises θ=0: the core serves data and
// never retains lines, so subsequent requesters fetch from memory.
func TestNoCacheOwnerServesWaiters(t *testing.T) {
	cfg := cfgN(3, config.TimerNoCache, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 20}},
		trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 40}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Hits != 0 {
		t.Fatalf("θ=0 core hit %d times", run.Cores[0].Hits)
	}
	if e := sys.cores[0].l1.Lookup(sys.cores[0].l1.LineAddr(lineA)); e != nil {
		t.Fatal("θ=0 core retained a line")
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestViaMemoryReadChain checks PCC-style GetS chains: reader after writer
// pays the write-back + re-fetch detour.
func TestViaMemoryReadChain(t *testing.T) {
	cfg := cfgN(2, config.TimerMSI, config.TimerMSI)
	cfg.Transfer = config.TransferViaMemory
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 100}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Reader's transfer: broadcast (4) + write-back + re-fetch (2×50) = 104.
	if got := run.Cores[1].MaxMissLatency; got != 104 {
		t.Fatalf("via-memory read latency = %d, want 104", got)
	}
	// Under direct transfers the same read costs one data latency.
	direct := cfgN(2, config.TimerMSI, config.TimerMSI)
	sys2, _ := New(direct, tr)
	run2, err := sys2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := run2.Cores[1].MaxMissLatency; got != 54 {
		t.Fatalf("direct read latency = %d, want 54", got)
	}
}

// TestPendulumNCrStarvationThenCompletion checks the unfair rule: the nCr
// core is starved while the Cr core is active but still completes afterward.
func TestPendulumNCrStarvationThenCompletion(t *testing.T) {
	cfg := config.PENDULUM([]bool{true, false})
	var cr, ncr trace.Stream
	for i := 0; i < 40; i++ {
		cr = append(cr, trace.Access{Addr: uint64(0x1000 + i*64), Kind: trace.Write})
		ncr = append(ncr, trace.Access{Addr: uint64(0x100000 + i*64), Kind: trace.Write})
	}
	sys, err := New(cfg, mkTrace(cr, ncr))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[1].Accesses != 40 {
		t.Fatal("nCr core did not complete")
	}
	// The Cr core must finish well before the starved nCr core.
	if run.Cores[0].FinishCycle >= run.Cores[1].FinishCycle {
		t.Fatalf("Cr finished at %d, nCr at %d — starvation rule inactive",
			run.Cores[0].FinishCycle, run.Cores[1].FinishCycle)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestModeSwitchDuringPendingTransfer schedules the switch into the middle
// of a timer wait: the pending requester's release is recomputed under the
// new θ and the run completes coherently.
func TestModeSwitchDuringPendingTransfer(t *testing.T) {
	cfg := config.PaperDefaults(2, 2)
	cfg.Cores[0].TimerLUT = []config.Timer{10_000, 10_000}
	cfg.Cores[1].TimerLUT = []config.Timer{10_000, config.TimerMSI}
	cfg.Cores[0].Criticality = 2
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 200}},
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
	)
	// Core 1 owns lineA at ~54 with a 10k-cycle timer; core 0 requests at
	// ~200 and would wait until ~10054. The switch at 500 degrades core 1
	// to MSI, releasing the line immediately.
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ScheduleModeSwitch(500, 2); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cycles > 2000 {
		t.Fatalf("mode switch did not release the pending transfer: makespan %d", run.Cycles)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyAndSingleAccessStreams covers degenerate workloads.
func TestEmptyAndSingleAccessStreams(t *testing.T) {
	cfg := cfgN(3, 100, config.TimerMSI, config.TimerNoCache)
	tr := mkTrace(
		trace.Stream{},
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Accesses != 0 || run.Cores[1].Accesses != 1 || run.Cores[2].Accesses != 0 {
		t.Fatalf("counts: %+v", run.Cores)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestSelfEvictionReleasesWaiters: the owner evicts the requested line by
// its own replacement before the timer expires; the waiter is then served
// from memory without waiting out the full timer.
func TestSelfEvictionReleasesWaiters(t *testing.T) {
	cfg := cfgN(2, 100_00, config.TimerMSI) // very long timer on core 0
	// lineA and lineConflict map to the same direct-mapped set (256 sets).
	lineConflict := lineA + 256*64
	tr := mkTrace(
		trace.Stream{
			{Addr: lineA, Kind: trace.Write},
			{Addr: lineConflict, Kind: trace.Write, Gap: 100}, // evicts lineA
		},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 20}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Core 1's request would wait 10000 cycles on the timer; the eviction
	// at ~210 releases it far earlier.
	if got := run.Cores[1].MaxMissLatency; got > 1000 {
		t.Fatalf("waiter not released by self-eviction: latency %d", got)
	}
	if run.Cores[0].Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", run.Cores[0].Writebacks)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestExclusiveEvictionIsClean: evicting an E line must not count as a
// writeback (the copy is clean).
func TestExclusiveEvictionIsClean(t *testing.T) {
	cfg := mesiCfg(1, config.TimerMSI)
	lineConflict := lineA + 256*64
	tr := mkTrace(trace.Stream{
		{Addr: lineA, Kind: trace.Read},
		{Addr: lineConflict, Kind: trace.Read, Gap: 10},
	})
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Writebacks != 0 {
		t.Fatalf("clean E eviction counted as writeback: %d", run.Cores[0].Writebacks)
	}
	e := sys.cores[0].l1.Lookup(sys.cores[0].l1.LineAddr(lineA))
	if e != nil {
		t.Fatal("conflicting fill did not evict the E line")
	}
	if got := sys.cores[0].l1.Lookup(sys.cores[0].l1.LineAddr(uint64(lineConflict))); got == nil || got.State != cache.Exclusive {
		t.Fatalf("replacement fill = %+v, want Exclusive", got)
	}
}

// TestTDMRescheduleOnModeSwitch is the regression test for a livelock: a
// core that becomes critical after a mode switch owned no slot in the
// statically built TDM schedule, and the PENDULUM crit-only rule forbids
// serving critical cores in idle slots — so its requests were never granted.
// The schedule must be reprogrammed with the mode.
func TestTDMRescheduleOnModeSwitch(t *testing.T) {
	cfg := config.PaperDefaults(2, 2)
	cfg.Arbiter = config.ArbiterTDM
	cfg.PendulumCritOnly = true
	cfg.Mode = 2 // only core 1 is critical initially
	cfg.Cores[0].Criticality = 1
	cfg.Cores[1].Criticality = 2
	cfg.Cores[0].TimerLUT = []config.Timer{config.TimerMSI, config.TimerMSI}
	cfg.Cores[1].TimerLUT = []config.Timer{100, 100}
	var s0, s1 trace.Stream
	for i := 0; i < 50; i++ {
		s0 = append(s0, trace.Access{Addr: uint64(0x1000 + i*64), Kind: trace.Write, Gap: 2})
		s1 = append(s1, trace.Access{Addr: uint64(0x100000 + i*64), Kind: trace.Write, Gap: 2})
	}
	sys, err := New(cfg, mkTrace(s0, s1))
	if err != nil {
		t.Fatal(err)
	}
	// Switch down to mode 1: core 0 becomes critical mid-run.
	if err := sys.ScheduleModeSwitch(300, 1); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatalf("livelock regression: %v", err)
	}
	if run.Cores[0].Accesses != 50 || run.Cores[1].Accesses != 50 {
		t.Fatalf("cores did not complete: %+v", run.Cores)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
