package core

import (
	"errors"

	"cohort/internal/obs"
)

// LatencySample is one point of a per-core cumulative-latency time series.
type LatencySample struct {
	// At is the sampling cycle.
	At int64
	// Cumulative is the core's total memory latency up to At.
	Cumulative int64
	// Window is the latency accumulated since the previous sample.
	Window int64
	// Mode is the operating mode at the sample.
	Mode int
}

// latencySampler is the schedule and series of one sampled core.
type latencySampler struct {
	core    int
	window  int64
	samples []LatencySample
}

// SampleLatency arranges for one core's memory latency to be sampled every
// window cycles during the run — the measured counterpart of the WCML-over-
// time plot in Fig. 7a. Must be called before Run; retrieve the series with
// LatencySeries afterward. To sample several cores in one run use
// SampleLatencyCores.
func (s *System) SampleLatency(core int, window int64) error {
	return s.SampleLatencyCores(window, core)
}

// SampleLatencyCores arranges for each listed core's memory latency to be
// sampled every window cycles during the run. Must be called before Run;
// calling it again for an already-sampled core replaces that core's window.
// Retrieve the series with LatencySeriesFor.
func (s *System) SampleLatencyCores(window int64, cores ...int) error {
	if s.ran {
		return errors.New("core: SampleLatency after Run")
	}
	if window <= 0 {
		return errors.New("core: sampler window must be positive")
	}
	for _, core := range cores {
		if core < 0 || core >= len(s.cores) {
			return errors.New("core: sampler core out of range")
		}
	}
	for _, core := range cores {
		replaced := false
		for _, sm := range s.samplers {
			if sm.core == core {
				sm.window = window
				replaced = true
				break
			}
		}
		if !replaced {
			// Pre-size the series: runs of a few thousand windows are the
			// common case (Fig. 7 sweeps), and growth from zero would double
			// through the whole run.
			s.samplers = append(s.samplers, &latencySampler{
				core:    core,
				window:  window,
				samples: make([]LatencySample, 0, 256),
			})
		}
	}
	return nil
}

// LatencySeries returns the samples collected during the run for the first
// sampled core (the single-core form predating SampleLatencyCores).
func (s *System) LatencySeries() []LatencySample {
	if len(s.samplers) == 0 {
		return nil
	}
	return append([]LatencySample(nil), s.samplers[0].samples...)
}

// LatencySeriesFor returns the samples collected for one core (nil when the
// core was not sampled).
func (s *System) LatencySeriesFor(core int) []LatencySample {
	for _, sm := range s.samplers {
		if sm.core == core {
			return append([]LatencySample(nil), sm.samples...)
		}
	}
	return nil
}

// SampledCores lists the cores with samplers attached, in attachment order.
func (s *System) SampledCores() []int {
	out := make([]int, 0, len(s.samplers))
	for _, sm := range s.samplers {
		out = append(out, sm.core)
	}
	return out
}

// startSampler schedules the first sample of every sampler; called from Run.
func (s *System) startSampler() {
	for _, sm := range s.samplers {
		sm := sm
		s.at(sm.window, func(now int64) { s.samplerTick(sm, now) })
	}
}

// samplerTick records one point and reschedules while the core is active.
func (s *System) samplerTick(sm *latencySampler, now int64) {
	cum := s.run.Cores[sm.core].TotalLatency
	prev := int64(0)
	if n := len(sm.samples); n > 0 {
		prev = sm.samples[n-1].Cumulative
	}
	sm.samples = append(sm.samples, LatencySample{
		At:         now,
		Cumulative: cum,
		Window:     cum - prev,
		Mode:       s.mode,
	})
	if s.rec != nil {
		s.rec.Count(obs.PidSim, simTidCore(sm.core), "cum latency", now, cum)
		s.rec.Count(obs.PidSim, simTidCore(sm.core), "window latency", now, cum-prev)
	}
	if !s.cores[sm.core].finished {
		s.at(now+sm.window, func(n int64) { s.samplerTick(sm, n) })
	}
}
