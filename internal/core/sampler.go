package core

import "errors"

// LatencySample is one point of a per-core cumulative-latency time series.
type LatencySample struct {
	// At is the sampling cycle.
	At int64
	// Cumulative is the core's total memory latency up to At.
	Cumulative int64
	// Window is the latency accumulated since the previous sample.
	Window int64
	// Mode is the operating mode at the sample.
	Mode int
}

// SampleLatency arranges for one core's memory latency to be sampled every
// window cycles during the run — the measured counterpart of the WCML-over-
// time plot in Fig. 7a. Must be called before Run; retrieve the series with
// LatencySeries afterward.
func (s *System) SampleLatency(core int, window int64) error {
	if s.ran {
		return errors.New("core: SampleLatency after Run")
	}
	if core < 0 || core >= len(s.cores) {
		return errors.New("core: sampler core out of range")
	}
	if window <= 0 {
		return errors.New("core: sampler window must be positive")
	}
	s.samplerCore = core
	s.samplerWindow = window
	s.samplerOn = true
	return nil
}

// LatencySeries returns the samples collected during the run.
func (s *System) LatencySeries() []LatencySample {
	return append([]LatencySample(nil), s.samples...)
}

// startSampler schedules the first sample; called from Run.
func (s *System) startSampler() {
	if !s.samplerOn {
		return
	}
	s.at(s.samplerWindow, s.samplerTick)
}

// samplerTick records one point and reschedules while the core is active.
func (s *System) samplerTick(now int64) {
	cum := s.run.Cores[s.samplerCore].TotalLatency
	prev := int64(0)
	if n := len(s.samples); n > 0 {
		prev = s.samples[n-1].Cumulative
	}
	s.samples = append(s.samples, LatencySample{
		At:         now,
		Cumulative: cum,
		Window:     cum - prev,
		Mode:       s.mode,
	})
	if !s.cores[s.samplerCore].finished {
		s.at(now+s.samplerWindow, s.samplerTick)
	}
}
