package core

import (
	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/trace"
)

// coreWake advances a core's instruction stream as far as the current cycle
// allows. The model approximates the paper's OoO cores with non-blocking
// caches: accesses issue in order, hits complete in L_hit cycles and do not
// block later accesses (hits-over-misses), one miss may be outstanding
// (MSHR = 1), and a second miss stalls issue until the first resolves.
func (s *System) coreWake(c *coreState, now int64) {
	if c.finished {
		return
	}
	for {
		if c.pos >= len(c.stream) {
			if c.miss == nil {
				c.finished = true
			}
			return
		}
		if c.nextEligible > now {
			s.scheduleCoreWake(c, c.nextEligible)
			return
		}
		// A blocking cache (ablation knob) stalls on any outstanding miss;
		// the paper's non-blocking L1 lets hits proceed under a miss.
		if c.miss != nil && s.cfg.BlockingCaches {
			return
		}
		a := c.stream[c.pos]
		line := c.l1.LineAddr(a.Addr)
		entry := c.l1.Lookup(line)
		if entry != nil && (a.Kind == trace.Read || entry.State.Owned()) {
			s.completeHit(c, a, entry, now)
			c.advanceIssue(now)
			continue
		}
		// Miss (or S→M upgrade). One outstanding miss per core.
		if c.miss != nil {
			// Stall: resume from the miss-completion path.
			return
		}
		s.startMiss(c, a, line, entry, now)
		c.advanceIssue(now)
		// Keep issuing later accesses under the miss (hits proceed, the
		// next miss will stall above).
	}
}

// advanceIssue moves the issue cursor past the current access: the next
// access becomes eligible after one issue cycle plus its compute gap.
func (c *coreState) advanceIssue(now int64) {
	c.pos++
	c.nextEligible = now + 1
	if c.pos < len(c.stream) {
		c.nextEligible += c.stream[c.pos].Gap
	}
}

// scheduleCoreWake schedules an evCoreWake at the given cycle, deduplicating
// (the wakeAt check at dispatch lives in HandleEvent).
func (s *System) scheduleCoreWake(c *coreState, at int64) {
	if c.wakeAt == at {
		return
	}
	c.wakeAt = at
	s.atEvent(at, evCoreWake, int32(c.id), 0, 0)
}

// completeHit finishes a private-cache hit at now + L_hit.
func (s *System) completeHit(c *coreState, a trace.Access, entry *cache.Entry, now int64) {
	done := now + s.cfg.Lat.Hit
	c.l1.Touch(entry)
	if a.Kind == trace.Write {
		// Write hit to an owned line: commit a new version. An Exclusive
		// copy upgrades to Modified silently (MESI), without a bus
		// transaction.
		entry.State = cache.Modified
		li := s.dir.Get(entry.LineAddr)
		li.Version++
		entry.Version = li.Version
	}
	s.run.Cores[c.id].RecordAccess(true, s.cfg.Lat.Hit)
	s.noteProgress(now)
	if done > c.maxCompletion {
		c.maxCompletion = done
	}
}

// startMiss creates the core's outstanding bus request and offers it to the
// arbiter. For a store to a line the core holds in S (upgrade), the stale
// copy is dropped when the broadcast completes.
func (s *System) startMiss(c *coreState, a trace.Access, line uint64, entry *cache.Entry, now int64) {
	// MSHR depth 1: the single per-core record is recycled in place rather
	// than allocated per miss.
	c.missBuf = missState{
		line:        line,
		write:       a.Kind == trace.Write,
		wasShared:   entry != nil && entry.State == cache.Shared,
		issuedAt:    now,
		dataReadyAt: -1,
	}
	c.miss = &c.missBuf
	if c.miss.wasShared {
		s.run.Cores[c.id].Upgrades++
	}
	s.emit(TraceEvent{Cycle: now, Kind: EvMissStart, Core: c.id, Line: line})
	s.kickArbiter(now)
}

// completeMiss finishes the access that created the miss: installs the line
// (unless θ = 0), records the latency, and resumes the core.
func (s *System) completeMiss(c *coreState, m *missState, st cache.State, now int64) {
	li := s.dir.Get(m.line)
	if c.theta == 0 {
		// θ = 0: serve the data without caching it.
		if m.write {
			li.Version++
			backInv := s.llc.WriteBack(m.line, now, s.pinnedFn)
			li.Owner = coherence.MemOwner
			li.OwnerReleased = false
			s.applyBackInvalidations(backInv, now)
		}
	} else {
		victim := c.l1.VictimFor(m.line, nil)
		if victim.Valid() {
			s.evictL1(c, victim, now)
		}
		c.l1.Fill(victim, m.line, st, now)
		if st.Owned() {
			li.Owner = c.id
			li.OwnerFetch = now
			li.OwnerReleased = false
			li.Sharers = 0
			if st == cache.Modified {
				li.Version++
			}
		} else {
			li.AddSharer(c.id)
		}
		victim.Version = li.Version
	}
	lat := now - m.issuedAt
	// Exact latency decomposition (stats.Attribution): the request waited
	// for its broadcast grant, then for the data to become transferable
	// (timer-protected copies plus earlier requesters of the line), then for
	// the data grant, and finally occupied the bus; the residual after
	// removing the waits and the DRAM penalty is pure bus transfer time.
	arb := (m.grantAt - m.issuedAt) + (m.dataGrantAt - m.dataReadyAt)
	timer := m.dataReadyAt - m.broadcastAt
	transfer := lat - arb - timer - m.dramPenalty
	s.run.Cores[c.id].RecordAccess(false, lat)
	s.run.Cores[c.id].Attr.Record(arb, timer, transfer, m.dramPenalty)
	s.noteProgress(now)
	s.emit(TraceEvent{Cycle: now, Kind: EvMissEnd, Core: c.id, Line: m.line})
	if now > c.maxCompletion {
		c.maxCompletion = now
	}
	c.miss = nil
	s.arb.Served(c.id)
	s.coreWake(c, now)
}

// evictL1 removes a victim line from a core's private cache (the core's own
// replacement decision). Modified victims write back to the shared memory
// through the write buffer (off the request/data bus; see DESIGN.md §4), so
// pending requesters of the victim line are served from memory afterwards.
func (s *System) evictL1(c *coreState, victim *cache.Entry, now int64) {
	line := victim.LineAddr
	li := s.dir.Get(line)
	var backInv []uint64
	switch victim.State {
	case cache.Modified:
		s.run.Cores[c.id].Writebacks++
		// Inclusion: re-installing the line may victimize another LLC
		// entry whose private copies must die with it (applied below,
		// after the victim itself leaves this L1).
		backInv = s.llc.WriteBack(line, now, s.pinnedFn)
		if li.Owner == c.id {
			li.Owner = coherence.MemOwner
			li.OwnerReleased = false
		}
	case cache.Exclusive:
		// Clean owner copy: no writeback, just release ownership.
		if li.Owner == c.id {
			li.Owner = coherence.MemOwner
			li.OwnerReleased = false
		}
	default:
		li.RemoveSharer(c.id)
	}
	c.l1.Invalidate(victim)
	s.applyBackInvalidations(backInv, now)
	if li.PendingInv() {
		s.refreshLine(line, li, now)
	}
}
