package core

import (
	"strings"
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// mkTrace builds a trace from per-core access lists.
func mkTrace(streams ...trace.Stream) *trace.Trace {
	return &trace.Trace{Name: "test", Streams: streams}
}

// cfgN returns paper defaults for n cores with the given mode-1 timers.
func cfgN(n int, timers ...config.Timer) *config.System {
	cfg := config.PaperDefaults(n, 1)
	if len(timers) > 0 {
		if err := cfg.SetTimers(1, timers); err != nil {
			panic(err)
		}
	}
	return cfg
}

const lineA = uint64(0x1000)
const lineB = uint64(0x2000)

func TestSingleCoreMissThenHit(t *testing.T) {
	cfg := cfgN(1, config.TimerMSI)
	tr := mkTrace(trace.Stream{
		{Addr: lineA, Kind: trace.Write},
		{Addr: lineA, Kind: trace.Read},
	})
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := run.Cores[0]
	if c.Accesses != 2 || c.Misses != 1 || c.Hits != 1 {
		t.Fatalf("counts: %+v", c)
	}
	// Uncontended miss: broadcast (4) fused with data (50) = 54 cycles.
	if c.MaxMissLatency != 54 {
		t.Fatalf("miss latency = %d, want 54", c.MaxMissLatency)
	}
	if c.TotalLatency != 55 {
		t.Fatalf("total latency = %d, want 55 (54 + 1 hit)", c.TotalLatency)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatalf("coherence: %v", err)
	}
}

func TestTwoCoreMSIHandover(t *testing.T) {
	cfg := cfgN(2, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 wins the bus (RROF order), finishes at 54. Core 1 broadcasts
	// 54..58, the MSI owner hands over immediately, data 58..108.
	if got := run.Cores[0].MaxMissLatency; got != 54 {
		t.Fatalf("core0 latency = %d, want 54", got)
	}
	if got := run.Cores[1].MaxMissLatency; got != 108 {
		t.Fatalf("core1 latency = %d, want 108", got)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatalf("coherence: %v", err)
	}
}

// TestFig1Tradeoff reproduces the paper's motivating example (Fig. 1): under
// the time-based protocol the owner keeps streaming hits while the remote
// writer waits out the timer; under MSI the owner loses the line immediately,
// so the remote writer is served fast but the owner's later accesses miss.
func TestFig1Tradeoff(t *testing.T) {
	mk := func(theta0 config.Timer) (ownerHits, ownerMisses, writerLat int64) {
		cfg := cfgN(2, theta0, config.TimerMSI)
		var s0 trace.Stream
		s0 = append(s0, trace.Access{Addr: lineA, Kind: trace.Write})
		for i := 0; i < 5; i++ {
			s0 = append(s0, trace.Access{Addr: lineA, Kind: trace.Read, Gap: 10})
		}
		tr := mkTrace(s0, trace.Stream{{Addr: lineA, Kind: trace.Write}})
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Fatalf("coherence: %v", err)
		}
		return run.Cores[0].Hits, run.Cores[0].Misses, run.Cores[1].MaxMissLatency
	}
	timedHits, timedMisses, timedWriterLat := mk(100)
	msiHits, msiMisses, msiWriterLat := mk(config.TimerMSI)
	if timedHits != 5 || timedMisses != 1 {
		t.Fatalf("timed owner: %d hits %d misses, want 5/1", timedHits, timedMisses)
	}
	// Owner installs at 54, θ=100 protects to 154; writer's request is
	// visible at 58, released at 154, data till 204.
	if timedWriterLat != 204 {
		t.Fatalf("timed writer latency = %d, want 204", timedWriterLat)
	}
	if msiWriterLat != 108 {
		t.Fatalf("MSI writer latency = %d, want 108", msiWriterLat)
	}
	if msiHits >= timedHits {
		t.Fatalf("MSI owner hits %d must be below timed %d", msiHits, timedHits)
	}
	if msiMisses <= timedMisses {
		t.Fatalf("MSI owner misses %d must exceed timed %d", msiMisses, timedMisses)
	}
}

func TestTimerNoCacheNeverHits(t *testing.T) {
	cfg := cfgN(1, config.TimerNoCache)
	var s trace.Stream
	for i := 0; i < 5; i++ {
		s = append(s, trace.Access{Addr: lineA, Kind: trace.Write})
	}
	sys, err := New(cfg, mkTrace(s))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Hits != 0 || run.Cores[0].Misses != 5 {
		t.Fatalf("θ=0 core: %d hits %d misses, want 0/5", run.Cores[0].Hits, run.Cores[0].Misses)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeCounted(t *testing.T) {
	cfg := cfgN(1, config.TimerMSI)
	tr := mkTrace(trace.Stream{
		{Addr: lineA, Kind: trace.Read},
		{Addr: lineA, Kind: trace.Write},
	})
	sys, _ := New(cfg, tr)
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Upgrades != 1 {
		t.Fatalf("Upgrades = %d, want 1", run.Cores[0].Upgrades)
	}
	if run.Cores[0].Misses != 2 {
		t.Fatalf("Misses = %d (read miss + upgrade)", run.Cores[0].Misses)
	}
}

func TestReadSharing(t *testing.T) {
	cfg := cfgN(3, config.TimerMSI, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
	)
	sys, _ := New(cfg, tr)
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range run.Cores {
		if run.Cores[i].Misses != 1 {
			t.Fatalf("core %d misses = %d", i, run.Cores[i].Misses)
		}
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	// Cores 0,1 read the line; then core 2 writes it; then core 0 reads it
	// again (a coherence miss under MSI).
	cfg := cfgN(3, config.TimerMSI, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}, {Addr: lineA, Kind: trace.Read, Gap: 600}},
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 200}},
	)
	sys, _ := New(cfg, tr)
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Cores[0].Misses != 2 {
		t.Fatalf("core0 misses = %d, want 2 (initial + after remote write)", run.Cores[0].Misses)
	}
	if run.Cores[0].Invalidations != 1 {
		t.Fatalf("core0 invalidations = %d, want 1", run.Cores[0].Invalidations)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestModeSwitchDegradesToMSI(t *testing.T) {
	lat := func(withSwitch bool) int64 {
		cfg := config.PaperDefaults(2, 2)
		cfg.Cores[0].Criticality = 2
		cfg.Cores[1].Criticality = 1
		cfg.Cores[0].TimerLUT = []config.Timer{100, 100}
		cfg.Cores[1].TimerLUT = []config.Timer{100, config.TimerMSI}
		tr := mkTrace(
			trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 200}},
			trace.Stream{{Addr: lineA, Kind: trace.Write}},
		)
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if withSwitch {
			if err := sys.ScheduleModeSwitch(100, 2); err != nil {
				t.Fatal(err)
			}
		}
		run, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if withSwitch {
			if sys.Mode() != 2 || run.ModeSwitches != 1 {
				t.Fatalf("mode = %d switches = %d", sys.Mode(), run.ModeSwitches)
			}
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Fatal(err)
		}
		return run.Cores[0].MaxMissLatency
	}
	with := lat(true)
	without := lat(false)
	// Core 1 owns the line when core 0 requests it at ~200. With the switch
	// core 1 runs MSI and releases immediately; without it core 0 waits out
	// core 1's timer.
	if with >= without {
		t.Fatalf("mode switch did not reduce latency: with=%d without=%d", with, without)
	}
	if with != 54 {
		t.Fatalf("degraded handover latency = %d, want 54", with)
	}
}

func TestScheduleModeSwitchValidation(t *testing.T) {
	cfg := config.PaperDefaults(1, 2)
	sys, _ := New(cfg, mkTrace(trace.Stream{{Addr: lineA}}))
	if err := sys.ScheduleModeSwitch(10, 3); err == nil {
		t.Fatal("out-of-range mode accepted")
	}
	if err := sys.ScheduleModeSwitch(-1, 1); err == nil {
		t.Fatal("negative cycle accepted")
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.ScheduleModeSwitch(10, 2); err == nil {
		t.Fatal("ScheduleModeSwitch after Run accepted")
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := config.PaperDefaults(2, 1)
	if _, err := New(cfg, mkTrace(trace.Stream{})); err == nil {
		t.Fatal("stream-count mismatch accepted")
	}
	bad := config.PaperDefaults(2, 1)
	bad.Mode = 9
	if _, err := New(bad, mkTrace(trace.Stream{}, trace.Stream{})); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestVersionPropagation(t *testing.T) {
	// Core 0 writes the line three times (one miss + two write hits), then
	// core 1 reads it: the read must observe version 3 (checked by
	// CheckCoherence's version comparison after the run).
	cfg := cfgN(2, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{
			{Addr: lineA, Kind: trace.Write},
			{Addr: lineA, Kind: trace.Write},
			{Addr: lineA, Kind: trace.Write},
		},
		trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 300}},
	)
	sys, _ := New(cfg, tr)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	li := sys.dir.Peek(sys.cores[0].l1.LineAddr(lineA))
	if li == nil || li.Version != 3 {
		t.Fatalf("line version = %+v, want 3", li)
	}
	e := sys.cores[1].l1.Lookup(sys.cores[1].l1.LineAddr(lineA))
	if e == nil || e.Version != 3 {
		t.Fatalf("reader copy = %+v, want version 3", e)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := trace.ProfileByName("fft")
	tr := p.Scaled(0.02).Generate(4, 64, 123)
	runOnce := func() string {
		cfg := cfgN(4, 100, 50, config.TimerMSI, config.TimerMSI)
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return run.String()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic runs:\n%s\nvs\n%s", a, b)
	}
}

// TestAllPresetsCompleteAndStayCoherent runs a real (scaled) workload through
// every system variant and checks completion, accounting, and coherence.
func TestAllPresetsCompleteAndStayCoherent(t *testing.T) {
	p, err := trace.ProfileByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Scaled(0.03).Generate(4, 64, 42)
	cohort, err := config.CoHoRT(4, 1, []config.Timer{200, 100, 50, 20})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*config.System{
		"cohort":   cohort,
		"pcc":      config.PCC(4),
		"pendulum": config.PENDULUM([]bool{true, true, false, false}),
		"msifcfs":  config.MSIFCFS(4),
	}
	for name, cfg := range cases {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			sys, err := New(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			run, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			for i := range run.Cores {
				if got, want := run.Cores[i].Accesses, int64(tr.Lambda(i)); got != want {
					t.Fatalf("core %d completed %d/%d accesses", i, got, want)
				}
			}
			if run.Cycles <= 0 || run.BusBusy <= 0 {
				t.Fatalf("degenerate run: %+v", run)
			}
			if run.BusUtilization() > 1.0 {
				t.Fatalf("bus over-utilized: %f", run.BusUtilization())
			}
			if err := sys.CheckCoherence(); err != nil {
				t.Fatalf("coherence: %v", err)
			}
		})
	}
}

func TestTimedCoresOutperformMSIUnderSharing(t *testing.T) {
	// With heavy sharing, timed cores should retain more hits than MSI cores
	// on the same workload.
	p := trace.Profile{
		Name: "hotshare", AccessesPerCore: 800, SharedLines: 16, PrivateLines: 64,
		PShared: 0.8, ZipfS: 0.9, PWrite: 0.5, PRepeat: 0.5, RepeatWindow: 4, MeanGap: 2,
	}
	tr := p.Generate(4, 64, 7)
	hits := func(timers []config.Timer) int64 {
		cfg := cfgN(4, timers...)
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		var h int64
		for i := range run.Cores {
			h += run.Cores[i].Hits
		}
		return h
	}
	timed := hits([]config.Timer{500, 500, 500, 500})
	msi := hits([]config.Timer{config.TimerMSI, config.TimerMSI, config.TimerMSI, config.TimerMSI})
	if timed <= msi {
		t.Fatalf("timed hits %d not above MSI hits %d under heavy sharing", timed, msi)
	}
}

func TestRunStringSmoke(t *testing.T) {
	cfg := cfgN(1, config.TimerMSI)
	sys, _ := New(cfg, mkTrace(trace.Stream{{Addr: lineA}}))
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(run.String(), "core 0") {
		t.Fatal("run string missing core line")
	}
}

func TestConfigAccessorAndEventStrings(t *testing.T) {
	cfg := cfgN(1, config.TimerMSI)
	sys, _ := New(cfg, mkTrace(trace.Stream{{Addr: lineA}}))
	got := sys.Config()
	if got.N() != 1 || got == cfg {
		t.Fatal("Config must return the cloned config")
	}
	names := map[EventKind]string{
		EvBroadcast: "broadcast", EvData: "data", EvMissStart: "miss-start",
		EvMissEnd: "miss-end", EvInvalidate: "invalidate", EvModeSwitch: "mode-switch",
		EventKind(99): "event",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
