package core

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// governedConfig builds a 2-level platform where core 1's timer interferes
// heavily with core 0 at mode 1 and degrades to MSI at mode 2.
func governedConfig() *config.System {
	cfg := config.PaperDefaults(2, 2)
	cfg.Cores[0].Criticality = 2
	cfg.Cores[1].Criticality = 1
	cfg.Cores[0].TimerLUT = []config.Timer{50, 50}
	cfg.Cores[1].TimerLUT = []config.Timer{2000, config.TimerMSI}
	return cfg
}

// contendedTrace makes both cores fight over a small shared set so core 0
// keeps paying core 1's timer at mode 1.
func contendedTrace() *trace.Trace {
	p := trace.Profile{
		Name: "contended", AccessesPerCore: 400, SharedLines: 4, PrivateLines: 8,
		PShared: 0.9, ZipfS: 0.3, PWrite: 0.6, PRepeat: 0.2, RepeatWindow: 2, MeanGap: 1,
	}
	return p.Generate(2, 64, 3)
}

func TestGovernorEscalates(t *testing.T) {
	cfg := governedConfig()
	tr := contendedTrace()
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetGovernor(Governor{Core: 0, Window: 5000, Budget: 2000}); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mode() != 2 {
		t.Fatalf("governor did not escalate: mode %d", sys.Mode())
	}
	if run.ModeSwitches != 1 {
		t.Fatalf("mode switches = %d, want 1", run.ModeSwitches)
	}
	hist := sys.GovernorHistory()
	if len(hist) == 0 {
		t.Fatal("no governor decisions recorded")
	}
	escalations := 0
	for i, d := range hist {
		if d.At != int64(i+1)*5000 {
			t.Fatalf("decision %d at %d, want %d", i, d.At, (i+1)*5000)
		}
		if d.Escalated {
			escalations++
			if d.WindowLatency <= 2000 {
				t.Fatalf("escalated with window latency %d ≤ budget", d.WindowLatency)
			}
		}
	}
	if escalations != 1 {
		t.Fatalf("escalations = %d, want 1", escalations)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestGovernorStaysPutUnderBudget(t *testing.T) {
	cfg := governedConfig()
	tr := contendedTrace()
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Budget far above anything a 5000-cycle window can accumulate.
	if err := sys.SetGovernor(Governor{Core: 0, Window: 5000, Budget: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mode() != 1 || run.ModeSwitches != 0 {
		t.Fatalf("governor escalated spuriously: mode %d, switches %d", sys.Mode(), run.ModeSwitches)
	}
	for _, d := range sys.GovernorHistory() {
		if d.Escalated {
			t.Fatal("spurious escalation recorded")
		}
	}
}

func TestGovernorMaxModeCap(t *testing.T) {
	cfg := config.PaperDefaults(2, 3)
	cfg.Cores[0].Criticality = 3
	cfg.Cores[1].Criticality = 1
	cfg.Cores[0].TimerLUT = []config.Timer{50, 50, 50}
	cfg.Cores[1].TimerLUT = []config.Timer{2000, 2000, config.TimerMSI}
	sys, err := New(cfg, contendedTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Tiny budget forces escalation every window, but the cap holds it at 2.
	if err := sys.SetGovernor(Governor{Core: 0, Window: 2000, Budget: 1, MaxMode: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Mode() != 2 {
		t.Fatalf("mode %d, want cap 2", sys.Mode())
	}
}

func TestGovernorValidation(t *testing.T) {
	cfg := governedConfig()
	sys, err := New(cfg, contendedTrace())
	if err != nil {
		t.Fatal(err)
	}
	cases := []Governor{
		{Core: -1, Window: 10, Budget: 10},
		{Core: 5, Window: 10, Budget: 10},
		{Core: 0, Window: 0, Budget: 10},
		{Core: 0, Window: 10, Budget: 0},
		{Core: 0, Window: 10, Budget: 10, MaxMode: 9},
	}
	for i, g := range cases {
		if err := sys.SetGovernor(g); err == nil {
			t.Errorf("case %d: invalid governor accepted", i)
		}
	}
	if err := sys.SetGovernor(Governor{Core: 0, Window: 10, Budget: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetGovernor(Governor{Core: 0, Window: 10, Budget: 10}); err == nil {
		t.Fatal("SetGovernor after Run accepted")
	}
}

func TestLatencySampler(t *testing.T) {
	cfg := governedConfig()
	tr := contendedTrace()
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SampleLatency(0, 3000); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	series := sys.LatencySeries()
	if len(series) == 0 {
		t.Fatal("no samples recorded")
	}
	var winSum int64
	for i, pt := range series {
		if pt.At != int64(i+1)*3000 {
			t.Fatalf("sample %d at %d, want %d", i, pt.At, (i+1)*3000)
		}
		if pt.Window < 0 || pt.Cumulative < pt.Window {
			t.Fatalf("inconsistent sample %+v", pt)
		}
		if i > 0 && pt.Cumulative < series[i-1].Cumulative {
			t.Fatal("cumulative latency regressed")
		}
		winSum += pt.Window
	}
	if winSum != series[len(series)-1].Cumulative {
		t.Fatal("window sums do not telescope")
	}
	if series[len(series)-1].Cumulative > run.Cores[0].TotalLatency {
		t.Fatal("series exceeds the final total")
	}
}

func TestLatencySamplerValidation(t *testing.T) {
	sys, _ := New(governedConfig(), contendedTrace())
	if err := sys.SampleLatency(-1, 10); err == nil {
		t.Fatal("bad core accepted")
	}
	if err := sys.SampleLatency(0, 0); err == nil {
		t.Fatal("bad window accepted")
	}
	if err := sys.SampleLatency(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SampleLatency(0, 10); err == nil {
		t.Fatal("SampleLatency after Run accepted")
	}
}
