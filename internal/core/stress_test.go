package core

import (
	"fmt"
	"testing"

	"cohort/internal/analysis"
	"cohort/internal/config"
	"cohort/internal/trace"
)

// TestStressRandomPlatforms sweeps randomized platform/workload combinations
// and checks, for every one: the run completes (no protocol deadlock), every
// access finishes, the coherence invariants hold, measured latencies respect
// the analytical bounds where they exist, and the run is deterministic.
func TestStressRandomPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep skipped in -short mode")
	}
	rng := trace.NewRNG(2026)
	arbiters := []config.Arbiter{config.ArbiterRROF, config.ArbiterRR, config.ArbiterFCFS, config.ArbiterTDM}
	for iter := 0; iter < 120; iter++ {
		nCores := 2 + rng.Intn(5) // 2..6
		levels := 1 + rng.Intn(3)
		p := trace.Profile{
			Name:            fmt.Sprintf("stress%d", iter),
			AccessesPerCore: 50 + rng.Intn(300),
			SharedLines:     1 + rng.Intn(24),
			PrivateLines:    1 + rng.Intn(48),
			PShared:         0.1 + 0.8*rng.Float64(),
			ZipfS:           rng.Float64() * 1.2,
			PWrite:          rng.Float64(),
			PRepeat:         rng.Float64() * 0.9,
			RepeatWindow:    1 + rng.Intn(8),
			MeanGap:         float64(rng.Intn(6)),
		}
		tr := p.Generate(nCores, 64, rng.Uint64())

		cfg := config.PaperDefaults(nCores, levels)
		cfg.Arbiter = arbiters[rng.Intn(len(arbiters))]
		cfg.PerfectLLC = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			cfg.Snoop = config.SnoopMESI
		}
		if rng.Intn(3) == 0 {
			cfg.Transfer = config.TransferViaMemory
		}
		if cfg.Arbiter == config.ArbiterTDM && rng.Intn(2) == 0 {
			cfg.PendulumCritOnly = true
		}
		for i := 0; i < nCores; i++ {
			cfg.Cores[i].Criticality = 1 + rng.Intn(levels)
			for m := 0; m < levels; m++ {
				switch rng.Intn(4) {
				case 0:
					cfg.Cores[i].TimerLUT[m] = config.TimerMSI
				case 1:
					cfg.Cores[i].TimerLUT[m] = config.TimerNoCache
				default:
					cfg.Cores[i].TimerLUT[m] = config.Timer(1 + rng.Intn(800))
				}
			}
		}
		cfg.Mode = 1 + rng.Intn(levels)
		// Every stress run doubles as an invariant-checker soak: SWMR,
		// value consistency, inclusion and timer bounds are re-validated
		// after every bus transaction.
		cfg.CheckInvariants = true

		label := fmt.Sprintf("iter %d (n=%d arb=%s snoop=%s transfer=%s perfect=%v mode=%d timers=%v)",
			iter, nCores, cfg.Arbiter, cfg.Snoop, cfg.Transfer, cfg.PerfectLLC, cfg.Mode, cfg.Timers())

		bounds, err := analysis.Bounds(cfg, tr)
		if err != nil {
			t.Fatalf("%s: bounds: %v", label, err)
		}
		var dbg dbgTracer
		runOnce := func(withSwitch bool) *System {
			sys, err := New(cfg, tr)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			dbg.evs = nil
			sys.SetTracer(&dbg)
			if withSwitch && levels > 1 {
				if err := sys.ScheduleModeSwitch(int64(500+rng.Intn(2000)), 1+rng.Intn(levels)); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
			run, err := sys.Run()
			if err != nil {
				t.Fatalf("%s: run: %v", label, err)
			}
			for i := range run.Cores {
				if run.Cores[i].Accesses != int64(tr.Lambda(i)) {
					t.Fatalf("%s: core %d completed %d/%d", label, i, run.Cores[i].Accesses, tr.Lambda(i))
				}
			}
			if err := sys.CheckCoherence(); err != nil {
				t.Fatalf("%s: coherence: %v", label, err)
			}
			return sys
		}
		sys := runOnce(false)
		if sys.InvariantChecks() == 0 {
			t.Fatalf("%s: invariant checker enabled but never ran", label)
		}
		// Bound checks only where the analysis promises them: MSI-snoop
		// direct/via-memory systems without mode switches. (MESI only
		// removes misses, so the MSI bounds still dominate.)
		for i := range sys.run.Cores {
			b := bounds[i]
			if b.WCL == analysis.Unbounded {
				continue
			}
			if got := sys.run.Cores[i].MaxMissLatency; got > b.WCL {
				t.Fatalf("%s: core %d latency %d exceeds WCL %d\n%s", label, i, got, b.WCL, dbg.worstWindow(i))
			}
			if got := sys.run.Cores[i].TotalLatency; got > b.WCMLBound {
				t.Fatalf("%s: core %d WCML %d exceeds bound %d", label, i, got, b.WCMLBound)
			}
		}
		// Determinism.
		again := runOnce(false)
		if sys.run.String() != again.run.String() {
			t.Fatalf("%s: nondeterministic run", label)
		}
		// And with a random mid-run mode switch: still completes coherently.
		runOnce(true)
	}
}

// dbgTracer records events for failure forensics.
type dbgTracer struct{ evs []TraceEvent }

func (d *dbgTracer) Trace(ev TraceEvent) { d.evs = append(d.evs, ev) }

// worstWindow renders the events around the given core's longest miss.
func (d *dbgTracer) worstWindow(core int) string {
	pend := map[int]int64{}
	var worst, ws, we int64
	for _, ev := range d.evs {
		switch ev.Kind {
		case EvMissStart:
			pend[ev.Core] = ev.Cycle
		case EvMissEnd:
			if s0, ok := pend[ev.Core]; ok && ev.Core == core && ev.Cycle-s0 > worst {
				worst, ws, we = ev.Cycle-s0, s0, ev.Cycle
			}
		}
	}
	out := fmt.Sprintf("worst miss of core %d: [%d,%d] = %d\n", core, ws, we, worst)
	for _, ev := range d.evs {
		if ev.Cycle >= ws-200 && ev.Cycle <= we+5 {
			out += fmt.Sprintf("  t=%6d %-10s core=%d line=%x until=%d\n", ev.Cycle, ev.Kind, ev.Core, ev.Line, ev.Until)
		}
	}
	return out
}

// TestStressSingleLineContention hammers one line from many cores under
// every arbiter — the worst case Eq. 1 is written for.
func TestStressSingleLineContention(t *testing.T) {
	for _, arb := range []config.Arbiter{config.ArbiterRROF, config.ArbiterRR, config.ArbiterFCFS, config.ArbiterTDM} {
		for _, theta := range []config.Timer{config.TimerMSI, 0, 1, 30, 500} {
			cfg := config.PaperDefaults(4, 1)
			cfg.Arbiter = arb
			cfg.CheckInvariants = true
			if err := cfg.SetTimers(1, []config.Timer{theta, theta, theta, theta}); err != nil {
				t.Fatal(err)
			}
			var streams []trace.Stream
			for c := 0; c < 4; c++ {
				var s trace.Stream
				for i := 0; i < 40; i++ {
					s = append(s, trace.Access{Addr: lineA, Kind: trace.Write, Gap: int64(c)})
				}
				streams = append(streams, s)
			}
			sys, err := New(cfg, mkTrace(streams...))
			if err != nil {
				t.Fatal(err)
			}
			run, err := sys.Run()
			if err != nil {
				t.Fatalf("arb=%s θ=%v: %v", arb, theta, err)
			}
			if err := sys.CheckCoherence(); err != nil {
				t.Fatalf("arb=%s θ=%v: %v", arb, theta, err)
			}
			// Every write committed exactly once: the final version equals
			// the total number of writes.
			li := sys.dir.Peek(sys.cores[0].l1.LineAddr(lineA))
			if li == nil || li.Version != 160 {
				t.Fatalf("arb=%s θ=%v: version = %v, want 160", arb, theta, li)
			}
			// RROF bound check for the bounded arbiters.
			if arb == config.ArbiterRROF {
				wcl := analysis.WCLCoHoRT(cfg.Lat, cfg.Timers(), 0)
				for i := range run.Cores {
					if run.Cores[i].MaxMissLatency > wcl {
						t.Fatalf("θ=%v: core %d latency %d exceeds %d", theta, i, run.Cores[i].MaxMissLatency, wcl)
					}
				}
			}
		}
	}
}

// TestStressReadersWriterMix interleaves a writer with many readers so GetS
// chains, sharer invalidations and upgrades all fire together.
func TestStressReadersWriterMix(t *testing.T) {
	for _, theta := range []config.Timer{config.TimerMSI, 25, 400} {
		cfg := config.PaperDefaults(4, 1)
		cfg.CheckInvariants = true
		if err := cfg.SetTimers(1, []config.Timer{theta, theta, theta, theta}); err != nil {
			t.Fatal(err)
		}
		rng := trace.NewRNG(7)
		var streams []trace.Stream
		for c := 0; c < 4; c++ {
			var s trace.Stream
			for i := 0; i < 120; i++ {
				kind := trace.Read
				// Core 0 writes often; others mostly read with rare writes.
				if (c == 0 && i%3 == 0) || rng.Intn(10) == 0 {
					kind = trace.Write
				}
				s = append(s, trace.Access{
					Addr: lineA + uint64(rng.Intn(3))*64, // 3 hot lines
					Kind: kind,
					Gap:  int64(rng.Intn(4)),
				})
			}
			streams = append(streams, s)
		}
		sys, err := New(cfg, mkTrace(streams...))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatalf("θ=%v: %v", theta, err)
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Fatalf("θ=%v: %v", theta, err)
		}
	}
}
