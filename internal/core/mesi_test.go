package core

import (
	"testing"

	"cohort/internal/cache"
	"cohort/internal/config"
	"cohort/internal/trace"
)

// mesiCfg returns a MESI platform with the given timers.
func mesiCfg(n int, timers ...config.Timer) *config.System {
	cfg := cfgN(n, timers...)
	cfg.Snoop = config.SnoopMESI
	return cfg
}

func TestMESISilentUpgrade(t *testing.T) {
	// Read then write the same line: under MSI this is two bus transactions
	// (fill S + upgrade); under MESI the read fills Exclusive and the write
	// upgrades silently.
	tr := mkTrace(trace.Stream{
		{Addr: lineA, Kind: trace.Read},
		{Addr: lineA, Kind: trace.Write},
	})
	run := func(cfg *config.System) (misses, upgrades int64) {
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Fatal(err)
		}
		return r.Cores[0].Misses, r.Cores[0].Upgrades
	}
	msiMiss, msiUp := run(cfgN(1, config.TimerMSI))
	mesiMiss, mesiUp := run(mesiCfg(1, config.TimerMSI))
	if msiMiss != 2 || msiUp != 1 {
		t.Fatalf("MSI: %d misses %d upgrades, want 2/1", msiMiss, msiUp)
	}
	if mesiMiss != 1 || mesiUp != 0 {
		t.Fatalf("MESI: %d misses %d upgrades, want 1/0 (silent E→M)", mesiMiss, mesiUp)
	}
}

func TestMESIExclusiveOnlyWhenUnshared(t *testing.T) {
	// Core 1 reads a line core 0 already shares: the fill must be S, not E,
	// and a later write by core 1 must still be an upgrade transaction.
	cfg := mesiCfg(2, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 200}, {Addr: lineA, Kind: trace.Write, Gap: 50}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores[1].Upgrades != 1 {
		t.Fatalf("shared fill must not be Exclusive: upgrades = %d, want 1", r.Cores[1].Upgrades)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIExclusiveState(t *testing.T) {
	cfg := mesiCfg(1, config.TimerMSI)
	tr := mkTrace(trace.Stream{{Addr: lineA, Kind: trace.Read}})
	sys, _ := New(cfg, tr)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	e := sys.cores[0].l1.Lookup(sys.cores[0].l1.LineAddr(lineA))
	if e == nil || e.State != cache.Exclusive {
		t.Fatalf("lone read fill = %+v, want Exclusive", e)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIRemoteReadDowngradesExclusive(t *testing.T) {
	// Core 0 fills E; core 1 reads the same line: both end Shared.
	cfg := mesiCfg(2, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Read, Gap: 200}},
	)
	sys, _ := New(cfg, tr)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		e := sys.cores[i].l1.Lookup(sys.cores[i].l1.LineAddr(lineA))
		if e == nil || e.State != cache.Shared {
			t.Fatalf("core %d state = %v, want Shared after remote read", i, e)
		}
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIRemoteWriteInvalidatesExclusive(t *testing.T) {
	cfg := mesiCfg(2, config.TimerMSI, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 200}},
	)
	sys, _ := New(cfg, tr)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if e := sys.cores[0].l1.Lookup(sys.cores[0].l1.LineAddr(lineA)); e != nil {
		t.Fatalf("E copy must be invalidated by remote write, got %v", e.State)
	}
	e := sys.cores[1].l1.Lookup(sys.cores[1].l1.LineAddr(lineA))
	if e == nil || e.State != cache.Modified {
		t.Fatalf("writer state = %v, want Modified", e)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIWithTimers(t *testing.T) {
	// Timed MESI core: the Exclusive fill is timer-protected like an M line;
	// a remote writer waits out the timer.
	cfg := mesiCfg(2, 100, config.TimerMSI)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 20}},
	)
	sys, _ := New(cfg, tr)
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 fills E at 54 with θ=100 (release 154); core 1's write waits:
	// data 154..204, latency 204-20 = 184.
	if got := r.Cores[1].MaxMissLatency; got != 184 {
		t.Fatalf("writer latency = %d, want 184 (timer-protected E)", got)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestMESIFullWorkloadCoherent(t *testing.T) {
	p, _ := trace.ProfileByName("radix")
	tr := p.Scaled(0.03).Generate(4, 64, 9)
	for _, timers := range [][]config.Timer{
		{config.TimerMSI, config.TimerMSI, config.TimerMSI, config.TimerMSI},
		{200, 100, 50, config.TimerMSI},
	} {
		cfg := mesiCfg(4, timers...)
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		runMESI, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.CheckCoherence(); err != nil {
			t.Fatalf("timers %v: %v", timers, err)
		}
		// MESI must not lose hits relative to MSI on the same workload.
		msiSys, err := New(cfgN(4, timers...), tr)
		if err != nil {
			t.Fatal(err)
		}
		runMSI, err := msiSys.Run()
		if err != nil {
			t.Fatal(err)
		}
		var hitsMESI, hitsMSI, upMESI, upMSI int64
		for i := 0; i < 4; i++ {
			hitsMESI += runMESI.Cores[i].Hits
			hitsMSI += runMSI.Cores[i].Hits
			upMESI += runMESI.Cores[i].Upgrades
			upMSI += runMSI.Cores[i].Upgrades
		}
		if hitsMESI < hitsMSI {
			t.Fatalf("timers %v: MESI hits %d below MSI %d", timers, hitsMESI, hitsMSI)
		}
		if upMESI >= upMSI {
			t.Fatalf("timers %v: MESI upgrades %d not below MSI %d", timers, upMESI, upMSI)
		}
	}
}

func TestSnoopJSONRoundTrip(t *testing.T) {
	cfg := mesiCfg(2, config.TimerMSI, config.TimerMSI)
	data, err := cfg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := config.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Snoop != config.SnoopMESI {
		t.Fatal("snoop protocol lost in JSON round trip")
	}
	var sp config.Snoop
	if err := sp.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("unknown snoop accepted")
	}
}
