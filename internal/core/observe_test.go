package core

import (
	"bytes"
	"strings"
	"testing"

	"cohort/internal/config"
	"cohort/internal/obs"
	"cohort/internal/trace"
)

// observedRun builds a contended two-core timed system with a registry and
// recorder attached and runs it to completion.
func observedRun(t *testing.T) (*System, *obs.Registry, *obs.Recorder) {
	t.Helper()
	cfg := cfgN(2, 300, 300)
	// core 0 takes a timer-protected Shared copy of lineA; core 1's store
	// (issued after a 300-cycle gap) must wait out the timer and then
	// invalidate the sharer — covering the timer-window and invalidation
	// paths deterministically.
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Read}, {Addr: lineB, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Write, Gap: 300}, {Addr: lineA, Kind: trace.Write}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	if err := sys.SetMetrics(reg); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRecorder(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys, reg, rec
}

func TestSetMetricsSnapshotMatchesRun(t *testing.T) {
	sys, reg, _ := observedRun(t)
	snap := reg.Snapshot()

	if m, ok := snap.Get("sim_cycles"); !ok || m.Value != sys.run.Cycles || m.Value == 0 {
		t.Fatalf("sim_cycles = %+v (run %d)", m, sys.run.Cycles)
	}
	if m, ok := snap.Get("sim_bus_transactions"); !ok || m.Value != sys.run.Transactions {
		t.Fatalf("sim_bus_transactions = %+v", m)
	}
	for i := 0; i < 2; i++ {
		lbl := obs.L("core", string(rune('0'+i)))
		m, ok := snap.Get("sim_core_accesses", lbl)
		if !ok || m.Value != sys.run.Cores[i].Accesses {
			t.Fatalf("sim_core_accesses{core=%d} = %+v, want %d", i, m, sys.run.Cores[i].Accesses)
		}
		h, ok := snap.Get("sim_core_latency", lbl)
		if !ok || h.Kind != obs.KindHistogram || h.Value != sys.run.Cores[i].Latency.Total() {
			t.Fatalf("sim_core_latency{core=%d} = %+v", i, h)
		}
	}
	// Both cores are timed and contend on lineA: timer windows must have
	// been recorded, and the window counters must agree with each other.
	tw, _ := snap.Get("sim_timer_windows")
	twc, _ := snap.Get("sim_timer_window_cycles")
	if tw.Value == 0 || twc.Value == 0 {
		t.Fatalf("no timer windows recorded: %+v / %+v", tw, twc)
	}
	if m, ok := snap.Get("llc_hits"); !ok || m.Value == 0 {
		t.Fatalf("llc_hits = %+v (perfect LLC counts every fetch as a hit)", m)
	}
	// Fused data phases ride the broadcaster's tenure without a fresh
	// arbiter grant, so grants is positive but bounded by transactions.
	if m, ok := snap.Get("bus_arbiter_grants", obs.L("arbiter", "rrof")); !ok || m.Value == 0 || m.Value > sys.run.Transactions {
		t.Fatalf("bus_arbiter_grants = %+v (transactions %d)", m, sys.run.Transactions)
	}
	if m, ok := snap.Get("sim_line_requests_total"); !ok || m.Value == 0 {
		t.Fatalf("sim_line_requests_total = %+v", m)
	}
}

func TestSetRecorderProducesSpans(t *testing.T) {
	_, _, rec := observedRun(t)
	var names []string
	for _, ev := range rec.Events() {
		names = append(names, ev.Ph+":"+ev.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"X:broadcast", "X:data", "X:miss", "X:timer window", "i:invalidate", "M:process_name", "M:thread_name"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("recorder missing %q in:\n%s", want, joined)
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatal("chrome export missing traceEvents")
	}
}

func TestObservabilityDoesNotChangeResults(t *testing.T) {
	build := func() *System {
		cfg := cfgN(2, 300, config.TimerMSI)
		tr := mkTrace(
			trace.Stream{{Addr: lineA, Kind: trace.Write}, {Addr: lineA, Kind: trace.Read}},
			trace.Stream{{Addr: lineA, Kind: trace.Write}, {Addr: lineB, Kind: trace.Read}},
		)
		sys, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	plain := build()
	bare, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	observed := build()
	if err := observed.SetMetrics(obs.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := observed.SetRecorder(obs.NewRecorder()); err != nil {
		t.Fatal(err)
	}
	withObs, err := observed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cycles != withObs.Cycles || bare.BusBusy != withObs.BusBusy || bare.Transactions != withObs.Transactions {
		t.Fatalf("observability changed results: %+v vs %+v", bare, withObs)
	}
	for i := range bare.Cores {
		if bare.Cores[i] != withObs.Cores[i] {
			t.Fatalf("core %d stats diverged: %+v vs %+v", i, bare.Cores[i], withObs.Cores[i])
		}
	}
}

func TestObserveAfterRunRejected(t *testing.T) {
	sys, _, _ := observedRun(t)
	if err := sys.SetMetrics(obs.NewRegistry()); err == nil {
		t.Fatal("SetMetrics after Run accepted")
	}
	if err := sys.SetRecorder(obs.NewRecorder()); err == nil {
		t.Fatal("SetRecorder after Run accepted")
	}
}

func TestMultiCoreSampler(t *testing.T) {
	cfg := cfgN(2, 300, 300)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write}, {Addr: lineB, Kind: trace.Read}},
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	if err := sys.SetRecorder(rec); err != nil {
		t.Fatal(err)
	}
	if err := sys.SampleLatencyCores(10, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := sys.SampledCores(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("SampledCores = %v", got)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	s0, s1 := sys.LatencySeriesFor(0), sys.LatencySeriesFor(1)
	if len(s0) == 0 || len(s1) == 0 {
		t.Fatalf("missing series: %d/%d samples", len(s0), len(s1))
	}
	// The single-core accessor returns the first sampler's series.
	if legacy := sys.LatencySeries(); len(legacy) != len(s0) || legacy[0] != s0[0] {
		t.Fatalf("LatencySeries diverged from LatencySeriesFor(0)")
	}
	if sys.LatencySeriesFor(7) != nil {
		t.Fatal("unsampled core returned a series")
	}
	// Sampler series reach the recorder as counter tracks.
	found := false
	for _, ev := range rec.Events() {
		if ev.Ph == "C" && ev.Name == "cum latency" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("sampler series missing from recorder")
	}
}

func TestSamplerValidation(t *testing.T) {
	cfg := cfgN(1, config.TimerMSI)
	tr := mkTrace(trace.Stream{{Addr: lineA, Kind: trace.Read}})
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SampleLatency(5, 10); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if err := sys.SampleLatency(0, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	// Re-sampling the same core replaces its window instead of duplicating.
	if err := sys.SampleLatency(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := sys.SampleLatency(0, 20); err != nil {
		t.Fatal(err)
	}
	if got := sys.SampledCores(); len(got) != 1 {
		t.Fatalf("duplicate sampler registered: %v", got)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SampleLatency(0, 10); err == nil {
		t.Fatal("SampleLatency after Run accepted")
	}
}
