package core

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// TestFig4ExampleOperation reproduces the paper's Fig. 4 walk-through: a
// quad-core system where c0, c1 and c3 run the time-based protocol and c2
// runs MSI; all four cores issue a write to cache line A. The narrated
// behaviour:
//
//  1. c0 (head of the RROF order) fetches A first and starts θ0.
//  2. c1's request waits for θ0 to expire, then A moves c0 → c1 and θ1
//     starts; c1 only then loses its RROF position.
//  3. c2 (MSI) waits for θ1, receives A from c1 …
//  4. … and, running MSI, hands it to c3 immediately — no timer wait.
func TestFig4ExampleOperation(t *testing.T) {
	const (
		theta0 = 200
		theta1 = 150
		theta3 = 120
	)
	cfg := cfgN(4, theta0, theta1, config.TimerMSI, theta3)
	tr := mkTrace(
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
		trace.Stream{{Addr: lineA, Kind: trace.Write}},
	)
	sys, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var evs []TraceEvent
	if err := sys.SetTracer(tracerFunc(func(ev TraceEvent) { evs = append(evs, ev) })); err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}

	// Completion order is the FIFO of the broadcasts: c0, c1, c2, c3.
	var missEnds []TraceEvent
	for _, ev := range evs {
		if ev.Kind == EvMissEnd {
			missEnds = append(missEnds, ev)
		}
	}
	if len(missEnds) != 4 {
		t.Fatalf("miss completions = %d, want 4", len(missEnds))
	}
	for i, ev := range missEnds {
		if ev.Core != i {
			t.Fatalf("completion %d by core %d, want core %d (RROF/FIFO order)", i, ev.Core, i)
		}
	}

	// ① c0: uncontended fetch from the shared memory: 54 cycles.
	c0Done := missEnds[0].Cycle
	if c0Done != 54 {
		t.Fatalf("c0 served at %d, want 54", c0Done)
	}
	// ② c1 waits out θ0 from c0's fill, then a 50-cycle transfer:
	// release = 54 + 200 = 254, data until 304.
	c1Done := missEnds[1].Cycle
	if c1Done != c0Done+theta0+50 {
		t.Fatalf("c1 served at %d, want %d (θ0 wait + transfer)", c1Done, c0Done+theta0+50)
	}
	// ③ c2 waits out θ1 from c1's fill: release = 304 + 150, data until 504.
	c2Done := missEnds[2].Cycle
	if c2Done != c1Done+theta1+50 {
		t.Fatalf("c2 served at %d, want %d (θ1 wait + transfer)", c2Done, c1Done+theta1+50)
	}
	// ④ c2 runs MSI: it gives A to c3 immediately — just the transfer, no
	// timer wait ("since c2 is running with MSI, it has to immediately give
	// up the data to the next requester, c3").
	c3Done := missEnds[3].Cycle
	if c3Done != c2Done+50 {
		t.Fatalf("c3 served at %d, want %d (immediate MSI handover)", c3Done, c2Done+50)
	}

	// The final owner is c3 with version 4 (every write committed once).
	li := sys.dir.Peek(sys.cores[0].l1.LineAddr(lineA))
	if li == nil || li.Owner != 3 || li.Version != 4 {
		t.Fatalf("final line state = %+v, want owner 3 version 4", li)
	}
	_ = run
}

// tracerFunc adapts a function to the Tracer interface.
type tracerFunc func(TraceEvent)

func (f tracerFunc) Trace(ev TraceEvent) { f(ev) }
