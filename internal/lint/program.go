package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Program is a whole-module view: every package type-checked against the
// *same* set of types.Package objects, so a *types.Func resolved through one
// package's Uses map is pointer-identical to the one in the defining
// package's Defs map. That identity is what lets the call graph
// (callgraph.go) follow an edge from a call site in internal/experiments into
// a method declared in internal/core. The per-package Load path
// (load.go) cannot provide it: its source importer re-checks imported
// packages privately, so cross-package objects never match.
type Program struct {
	Fset *token.FileSet
	// Pkgs are the packages matched by the load patterns, sorted by import
	// path. Dependency packages pulled in only for type identity are loaded
	// too but not listed here.
	Pkgs []*Package

	byPath map[string]*Package
}

// Package returns the loaded package with the given import path, or nil.
// Both pattern-matched and dependency-only packages are visible.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// progImporter type-checks module-internal packages once, memoized, and
// delegates everything else (the standard library) to the source importer.
// Import resolution recurses: checking a package first imports — and thereby
// checks — its in-module dependencies, so packages are processed in
// topological order without an explicit sort.
type progImporter struct {
	fset     *token.FileSet
	listed   map[string]*listedPackage
	checked  map[string]*Package
	fallback types.Importer
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	lp, ok := pi.listed[path]
	if !ok || lp.Standard {
		return pi.fallback.Import(path)
	}
	pkg, err := pi.ensure(lp)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (pi *progImporter) ensure(lp *listedPackage) (*Package, error) {
	if pkg, ok := pi.checked[lp.ImportPath]; ok {
		return pkg, nil
	}
	files := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		files[i] = filepath.Join(lp.Dir, f)
	}
	pkg, err := check(pi.fset, pi, lp.ImportPath, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = lp.Dir
	pi.checked[lp.ImportPath] = pkg
	return pkg, nil
}

// LoadProgram expands the `go list` patterns and returns the matched packages
// plus their in-module dependencies as one consistently type-checked Program.
func LoadProgram(patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list -deps %v: %v\n%s", patterns, err, errb.String())
	}
	listed := make(map[string]*listedPackage)
	var matched []string
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		p := lp
		listed[p.ImportPath] = &p
		if !p.Standard && !p.DepOnly && len(p.GoFiles) > 0 {
			matched = append(matched, p.ImportPath)
		}
	}
	sort.Strings(matched)

	fset := token.NewFileSet()
	pi := &progImporter{
		fset:     fset,
		listed:   listed,
		checked:  make(map[string]*Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	prog := &Program{Fset: fset, byPath: pi.checked}
	for _, path := range matched {
		pkg, err := pi.ensure(listed[path])
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// treeImporter resolves import paths under a base path to subdirectories of a
// root directory — the loader behind LoadTree, which the program-analyzer
// golden tests use to assemble multi-package testdata programs that `go list`
// does not see.
type treeImporter struct {
	fset     *token.FileSet
	root     string
	base     string
	checked  map[string]*Package
	fallback types.Importer
}

func (ti *treeImporter) Import(path string) (*types.Package, error) {
	if path != ti.base && !strings.HasPrefix(path, ti.base+"/") {
		return ti.fallback.Import(path)
	}
	if pkg, ok := ti.checked[path]; ok {
		return pkg.Types, nil
	}
	dir := filepath.Join(ti.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, ti.base), "/")))
	pkg, err := loadTreeDir(ti, dir, path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func loadTreeDir(ti *treeImporter, dir, path string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !isTestFile(m) {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	pkg, err := check(ti.fset, ti, path, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	ti.checked[path] = pkg
	return pkg, nil
}

// LoadTree loads every package under root (each directory holding .go files)
// as one Program with import paths base, base/<subdir>, … — cross-imports
// between them resolve to shared type objects exactly as in LoadProgram.
func LoadTree(root, base string) (*Program, error) {
	fset := token.NewFileSet()
	ti := &treeImporter{
		fset:     fset,
		root:     root,
		base:     base,
		checked:  make(map[string]*Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var paths []string
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil || !info.IsDir() {
			return err
		}
		matches, _ := filepath.Glob(filepath.Join(p, "*.go"))
		if len(matches) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		path := base
		if rel != "." {
			path = base + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	prog := &Program{Fset: fset, byPath: ti.checked}
	for _, path := range paths {
		if _, err := ti.Import(path); err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, ti.checked[path])
	}
	return prog, nil
}

// ProgramPass carries one whole-program analyzer's view of a Program: every
// package at once, plus the conservative call graph built over them.
// Reportf honours //cohort:allow annotations exactly like the per-package
// Pass, with the allow index spanning every file in the program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Graph    *Graph

	diags []Diagnostic
	allow map[allowKey]bool
}

// Reportf records a diagnostic unless an allow-annotation suppresses it.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allow[posKey(p.Prog.Fset, pos)] {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func posKey(fset *token.FileSet, pos token.Pos) allowKey {
	pp := fset.Position(pos)
	return allowKey{pp.Filename, pp.Line}
}

func (p *ProgramPass) buildAllowIndex() {
	p.allow = make(map[allowKey]bool)
	for _, pkg := range p.Prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "cohort:allow") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "cohort:allow"))
					if len(fields) == 0 || strings.TrimSuffix(fields[0], ":") != p.Analyzer.Name {
						continue
					}
					pos := p.Prog.Fset.Position(c.Pos())
					p.allow[allowKey{pos.Filename, pos.Line}] = true
					p.allow[allowKey{pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
}

// RunOnProgram executes one whole-program analyzer over a loaded Program and
// returns its diagnostics sorted by file position. The caller supplies the
// call graph so the (expensive) graph construction is shared between
// analyzers; pass nil to have one built on the fly.
func RunOnProgram(a *Analyzer, prog *Program, g *Graph) ([]Diagnostic, error) {
	if a.RunProgram == nil {
		return nil, fmt.Errorf("lint: %s is not a whole-program analyzer", a.Name)
	}
	if g == nil {
		var err error
		g, err = BuildGraph(prog)
		if err != nil {
			return nil, err
		}
	}
	pass := &ProgramPass{Analyzer: a, Prog: prog, Graph: g}
	pass.buildAllowIndex()
	if err := a.RunProgram(pass); err != nil {
		return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
	}
	fset := prog.Fset
	sort.Slice(pass.diags, func(i, j int) bool {
		pi, pj := fset.Position(pass.diags[i].Pos), fset.Position(pass.diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return pass.diags[i].Message < pass.diags[j].Message
	})
	return pass.diags, nil
}
