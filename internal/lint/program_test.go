package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenProgram runs one whole-program analyzer over a multi-package
// testdata tree (loaded via LoadTree so cross-package type identity holds)
// and compares its diagnostics against the `// want` expectations collected
// from every file in the tree.
func goldenProgram(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	prog, err := LoadTree(root, "cohort/lint-testdata/"+name)
	if err != nil {
		t.Fatalf("load tree %s: %v", root, err)
	}
	diags, err := RunOnProgram(a, prog, nil)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	var all []*ast.File
	for _, pkg := range prog.Pkgs {
		all = append(all, pkg.Files...)
	}
	checkWants(t, prog.Fset, all, diags)
}

func TestHotAllocGolden(t *testing.T)      { goldenProgram(t, HotAllocAnalyzer, "hotalloc") }
func TestReachContractGolden(t *testing.T) { goldenProgram(t, ReachContractAnalyzer, "reachcontract") }
func TestParallelPureGolden(t *testing.T)  { goldenProgram(t, ParallelPureAnalyzer, "parallelpure") }

// writeTree materializes a map of relative path → source into dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runSeeded loads a synthetic tree, runs one program analyzer, and returns
// the diagnostic messages.
func runSeeded(t *testing.T, a *Analyzer, files map[string]string) []string {
	t.Helper()
	dir := t.TempDir()
	writeTree(t, dir, files)
	prog, err := LoadTree(dir, "cohort/seeded")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := RunOnProgram(a, prog, nil)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

// TestSeededRegressions plants the three canonical contract violations the
// suite exists to catch — a wall-clock read reachable from an event handler,
// a fresh closure in the event hot path, and a captured-counter write in a
// parallel.Map job — and checks each is caught by its analyzer.
func TestSeededRegressions(t *testing.T) {
	t.Run("walltime-reachable-from-handler", func(t *testing.T) {
		msgs := runSeeded(t, ReachContractAnalyzer, map[string]string{
			"core/core.go": `package core

import "time"

//cohort:hotpath
func HandleEvent() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }
`,
		})
		if len(msgs) != 1 || !strings.Contains(msgs[0], "wall-clock read time.Now") {
			t.Fatalf("reachcontract diagnostics = %v, want one wall-clock finding", msgs)
		}
		if !strings.Contains(msgs[0], "core.HandleEvent → core.stamp") {
			t.Errorf("diagnostic %q does not carry the call path", msgs[0])
		}
	})

	t.Run("closure-in-event-handler", func(t *testing.T) {
		msgs := runSeeded(t, HotAllocAnalyzer, map[string]string{
			"core/core.go": `package core

var cb func() int

//cohort:hotpath
func HandleEvent(n int) {
	cb = func() int { return n }
}
`,
		})
		if len(msgs) != 1 || !strings.Contains(msgs[0], "function literal allocates a closure") {
			t.Fatalf("hotalloc diagnostics = %v, want one closure finding", msgs)
		}
	})

	t.Run("captured-counter-in-parallel-map", func(t *testing.T) {
		msgs := runSeeded(t, ParallelPureAnalyzer, map[string]string{
			"parallel/parallel.go": `package parallel

func Map(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`,
			"eval.go": `package seeded

import "cohort/seeded/parallel"

func Sweep(n int) []int {
	out := make([]int, n)
	count := 0
	parallel.Map(n, func(i int) {
		out[i] = i
		count++
	})
	_ = count
	return out
}
`,
		})
		if len(msgs) != 1 || !strings.Contains(msgs[0], `writes captured variable "count"`) {
			t.Fatalf("parallelpure diagnostics = %v, want one captured-counter finding", msgs)
		}
	})
}

// TestHotAnnotationRejectsUnknownQualifier pins the annotation vocabulary:
// a //cohort:hotpath qualifier outside {determinism, exempt} is a build
// error, not a silent no-op.
func TestHotAnnotationRejectsUnknownQualifier(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"p.go": `package p

//cohort:hotpath turbo
func F() {}
`,
	})
	prog, err := LoadTree(dir, "cohort/seeded")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := BuildGraph(prog); err == nil || !strings.Contains(err.Error(), "turbo") {
		t.Fatalf("BuildGraph error = %v, want unknown-qualifier error naming %q", err, "turbo")
	}
}

// TestGraphExemptCutsTraversal pins the exempt semantics directly on the
// graph: callees of an exempt function are not in the hot set.
func TestGraphExemptCutsTraversal(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"p.go": `package p

//cohort:hotpath
func Root() { debug() }

//cohort:hotpath exempt
func debug() { helper() }

func helper() {}
`,
	})
	prog, err := LoadTree(dir, "cohort/seeded")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	g, err := BuildGraph(prog)
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	reach, _ := g.Reachable(HotFull)
	got := map[string]bool{}
	for n := range reach {
		got[n.Name] = true
	}
	if !got["p.Root"] || got["p.debug"] || got["p.helper"] {
		t.Errorf("hot set = %v, want Root only (exempt must cut traversal)", got)
	}
}
