package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand package-level functions that build an
// explicitly seeded generator rather than drawing from the shared global
// source. Everything else at package level is forbidden.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewChaCha8": true,
	"NewPCG":     true,
}

// GlobalRandAnalyzer flags the top-level convenience functions of math/rand
// and math/rand/v2 (rand.Intn, rand.Float64, rand.Shuffle, …). Those draw
// from a process-global source that is auto-seeded and shared across
// goroutines, so results differ between runs. Simulator code must thread an
// explicitly seeded generator (trace.RNG or a *rand.Rand built with
// rand.New(rand.NewSource(seed))) through its configuration.
var GlobalRandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc: "forbid the global math/rand top-level functions; randomness must " +
		"flow from an explicitly seeded generator passed through config",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand (seeded instances) are fine; only
			// package-level functions touch the global source.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if randConstructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "global rand.%s draws from the shared auto-seeded source; "+
				"use an explicitly seeded *rand.Rand or trace.RNG passed through config", fn.Name())
			return true
		})
	}
	return nil
}
