// Package lint is a small static-analysis framework plus the CoHoRT
// determinism lint suite. The simulator's headline property — every run is
// bit-reproducible — is a contract the Go compiler cannot check: a stray map
// iteration in a hot path, a wall-clock read, or an unseeded random source
// would silently produce runs that differ between executions while every test
// still passes. The analyzers in this package enforce that contract
// mechanically over the simulator packages (internal/{sim,core,bus,cache,
// coherence,memctrl,sched,trace,opt}).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library only, so
// the repository stays dependency-free. Run the suite with the cohort-vet
// command:
//
//	go run ./cmd/cohort-vet ./...
//
// A diagnostic can be suppressed where the flagged construct is provably
// order-insensitive by annotating the flagged (or preceding) line with
//
//	//cohort:allow <analyzer-name>: <reason>
//
// The form — a registered analyzer name, the colon, a non-empty reason — is
// machine-checked by the allowdoc analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	allow map[allowKey]bool
}

// Analyzer is one determinism check. Exactly one of Run (per-package,
// syntactic) and RunProgram (whole-program, over the conservative call graph)
// is set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow-annotations.
	Name string
	// Doc is a one-paragraph description of the rule and its rationale.
	Doc string
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(pass *Pass) error
	// RunProgram reports diagnostics over a whole Program via pass.Reportf.
	RunProgram func(pass *ProgramPass) error
}

// Reportf records a diagnostic unless an allow-annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowedAt(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

type allowKey struct {
	file string
	line int
}

// buildAllowIndex scans the package comments for //cohort:allow annotations
// naming this pass's analyzer and records the source lines they cover (the
// annotation line itself and the line after it).
func (p *Pass) buildAllowIndex() {
	p.allow = make(map[allowKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "cohort:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "cohort:allow"))
				// The canonical form is "cohort:allow <analyzer>: <reason>"
				// (enforced by the allowdoc analyzer); the bare-name legacy
				// form still matches so a migration cannot un-suppress.
				if len(fields) == 0 || strings.TrimSuffix(fields[0], ":") != p.Analyzer.Name {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.allow[allowKey{pos.Filename, pos.Line}] = true
				p.allow[allowKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
}

// allowedAt reports whether an annotation suppresses diagnostics at pos.
func (p *Pass) allowedAt(pos token.Pos) bool {
	pp := p.Fset.Position(pos)
	return p.allow[allowKey{pp.Filename, pp.Line}]
}

// Analyzers returns the full determinism suite in a stable order: the
// per-package analyzers first, then the whole-program analyzers built on the
// conservative call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRangeAnalyzer,
		WallTimeAnalyzer,
		GlobalRandAnalyzer,
		EventGoroutineAnalyzer,
		FloatAccumAnalyzer,
		ExhaustiveAnalyzer,
		AllowDocAnalyzer,
		HotAllocAnalyzer,
		ReachContractAnalyzer,
		ParallelPureAnalyzer,
		LockOrderAnalyzer,
		AtomicMixAnalyzer,
		GoLeakAnalyzer,
		CtxFlowAnalyzer,
		SyncMisuseAnalyzer,
	}
}

// ProgramAnalyzers returns the whole-program subset of the suite.
func ProgramAnalyzers() []*Analyzer {
	var out []*Analyzer
	for _, a := range Analyzers() {
		if a.RunProgram != nil {
			out = append(out, a)
		}
	}
	return out
}

// Run executes one analyzer over a loaded package and returns its
// diagnostics sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	if a.Run == nil {
		return nil, fmt.Errorf("lint: %s is a whole-program analyzer; use RunOnProgram", a.Name)
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	pass.buildAllowIndex()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags, nil
}

// inspectWithStack walks the AST keeping the ancestor stack, calling fn with
// each node and its ancestors (outermost first). Returning false from fn
// prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still push/pop symmetrically: Inspect will not descend, so pop
			// immediately by returning false after removing the entry.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal in the
// ancestor stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// calleeFunc resolves the called function object of a call expression, if it
// is a named function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
