package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMixAnalyzer enforces the all-or-nothing rule of sync/atomic: a field
// or variable whose address is ever passed to a sync/atomic function
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&flag), …) must be accessed
// through sync/atomic everywhere. A plain read racing an atomic write is
// undefined behaviour the race detector only catches on interleavings that
// actually execute — and on architectures with weak memory ordering the
// plain read can observe torn or stale values even when the race window is
// never hit in testing.
//
// Identity is the *types.Var of the field or variable, program-wide (the
// LoadProgram type-identity guarantee), so a field written atomically in
// internal/obs and read plainly from internal/experiments is caught. Typed
// atomics (atomic.Int64, atomic.Pointer[T]) are immune by construction —
// their value is unexported — and copies of them are syncmisuse findings.
//
// The analyzer sees non-test code only (the loaders skip _test.go by
// design); a test that prints a counter mid-run still races, but the fix
// belongs in the test, not the baseline.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc: "variables accessed through sync/atomic anywhere must never also be " +
		"read or written plainly (mixed access defeats the atomicity contract)",
	RunProgram: runAtomicMix,
}

// atomicUse records one sync/atomic call site touching an object.
type atomicUse struct {
	fn  string
	pos token.Pos
}

func runAtomicMix(pass *ProgramPass) error {
	fset := pass.Prog.Fset

	// Pass 1: every object whose address flows into a sync/atomic call, and
	// the positions of the &x arguments (excluded from the plain-use scan).
	atomicObjs := make(map[types.Object]atomicUse)
	display := make(map[types.Object]string)
	atomicArgPos := make(map[token.Pos]bool)
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			info := pkg.Info
			ast.Inspect(f, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // typed-atomic methods: no address-taken raw field
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					obj := rootObject(info, un.X)
					if obj == nil {
						continue
					}
					if _, exists := atomicObjs[obj]; !exists {
						atomicObjs[obj] = atomicUse{fn: "atomic." + fn.Name(), pos: call.Pos()}
						display[obj] = renderAccessName(info, un.X, obj)
					}
					markExprIdents(un.X, atomicArgPos)
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other appearance of those objects is a plain access.
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var plain []finding
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			info := pkg.Info
			ast.Inspect(f, func(x ast.Node) bool {
				id, ok := x.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil {
					return true
				}
				if _, tracked := atomicObjs[obj]; !tracked {
					return true
				}
				if atomicArgPos[id.Pos()] {
					return true // the sanctioned &x inside the atomic call
				}
				plain = append(plain, finding{pos: id.Pos(), obj: obj})
				return true
			})
		}
	}

	sort.Slice(plain, func(i, j int) bool { return plain[i].pos < plain[j].pos })
	for _, p := range plain {
		use := atomicObjs[p.obj]
		pass.Reportf(p.pos, "%s is accessed atomically (%s at %s) but read/written plainly here; "+
			"every access must go through sync/atomic", display[p.obj], use.fn, fmtPos(fset, use.pos))
	}
	return nil
}

// markExprIdents records the position of every identifier in the &x operand
// so pass 2 can skip the atomic call's own mention of the object.
func markExprIdents(e ast.Expr, seen map[token.Pos]bool) {
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			seen[id.Pos()] = true
		}
		return true
	})
}

// renderAccessName renders the accessed object for diagnostics: fields as
// "Type.field", variables by their (package-qualified) name.
func renderAccessName(info *types.Info, e ast.Expr, obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			if _, name := lockClass(info, sel); name != "" {
				return name
			}
		}
		return v.Name()
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
