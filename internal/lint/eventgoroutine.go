package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EventGoroutineAnalyzer flags goroutine spawns and channel operations inside
// event callbacks scheduled on the sim.Engine. The engine is single-threaded
// by design: events run in (cycle, insertion seq) order, and that total order
// is the determinism guarantee. A goroutine forked from a callback races with
// the event loop, and a channel handoff makes event effects depend on the Go
// scheduler — both reintroduce exactly the nondeterminism the engine exists
// to remove.
var EventGoroutineAnalyzer = &Analyzer{
	Name: "eventgoroutine",
	Doc: "forbid goroutine spawns and channel operations inside callbacks " +
		"scheduled on the sim.Engine (the event loop is single-threaded by contract)",
	Run: runEventGoroutine,
}

// schedulerFuncs identifies functions whose final argument is executed as a
// sim event callback: the engine's own entry points plus core.System.at,
// the simulator-side wrapper every core component schedules through.
func isSchedulerFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	ptr, ok := recv.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, typ := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "cohort/internal/sim" && typ == "Engine":
		return fn.Name() == "Schedule" || fn.Name() == "ScheduleAt"
	case pkg == "cohort/internal/core" && typ == "System":
		return fn.Name() == "at"
	}
	return false
}

func runEventGoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isSchedulerFunc(fn) {
				return true
			}
			lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkEventBody(pass, lit.Body)
			return true
		})
	}
	return nil
}

// checkEventBody reports concurrency constructs anywhere under an event
// callback body, including nested function literals (they run, or escape,
// from inside the event).
func checkEventBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "goroutine spawned inside a sim.Engine event callback; "+
				"the event loop is single-threaded — schedule another event instead")
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send inside a sim.Engine event callback; "+
				"event effects must not depend on the Go scheduler")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pass.Reportf(x.Pos(), "channel receive inside a sim.Engine event callback; "+
					"event effects must not depend on the Go scheduler")
			}
		case *ast.SelectStmt:
			pass.Reportf(x.Pos(), "select inside a sim.Engine event callback; "+
				"event effects must not depend on the Go scheduler")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pass.Reportf(x.Pos(), "range over channel inside a sim.Engine event callback; "+
						"event effects must not depend on the Go scheduler")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					pass.Reportf(x.Pos(), "channel close inside a sim.Engine event callback; "+
						"event effects must not depend on the Go scheduler")
				}
			}
		}
		return true
	})
}
