// Package dep is a cross-package callee of the reachcontract golden: the
// determinism contracts follow the call, not the file.
package dep

import (
	"math/rand"
	"time"
)

var last int64

// Stamp is reachable from reachcontract.Root.
func Stamp() {
	last = time.Now().Unix()    // want "wall-clock read time.Now reachable from a hot-path root \\(reachcontract.Root → dep.Stamp\\)"
	last += int64(rand.Intn(8)) // want "global rand.Intn reachable from a hot-path root"
}

// Cold is not reachable: clock reads in cold code are the per-package
// walltime analyzer's business, not this one's.
func Cold() int64 { return time.Now().Unix() }
