// Package sim declares the Cycle type the floataccum contract guards; the
// analyzer resolves it by package name in golden trees.
package sim

// Cycle is simulated time in cycles.
type Cycle int64
