// Package reachcontract exercises transitive enforcement of the determinism
// contracts (walltime, globalrand, maprange, floataccum) from hot-path and
// oracle roots over the whole-program call graph.
package reachcontract

import (
	"sort"
	"time"

	"cohort/lint-testdata/reachcontract/dep"
	"cohort/lint-testdata/reachcontract/sim"
)

var when int64

//cohort:hotpath
func Root(m map[int]int, f float64) sim.Cycle {
	for k := range m { // want "map range reachable from a hot-path root"
		when += int64(k)
	}
	sorted(m)
	dep.Stamp()
	return sim.Cycle(f) // want "floating-point value converted into sim.Cycle"
}

// sorted uses the collect-then-sort idiom the contract sanctions: the range
// body only appends keys, and the slice is sorted after the loop.
func sorted(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Oracle is a determinism-only root: the allocation contract does not apply,
// the determinism contracts do.
//
//cohort:hotpath determinism
func Oracle() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now reachable from a hot-path root"
}

// Suppressed pins the allow-annotation escape hatch.
//
//cohort:hotpath
func Suppressed() int64 {
	return time.Now().Unix() //cohort:allow reachcontract: manifest stamping, outside the simulated timeline
}
