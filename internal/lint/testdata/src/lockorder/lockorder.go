// Package lockorder exercises the whole-program lock-order analyzer: cycles
// in the mutex-acquisition order graph, recursive acquisitions, and the
// release-before-acquire and allow-suppression negatives.
package lockorder

import (
	"sync"

	"cohort/lint-testdata/lockorder/dep"
)

type S struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex
}

var state int

// AB and BA acquire {a, b} in opposite orders: the classic two-lock deadlock.
// The cycle is reported once, anchored at the first edge's acquisition site
// (b.Lock while a is held; lockorder.S.a is the smallest class display).
func (s *S) AB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want "lock-order cycle lockorder.S.a → lockorder.S.b → lockorder.S.a"
	defer s.b.Unlock()
	state++
}

func (s *S) BA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	defer s.a.Unlock()
	state++
}

// CD and DC form the same deadlock shape on {c, d}; the annotation on the
// anchor line waives the cycle (a known-benign pair would carry the reason).
func (s *S) CD() {
	s.c.Lock()
	defer s.c.Unlock()
	s.d.Lock() //cohort:allow lockorder: suppression case for the golden
	defer s.d.Unlock()
	state++
}

func (s *S) DC() {
	s.d.Lock()
	defer s.d.Unlock()
	s.c.Lock()
	defer s.c.Unlock()
	state++
}

// Recursive acquisition: not a two-goroutine interleaving — this path alone
// self-deadlocks because Go mutexes are not reentrant.
func (s *S) Rec() {
	s.a.Lock()
	s.a.Lock() // want "recursive acquisition of lockorder.S.a"
	s.a.Unlock()
	s.a.Unlock()
}

// RecViaCall reaches the second acquisition through a callee: the report
// sits at the call site and names the acquisition path.
func (s *S) RecViaCall() {
	s.b.Lock()
	defer s.b.Unlock()
	s.lockB() // want "call into lockorder.\\(\\*S\\).lockB acquires lockorder.S.b"
}

func (s *S) lockB() {
	s.b.Lock()
	defer s.b.Unlock()
	state++
}

// Sequential is the negative: releasing before the next acquisition imposes
// no order, so opposite sequential orders are fine.
func (s *S) Sequential() {
	s.a.Lock()
	state++
	s.a.Unlock()
	s.b.Lock()
	state++
	s.b.Unlock()
}

func (s *S) SequentialReverse() {
	s.b.Lock()
	state++
	s.b.Unlock()
	s.a.Lock()
	state++
	s.a.Unlock()
}

// Spawned goroutines do not inherit the spawner's holds: the literal locks b
// while the spawner holds a, but on a different goroutine — no a→b edge, so
// no cycle against GoBA below.
func (s *S) GoAB(join chan struct{}) {
	s.a.Lock()
	defer s.a.Unlock()
	go func() {
		s.b.Lock()
		state++
		s.b.Unlock()
		close(join)
	}()
	<-join
}

var rootMu sync.Mutex

// CrossHold acquires the dep package's lock while holding rootMu — the
// rootMu→dep.Mu edge crosses a package boundary through dep.WithMu's summary.
func CrossHold() {
	rootMu.Lock()
	defer rootMu.Unlock()
	dep.WithMu(func() { state++ })
}

// CrossReverse closes the cycle from the other side: dep.Mu (the same class
// object, resolved cross-package) held while rootMu is acquired. dep.Mu sorts
// first, so the cycle anchors here.
func CrossReverse() {
	dep.Mu.Lock()
	defer dep.Mu.Unlock()
	rootMu.Lock() // want "lock-order cycle dep.Mu → lockorder.rootMu → dep.Mu"
	defer rootMu.Unlock()
	state++
}
