// Package dep is the cross-package side of the lockorder golden: its
// package-level mutex is one lock class program-wide, whichever package
// acquires it.
package dep

import "sync"

// Mu is exported so the root package can acquire the same class directly.
var Mu sync.Mutex

// WithMu runs fn under Mu; callers holding their own lock create a
// cross-package order edge through this function's summary.
func WithMu(fn func()) {
	Mu.Lock()
	defer Mu.Unlock()
	fn()
}
