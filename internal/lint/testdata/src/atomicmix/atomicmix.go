// Package atomicmix exercises the mixed-access analyzer: a field or variable
// whose address ever flows into sync/atomic must be accessed through
// sync/atomic everywhere.
package atomicmix

import (
	"sync/atomic"

	"cohort/lint-testdata/atomicmix/dep"
)

type Counter struct {
	n    int64
	m    int64
	cold int64
}

// Inc marks Counter.n as an atomic class; the &c.n operand itself is the
// sanctioned mention.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read mixes in a plain load of the same field.
func (c *Counter) Read() int64 {
	return c.n // want "Counter.n is accessed atomically"
}

// Reset mixes in a plain store.
func (c *Counter) Reset() {
	c.n = 0 // want "Counter.n is accessed atomically"
}

// AllAtomic is the negative: every access to m goes through sync/atomic.
func (c *Counter) AllAtomic() int64 {
	atomic.AddInt64(&c.m, 1)
	return atomic.LoadInt64(&c.m)
}

// Cold never meets sync/atomic: plain accesses are fine.
func (c *Counter) Cold() int64 {
	c.cold++
	return c.cold
}

// Waived documents a known-benign plain read (single-goroutine init phase).
func (c *Counter) Waived() int64 {
	return c.n //cohort:allow atomicmix: suppression case for the golden
}

// Typed atomics are immune by construction: their value is unexported, so
// there is nothing to access plainly.
type TypedCounter struct {
	n atomic.Int64
}

func (c *TypedCounter) Bump() int64 {
	c.n.Add(1)
	return c.n.Load()
}

// Bump marks the dep package's exported counter atomic from here; the plain
// read back in dep is caught through program-wide object identity.
func Bump() {
	atomic.AddInt64(&dep.Hits, 1)
}
