// Package dep is the cross-package side of the atomicmix golden: the root
// package touches Hits atomically, so this package's plain read is a finding
// even though no sync/atomic call appears here.
package dep

// Hits is incremented atomically by the root package.
var Hits int64

// Snapshot reads the counter plainly.
func Snapshot() int64 {
	return Hits // want "dep.Hits is accessed atomically"
}
