// Package goleak exercises the goroutine-leak analyzer: every go statement
// needs a statically visible join or cancel path.
package goleak

import (
	"context"
	"sync"

	"cohort/lint-testdata/goleak/dep"
)

var sink int

func work() { sink++ }

// Leak is the positive: nothing joins or cancels the goroutine.
func Leak() {
	go work() // want "goroutine has no statically visible join or cancel path"
}

// FireAndForget is the waived shape: deliberately detached, reason on file.
func FireAndForget() {
	go work() //cohort:allow goleak: suppression case for the golden
}

// WaitJoined joins through WaitGroup.Wait in the spawner.
func WaitJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// ChanJoined joins through a channel receive in the spawner.
func ChanJoined() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// SelectJoined joins through a select in the spawner.
func SelectJoined(stop chan struct{}) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	select {
	case <-done:
	case <-stop:
	}
}

// CtxSpawner holds the cancel path itself: the caller owns ctx.
func CtxSpawner(ctx context.Context) {
	go work()
}

// CtxLiteral hands the cancel path to the goroutine: the spawned literal's
// own signature accepts the context even though the spawning literal's does
// not.
func CtxLiteral(ctx context.Context) func() {
	return func() {
		go func(c context.Context) {
			_ = c
			work()
		}(ctx)
	}
}

// Owner is the lifecycle shape: the goroutine dies with the returned object.
type Owner struct {
	stop chan struct{}
}

func (o *Owner) loop() { <-o.stop }

// Close stops the loop goroutine.
func (o *Owner) Close() error {
	close(o.stop)
	return nil
}

// Start returns an Owner whose Close joins the goroutine: the result type
// declares Close, so the spawn passes.
func Start() *Owner {
	o := &Owner{stop: make(chan struct{})}
	go o.loop()
	return o
}

// CrossOwner spawns a method of a type from another package that declares
// Stop: the lifecycle check follows the receiver type across the boundary.
func CrossOwner() *dep.Ticker {
	t := dep.NewTicker()
	go t.Run()
	return t
}
