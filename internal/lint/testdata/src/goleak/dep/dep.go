// Package dep is the cross-package side of the goleak golden: a leak in a
// dependency package is reported there, and a lifecycle owner defined here
// satisfies spawns made from the root package.
package dep

var sink int

// Ticker is a lifecycle owner: Run is meant to be spawned and Stop joins it.
type Ticker struct {
	stop chan struct{}
}

func NewTicker() *Ticker { return &Ticker{stop: make(chan struct{})} }

// Run parks until Stop.
func (t *Ticker) Run() { <-t.stop }

// Stop ends Run.
func (t *Ticker) Stop() { close(t.stop) }

// Leak is the positive on this side of the boundary.
func Leak() {
	go func() { sink++ }() // want "goroutine has no statically visible join or cancel path"
}
