// Package floataccum is golden-test input for the floataccum analyzer.
package floataccum

import "cohort/internal/sim"

// bad converts float expressions into the cycle domain.
func bad(f float64, n int64) sim.Cycle {
	a := sim.Cycle(f * 1.5)          // want "floating-point value converted into sim.Cycle"
	b := sim.Cycle(int64(f))         // want "floating-point value converted into sim.Cycle"
	c := sim.Cycle(float64(n) * 0.9) // want "floating-point value converted into sim.Cycle"
	return a + b + c
}

// badAccum accumulates latency through a float detour.
func badAccum(samples []float64) sim.Cycle {
	var total sim.Cycle
	for _, s := range samples {
		total += sim.Cycle(s) // want "floating-point value converted into sim.Cycle"
	}
	return total
}

// good stays in integer math; exact constants are fine however written.
func good(n int64) sim.Cycle {
	budget := sim.Cycle(1e6) // exact integer constant: allowed
	scaled := sim.Cycle(n * 3 / 2)
	return budget + scaled
}
