// Package walltime is golden-test input for the walltime analyzer.
package walltime

import "time"

// bad reads the wall clock three ways.
func bad() time.Duration {
	start := time.Now()          // want "wall-clock read time.Now"
	time.Sleep(time.Millisecond) // want "wall-clock read time.Sleep"
	return time.Since(start)     // want "wall-clock read time.Since"
}

func badSleep() {
	time.Sleep(10 * time.Millisecond) // want "wall-clock read time.Sleep"
}

// badTimer builds host-clock timers.
func badTimer() {
	_ = time.NewTimer(time.Second) // want "wall-clock read time.NewTimer"
	_ = time.After(time.Second)    // want "wall-clock read time.After"
}

// good uses time only for pure values: durations and fixed instants.
func good() (time.Duration, time.Time) {
	d := 3 * time.Second
	t := time.Unix(1700000000, 0)
	return d, t
}
