// Package maprange is golden-test input for the maprange analyzer.
package maprange

import "sort"

// bad ranges over a map with an order-sensitive body.
func bad(m map[uint64]int) []uint64 {
	var out []uint64
	for k, v := range m { // want "range over map m is non-deterministic"
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// badSelector ranges over a map reached through a selector.
type holder struct{ lines map[uint64]int }

func badSelector(h holder) int {
	total := 0
	for _, v := range h.lines { // want "range over map lines is non-deterministic"
		total -= total*2 + v // order-sensitive on purpose
	}
	return total
}

// goodSorted ranges over sorted keys, not the map.
func goodSorted(m map[uint64]int) []int {
	keys := make([]uint64, 0, len(m))
	//cohort:allow maprange collecting keys to sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// goodCollectThenSort is the idiom the analyzer accepts without annotation:
// the body only appends, and the slice is sorted after the loop.
func goodCollectThenSort(m map[uint64]int) []uint64 {
	var lines []uint64
	for k := range m {
		lines = append(lines, k)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// goodAnnotated asserts order-insensitivity explicitly.
func goodAnnotated(m map[uint64]int) int {
	n := 0
	//cohort:allow maprange pure counting is order-insensitive
	for range m {
		n++
	}
	return n
}

// collectWithoutSort appends but never sorts: still flagged.
func collectWithoutSort(m map[uint64]int) []uint64 {
	var out []uint64
	for k := range m { // want "range over map m is non-deterministic"
		out = append(out, k)
	}
	return out
}

// goodSliceRange is untouched: ranging over slices is deterministic.
func goodSliceRange(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
