// Package globalrand is golden-test input for the globalrand analyzer.
package globalrand

import "math/rand"

// bad draws from the process-global source.
func bad(n int) int {
	x := rand.Intn(n)   // want "global rand.Intn"
	f := rand.Float64() // want "global rand.Float64"
	rand.Shuffle(n, func(i, j int) {}) // want "global rand.Shuffle"
	return x + int(f)
}

func badPerm(n int) []int {
	return rand.Perm(n) // want "global rand.Perm"
}

// good threads an explicitly seeded generator.
func good(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
