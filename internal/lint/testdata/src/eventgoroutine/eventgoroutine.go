// Package eventgoroutine is golden-test input for the eventgoroutine
// analyzer. It schedules callbacks on the real sim.Engine so method
// resolution works exactly as in simulator code.
package eventgoroutine

import "cohort/internal/sim"

// bad spawns a goroutine and talks over channels inside event callbacks.
func bad(eng *sim.Engine, ch chan int) {
	eng.Schedule(1, func(now sim.Cycle) {
		go func() {}() // want "goroutine spawned inside a sim.Engine event callback"
		ch <- 1        // want "channel send inside a sim.Engine event callback"
	})
	_ = eng.ScheduleAt(5, func(now sim.Cycle) {
		<-ch // want "channel receive inside a sim.Engine event callback"
		select { // want "select inside a sim.Engine event callback"
		default:
		}
	})
}

// badNested hides the spawn in a nested literal; still inside the event.
func badNested(eng *sim.Engine, ch chan int) {
	eng.Schedule(2, func(now sim.Cycle) {
		helper := func() {
			close(ch) // want "channel close inside a sim.Engine event callback"
		}
		helper()
	})
}

// good schedules follow-up events instead of forking work.
func good(eng *sim.Engine) {
	eng.Schedule(1, func(now sim.Cycle) {
		eng.Schedule(3, func(sim.Cycle) {})
	})
}

// goodOutside uses channels outside any event callback: allowed (drivers and
// CLIs coordinate however they like; only the event loop is constrained).
func goodOutside(ch chan int) {
	go func() { ch <- 1 }()
	<-ch
}
