// Package exhaustive exercises the exhaustive analyzer: switches over named
// integer enum types must cover every declared member or carry a default.
package exhaustive

// State mirrors the shape of cache.State.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// Mode is a two-member enum.
type Mode int

const (
	ModeA Mode = 1
	ModeB Mode = 2
)

// Alias members share values; coverage is by value.
type Alias uint8

const (
	AliasA Alias = 0
	AliasB Alias = 0
	AliasC Alias = 1
)

func full(s State) int {
	switch s {
	case Invalid:
		return 0
	case Shared:
		return 1
	case Exclusive:
		return 2
	case Modified:
		return 3
	}
	return -1
}

func withDefault(s State) int {
	switch s {
	case Shared:
		return 1
	default:
		return 0
	}
}

func missingMembers(s State) int {
	switch s { // want "switch over State does not cover Exclusive, Invalid and has no default"
	case Shared:
		return 1
	case Modified:
		return 3
	}
	return 0
}

func missingOneOfTwo(m Mode) int {
	switch m { // want "switch over Mode does not cover ModeB and has no default"
	case ModeA:
		return 1
	}
	return 0
}

func suppressed(s State) int {
	//cohort:allow exhaustive: only owned states carry data in this helper
	switch s {
	case Exclusive, Modified:
		return 1
	}
	return 0
}

func plainIntIsNotAnEnum(x int) int {
	switch x {
	case 1:
		return 1
	}
	return 0
}

func nonConstantCaseBailsOut(s, dynamic State) int {
	switch s {
	case dynamic:
		return 1
	}
	return 0
}

func aliasCoverageByValue(a Alias) int {
	switch a { // AliasA covers AliasB (same value); AliasC completes the set
	case AliasA:
		return 0
	case AliasC:
		return 1
	}
	return 0
}

func tagNotAnEnumExpression(s State, t State) bool {
	// Comparison tags are bool-typed, never enums.
	switch s == t {
	case true:
		return true
	}
	return false
}
