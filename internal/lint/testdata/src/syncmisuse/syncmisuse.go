// Package syncmisuse exercises the sync-primitive misuse analyzer: copied
// locks, WaitGroup.Add inside the spawned goroutine, double unlock on a
// path, and cross-goroutine channel close without //cohort:chanowner.
package syncmisuse

import (
	"sync"

	"cohort/lint-testdata/syncmisuse/dep"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

var sink int

func consume(g Guarded) { sink += g.n }

// Copies demonstrates every copy shape: assignment, call argument, return.
func Copies(g Guarded) Guarded {
	h := g // want "assignment copies a value of type syncmisuse.Guarded"
	consume(g) // want "call argument copies a value of type syncmisuse.Guarded"
	_ = h
	return g // want "return copies a value of type syncmisuse.Guarded"
}

// RangeCopy iterates a slice of lock-holding structs by value.
func RangeCopy(gs []Guarded) {
	for _, g := range gs { // want "range copies values of type syncmisuse.Guarded"
		sink += g.n
	}
}

// ByPointer is the negative: pointers share the lock, fresh composite
// literals and call results are new values, not copies.
func ByPointer(g *Guarded) *Guarded {
	h := g
	fresh := Guarded{}
	_ = fresh
	return h
}

// WaivedCopy documents a sanctioned copy (value not yet shared).
func WaivedCopy(g Guarded) {
	h := g //cohort:allow syncmisuse: suppression case for the golden
	_ = h
}

// AddInside puts the Add on the wrong side of the go statement: Wait can
// pass before the goroutine runs.
func AddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "WaitGroup.Add inside the spawned goroutine"
		defer wg.Done()
		sink++
	}()
	wg.Wait()
}

// AddOutside is the correct shape.
func AddOutside() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink++
	}()
	wg.Wait()
}

var mu sync.Mutex

// DoubleUnlock releases twice on one path.
func DoubleUnlock() {
	mu.Lock()
	sink++
	mu.Unlock()
	mu.Unlock() // want "unlock of syncmisuse.mu which this path has not locked"
}

// UnlockAfterDefer schedules the unlock twice: once deferred, once explicit.
func UnlockAfterDefer() {
	mu.Lock()
	defer mu.Unlock()
	sink++
	mu.Unlock() // want "unlock of syncmisuse.mu after `defer` already scheduled its unlock"
}

// Balanced is the negative: lock/unlock pairs match on every path walked.
func Balanced() {
	mu.Lock()
	sink++
	mu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	sink++
}

// events is closed by Stop but sent to from pump: two different functions,
// conservatively two goroutines — the close must be annotated or single-owner.
var events = make(chan int)

func pump() { events <- 1 }

// Stop closes a channel someone else sends on.
func Stop() {
	close(events) // want "channel syncmisuse.events is closed here but sent to in syncmisuse.pump"
}

// owned is the annotated shape: the declaration documents close ownership.
//
//cohort:chanowner run loop owns the close; producers stop first
var owned = make(chan int)

func pushOwned() { owned <- 1 }

// StopOwned closing owned is waived by the chanowner annotation.
func StopOwned() {
	close(owned)
}

// local demonstrates the single-owner negative: send and close in the same
// function are one goroutine's doing.
func SingleOwner() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

// CrossSend sends on the dep package's channel; dep closes it without an
// annotation, so the close over there is the finding.
func CrossSend() {
	dep.Events <- 1
}
