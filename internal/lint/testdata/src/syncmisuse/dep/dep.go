// Package dep is the cross-package side of the syncmisuse golden: the root
// package sends on Events, this package closes it — one channel object
// program-wide, so the unannotated close is reported here.
package dep

// Events is closed here but fed by the root package.
var Events = make(chan int)

// Close closes the shared channel.
func Close() {
	close(Events) // want "channel dep.Events is closed here but sent to in syncmisuse.CrossSend"
}
