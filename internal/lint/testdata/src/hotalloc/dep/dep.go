// Package dep is a cross-package callee: the hot-path contract follows the
// call edge into it even though the package itself carries no annotations.
package dep

var sink []int

// Leaf allocates and is reachable from the hotalloc.Root hot root.
func Leaf(n int) {
	sink = append(sink, n) // want "append may grow its backing array in hot path \\(hotalloc.Root → dep.Leaf\\)"
}
