// Package hotalloc exercises the whole-program allocation analyzer:
// functions reachable from a //cohort:hotpath root must contain no
// allocation sites, wherever they live.
package hotalloc

import (
	"fmt"

	"cohort/lint-testdata/hotalloc/dep"
)

var sink []int
var box any
var table = map[int]int{}

//cohort:hotpath
func Root(n int) {
	sink = make([]int, n)        // want "make allocates in hot path"
	sink = append(sink, n)       // want "append may grow its backing array in hot path"
	box = n                      // want "interface conversion boxes a int value in hot path"
	table[n] = n                 // want "map write may grow the map in hot path"
	f := func() int { return n } // want "function literal allocates a closure in hot path"
	_ = f()
	helper(n)
	dep.Leaf(n)
	Exempted(n)
	if n < 0 {
		// Aborting path: subtrees under panic arguments are pruned.
		panic(fmt.Sprintf("hotalloc: bad n %d", n))
	}
	box = "" // constant conversion: backed by a static descriptor, no finding
	sink = append(sink, n) //cohort:allow hotalloc: suppression case for the golden
}

// helper is not annotated but reachable from Root: the finding carries the
// call path.
func helper(n int) {
	sink = make([]int, n) // want "make allocates in hot path \\(hotalloc.Root → hotalloc.helper\\)"
}

// Exempted is cut out of the traversal: opt-in machinery may allocate.
//
//cohort:hotpath exempt
func Exempted(n int) {
	sink = make([]int, n)
}

// Cold is unreachable from any root: its allocations are fine.
func Cold(n int) []int {
	return make([]int, n)
}
