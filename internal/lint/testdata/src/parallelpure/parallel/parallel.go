// Package parallel mirrors the evaluation engine's fan-out API shape; the
// parallelpure analyzer matches Map/MapErr in any package named parallel.
package parallel

// Map runs fn for each index (serially here; the analyzer only cares about
// the call shape).
func Map(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// MapErr is the error-propagating variant.
func MapErr(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
