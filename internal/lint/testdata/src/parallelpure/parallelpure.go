// Package parallelpure exercises the job-purity contract: a closure handed
// to parallel.Map/MapErr may write only through its index-addressed result
// slot.
package parallelpure

import "cohort/lint-testdata/parallelpure/parallel"

func Jobs(n int) []int {
	results := make([]int, n)
	counter := 0
	shared := map[int]int{}
	ptr := &counter
	parallel.Map(n, func(i int) {
		local := i * 2
		results[i] = local // index-addressed result slot: sanctioned
		counter++          // want "parallel.Map job writes captured variable \"counter\""
		shared[i] = local  // want "parallel.Map job writes captured variable \"shared\""
		results[0] = local // want "parallel.Map job writes captured variable \"results\""
		*ptr = local       // want "parallel.Map job writes captured variable \"ptr\" through a pointer"
	})
	_ = shared
	return results
}

func JobsErr(n int) error {
	out := make([]int, n)
	bad := 0
	err := parallel.MapErr(n, func(i int) error {
		out[i] = i
		bad++ // want "parallel.MapErr job writes captured variable \"bad\""
		return nil
	})
	_ = bad
	return err
}

// Counted pins the allow-annotation escape hatch.
func Counted(n int) int {
	total := 0
	parallel.Map(n, func(i int) {
		total += i //cohort:allow parallelpure: reduction folded serially by the backend in this configuration
	})
	return total
}
