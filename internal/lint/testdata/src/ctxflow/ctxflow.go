// Package ctxflow exercises the context-flow analyzer: blocking operations
// reachable from a //cohort:server root must sit in functions that accept a
// context.Context.
package ctxflow

import (
	"context"
	"sync"
	"time"

	"cohort/lint-testdata/ctxflow/dep"
)

var done = make(chan struct{})
var sink int

// Handle is a server root that blocks directly, with no way to cancel.
//
//cohort:server
func Handle() {
	<-done // want "channel receive in ctxflow.Handle reachable from //cohort:server root"
	waitDeep()
	dep.Block()
	pollReady()
	waitCtx(context.Background())
	compute()
}

// waitDeep blocks one frame below the root: the finding names the path.
func waitDeep() {
	time.Sleep(time.Millisecond) // want "blocking call time.Sleep in ctxflow.waitDeep reachable from //cohort:server root \\(ctxflow.Handle → ctxflow.waitDeep\\)"
}

// pollReady is the non-blocking negative: select with default never parks.
func pollReady() bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// waitCtx is the plumbed negative: it blocks, but accepts the context that
// can cancel the wait.
func waitCtx(ctx context.Context) {
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// compute never blocks: nothing to report however it is reached.
func compute() { sink++ }

// HandleWaived is a root whose one blocking wait is documented as bounded.
//
//cohort:server
func HandleWaived(wg *sync.WaitGroup) {
	wg.Wait() //cohort:allow ctxflow: suppression case for the golden
}

// Background is NOT a server root: its unbounded block is out of scope.
func Background() {
	<-done
}
