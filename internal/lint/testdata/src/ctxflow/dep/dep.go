// Package dep is the cross-package side of the ctxflow golden: the blocking
// function lives here, the //cohort:server root that reaches it lives in the
// root package, and the finding lands on the block with the full call path.
package dep

var gate = make(chan struct{})

// Block parks on a package-internal channel.
func Block() {
	<-gate // want "channel receive in dep.Block reachable from //cohort:server root \\(ctxflow.Handle → dep.Block\\)"
}
