// Package allowdoc exercises the allowdoc analyzer: every //cohort:allow
// annotation must name one registered analyzer, use a colon, and carry a
// non-empty reason.
package allowdoc

func wellFormed(m map[int]int) int {
	n := 0
	//cohort:allow maprange: pure counting, order-insensitive
	for range m {
		n++
	}
	return n
}

func newSuiteName(xs []int) []int {
	//cohort:allow hotalloc: amortized growth, accepted by the ratchet
	return append(xs, 1)
}

func legacyFormFlagged(m map[int]int) int {
	n := 0
	//cohort:allow maprange body only counts // want "malformed allow annotation"
	for range m {
		n++
	}
	return n
}

//cohort:allow mapramge: typo suppresses nothing // want "unknown analyzer \"mapramge\""
func typoName() {}

//cohort:allow: no analyzer named at all // want "malformed allow annotation"
func noName() {}
