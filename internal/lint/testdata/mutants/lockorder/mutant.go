// Package mutant is a committed seeded regression for the lockorder
// analyzer: two paths acquire {a, b} in opposite orders. If the analyzer
// ever stops reporting a lock-order cycle here, it has failed open and the
// TestConcurrencyMutants gate fails the build.
package mutant

import "sync"

var a, b sync.Mutex
var n int

func AB() {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	defer b.Unlock()
	n++
}

func BA() {
	b.Lock()
	defer b.Unlock()
	a.Lock()
	defer a.Unlock()
	n++
}
