// Package mutant is a committed seeded regression for the atomicmix
// analyzer: hits is written through sync/atomic and read plainly. If the
// analyzer ever stops reporting the mixed access, it has failed open and the
// TestConcurrencyMutants gate fails the build.
package mutant

import "sync/atomic"

var hits int64

func Inc() {
	atomic.AddInt64(&hits, 1)
}

func Read() int64 {
	return hits
}
