// Package mutant is a committed seeded regression for the ctxflow analyzer:
// a //cohort:server root blocks on a channel without accepting a
// context.Context. If the analyzer ever stops reporting the block, it has
// failed open and the TestConcurrencyMutants gate fails the build.
package mutant

var done = make(chan struct{})

//cohort:server
func Handle() {
	<-done
}
