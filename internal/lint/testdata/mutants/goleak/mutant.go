// Package mutant is a committed seeded regression for the goleak analyzer:
// the spawned goroutine has no join, no context, and no lifecycle owner. If
// the analyzer ever stops reporting the leak, it has failed open and the
// TestConcurrencyMutants gate fails the build.
package mutant

var n int

func Spawn() {
	go func() { n++ }()
}
