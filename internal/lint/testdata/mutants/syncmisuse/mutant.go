// Package mutant is a committed seeded regression for the syncmisuse
// analyzer: a mutex-holding struct is copied by value. If the analyzer ever
// stops reporting the copy, it has failed open and the
// TestConcurrencyMutants gate fails the build.
package mutant

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

var state Guarded

func Snapshot() Guarded {
	copied := state
	return copied
}
