package lint

import (
	"go/ast"
	"go/types"
)

// GoLeakAnalyzer requires every `go` statement in non-test code to have a
// statically visible join or cancel path. A goroutine with neither is a leak
// the moment its spawner returns: it pins memory and — worse, for this
// repository — keeps mutating shared state after the run that spawned it has
// published canonical results. The two long-lived goroutines the repo
// already owns model the sanctioned shapes: parallel.Map joins its workers
// with WaitGroup.Wait before returning, and obs.StartDebugServer hands the
// serve goroutine to a *DebugServer whose Close stops it.
//
// A spawn passes if any of these joins is visible:
//
//   - the spawning function calls (*sync.WaitGroup).Wait;
//   - the spawning function receives from a channel, ranges over one, or
//     contains a select statement (goroutine completion is communicated);
//   - the spawned function or the spawner accepts a context.Context (the
//     caller holds the cancel path);
//   - the spawner's receiver or one of its result types declares
//     Close/Shutdown/Stop (lifecycle-owner: the goroutine dies with the
//     returned object), or the spawned call's receiver does.
//
// Everything else needs //cohort:allow goleak with a reason — deliberately
// fire-and-forget work must say so where reviewers can see it.
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc: "every go statement must have a statically visible join or cancel path " +
		"(WaitGroup.Wait, channel receive/select, context.Context, or owner Close/Shutdown/Stop)",
	RunProgram: runGoLeak,
}

func runGoLeak(pass *ProgramPass) error {
	for _, pkg := range pass.Prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			inspectWithStack(f, func(x ast.Node, stack []ast.Node) bool {
				gs, ok := x.(*ast.GoStmt)
				if !ok {
					return true
				}
				encl := enclosingFunc(stack)
				if encl == nil {
					return true // package-level var initializer; unreachable shape
				}
				if spawnJoined(info, gs, encl) {
					return true
				}
				pass.Reportf(gs.Pos(), "goroutine has no statically visible join or cancel path "+
					"(no WaitGroup.Wait, channel receive or select in the spawner, no context.Context, "+
					"and no owner with Close/Shutdown/Stop); a leak once the spawner returns")
				return true
			})
		}
	}
	return nil
}

// spawnJoined applies the join heuristics for one go statement.
func spawnJoined(info *types.Info, gs *ast.GoStmt, encl ast.Node) bool {
	body := funcBody(encl)
	if body == nil {
		return false
	}

	// Join via WaitGroup.Wait / channel receive / range-over-channel /
	// select anywhere in the spawning function (nested literals included:
	// a join deferred via closure still joins).
	joined := false
	ast.Inspect(body, func(x ast.Node) bool {
		if joined {
			return false
		}
		switch n := x.(type) {
		case *ast.SelectStmt:
			joined = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				joined = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Name() == "Wait" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if isSyncType(sig.Recv().Type(), "WaitGroup") {
						joined = true
					}
				}
			}
		}
		return true
	})
	if joined {
		return true
	}

	// Cancel via context: the spawned literal or the spawner accepts a
	// context.Context parameter.
	if sigHasContext(info, encl) {
		return true
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if t := info.TypeOf(lit); t != nil {
			if sig, ok := t.(*types.Signature); ok && signatureHasContext(sig) {
				return true
			}
		}
	}

	// Lifecycle owner: the spawner's receiver or a result type — or the
	// spawned call's receiver — declares Close/Shutdown/Stop.
	if fd, ok := encl.(*ast.FuncDecl); ok {
		if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
			if sig, ok := obj.Type().(*types.Signature); ok {
				if sig.Recv() != nil && hasCloseMethod(sig.Recv().Type()) {
					return true
				}
				for i := 0; i < sig.Results().Len(); i++ {
					if hasCloseMethod(sig.Results().At(i).Type()) {
						return true
					}
				}
			}
		}
	}
	if sel, ok := ast.Unparen(gs.Call.Fun).(*ast.SelectorExpr); ok {
		if recv := info.TypeOf(sel.X); recv != nil && hasCloseMethod(recv) {
			return true
		}
	}
	return false
}

// sigHasContext reports whether the enclosing function's own signature has a
// context.Context parameter.
func sigHasContext(info *types.Info, encl ast.Node) bool {
	switch fn := encl.(type) {
	case *ast.FuncDecl:
		if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
			if sig, ok := obj.Type().(*types.Signature); ok {
				return signatureHasContext(sig)
			}
		}
	case *ast.FuncLit:
		if t := info.TypeOf(fn); t != nil {
			if sig, ok := t.(*types.Signature); ok {
				return signatureHasContext(sig)
			}
		}
	}
	return false
}

func signatureHasContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
