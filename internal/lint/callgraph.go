package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// HotKind classifies a function's //cohort:hotpath annotation.
type HotKind uint8

const (
	// HotNone: no annotation; the function is hot only if reached from a root.
	HotNone HotKind = iota
	// HotFull marks a hot-path root: the full contract (zero allocation and
	// determinism) binds the function and everything it reaches.
	HotFull
	// HotDeterminism marks a determinism-only root (the oracle entry points):
	// reachcontract traverses it, hotalloc does not — the oracle may allocate
	// but must stay reproducible.
	HotDeterminism
	// HotExempt cuts the traversal: the function and its callees are excluded
	// from whole-program hot-path analysis (opt-in debug machinery such as
	// invariant checking that runs inside the loop but is off in production).
	// Per-package analyzers still cover exempt code.
	HotExempt
)

func (k HotKind) String() string {
	switch k {
	case HotFull:
		return "hotpath"
	case HotDeterminism:
		return "hotpath determinism"
	case HotExempt:
		return "hotpath exempt"
	}
	return "-"
}

// CGNode is one function in the conservative call graph: a declared function
// or method (Obj non-nil) or a function literal (Lit non-nil).
type CGNode struct {
	Obj  *types.Func
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Pkg  *Package
	Name string
	Hot  HotKind
	// Server marks a //cohort:server root: a request-scoped entry point of
	// the long-running daemon surface. The ctxflow analyzer requires every
	// blocking operation reachable from a server root to sit in a function
	// that accepts a context.Context.
	Server bool
	Pos    token.Pos

	// Calls lists callee nodes in first-encounter order, deduplicated.
	Calls []*CGNode

	calleeSet map[*CGNode]bool
}

func (n *CGNode) addCall(callee *CGNode) {
	if callee == nil || n.calleeSet[callee] {
		return
	}
	if n.calleeSet == nil {
		n.calleeSet = make(map[*CGNode]bool)
	}
	n.calleeSet[callee] = true
	n.Calls = append(n.Calls, callee)
}

// Graph is the conservative whole-program call graph over a Program. Edges
// over-approximate execution:
//
//   - static calls and concrete method calls resolve to their declaration;
//   - interface method calls fan out to every module type implementing the
//     interface (class-hierarchy analysis);
//   - a function literal is linked from the function that creates it — the
//     literal runs, or escapes, only if its creator runs;
//   - calls through function *values* (fields, parameters, stored closures)
//     produce no edge. This is the documented unsoundness: a function stored
//     cold and invoked hot is not traversed. The creation-site rule covers
//     the common shapes (a closure built in hot code is itself a hotalloc
//     finding), and the runtime allocation ceiling backstops the rest.
type Graph struct {
	Prog  *Program
	Nodes []*CGNode

	byObj map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode

	namedTypes []types.Type // concrete named types across the program, for CHA
}

// NodeByObj returns the node for a declared function, or nil.
func (g *Graph) NodeByObj(f *types.Func) *CGNode { return g.byObj[f] }

// NodeByLit returns the node for a function literal, or nil.
func (g *Graph) NodeByLit(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// BuildGraph constructs the conservative call graph for a loaded Program.
// It fails on a malformed //cohort:hotpath annotation (unknown qualifier):
// a typo there would silently shrink the checked surface.
func BuildGraph(prog *Program) (*Graph, error) {
	g := &Graph{
		Prog:  prog,
		byObj: make(map[*types.Func]*CGNode),
		byLit: make(map[*ast.FuncLit]*CGNode),
	}
	g.collectNamedTypes()

	// Pass 1: a node per declared function with a body.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				hot, err := hotAnnotation(prog.Fset, fd.Doc)
				if err != nil {
					return nil, err
				}
				server, err := serverAnnotation(prog.Fset, fd.Doc)
				if err != nil {
					return nil, err
				}
				n := &CGNode{
					Obj:    obj,
					Body:   fd.Body,
					Pkg:    pkg,
					Name:   funcDisplayName(obj),
					Hot:    hot,
					Server: server,
					Pos:    fd.Name.Pos(),
				}
				g.byObj[obj] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
	}

	// Pass 2: a node per function literal, linked from its creator. The walk
	// tracks the innermost enclosing node so nested literals chain correctly.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			g.collectLiterals(pkg, f)
		}
	}

	// Pass 3: call edges from each node's own statements (nested literal
	// bodies belong to the literal's node).
	for _, n := range g.Nodes {
		g.addCallEdges(n)
	}
	return g, nil
}

// collectNamedTypes gathers every concrete named type declared in the
// program's packages, in deterministic (package path, name) order — the CHA
// candidate set for interface dispatch.
func (g *Graph) collectNamedTypes() {
	for _, pkg := range g.Prog.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue // generic types are skipped (cannot be soundly instantiated here)
			}
			if types.IsInterface(named) {
				continue
			}
			g.namedTypes = append(g.namedTypes, named)
		}
	}
}

// collectLiterals creates literal nodes for one file, each linked from its
// innermost enclosing function's node. Ancestors are visited before their
// literals, so the enclosing node always exists by the time a literal needs
// it. Literals outside any function (package-level var initializers) get a
// node but no creator edge — they are unreachable by construction, one of the
// documented approximations.
func (g *Graph) collectLiterals(pkg *Package, file *ast.File) {
	litCount := make(map[*CGNode]int)
	inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
		x, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		var parent *CGNode
		switch enc := enclosingFunc(stack).(type) {
		case *ast.FuncDecl:
			if obj, ok := pkg.Info.Defs[enc.Name].(*types.Func); ok {
				parent = g.byObj[obj]
			}
		case *ast.FuncLit:
			parent = g.byLit[enc]
		}
		name := fmt.Sprintf("%s.lit@%d", pkg.Types.Name(), g.Prog.Fset.Position(x.Pos()).Line)
		if parent != nil {
			litCount[parent]++
			name = fmt.Sprintf("%s$%d", parent.Name, litCount[parent])
		}
		node := &CGNode{
			Lit:  x,
			Body: x.Body,
			Pkg:  pkg,
			Name: name,
			Pos:  x.Pos(),
		}
		g.byLit[x] = node
		g.Nodes = append(g.Nodes, node)
		if parent != nil {
			parent.addCall(node)
		}
		return true
	})
}

// addCallEdges resolves every call expression in n's own statements.
func (g *Graph) addCallEdges(n *CGNode) {
	own := func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		return !ok || lit == n.Lit
	}
	info := n.Pkg.Info
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			if x == nil {
				return true
			}
			if !own(x) {
				return false // nested literal: its node owns these calls
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			g.resolveCall(n, info, call)
			return true
		})
	}
	if n.Lit != nil {
		walk(n.Lit.Body)
	} else {
		walk(n.Body)
	}
}

// resolveCall adds edges for one call expression.
func (g *Graph) resolveCall(n *CGNode, info *types.Info, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			n.addCall(g.byObj[origin(f)])
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				g.addInterfaceEdges(n, iface, sel.Obj().Name())
				return
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				n.addCall(g.byObj[origin(f)])
			}
			return
		}
		// Package-qualified call (pkg.Fn) or method expression used directly.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			n.addCall(g.byObj[origin(f)])
		}
	}
}

// addInterfaceEdges fans an interface method call out to every concrete
// module type implementing the interface (CHA).
func (g *Graph) addInterfaceEdges(n *CGNode, iface *types.Interface, method string) {
	for _, t := range g.namedTypes {
		named := t.(*types.Named)
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, named.Obj().Pkg(), method)
		if f, ok := obj.(*types.Func); ok {
			n.addCall(g.byObj[origin(f)])
		}
	}
}

// origin maps an instantiated generic function or method back to its
// declaration object, which is what Defs recorded at the declaration site.
func origin(f *types.Func) *types.Func { return f.Origin() }

// hotAnnotation parses a //cohort:hotpath annotation out of a doc comment.
func hotAnnotation(fset *token.FileSet, doc *ast.CommentGroup) (HotKind, error) {
	if doc == nil {
		return HotNone, nil
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "cohort:hotpath") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, "cohort:hotpath"))
		switch rest {
		case "":
			return HotFull, nil
		case "determinism":
			return HotDeterminism, nil
		case "exempt":
			return HotExempt, nil
		default:
			return HotNone, fmt.Errorf("lint: %s: unknown //cohort:hotpath qualifier %q (want none, determinism, or exempt)",
				fset.Position(c.Pos()), rest)
		}
	}
	return HotNone, nil
}

// serverAnnotation parses a //cohort:server annotation out of a doc comment.
// The annotation takes no qualifier; trailing text is an error for the same
// reason an unknown hotpath qualifier is — a typo must not silently shrink
// (or grow) the checked surface.
func serverAnnotation(fset *token.FileSet, doc *ast.CommentGroup) (bool, error) {
	if doc == nil {
		return false, nil
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "cohort:server") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, "cohort:server"))
		if rest != "" {
			return false, fmt.Errorf("lint: %s: //cohort:server takes no qualifier, got %q",
				fset.Position(c.Pos()), rest)
		}
		return true, nil
	}
	return false, nil
}

// ServerRoots returns the nodes annotated //cohort:server, in graph order.
func (g *Graph) ServerRoots() []*CGNode {
	var roots []*CGNode
	for _, n := range g.Nodes {
		if n.Server {
			roots = append(roots, n)
		}
	}
	return roots
}

// ReachableFrom computes the set of nodes reachable from the given roots via
// plain BFS — unlike Reachable it does not honour HotExempt cuts, because it
// serves contracts (ctxflow) orthogonal to the hot-path budget. The parent
// map reconstructs one shortest call path per node; roots map to nil.
func (g *Graph) ReachableFrom(roots []*CGNode) (map[*CGNode]bool, map[*CGNode]*CGNode) {
	seen := make(map[*CGNode]bool)
	parent := make(map[*CGNode]*CGNode)
	var queue []*CGNode
	for _, n := range roots {
		if !seen[n] {
			seen[n] = true
			parent[n] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			if seen[c] {
				continue
			}
			seen[c] = true
			parent[c] = n
			queue = append(queue, c)
		}
	}
	return seen, parent
}

// Reachable computes the set of nodes reachable from roots annotated with one
// of the given kinds, excluding HotExempt nodes (the traversal does not enter
// them). The returned parent map reconstructs one shortest call path per node
// for diagnostics; roots map to nil.
func (g *Graph) Reachable(kinds ...HotKind) (map[*CGNode]bool, map[*CGNode]*CGNode) {
	want := make(map[HotKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	seen := make(map[*CGNode]bool)
	parent := make(map[*CGNode]*CGNode)
	var queue []*CGNode
	for _, n := range g.Nodes {
		if want[n.Hot] {
			seen[n] = true
			parent[n] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			if seen[c] || c.Hot == HotExempt {
				continue
			}
			seen[c] = true
			parent[c] = n
			queue = append(queue, c)
		}
	}
	return seen, parent
}

// CallPath renders the call chain from a root to n, e.g.
// "core.(*System).HandleEvent → core.(*System).coreWake". Long chains keep
// the root and the last hops.
func CallPath(parent map[*CGNode]*CGNode, n *CGNode) string {
	var names []string
	for cur := n; cur != nil; cur = parent[cur] {
		names = append(names, cur.Name)
		if parent[cur] == nil {
			break
		}
	}
	// names is leaf..root; reverse.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	const max = 6
	if len(names) > max {
		head := names[:2]
		tail := names[len(names)-3:]
		names = append(append(append([]string{}, head...), "…"), tail...)
	}
	return strings.Join(names, " → ")
}

// Dump writes a deterministic text rendering of the graph: every node with
// its annotation and outgoing edges, sorted by name, then the hot-path
// reachability roster. Used by cohort-vet -graph for debugging.
func (g *Graph) Dump(w io.Writer) {
	nodes := append([]*CGNode(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Name != nodes[j].Name {
			return nodes[i].Name < nodes[j].Name
		}
		return g.Prog.Fset.Position(nodes[i].Pos).Offset < g.Prog.Fset.Position(nodes[j].Pos).Offset
	})
	hot, _ := g.Reachable(HotFull)
	det, _ := g.Reachable(HotFull, HotDeterminism)
	for _, n := range nodes {
		marks := ""
		if n.Hot != HotNone {
			marks = " [" + n.Hot.String() + "]"
		}
		switch {
		case hot[n]:
			marks += " (hot)"
		case det[n]:
			marks += " (determinism)"
		}
		fmt.Fprintf(w, "%s%s\n", n.Name, marks)
		var callees []string
		for _, c := range n.Calls {
			callees = append(callees, c.Name)
		}
		sort.Strings(callees)
		for _, c := range callees {
			fmt.Fprintf(w, "\t→ %s\n", c)
		}
	}
}

// funcDisplayName renders a compact package-qualified name:
// "core.(*System).HandleEvent" or "sim.New".
func funcDisplayName(f *types.Func) string {
	pkg := "?"
	if f.Pkg() != nil {
		pkg = f.Pkg().Name()
	}
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			ptr = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return pkg + ".(" + ptr + named.Obj().Name() + ")." + f.Name()
		}
	}
	return pkg + "." + f.Name()
}
