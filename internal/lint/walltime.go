package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time functions that read or depend on the
// wall clock. Pure constructors and constants (time.Duration arithmetic,
// time.Unix on fixed inputs) are fine; anything sampling the host clock makes
// simulated behaviour depend on machine speed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallTimeAnalyzer flags wall-clock reads. Simulated time is sim.Cycle,
// advanced only by the event engine; host time leaking into simulator state
// (timestamps, timeouts, rate limits) destroys reproducibility.
var WallTimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/time.Since and friends in simulator code " +
		"(simulated time is sim.Cycle; wall-clock reads are machine-dependent)",
	Run: runWallTime,
}

func runWallTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "wall-clock read time.%s in simulator code; "+
					"simulated time must come from the sim.Engine cycle counter", fn.Name())
			}
			return true
		})
	}
	return nil
}
