package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ParallelPureAnalyzer checks the purity contract of jobs handed to the
// deterministic evaluation engine: a closure passed to parallel.Map or
// parallel.MapErr runs concurrently on an unspecified worker, so the only
// state it may write outside its own locals is its index-addressed result
// slot — captured[i] where captured is a slice or array and i is the
// closure's job-index parameter. Any other write through a captured variable
// (a shared counter, a captured map, a slice cell picked by a non-index
// expression, a dereferenced captured pointer) is a data race by
// construction and, even when the race detector misses the interleaving,
// makes the result depend on worker scheduling. This is the static
// complement to `go test -race` and the serial-equivalence suites: the race
// never compiles instead of occasionally reproducing.
//
// Approximations (documented in DESIGN.md §13): only function *literals*
// passed directly at the call site are checked — a job function built
// elsewhere and passed as a value is not traced to its definition — and
// mutation through method calls on captured receivers is not modelled.
var ParallelPureAnalyzer = &Analyzer{
	Name: "parallelpure",
	Doc: "closures passed to parallel.Map/MapErr may write only through their " +
		"index-addressed result slot (captured[i] with i the job-index parameter)",
	RunProgram: runParallelPure,
}

func runParallelPure(pass *ProgramPass) error {
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || !isParallelMap(fn) {
					return true
				}
				lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
				if !ok {
					return true
				}
				checkJobPurity(pass, pkg.Info, lit, fn.Name())
				return true
			})
		}
	}
	return nil
}

// isParallelMap matches parallel.Map / parallel.MapErr from the repo's
// evaluation engine (and, for the golden tests, any package named parallel).
func isParallelMap(fn *types.Func) bool {
	if fn.Pkg() == nil || (fn.Name() != "Map" && fn.Name() != "MapErr") {
		return false
	}
	path := fn.Pkg().Path()
	return path == "cohort/internal/parallel" || path == "parallel" || strings.HasSuffix(path, "/parallel")
}

// checkJobPurity walks one job closure (including nested literals, which run
// inside the same job) and reports writes through captured variables that do
// not target the closure's index-addressed slot.
func checkJobPurity(pass *ProgramPass, info *types.Info, lit *ast.FuncLit, callee string) {
	idxParam := jobIndexParam(info, lit)
	captured := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil {
			return nil
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return nil
		}
		// Declared outside the literal ⇒ captured. Position containment is
		// exact: every local, parameter and named result of the literal is
		// declared within its source extent.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return nil
		}
		return obj
	}

	reportWrite := func(pos token.Pos, obj types.Object, via string) {
		pass.Reportf(pos, "parallel.%s job writes captured variable %q%s; jobs may only write "+
			"their index-addressed result slot (captured[i] with i the job-index parameter)",
			callee, obj.Name(), via)
	}

	checkLHS := func(lhs ast.Expr) {
		root, indexedBySlot, viaPointer := writeTarget(info, lhs, idxParam)
		if root == nil {
			return
		}
		obj := captured(root)
		if obj == nil {
			return
		}
		if indexedBySlot {
			return // captured[i]… — the sanctioned result slot
		}
		via := ""
		if viaPointer {
			via = " through a pointer"
		}
		reportWrite(lhs.Pos(), obj, via)
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkLHS(lhs)
			}
		case *ast.IncDecStmt:
			checkLHS(x.X)
		case *ast.RangeStmt:
			if x.Key != nil {
				checkLHS(x.Key)
			}
			if x.Value != nil {
				checkLHS(x.Value)
			}
		}
		return true
	})
}

// jobIndexParam returns the object of the closure's first int parameter —
// the job index parallel.Map feeds it — or nil.
func jobIndexParam(info *types.Info, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	name := params.List[0].Names[0]
	obj := info.Defs[name]
	if obj == nil {
		return nil
	}
	if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	return obj
}

// writeTarget decomposes an assignment target into its root identifier plus
// two facts: whether the access path goes through an index expression over a
// slice/array whose index is exactly the job-index parameter (the sanctioned
// slot), and whether it dereferences a pointer.
func writeTarget(info *types.Info, e ast.Expr, idxParam types.Object) (root *ast.Ident, indexedBySlot, viaPointer bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, indexedBySlot, viaPointer
		case *ast.SelectorExpr:
			// Selecting through an embedded pointer or a field: keep walking
			// toward the base. A selection on a captured *pointer* mutates
			// shared state unless an index slot intervenes.
			if sel, ok := info.Selections[x]; ok && sel.Indirect() {
				viaPointer = true
			}
			e = x.X
		case *ast.IndexExpr:
			t := info.TypeOf(x.X)
			if t == nil {
				return nil, false, viaPointer
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				if isJobIndex(info, x.Index, idxParam) {
					indexedBySlot = true
				}
			case *types.Map:
				// Map writes are never slot-addressed: concurrent map writes
				// race regardless of key.
			}
			e = x.X
		case *ast.StarExpr:
			viaPointer = true
			e = x.X
		default:
			return nil, false, viaPointer
		}
	}
}

// isJobIndex reports whether the index expression is the job-index parameter
// itself (possibly parenthesized or converted).
func isJobIndex(info *types.Info, idx ast.Expr, param types.Object) bool {
	if param == nil {
		return false
	}
	idx = ast.Unparen(idx)
	if call, ok := idx.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return isJobIndex(info, call.Args[0], param) // int64(i) etc.
		}
	}
	id, ok := idx.(*ast.Ident)
	return ok && info.Uses[id] == param
}
