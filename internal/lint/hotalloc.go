package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer is the static complement to TestAllocationCeiling: no
// function reachable from a //cohort:hotpath root may contain an allocation
// site. The runtime ceiling catches a regression only on the benchmarked
// workload and only after the fact; this analyzer rejects the allocation at
// review time, on every path the conservative call graph can see.
//
// Flagged constructs: make/new, slice and map composite literals, composite
// literals whose address escapes (&T{…}), append, function literals (closure
// capture records), bound method values, string concatenation and
// string↔[]byte conversions, map writes (bucket growth), boxing into an
// interface (explicit conversions, call arguments, assignments, returns) and
// variadic calls (argument-slice allocation). Arguments to panic are skipped:
// a panic aborts the run, so its formatting cost is not steady-state.
//
// Amortized or warm-up allocations that are part of the design (queue
// backing growth, pooled-record growth) carry //cohort:allow hotalloc
// annotations at the site, keeping every waiver reviewable.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocation sites in functions reachable from //cohort:hotpath " +
		"roots (static complement to the runtime allocation ceiling)",
	RunProgram: runHotAlloc,
}

func runHotAlloc(pass *ProgramPass) error {
	reach, parent := pass.Graph.Reachable(HotFull)
	for _, n := range pass.Graph.Nodes {
		if !reach[n] {
			continue
		}
		path := CallPath(parent, n)
		checkAllocs(pass, n, path)
	}
	return nil
}

// checkAllocs scans one node's own statements for allocation sites.
func checkAllocs(pass *ProgramPass, n *CGNode, path string) {
	info := n.Pkg.Info
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s in hot path (%s)", what, path)
	}
	root := ast.Node(n.Body)
	if n.Lit != nil {
		root = n.Lit.Body
	}
	if root == nil {
		return
	}
	// Selectors used as the Fun of a call are method calls, not method
	// values; Inspect visits the call before its Fun, so pre-marking here is
	// enough for the method-value check below.
	calledSelectors := make(map[ast.Expr]bool)
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			report(lit.Pos(), "function literal allocates a closure")
			return false // the literal's own body belongs to its node
		}
		switch node := x.(type) {
		case *ast.CallExpr:
			calledSelectors[ast.Unparen(node.Fun)] = true
			return checkCallAlloc(pass, info, node, report)
		case *ast.CompositeLit:
			checkCompositeAlloc(info, node, report)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if cl, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(cl.Pos(), "composite literal escapes to the heap (&T{…})")
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(info.TypeOf(node)) && !isConstExpr(info, node) {
				report(node.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			checkAssignAlloc(info, node, report)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(node.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				report(node.Pos(), "map write may grow the map")
			}
		case *ast.ReturnStmt:
			checkReturnAlloc(info, n, node, report)
		case *ast.SelectorExpr:
			// Bound method value (x.M used as a value, not called):
			// allocates the bound-receiver closure.
			if sel, ok := info.Selections[node]; ok && sel.Kind() == types.MethodVal && !calledSelectors[node] {
				report(node.Pos(), "method value allocates its bound receiver")
			}
		}
		return true
	})
}

// checkCallAlloc handles builtins, conversions, boxing at call boundaries and
// variadic argument slices. Returns false to prune traversal (panic args).
func checkCallAlloc(pass *ProgramPass, info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) bool {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false // aborting path: formatting cost is not steady-state
			case "make":
				report(call.Pos(), "make allocates")
				return true
			case "new":
				report(call.Pos(), "new allocates")
				return true
			case "append":
				report(call.Pos(), "append may grow its backing array")
				return true
			}
			return true
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Conversion: flag boxing and string↔byte-slice copies.
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		checkConversionAlloc(info, call.Pos(), dst, src, call.Args[0], report)
		return true
	}
	// Ordinary call: check argument boxing against the signature.
	sigT := info.TypeOf(fun)
	sig, ok := sigT.(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(np - 1).Type() // s... passes the slice through
			} else {
				pt = params.At(np - 1).Type().(*types.Slice).Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		checkBoxing(info, arg, pt, report)
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		report(call.Pos(), "variadic call allocates its argument slice")
	}
	return true
}

// checkConversionAlloc flags conversions that allocate.
func checkConversionAlloc(info *types.Info, pos token.Pos, dst, src types.Type, arg ast.Expr, report func(token.Pos, string)) {
	if types.IsInterface(dst) {
		checkBoxing(info, arg, dst, report)
		return
	}
	ds, dOK := dst.Underlying().(*types.Basic)
	if dOK && ds.Info()&types.IsString != 0 {
		if sl, ok := src.Underlying().(*types.Slice); ok {
			if isByteOrRune(sl.Elem()) {
				report(pos, "[]byte/[]rune→string conversion copies")
			}
		}
		return
	}
	if sl, ok := dst.Underlying().(*types.Slice); ok && isByteOrRune(sl.Elem()) {
		if ss, ok := src.Underlying().(*types.Basic); ok && ss.Info()&types.IsString != 0 {
			report(pos, "string→[]byte/[]rune conversion copies")
		}
	}
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// checkBoxing reports arg when assigning it to an interface-typed slot
// requires heap-boxing the value. Pointer-shaped values (pointers, channels,
// maps, funcs, slices of zero… no: slices are three words) — precisely:
// pointers, channels, maps, funcs and unsafe pointers fit the interface data
// word without allocating; everything else concrete is boxed.
func checkBoxing(info *types.Info, arg ast.Expr, target types.Type, report func(token.Pos, string)) {
	if !types.IsInterface(target) {
		return
	}
	tv, ok := info.Types[arg]
	if !ok || tv.IsNil() {
		return
	}
	if tv.Value != nil {
		return // constant conversions are backed by static descriptors
	}
	at := tv.Type
	if at == nil || types.IsInterface(at) || isPointerShaped(at) {
		return
	}
	report(arg.Pos(), "interface conversion boxes a "+at.Underlying().String()+" value")
}

func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// checkCompositeAlloc flags composite literals of slice or map type; value
// struct and array literals stay on the stack unless their address escapes
// (handled at the &T{…} site).
func checkCompositeAlloc(info *types.Info, cl *ast.CompositeLit, report func(token.Pos, string)) {
	t := info.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		report(cl.Pos(), "slice literal allocates")
	case *types.Map:
		report(cl.Pos(), "map literal allocates")
	}
}

// checkAssignAlloc flags map writes and boxing on assignment.
func checkAssignAlloc(info *types.Info, as *ast.AssignStmt, report func(token.Pos, string)) {
	for _, lhs := range as.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
			report(lhs.Pos(), "map write may grow the map")
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		if lt == nil {
			continue
		}
		checkBoxing(info, as.Rhs[i], lt, report)
	}
}

// checkReturnAlloc flags boxing at return boundaries.
func checkReturnAlloc(info *types.Info, n *CGNode, ret *ast.ReturnStmt, report func(token.Pos, string)) {
	sig := nodeSignature(info, n)
	if sig == nil {
		return
	}
	res := sig.Results()
	if res.Len() != len(ret.Results) {
		return // bare return or single multi-value call: nothing to box directly
	}
	for i, e := range ret.Results {
		checkBoxing(info, e, res.At(i).Type(), report)
	}
}

func nodeSignature(info *types.Info, n *CGNode) *types.Signature {
	if n.Obj != nil {
		sig, _ := n.Obj.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if t := info.TypeOf(n.Lit); t != nil {
			sig, _ := t.(*types.Signature)
			return sig
		}
	}
	return nil
}

func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
