package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// FloatAccumAnalyzer flags floating-point values flowing into the sim.Cycle
// domain. Cycle and latency arithmetic is exact 64-bit integer math end to
// end; a float64 detour (averages, ratios, scaling factors) rounds, and the
// rounding — while IEEE-deterministic for one binary — makes results depend
// on expression shape and breaks the exact-arithmetic WCML accounting the
// analysis bounds are checked against. Convert in the integer domain
// (multiply/divide with explicit rounding) instead.
var FloatAccumAnalyzer = &Analyzer{
	Name: "floataccum",
	Doc: "forbid converting floating-point expressions into sim.Cycle " +
		"(cycle/latency arithmetic must stay in exact integer math)",
	Run: runFloatAccum,
}

func runFloatAccum(pass *Pass) error {
	cycle := lookupCycleType(pass)
	if cycle == nil {
		return nil // package neither defines nor imports sim.Cycle
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() || !types.Identical(tv.Type, cycle) {
				return true
			}
			if src := floatSourceInfo(pass.TypesInfo, call.Args[0]); src != nil {
				pass.Reportf(call.Pos(), "floating-point value converted into sim.Cycle; "+
					"cycle/latency arithmetic must stay in exact integer math")
			}
			return true
		})
	}
	return nil
}

// lookupCycleType finds the sim.Cycle named type visible to this package:
// its own definition when the package is internal/sim, or the imported one.
func lookupCycleType(pass *Pass) types.Type {
	scope := pass.Pkg.Scope()
	if pass.Pkg.Path() == "cohort/internal/sim" {
		if obj := scope.Lookup("Cycle"); obj != nil {
			return obj.Type()
		}
		return nil
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "cohort/internal/sim" {
			if obj := imp.Scope().Lookup("Cycle"); obj != nil {
				return obj.Type()
			}
		}
	}
	return nil
}

// floatSourceInfo returns the first floating-point-typed expression reachable
// from e by unwrapping integer conversions and parens, or nil when e is
// integer all the way down. Exact constant expressions (sim.Cycle(1e6)) are
// not flagged: they lose nothing. Shared with reachcontract, so it takes the
// bare type info.
func floatSourceInfo(info *types.Info, e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	if tv.Value != nil {
		if v := constant.ToInt(tv.Value); v.Kind() == constant.Int {
			return nil // exact integer constant, however written
		}
	}
	if isFloat(tv.Type) {
		return e
	}
	// Unwrap a nested conversion: sim.Cycle(int64(x*1.5)) still rounds.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if ftv, ok := info.Types[call.Fun]; ok && ftv.IsType() {
			return floatSourceInfo(info, call.Args[0])
		}
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
