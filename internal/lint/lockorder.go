package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// LockOrderAnalyzer derives a global mutex-acquisition order graph from
// static Lock/RLock nesting across the whole-program call graph and reports
// every cycle: if one code path acquires A then B while another acquires B
// then A, two goroutines interleaving those paths deadlock — a hang `go test
// -race` only catches when the losing interleaving actually executes.
//
// Locks are identified by class (the field or variable object), like the
// kernel's lockdep: every instance of Registry.valMu is one class. An edge
// A→B is recorded when B is acquired — directly or through any statically
// resolvable call chain — while A is held. Holds are tracked by a linear
// source-order walk per function: Lock adds a hold, a matching non-deferred
// Unlock removes it, `defer mu.Unlock()` keeps the hold to the function end.
// Calls and literals spawned via `go` contribute no edges from the spawner's
// holds (the goroutine does not inherit them).
//
// A recursive acquisition — Lock on a class already held, directly or via a
// callee — is reported immediately: Go mutexes are not reentrant, so that
// path self-deadlocks without needing a second goroutine.
//
// Approximations inherited from the CHA graph (DESIGN.md §16): calls through
// function values produce no edges, so a callback invoked under a lock is
// not traversed (Registry.Sync's valMu→fn()→mu nesting is the documented
// instance — guarded by contract comments and the race gate instead), and
// branch structure is flattened into source order, which over-approximates
// held sets across early returns.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "derive the global mutex-acquisition order graph over the whole-program " +
		"call graph and report cycles (potential deadlocks) with both acquisition paths",
	RunProgram: runLockOrder,
}

// lockAcq records how one node (transitively) acquires one lock class.
type lockAcq struct {
	pos token.Pos // acquisition site in the node, or the call site leading deeper
	via *CGNode   // nil: direct Lock; else the callee whose summary holds the lock
}

// lockEdge is one order constraint: `to` was acquired while `from` was held.
type lockEdge struct {
	from, to types.Object
	holdPos  token.Pos // where `from` was locked
	acqPos   token.Pos // Lock site of `to`, or the call site leading to it
	path     string    // rendered call chain from the holding function to the Lock
}

func runLockOrder(pass *ProgramPass) error {
	g := pass.Graph
	fset := pass.Prog.Fset

	events := make(map[*CGNode][]lockEvent)
	for _, n := range g.Nodes {
		events[n] = nodeLockEvents(g, n)
	}

	displays := make(map[types.Object]string)
	summaries := lockSummaries(g, events, displays)

	// Edge generation: replay each node's event stream with a held set.
	edges := make(map[[2]types.Object]*lockEdge)
	order := make(map[types.Object][]types.Object) // adjacency, insertion-ordered
	addEdge := func(e *lockEdge) {
		k := [2]types.Object{e.from, e.to}
		if edges[k] != nil {
			return
		}
		edges[k] = e
		order[e.from] = append(order[e.from], e.to)
	}

	for _, n := range g.Nodes {
		held := make(map[types.Object]token.Pos)
		for _, ev := range events[n] {
			switch ev.kind {
			case evAcquire:
				if prev, ok := held[ev.lock]; ok {
					pass.Reportf(ev.pos, "recursive acquisition of %s (already locked at %s in %s); "+
						"Go mutexes are not reentrant — this path self-deadlocks",
						displays[ev.lock], fmtPos(fset, prev), n.Name)
				}
				for h, hpos := range held {
					if h == ev.lock {
						continue
					}
					addEdge(&lockEdge{from: h, to: ev.lock, holdPos: hpos, acqPos: ev.pos,
						path: n.Name + " (Lock at " + fmtPos(fset, ev.pos) + ")"})
				}
				held[ev.lock] = ev.pos
			case evRelease:
				delete(held, ev.lock)
			case evDeferRelease:
				// Held to function end: keep the hold.
			case evCall:
				sum := summaries[ev.callee]
				if sum == nil || len(held) == 0 {
					continue
				}
				for _, l := range summaryLocks(sum, displays) {
					if prev, ok := held[l]; ok {
						pass.Reportf(ev.pos, "call into %s acquires %s already locked at %s in %s; "+
							"Go mutexes are not reentrant — this path self-deadlocks (%s)",
							ev.callee.Name, displays[l], fmtPos(fset, prev), n.Name,
							renderAcqPath(fset, summaries, ev.callee, l))
						continue
					}
					for h, hpos := range held {
						addEdge(&lockEdge{from: h, to: l, holdPos: hpos, acqPos: ev.pos,
							path: n.Name + " → " + renderAcqPath(fset, summaries, ev.callee, l)})
					}
				}
			}
		}
	}

	reportLockCycles(pass, fset, edges, order, displays)
	return nil
}

// lockSummaries computes, per node, the set of lock classes the node
// acquires transitively (directly or through any callee), by fixed-point
// propagation over the call graph. displays accumulates every class's
// render name.
func lockSummaries(g *Graph, events map[*CGNode][]lockEvent, displays map[types.Object]string) map[*CGNode]map[types.Object]lockAcq {
	summaries := make(map[*CGNode]map[types.Object]lockAcq, len(g.Nodes))
	for _, n := range g.Nodes {
		sum := make(map[types.Object]lockAcq)
		for _, ev := range events[n] {
			if ev.kind == evAcquire {
				if _, ok := sum[ev.lock]; !ok {
					sum[ev.lock] = lockAcq{pos: ev.pos}
				}
				displays[ev.lock] = ev.display
			}
		}
		summaries[n] = sum
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			sum := summaries[n]
			for _, ev := range events[n] {
				if ev.kind != evCall {
					continue
				}
				for l := range summaries[ev.callee] {
					if _, ok := sum[l]; !ok {
						sum[l] = lockAcq{pos: ev.pos, via: ev.callee}
						changed = true
					}
				}
			}
		}
	}
	return summaries
}

// summaryLocks returns a summary's lock classes in deterministic order.
func summaryLocks(sum map[types.Object]lockAcq, displays map[types.Object]string) []types.Object {
	names := make(map[types.Object]string, len(sum))
	//cohort:allow maprange: collect-then-sort via sortedLockObjects
	for l := range sum {
		names[l] = displays[l]
	}
	return sortedLockObjects(names)
}

// renderAcqPath follows a summary's via-chain from node to the function that
// directly locks l, e.g. "obs.(*Registry).lookup (Lock at registry.go:111)".
func renderAcqPath(fset *token.FileSet, summaries map[*CGNode]map[types.Object]lockAcq, n *CGNode, l types.Object) string {
	var parts []string
	for {
		parts = append(parts, n.Name)
		acq, ok := summaries[n][l]
		if !ok {
			break
		}
		if acq.via == nil {
			return strings.Join(parts, " → ") + " (Lock at " + fmtPos(fset, acq.pos) + ")"
		}
		n = acq.via
		if len(parts) > 12 { // cycle in the call graph; cut the render
			break
		}
	}
	return strings.Join(parts, " → ")
}

// reportLockCycles finds cycles in the lock-order graph and reports each
// once, anchored at the first edge's acquisition site, with every edge's
// acquisition path in the message.
func reportLockCycles(pass *ProgramPass, fset *token.FileSet, edges map[[2]types.Object]*lockEdge, order map[types.Object][]types.Object, displays map[types.Object]string) {
	starts := make(map[types.Object]string, len(order))
	//cohort:allow maprange: collect-then-sort via sortedLockObjects
	for o := range order {
		starts[o] = displays[o]
	}
	reported := make(map[string]bool)
	for _, start := range sortedLockObjects(starts) {
		// DFS from each class; a back-edge to `start` closes a cycle. Only
		// cycles whose smallest display name is `start` report, so each
		// rotation surfaces exactly once.
		var stack []types.Object
		onStack := make(map[types.Object]bool)
		var dfs func(cur types.Object)
		dfs = func(cur types.Object) {
			stack = append(stack, cur)
			onStack[cur] = true
			for _, next := range order[cur] {
				if next == start {
					cycle := append(append([]types.Object{}, stack...), start)
					if minDisplay(cycle, displays) == displays[start] {
						reportOneCycle(pass, fset, cycle, edges, displays, reported)
					}
					continue
				}
				if !onStack[next] {
					dfs(next)
				}
			}
			stack = stack[:len(stack)-1]
			delete(onStack, cur)
		}
		dfs(start)
	}
}

func minDisplay(cycle []types.Object, displays map[types.Object]string) string {
	min := displays[cycle[0]]
	for _, o := range cycle[1:] {
		if displays[o] < min {
			min = displays[o]
		}
	}
	return min
}

func reportOneCycle(pass *ProgramPass, fset *token.FileSet, cycle []types.Object, edges map[[2]types.Object]*lockEdge, displays map[types.Object]string, reported map[string]bool) {
	names := make([]string, len(cycle))
	for i, o := range cycle {
		names[i] = displays[o]
	}
	key := strings.Join(names, " → ")
	if reported[key] {
		return
	}
	reported[key] = true
	var detail []string
	var anchor token.Pos
	for i := 0; i+1 < len(cycle); i++ {
		e := edges[[2]types.Object{cycle[i], cycle[i+1]}]
		if e == nil {
			return // stale adjacency; cannot happen with consistent maps
		}
		if i == 0 {
			anchor = e.acqPos
		}
		detail = append(detail, fmt.Sprintf("%s held (locked at %s) when %s acquired at %s via %s",
			displays[e.from], fmtPos(fset, e.holdPos), displays[e.to], fmtPos(fset, e.acqPos), e.path))
	}
	pass.Reportf(anchor, "lock-order cycle %s: %s; two goroutines interleaving these paths deadlock",
		key, strings.Join(detail, "; "))
}
