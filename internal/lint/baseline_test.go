package lint

import (
	"reflect"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "hotalloc", File: "internal/core/a.go", Line: 10, Column: 3, Message: "make allocates in hot path (core.F)"},
		{Analyzer: "hotalloc", File: "internal/core/a.go", Line: 99, Column: 1, Message: "make allocates in hot path (core.F)"}, // same key: collapses
		{Analyzer: "reachcontract", File: "internal/sim/b.go", Line: 4, Column: 2, Message: "wall-clock read time.Now reachable from a hot-path root (sim.Run)"},
	}
	data := FormatBaseline(findings)
	accepted, err := ParseBaseline(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(accepted) != 2 {
		t.Fatalf("accepted %d keys, want 2 (identical findings collapse)", len(accepted))
	}
	fresh, stale := DiffBaseline(findings, accepted)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round trip: fresh=%v stale=%v, want none", fresh, stale)
	}
}

func TestBaselineKeyIgnoresLine(t *testing.T) {
	a := Finding{Analyzer: "hotalloc", File: "f.go", Line: 10, Message: "m"}
	b := Finding{Analyzer: "hotalloc", File: "f.go", Line: 42, Message: "m"}
	if a.Key() != b.Key() {
		t.Errorf("keys differ on line number only: %q vs %q", a.Key(), b.Key())
	}
}

func TestBaselineDiff(t *testing.T) {
	accepted, err := ParseBaseline(FormatBaseline([]Finding{
		{Analyzer: "hotalloc", File: "old.go", Message: "fixed since"},
		{Analyzer: "hotalloc", File: "kept.go", Message: "still fires"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	now := []Finding{
		{Analyzer: "hotalloc", File: "kept.go", Line: 7, Message: "still fires"},
		{Analyzer: "hotalloc", File: "new.go", Line: 3, Message: "brand new"},
	}
	fresh, stale := DiffBaseline(now, accepted)
	if len(fresh) != 1 || fresh[0].File != "new.go" {
		t.Errorf("fresh = %v, want the new.go finding only", fresh)
	}
	if !reflect.DeepEqual(stale, []string{"hotalloc\told.go\tfixed since"}) {
		t.Errorf("stale = %v, want the old.go key only", stale)
	}
}

func TestParseBaselineRejectsMalformedLine(t *testing.T) {
	_, err := ParseBaseline([]byte("# comment\nhotalloc only-one-tab\there\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want malformed-line error naming line 2", err)
	}
}
