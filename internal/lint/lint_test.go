package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// golden runs one analyzer over a testdata package and compares its
// diagnostics against the `// want "regexp"` expectations in the sources —
// a stdlib re-implementation of the analysistest contract: every want line
// must produce a matching diagnostic, and every diagnostic must land on a
// want line.
func golden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, "cohort/lint-testdata/"+name)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	checkWants(t, pkg.Fset, pkg.Files, diags)
}

// checkWants compares diagnostics against the `// want "regexp"` expectations
// embedded in the given files: every want line must produce a matching
// diagnostic, and every diagnostic must land on a want line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key]*regexp.Regexp{}
	matched := map[key]bool{}
	wantRe := regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("bad want pattern %s: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				wants[key{pos.Filename, pos.Line}] = regexp.MustCompile(pat)
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want %q",
				filepath.Base(pos.Filename), pos.Line, d.Message, re)
		}
		matched[k] = true
	}
	for k := range wants {
		if !matched[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(k.file), k.line, wants[k])
		}
	}
}

func TestMapRangeGolden(t *testing.T)       { golden(t, MapRangeAnalyzer, "maprange") }
func TestWallTimeGolden(t *testing.T)       { golden(t, WallTimeAnalyzer, "walltime") }
func TestGlobalRandGolden(t *testing.T)     { golden(t, GlobalRandAnalyzer, "globalrand") }
func TestEventGoroutineGolden(t *testing.T) { golden(t, EventGoroutineAnalyzer, "eventgoroutine") }
func TestFloatAccumGolden(t *testing.T)     { golden(t, FloatAccumAnalyzer, "floataccum") }
func TestExhaustiveGolden(t *testing.T)     { golden(t, ExhaustiveAnalyzer, "exhaustive") }
func TestAllowDocGolden(t *testing.T)       { golden(t, AllowDocAnalyzer, "allowdoc") }

// TestAnalyzerMetadata pins the suite roster: names are unique, documented,
// and stable (annotations reference them).
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %q must set exactly one of Run (per-package) and RunProgram (whole-program)", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"maprange", "walltime", "globalrand", "eventgoroutine", "floataccum", "exhaustive", "allowdoc", "hotalloc", "reachcontract", "parallelpure", "lockorder", "atomicmix", "goleak", "ctxflow", "syncmisuse"} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

// TestRepositoryLintsClean is the in-process equivalent of
// `go run ./cmd/cohort-vet ./...`: the simulator packages themselves must
// satisfy the determinism contract.
func TestRepositoryLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	contract := map[string]bool{
		"cohort/internal/sim":       true,
		"cohort/internal/core":      true,
		"cohort/internal/bus":       true,
		"cohort/internal/cache":     true,
		"cohort/internal/coherence": true,
		"cohort/internal/memctrl":   true,
		"cohort/internal/sched":     true,
		"cohort/internal/trace":     true,
		"cohort/internal/opt":       true,
		"cohort/internal/invariant": true,
		"cohort/internal/model":     true,
	}
	prog, err := LoadProgram("cohort/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	g, err := BuildGraph(prog)
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	checked := 0
	for _, pkg := range prog.Pkgs {
		if !contract[pkg.Path] {
			continue
		}
		checked++
		for _, a := range Analyzers() {
			if a.Run == nil {
				continue
			}
			diags, err := Run(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
	if checked != len(contract) {
		t.Errorf("checked %d contract packages, want %d", checked, len(contract))
	}
	for _, a := range ProgramAnalyzers() {
		diags, err := RunOnProgram(a, prog, g)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]", prog.Fset.Position(d.Pos), d.Message, a.Name)
		}
	}
}

// TestAllowAnnotationScope checks the annotation only suppresses the named
// analyzer, not the whole suite.
func TestAllowAnnotationScope(t *testing.T) {
	dir := t.TempDir()
	src := strings.Join([]string{
		"package scope",
		"import \"time\"",
		"func f(m map[int]int) time.Time {",
		"\t//cohort:allow maprange: counting only",
		"\tfor range m {",
		"\t}",
		"\treturn time.Now()",
		"}",
		"",
	}, "\n")
	if err := writeFile(filepath.Join(dir, "scope.go"), src); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "cohort/lint-testdata/scope")
	if err != nil {
		t.Fatal(err)
	}
	if diags, _ := Run(MapRangeAnalyzer, pkg); len(diags) != 0 {
		t.Errorf("maprange not suppressed by annotation: %v", diags)
	}
	diags, err := Run(WallTimeAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Errorf("walltime diagnostics = %d, want 1 (annotation must not leak across analyzers)", len(diags))
	}
}

// TestAllowDocEmptyReason covers the bare-reason diagnostic separately from
// the golden (a `// want` marker appended to the annotation would itself
// become the reason text).
func TestAllowDocEmptyReason(t *testing.T) {
	dir := t.TempDir()
	src := strings.Join([]string{
		"package reason",
		"//cohort:allow walltime:",
		"func f() {}",
		"",
	}, "\n")
	if err := writeFile(filepath.Join(dir, "reason.go"), src); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "cohort/lint-testdata/reason")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(AllowDocAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "no reason") {
		t.Fatalf("empty-reason annotation diagnostics = %v, want one 'no reason' finding", diags)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
