package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ExhaustiveAnalyzer flags switch statements over protocol enums — named
// integer types with at least two declared constants, like cache.State,
// coherence.CounterAction or invariant.Kind — that neither cover every
// member nor carry a default clause. A protocol transition that silently
// ignores an enum member is exactly the bug class the model checker hunts
// dynamically; this is the static half: adding a state to an enum must fail
// the build wherever a switch has not decided how to handle it.
//
// Switches containing non-constant case expressions are skipped (coverage is
// undecidable), and members are compared by value, so aliased constants count
// as covered together. Suppress deliberate partial switches with
// //cohort:allow exhaustive: <reason>.
var ExhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc: "require switches over protocol enums (named integer types with ≥2 " +
		"declared constants) to cover every member or declare a default",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := enumType(pass.TypesInfo.TypeOf(sw.Tag))
			if named == nil {
				return true
			}
			members := enumMembers(named, pass.Pkg)
			if len(members) < 2 {
				return true
			}
			covered := map[int64]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					return true
				}
				if cc.List == nil {
					return true // default clause: every member is handled
				}
				for _, e := range cc.List {
					tv, ok := pass.TypesInfo.Types[e]
					if !ok || tv.Value == nil {
						return true // non-constant case: coverage undecidable
					}
					v, exact := constant.Int64Val(constant.ToInt(tv.Value))
					if !exact {
						return true
					}
					covered[v] = true
				}
			}
			var missing []string
			reported := map[int64]bool{}
			for _, m := range members {
				if covered[m.val] || reported[m.val] {
					continue
				}
				reported[m.val] = true
				missing = append(missing, m.name)
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Switch, "switch over %s does not cover %s and has no default; "+
					"handle the missing members, add a default, or annotate with "+
					"//cohort:allow exhaustive: <reason>",
					named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

type enumMember struct {
	name string
	val  int64
}

// enumType returns the tag's type when it is a defined (non-predeclared)
// type whose underlying type is an integer — the shape of every protocol
// enum in the repo. Anything else (plain ints, strings, bools) is not an
// enum for this analyzer.
func enumType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// enumMembers lists the constants of the named type declared in its defining
// package, name-sorted (package scopes iterate sorted). Constants that are
// unexported in a foreign package are excluded: the switch author cannot
// name them, so demanding coverage would just force a default.
func enumMembers(named *types.Named, from *types.Package) []enumMember {
	defPkg := named.Obj().Pkg()
	scope := defPkg.Scope()
	var out []enumMember
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if defPkg != from && !c.Exported() {
			continue
		}
		if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
			out = append(out, enumMember{name: name, val: v})
		}
	}
	return out
}
