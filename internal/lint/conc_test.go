package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestLockOrderGolden(t *testing.T)  { goldenProgram(t, LockOrderAnalyzer, "lockorder") }
func TestAtomicMixGolden(t *testing.T)  { goldenProgram(t, AtomicMixAnalyzer, "atomicmix") }
func TestGoLeakGolden(t *testing.T)     { goldenProgram(t, GoLeakAnalyzer, "goleak") }
func TestCtxFlowGolden(t *testing.T)    { goldenProgram(t, CtxFlowAnalyzer, "ctxflow") }
func TestSyncMisuseGolden(t *testing.T) { goldenProgram(t, SyncMisuseAnalyzer, "syncmisuse") }

// TestServerAnnotationRejectsQualifier mirrors the hotpath-qualifier test:
// //cohort:server takes no qualifier, and trailing text must fail graph
// construction rather than silently change the checked surface.
func TestServerAnnotationRejectsQualifier(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"srv/srv.go": `package srv

//cohort:server handlers
func Handle() {}
`,
	})
	prog, err := LoadTree(dir, "cohort/seeded")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err = BuildGraph(prog)
	if err == nil || !strings.Contains(err.Error(), "//cohort:server takes no qualifier") {
		t.Fatalf("BuildGraph error = %v, want qualifier rejection", err)
	}
}

// TestChanOwnerRequiresReason: a //cohort:chanowner annotation with no reason
// is itself a syncmisuse finding — the waiver must be reviewable.
func TestChanOwnerRequiresReason(t *testing.T) {
	msgs := runSeeded(t, SyncMisuseAnalyzer, map[string]string{
		"ch/ch.go": `package ch

//cohort:chanowner
var events = make(chan int)

func push() { events <- 1 }

func stop() { close(events) }
`,
	})
	var reasonless, closeFinding bool
	for _, m := range msgs {
		if strings.Contains(m, "cohort:chanowner annotation has no reason") {
			reasonless = true
		}
		if strings.Contains(m, "closed here but sent to") {
			closeFinding = true
		}
	}
	if !reasonless {
		t.Errorf("diagnostics %v missing the reasonless-annotation finding", msgs)
	}
	if !closeFinding {
		t.Errorf("diagnostics %v: a reasonless annotation must not suppress the close finding", msgs)
	}
}

// concurrencyMutants maps each analyzer to its committed mutant tree under
// testdata/mutants/<name> and the diagnostic it must produce. CI runs this
// test as the seeded-regression gate: an analyzer that stops firing on its
// mutant fails the build, so none of the five can silently rot into a no-op.
var concurrencyMutants = []struct {
	analyzer *Analyzer
	want     string
}{
	{LockOrderAnalyzer, "lock-order cycle"},
	{AtomicMixAnalyzer, "accessed atomically"},
	{GoLeakAnalyzer, "no statically visible join or cancel path"},
	{CtxFlowAnalyzer, "reachable from //cohort:server root"},
	{SyncMisuseAnalyzer, "copies a value"},
}

func TestConcurrencyMutants(t *testing.T) {
	for _, m := range concurrencyMutants {
		t.Run(m.analyzer.Name, func(t *testing.T) {
			root := filepath.Join("testdata", "mutants", m.analyzer.Name)
			prog, err := LoadTree(root, "cohort/mutant/"+m.analyzer.Name)
			if err != nil {
				t.Fatalf("load %s: %v", root, err)
			}
			diags, err := RunOnProgram(m.analyzer, prog, nil)
			if err != nil {
				t.Fatalf("run %s: %v", m.analyzer.Name, err)
			}
			if len(diags) == 0 {
				t.Fatalf("%s produced no diagnostics on its committed mutant: the analyzer fails open", m.analyzer.Name)
			}
			for _, d := range diags {
				if strings.Contains(d.Message, m.want) {
					return
				}
			}
			t.Fatalf("%s diagnostics on mutant lack %q: %v", m.analyzer.Name, m.want, diagMessages(diags))
		})
	}
}

func diagMessages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}

// TestLockOrderCleanSequential pins the no-false-positive side interprocedurally:
// consistent A-then-B ordering through a callee must stay silent.
func TestLockOrderCleanSequential(t *testing.T) {
	msgs := runSeeded(t, LockOrderAnalyzer, map[string]string{
		"m/m.go": `package m

import "sync"

var a, b sync.Mutex
var n int

func lockB() {
	b.Lock()
	defer b.Unlock()
	n++
}

func One() {
	a.Lock()
	defer a.Unlock()
	lockB()
}

func Two() {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	n++
	b.Unlock()
}
`,
	})
	if len(msgs) != 0 {
		t.Fatalf("consistent ordering produced diagnostics: %v", msgs)
	}
}

// TestGoLeakLiteralSpawner: a go statement inside a function literal uses the
// literal — not the enclosing declaration — as the spawner.
func TestGoLeakLiteralSpawner(t *testing.T) {
	msgs := runSeeded(t, GoLeakAnalyzer, map[string]string{
		"m/m.go": `package m

import "sync"

var n int

// Outer's WaitGroup.Wait must not excuse the literal's unjoined spawn.
func Outer() func() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); n++ }()
	wg.Wait()
	return func() {
		go func() { n++ }()
	}
}
`,
	})
	if len(msgs) != 1 || !strings.Contains(msgs[0], "no statically visible join") {
		t.Fatalf("diagnostics = %v, want exactly the literal's unjoined spawn", msgs)
	}
}

// TestConcurrencyAnalyzersOnRepo runs the five concurrency analyzers over the
// live module: the repository's own concurrency surface must stay clean
// without baseline entries.
func TestConcurrencyAnalyzersOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	prog, err := LoadProgram("cohort/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	g, err := BuildGraph(prog)
	if err != nil {
		t.Fatalf("build graph: %v", err)
	}
	for _, a := range []*Analyzer{LockOrderAnalyzer, AtomicMixAnalyzer, GoLeakAnalyzer, CtxFlowAnalyzer, SyncMisuseAnalyzer} {
		diags, err := RunOnProgram(a, prog, g)
		if err != nil {
			t.Fatalf("run %s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", a.Name, prog.Fset.Position(d.Pos), d.Message)
		}
	}
}
