package lint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic with its analyzer and resolved position, the unit
// the baseline ratchet and the JSON report operate on.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // repo-relative, slash-separated
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Key is the identity the baseline matches on: analyzer, file and message —
// deliberately *not* the line number, so unrelated edits that shift code do
// not invalidate the baseline. Two identical findings in one file collapse
// into one key; the ratchet still fires when a fixed instance reappears
// elsewhere in the file only if the message differs, which the positional
// fragments embedded in most messages (names, call paths) make the common
// case.
func (f Finding) Key() string {
	return f.Analyzer + "\t" + f.File + "\t" + f.Message
}

// String renders the finding the way cohort-vet prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Column, f.Message, f.Analyzer)
}

// RelFinding builds a Finding with the file path made repo-relative when
// possible (positions come out of go list with absolute paths).
func RelFinding(analyzer, file string, line, col int, message, root string) Finding {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return Finding{
		Analyzer: analyzer,
		File:     filepath.ToSlash(file),
		Line:     line,
		Column:   col,
		Message:  message,
	}
}

// FormatBaseline renders the committed baseline file: a header explaining the
// ratchet plus one tab-separated line per accepted finding, sorted. The line
// number is omitted from the identity (see Finding.Key) and from the file.
func FormatBaseline(findings []Finding) []byte {
	var b strings.Builder
	b.WriteString("# cohort-vet baseline — machine-ratcheted accepted findings.\n")
	b.WriteString("# One finding per line: <analyzer>\\t<file>\\t<message>.\n")
	b.WriteString("# Regenerate with: go run ./cmd/cohort-vet -baseline lint.baseline -write-baseline ./...\n")
	b.WriteString("# New findings (not listed here) fail CI; entries for fixed findings are\n")
	b.WriteString("# stale and fail CI until pruned — the set only ever shrinks.\n")
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool)
	for _, f := range findings {
		k := f.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseBaseline reads a baseline file into the set of accepted finding keys.
func ParseBaseline(data []byte) (map[string]bool, error) {
	keys := make(map[string]bool)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("lint: baseline line %d: want <analyzer>\\t<file>\\t<message>, got %q", i+1, line)
		}
		keys[line] = true
	}
	return keys, nil
}

// DiffBaseline splits the current findings against an accepted baseline:
// fresh findings (must be fixed or annotated) and stale baseline keys
// (findings that no longer fire; the ratchet requires pruning them).
func DiffBaseline(findings []Finding, accepted map[string]bool) (fresh []Finding, stale []string) {
	current := make(map[string]bool)
	for _, f := range findings {
		k := f.Key()
		current[k] = true
		if !accepted[k] {
			fresh = append(fresh, f)
		}
	}
	for k := range accepted {
		if !current[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}
