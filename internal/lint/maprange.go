package lint

import (
	"go/ast"
	"go/types"
)

// MapRangeAnalyzer flags `for ... range m` over a map. Go randomizes map
// iteration order per run, so any map range whose body is order-sensitive
// breaks bit-reproducibility. Two forms are accepted without annotation:
//
//   - the collect-then-sort idiom, where every statement in the loop body
//     appends to slices that the enclosing function later sorts;
//   - loops explicitly annotated //cohort:allow maprange: <reason>, asserting
//     the body is order-insensitive (pure counting, set union, …).
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc: "forbid ranging over maps unless keys are sorted or the body is " +
		"declared order-insensitive (map iteration order differs between runs)",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectThenSort(pass.TypesInfo, rs, funcBody(enclosingFunc(stack))) {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s is non-deterministic; sort the keys first, "+
				"or annotate the loop with //cohort:allow maprange: <reason> if the body is order-insensitive",
				typeLabel(rs.X))
			return true
		})
	}
	return nil
}

// typeLabel renders the ranged expression compactly for the message.
func typeLabel(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return "expression"
}

// collectThenSort recognizes the safe idiom: every statement of the range
// body is `s = append(s, ...)` and the enclosing function body sorts each
// such s after the loop. Shared with the whole-program reachcontract
// analyzer, so it takes the bare type info rather than a Pass.
func collectThenSort(info *types.Info, rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	if body == nil || len(rs.Body.List) == 0 {
		return false
	}
	var targets []types.Object
	for _, st := range rs.Body.List {
		obj := appendTarget(info, st)
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	for _, obj := range targets {
		if !sortedAfter(info, body, rs, obj) {
			return false
		}
	}
	return true
}

// appendTarget returns the object of x in a statement of the exact form
// `x = append(x, ...)`, or nil.
func appendTarget(info *types.Info, st ast.Stmt) types.Object {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	return info.Uses[lhs]
}

// sortedAfter reports whether the function body contains, after the range
// statement, a recognised sorting call with obj as its (first) argument.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if body == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if !isSortFunc(fn) || len(call.Args) == 0 {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.Uses[arg] == obj {
			found = true
		}
		return true
	})
	return found
}

func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
