package lint

import "strings"

// AllowDocAnalyzer lints the lint suppressions themselves: every
// //cohort:allow annotation must use the canonical form
//
//	//cohort:allow <analyzer>: <reason>
//
// naming exactly one registered analyzer, with a colon and a non-empty
// justification. Free-form suppressions rot: a typoed analyzer name silently
// suppresses nothing (the diagnostic it meant to waive fires anyway — or
// worse, the annotation form drifts and waives too much), and a missing
// reason makes the waiver unreviewable. This analyzer turns both into build
// failures in the contract packages.
var AllowDocAnalyzer = &Analyzer{
	Name: "allowdoc",
	Doc: "require //cohort:allow annotations to use the form " +
		"'//cohort:allow <analyzer>: <reason>' with a registered analyzer name",
}

// Run is attached in init: runAllowDoc consults the Analyzers() roster, which
// itself contains AllowDocAnalyzer, and a static reference would be an
// initialization cycle.
func init() { AllowDocAnalyzer.Run = runAllowDoc }

func runAllowDoc(pass *Pass) error {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue // block comments are never annotations
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "cohort:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "cohort:allow"))
				name, reason, hasColon := strings.Cut(rest, ":")
				name = strings.TrimSpace(name)
				switch {
				case !hasColon || name == "" || strings.ContainsAny(name, " \t"):
					pass.Reportf(c.Pos(), "malformed allow annotation: canonical form is "+
						"//cohort:allow <analyzer>: <reason>")
				case !known[name]:
					pass.Reportf(c.Pos(), "allow annotation names unknown analyzer %q; "+
						"it suppresses nothing (registered: %s)", name, analyzerNames())
				case strings.TrimSpace(reason) == "":
					pass.Reportf(c.Pos(), "allow annotation for %q has no reason; "+
						"justify why the construct is safe", name)
				}
			}
		}
	}
	return nil
}

// analyzerNames renders the registered roster for diagnostics.
func analyzerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
