package lint

import (
	"go/ast"
	"go/types"
)

// ReachContractAnalyzer enforces the per-file determinism contracts
// (walltime, globalrand, maprange, floataccum) *transitively*: every function
// reachable over the conservative call graph from a //cohort:hotpath or
// //cohort:hotpath determinism root must be free of wall-clock reads, global
// randomness, unordered map iteration and float→cycle conversions — wherever
// it lives. The per-package analyzers bind only the contract packages; a
// helper in a cold package (a formatting utility, an experiment shim) that a
// hot or oracle function calls used to escape them entirely. This analyzer
// closes that hole: the contract follows the call, not the file.
var ReachContractAnalyzer = &Analyzer{
	Name: "reachcontract",
	Doc: "enforce the walltime/globalrand/maprange/floataccum contracts " +
		"transitively from //cohort:hotpath roots over the whole-program call graph",
	RunProgram: runReachContract,
}

func runReachContract(pass *ProgramPass) error {
	reach, parent := pass.Graph.Reachable(HotFull, HotDeterminism)
	cycle := programCycleType(pass.Prog)
	for _, n := range pass.Graph.Nodes {
		if !reach[n] {
			continue
		}
		path := CallPath(parent, n)
		checkContracts(pass, n, cycle, path)
	}
	return nil
}

// programCycleType resolves the sim.Cycle type for the floataccum contract:
// the real simulator package when present, else any loaded package named sim
// that defines Cycle (the golden-test trees).
func programCycleType(prog *Program) types.Type {
	if pkg := prog.Package("cohort/internal/sim"); pkg != nil {
		if obj := pkg.Types.Scope().Lookup("Cycle"); obj != nil {
			return obj.Type()
		}
	}
	for _, pkg := range prog.Pkgs {
		if pkg.Types.Name() != "sim" {
			continue
		}
		if obj := pkg.Types.Scope().Lookup("Cycle"); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// checkContracts scans one reachable node's own statements for contract
// violations.
func checkContracts(pass *ProgramPass, n *CGNode, cycle types.Type, path string) {
	info := n.Pkg.Info
	root := ast.Node(n.Body)
	if n.Lit != nil {
		root = n.Lit.Body
	}
	if root == nil {
		return
	}
	ast.Inspect(root, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false // nested literal: its node is reachable on its own edge
		}
		switch node := x.(type) {
		case *ast.SelectorExpr:
			fn, ok := info.Uses[node.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(node.Pos(), "wall-clock read time.%s reachable from a hot-path root (%s); "+
						"simulated time must come from the engine cycle counter", fn.Name(), path)
				}
			case "math/rand", "math/rand/v2":
				if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
					return true
				}
				if !randConstructors[fn.Name()] {
					pass.Reportf(node.Pos(), "global rand.%s reachable from a hot-path root (%s); "+
						"thread an explicitly seeded generator instead", fn.Name(), path)
				}
			}
		case *ast.RangeStmt:
			t := info.TypeOf(node.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			var body *ast.BlockStmt
			if n.Lit != nil {
				body = n.Lit.Body
			} else {
				body = n.Body
			}
			if collectThenSort(info, node, body) {
				return true
			}
			pass.Reportf(node.Pos(), "map range reachable from a hot-path root (%s); "+
				"iteration order differs between runs — sort the keys first", path)
		case *ast.CallExpr:
			if cycle == nil || len(node.Args) != 1 {
				return true
			}
			tv, ok := info.Types[node.Fun]
			if !ok || !tv.IsType() || !types.Identical(tv.Type, cycle) {
				return true
			}
			if src := floatSourceInfo(info, node.Args[0]); src != nil {
				pass.Reportf(node.Pos(), "floating-point value converted into sim.Cycle "+
					"reachable from a hot-path root (%s); cycle arithmetic must stay integer", path)
			}
		}
		return true
	})
}
