package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SyncMisuseAnalyzer catches the sync-primitive misuse patterns that
// type-check fine, usually survive `go test -race`, and corrupt concurrent
// state in production:
//
//   - copying a value whose type (transitively) contains a sync.Mutex,
//     RWMutex, WaitGroup, Once, Cond or a sync/atomic counter — the copy
//     carries the lock state but not the lock, so the original and the copy
//     guard nothing together;
//   - WaitGroup.Add called inside the spawned goroutine — the spawner can
//     reach Wait before the goroutine is scheduled, so Wait returns while
//     work is still in flight (Add must happen-before the go statement);
//   - a second Unlock of the same lock class on one straight-line path
//     (including an explicit Unlock after `defer mu.Unlock()`), which
//     panics at runtime;
//   - a channel that one function sends on while a different function —
//     a different goroutine in the conservative model — closes it, without a
//     //cohort:chanowner annotation on the channel's declaration: send on a
//     closed channel panics, so close ownership must be single and explicit.
//
// The annotation //cohort:chanowner <reason> on (or directly above) the
// channel's declaration documents single-owner closing discipline where the
// analyzer cannot see it; like //cohort:allow it requires a non-empty reason
// and is machine-checked here.
var SyncMisuseAnalyzer = &Analyzer{
	Name: "syncmisuse",
	Doc: "copied locks, WaitGroup.Add inside the spawned goroutine, double unlock " +
		"on a path, and cross-goroutine channel close without //cohort:chanowner",
	RunProgram: runSyncMisuse,
}

func runSyncMisuse(pass *ProgramPass) error {
	lockCache := make(map[types.Type]bool)
	chanOwner := collectChanOwners(pass)
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			checkLockCopies(pass, pkg.Info, f, lockCache)
			checkWaitGroupAdd(pass, pkg.Info, f)
		}
	}
	for _, n := range pass.Graph.Nodes {
		checkDoubleUnlock(pass, n)
	}
	checkChanClose(pass, chanOwner)
	return nil
}

// ---- copied locks ----

// containsLock reports whether t transitively contains a sync or sync/atomic
// primitive that must not be copied after first use.
func containsLock(t types.Type, cache map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if v, ok := cache[t]; ok {
		return v
	}
	cache[t] = false // break recursive types; refined below
	result := false
	switch u := t.Underlying().(type) {
	case *types.Struct:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sync":
					switch obj.Name() {
					case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
						result = true
					}
				case "sync/atomic":
					result = true // Int32/Int64/Uint…/Bool/Value/Pointer[T] all pin their address
				}
			}
		}
		if !result {
			for i := 0; i < u.NumFields(); i++ {
				if containsLock(u.Field(i).Type(), cache) {
					result = true
					break
				}
			}
		}
	case *types.Array:
		result = containsLock(u.Elem(), cache)
	}
	cache[t] = result
	return result
}

// copySource reports whether the expression copies an *existing* value (as
// opposed to constructing a fresh one): identifiers, field selections, index
// expressions and pointer dereferences. Composite literals and call results
// are fresh values — initializing from them is fine.
func copySource(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func checkLockCopies(pass *ProgramPass, info *types.Info, f *ast.File, cache map[types.Type]bool) {
	reportCopy := func(e ast.Expr, how string) {
		t := info.TypeOf(e)
		if t == nil || !containsLock(t, cache) {
			return
		}
		if !copySource(e) {
			return
		}
		pass.Reportf(e.Pos(), "%s copies a value of type %s which contains a sync primitive; "+
			"the copy shares no lock state with the original — use a pointer", how, types.TypeString(t, shortQualifier))
	}
	ast.Inspect(f, func(x ast.Node) bool {
		switch node := x.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				// Assigning to blank discards the value: no copy survives.
				if len(node.Lhs) == len(node.Rhs) {
					if id, ok := node.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				reportCopy(rhs, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range node.Values {
				reportCopy(v, "initialization")
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[ast.Unparen(node.Fun)]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range node.Args {
				reportCopy(arg, "call argument")
			}
		case *ast.ReturnStmt:
			for _, r := range node.Results {
				reportCopy(r, "return")
			}
		case *ast.RangeStmt:
			if node.Value != nil && node.Tok == token.DEFINE {
				if t := info.TypeOf(node.Value); t != nil && containsLock(t, cache) {
					pass.Reportf(node.Value.Pos(), "range copies values of type %s which contains a sync "+
						"primitive; iterate by index or over pointers", types.TypeString(t, shortQualifier))
				}
			}
		}
		return true
	})
}

func shortQualifier(p *types.Package) string { return p.Name() }

// ---- WaitGroup.Add inside the spawned goroutine ----

func checkWaitGroupAdd(pass *ProgramPass, info *types.Info, f *ast.File) {
	ast.Inspect(f, func(x ast.Node) bool {
		gs, ok := x.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(y ast.Node) bool {
			call, ok := y.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Name() != "Add" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isSyncType(sig.Recv().Type(), "WaitGroup") {
				return true
			}
			pass.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races with Wait: "+
				"the spawner can pass Wait before this goroutine is scheduled — call Add before the go statement")
			return true
		})
		return true
	})
}

// ---- double unlock on a straight-line path ----

func checkDoubleUnlock(pass *ProgramPass, n *CGNode) {
	events := nodeLockEvents(pass.Graph, n)
	fset := pass.Prog.Fset
	// Track, per lock class: how many holds the linear walk has seen, and
	// whether a deferred Unlock is pending (fires after every statement).
	holds := make(map[types.Object]int)
	deferred := make(map[types.Object]token.Pos)
	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			holds[ev.lock]++
		case evDeferRelease:
			if pos, dup := deferred[ev.lock]; dup {
				pass.Reportf(ev.pos, "second deferred unlock of %s (first at %s); both run at function "+
					"exit — the second panics", ev.display, fmtPos(fset, pos))
				continue
			}
			deferred[ev.lock] = ev.pos
			holds[ev.lock]--
		case evRelease:
			if holds[ev.lock] <= 0 {
				if pos, ok := deferred[ev.lock]; ok {
					pass.Reportf(ev.pos, "unlock of %s after `defer` already scheduled its unlock at %s; "+
						"the deferred unlock will panic at function exit", ev.display, fmtPos(fset, pos))
				} else {
					pass.Reportf(ev.pos, "unlock of %s which this path has not locked (double unlock?); "+
						"unlocking an unlocked mutex panics", ev.display)
				}
				continue
			}
			holds[ev.lock]--
		}
	}
}

// ---- cross-goroutine channel close ----

// chanSite records where a channel object is sent on or closed, per
// call-graph context.
type chanSite struct {
	node *CGNode
	pos  token.Pos
}

type chanUsage struct {
	display string
	sends   []chanSite
	closes  []chanSite
	decl    types.Object
}

// collectChanOwners gathers send and close sites per channel object across
// the program, attributing each to its enclosing call-graph node (a function
// literal is its own node — and, under a go statement, its own goroutine).
func collectChanOwners(pass *ProgramPass) map[types.Object]*chanUsage {
	usage := make(map[types.Object]*chanUsage)
	record := func(pkg *Package, stack []ast.Node, obj types.Object, display string, pos token.Pos, isClose bool) {
		u := usage[obj]
		if u == nil {
			u = &chanUsage{display: display, decl: obj}
			usage[obj] = u
		}
		var node *CGNode
		switch enc := enclosingFunc(stack).(type) {
		case *ast.FuncDecl:
			if fobj, ok := pkg.Info.Defs[enc.Name].(*types.Func); ok {
				node = pass.Graph.NodeByObj(fobj)
			}
		case *ast.FuncLit:
			node = pass.Graph.NodeByLit(enc)
		}
		site := chanSite{node: node, pos: pos}
		if isClose {
			u.closes = append(u.closes, site)
		} else {
			u.sends = append(u.sends, site)
		}
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			pkgv := pkg
			inspectWithStack(f, func(x ast.Node, stack []ast.Node) bool {
				switch node := x.(type) {
				case *ast.SendStmt:
					if obj := rootObject(pkgv.Info, node.Chan); obj != nil {
						record(pkgv, stack, obj, renderAccessName(pkgv.Info, node.Chan, obj), node.Pos(), false)
					}
				case *ast.CallExpr:
					id, ok := ast.Unparen(node.Fun).(*ast.Ident)
					if !ok || len(node.Args) != 1 {
						return true
					}
					if b, ok := pkgv.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
						return true
					}
					if obj := rootObject(pkgv.Info, node.Args[0]); obj != nil {
						record(pkgv, stack, obj, renderAccessName(pkgv.Info, node.Args[0], obj), node.Pos(), true)
					}
				}
				return true
			})
		}
	}
	return usage
}

// checkChanClose reports channels closed in a different call-graph node than
// one that sends on them, unless the declaration carries //cohort:chanowner.
func checkChanClose(pass *ProgramPass, usage map[types.Object]*chanUsage) {
	owners := chanOwnerIndex(pass)
	objs := make(map[types.Object]string, len(usage))
	//cohort:allow maprange: collect-then-sort via sortedLockObjects
	for o, u := range usage {
		objs[o] = u.display
	}
	for _, obj := range sortedLockObjects(objs) {
		u := usage[obj]
		if len(u.closes) == 0 || len(u.sends) == 0 {
			continue
		}
		declPos := posKey(pass.Prog.Fset, obj.Pos())
		if owners[declPos] {
			continue
		}
		for _, cl := range u.closes {
			for _, snd := range u.sends {
				if cl.node == snd.node {
					continue
				}
				sender := "another function"
				if snd.node != nil {
					sender = snd.node.Name
				}
				pass.Reportf(cl.pos, "channel %s is closed here but sent to in %s (%s); send on a closed "+
					"channel panics — a single owner must close, or annotate the declaration "+
					"//cohort:chanowner <reason>", u.display, sender, fmtPos(pass.Prog.Fset, snd.pos))
				break // one report per close site
			}
		}
	}
}

// chanOwnerIndex scans every file for //cohort:chanowner annotations and
// returns the (file, line) keys they cover: the annotation's own line and
// the next (annotation above the declaration). A chanowner annotation with
// no reason is itself reported — the waiver must be reviewable, exactly like
// //cohort:allow.
func chanOwnerIndex(pass *ProgramPass) map[allowKey]bool {
	idx := make(map[allowKey]bool)
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "cohort:chanowner") {
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(text, "cohort:chanowner"))
					if reason == "" {
						pass.Reportf(c.Pos(), "cohort:chanowner annotation has no reason; "+
							"state who owns the close and why")
						continue
					}
					pos := pass.Prog.Fset.Position(c.Pos())
					idx[allowKey{pos.Filename, pos.Line}] = true
					idx[allowKey{pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
	return idx
}
