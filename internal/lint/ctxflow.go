package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces cancellation plumbing on the daemon surface:
// every function that can block — channel operations, select without a
// default, WaitGroup/Cond.Wait, time.Sleep, net/http client calls —
// reachable over the call graph from a //cohort:server root must accept a
// context.Context, so a request that is cancelled or deadline-expired can
// stop waiting instead of pinning a worker forever. Roots are the
// request-scoped entry points of the serve surface (today the debug server's
// handlers; tomorrow cohort-serve's RPC handlers).
//
// The rule binds the blocking function itself: accepting a ctx one frame up
// does not help the frame that actually parks. Mutex Lock is deliberately
// not a blocking op here — registry-style locks are held for microseconds
// and ctx-aware locking is not expressible with sync.Mutex; unbounded waits
// are what the analyzer is after. Propagation depth inherits the CHA graph's
// caveats: blocking behind a function value is invisible (DESIGN.md §16).
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "functions that block (channel ops, select, Wait, Sleep, http calls) " +
		"reachable from a //cohort:server root must accept a context.Context",
	RunProgram: runCtxFlow,
}

func runCtxFlow(pass *ProgramPass) error {
	g := pass.Graph
	roots := g.ServerRoots()
	if len(roots) == 0 {
		return nil
	}
	reach, parent := g.ReachableFrom(roots)
	for _, n := range g.Nodes {
		if !reach[n] {
			continue
		}
		if hasContextParam(n.Pkg.Info, n) {
			continue
		}
		path := CallPath(parent, n)
		checkBlockingOps(pass, n, path)
	}
	return nil
}

// checkBlockingOps scans one server-reachable node's own statements for
// blocking operations.
func checkBlockingOps(pass *ProgramPass, n *CGNode, path string) {
	info := n.Pkg.Info
	root := ast.Node(n.Body)
	if n.Lit != nil {
		root = n.Lit.Body
	}
	if root == nil {
		return
	}
	// The comm operations of a select clause are part of the select, not
	// independent blocking ops: the select is the (single) diagnostic.
	inComm := make(map[ast.Node]bool)
	ast.Inspect(root, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false // nested literal: reachable on its own edge
		}
		if inComm[x] {
			return true
		}
		if cc, ok := x.(*ast.CommClause); ok && cc.Comm != nil {
			ast.Inspect(cc.Comm, func(y ast.Node) bool {
				if y != nil {
					inComm[y] = true
				}
				return true
			})
		}
		switch node := x.(type) {
		case *ast.SendStmt:
			pass.Reportf(node.Pos(), "channel send in %s reachable from //cohort:server root (%s) "+
				"without a context.Context parameter; a cancelled request cannot stop this wait", n.Name, path)
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				pass.Reportf(node.Pos(), "channel receive in %s reachable from //cohort:server root (%s) "+
					"without a context.Context parameter; a cancelled request cannot stop this wait", n.Name, path)
			}
		case *ast.SelectStmt:
			if selectHasDefault(node) {
				return true // non-blocking poll
			}
			pass.Reportf(node.Pos(), "blocking select in %s reachable from //cohort:server root (%s) "+
				"without a context.Context parameter; add a ctx.Done() case and accept the context", n.Name, path)
		case *ast.RangeStmt:
			if t := info.TypeOf(node.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pass.Reportf(node.Pos(), "range over channel in %s reachable from //cohort:server root (%s) "+
						"without a context.Context parameter; a cancelled request cannot stop this wait", n.Name, path)
				}
			}
		case *ast.CallExpr:
			if what := blockingCall(info, node); what != "" {
				pass.Reportf(node.Pos(), "blocking call %s in %s reachable from //cohort:server root (%s) "+
					"without a context.Context parameter; thread the request context through", what, n.Name, path)
			}
		}
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies calls that park the goroutine for unbounded time:
// WaitGroup.Wait, Cond.Wait, time.Sleep, and the net/http client entry
// points (package-level Get/Post/Head/PostForm and (*http.Client) methods).
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case fn.Name() == "Wait" && sig != nil && sig.Recv() != nil &&
		(isSyncType(sig.Recv().Type(), "WaitGroup") || isSyncType(sig.Recv().Type(), "Cond")):
		recv := "WaitGroup"
		if isSyncType(sig.Recv().Type(), "Cond") {
			recv = "Cond"
		}
		return "sync." + recv + ".Wait"
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case fn.Pkg().Path() == "net/http":
		if sig != nil && sig.Recv() == nil {
			switch fn.Name() {
			case "Get", "Post", "Head", "PostForm":
				return "http." + fn.Name()
			}
			return ""
		}
		if sig != nil && sig.Recv() != nil {
			if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Name() == "Client" {
				return "http.Client." + fn.Name()
			}
		}
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
