package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Shared machinery of the concurrency-contract analyzers (lockorder,
// atomicmix, goleak, ctxflow, syncmisuse): lock-class identity, blocking-op
// classification, and the per-node event streams the interprocedural
// analyses consume.
//
// Lock identity is class-based, like the kernel's lockdep: every instance of
// core.System.mu is one lock class, identified by the *types.Var of the
// field (or of the package-level/local variable for non-field mutexes).
// Program-wide *types.Var pointer identity is exactly what LoadProgram
// provides, so a class seen from internal/experiments is the same class seen
// from internal/obs. Conflating instances over-approximates (two distinct
// Registry values can be locked in either order without deadlock), which is
// the safe direction for an order analysis.

// isSyncType reports whether t (after deref) is the named sync type, e.g.
// isSyncType(t, "Mutex") for sync.Mutex.
func isSyncType(t types.Type, name string) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isMutexType matches sync.Mutex and sync.RWMutex (and pointers to them).
func isMutexType(t types.Type) bool {
	return isSyncType(t, "Mutex") || isSyncType(t, "RWMutex")
}

// lockAcquireMethods / lockReleaseMethods are the blocking mutex methods.
// TryLock/TryRLock are deliberately absent: a try that fails does not block,
// so it cannot complete a deadlock cycle.
var lockAcquireMethods = map[string]bool{"Lock": true, "RLock": true}
var lockReleaseMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// lockClass resolves the receiver expression of a mutex method call to its
// lock-class object plus a human-readable class name. recv is the X of the
// method selector (the `s.mu` in `s.mu.Lock()`). Returns nil when the
// receiver is not a plain variable/field chain (e.g. a map lookup or a call
// result — out of scope for class identity).
func lockClass(info *types.Info, recv ast.Expr) (types.Object, string) {
	switch x := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if _, ok := obj.(*types.Var); !ok {
			return nil, ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj, obj.Pkg().Name() + "." + obj.Name()
		}
		return obj, obj.Name()
	case *ast.SelectorExpr:
		obj := info.Uses[x.Sel]
		if sel, ok := info.Selections[x]; ok {
			obj = sel.Obj()
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return nil, ""
		}
		if !v.IsField() {
			// Package-qualified variable (dep.Mu): same class rule as a
			// plain package-level identifier.
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v, v.Pkg().Name() + "." + v.Name()
			}
			return nil, ""
		}
		// Qualify the field by the type of the expression it is selected
		// from: "Registry.valMu", not a bare "valMu".
		base := info.TypeOf(x.X)
		for base != nil {
			if p, ok := base.(*types.Pointer); ok {
				base = p.Elem()
				continue
			}
			break
		}
		name := v.Name()
		if named, ok := base.(*types.Named); ok {
			pkg := ""
			if named.Obj().Pkg() != nil {
				pkg = named.Obj().Pkg().Name() + "."
			}
			name = pkg + named.Obj().Name() + "." + v.Name()
		}
		return v, name
	case *ast.StarExpr:
		return lockClass(info, x.X)
	}
	return nil, ""
}

// lockEventKind classifies one entry of a node's concurrency event stream.
type lockEventKind uint8

const (
	evAcquire      lockEventKind = iota // mu.Lock() / mu.RLock()
	evRelease                           // mu.Unlock() / mu.RUnlock(), immediate
	evDeferRelease                      // defer mu.Unlock(): held to function end
	evCall                              // static call or literal creation, in source order
)

// lockEvent is one source-ordered event inside a node's own statements.
type lockEvent struct {
	kind    lockEventKind
	lock    types.Object // evAcquire/evRelease/evDeferRelease
	display string       // lock class name for diagnostics
	callee  *CGNode      // evCall
	pos     token.Pos
}

// nodeLockEvents walks one call-graph node's own statements in source order
// and returns its lock/call event stream. Nested function literals belong to
// their own nodes (their creation appears as an evCall, matching the graph's
// creator edges). Calls and literals spawned via `go` are skipped entirely:
// a goroutine does not inherit the spawner's held locks, so its acquisitions
// impose no order against them — the spawned node's own events are analyzed
// when the walker reaches that node.
func nodeLockEvents(g *Graph, n *CGNode) []lockEvent {
	info := n.Pkg.Info
	root := ast.Node(n.Body)
	if n.Lit != nil {
		root = n.Lit.Body
	}
	if root == nil {
		return nil
	}
	var events []lockEvent
	spawned := make(map[ast.Node]bool) // direct call/literal of a go statement
	inDefer := make(map[ast.Node]bool) // the call of a defer statement
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			if callee := g.NodeByLit(lit); callee != nil && !spawned[lit] {
				events = append(events, lockEvent{kind: evCall, callee: callee, pos: lit.Pos()})
			}
			return false // the literal's body belongs to its node
		}
		switch st := x.(type) {
		case *ast.GoStmt:
			spawned[st.Call] = true
			if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		case *ast.DeferStmt:
			inDefer[st.Call] = true
		case *ast.CallExpr:
			if spawned[st] {
				return true // arguments are still evaluated inline; descend
			}
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					if recvIsMutex(fn) {
						obj, display := lockClass(info, sel.X)
						if obj != nil {
							switch {
							case lockAcquireMethods[fn.Name()]:
								events = append(events, lockEvent{kind: evAcquire, lock: obj, display: display, pos: st.Pos()})
							case lockReleaseMethods[fn.Name()]:
								kind := evRelease
								if inDefer[st] {
									kind = evDeferRelease
								}
								events = append(events, lockEvent{kind: kind, lock: obj, display: display, pos: st.Pos()})
							}
							return true
						}
					}
				}
			}
			if callee := resolveStaticCallee(g, info, st); callee != nil {
				events = append(events, lockEvent{kind: evCall, callee: callee, pos: st.Pos()})
			}
		}
		return true
	})
	return events
}

// recvIsMutex reports whether fn is a method of sync.Mutex or sync.RWMutex.
func recvIsMutex(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isMutexType(sig.Recv().Type())
}

// resolveStaticCallee resolves a call expression to the single node it
// statically targets, mirroring Graph.resolveCall but keeping the call
// position. Interface dispatch fans out to every CHA candidate via the
// graph's edges; for the lock analyses the first-match resolution here is
// complemented by the summaries of all edge targets (see lockSummaries).
func resolveStaticCallee(g *Graph, info *types.Info, call *ast.CallExpr) *CGNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return g.byObj[origin(f)]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if f, ok := sel.Obj().(*types.Func); ok {
				return g.byObj[origin(f)]
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return g.byObj[origin(f)]
		}
	}
	return nil
}

// rootObject walks a selector/index/star chain to its base identifier's
// object: the `ch` of `s.ch`, `chans[i]`, `*p.ch`. Returns nil when the base
// is not a plain variable (a call result, a literal).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			// Prefer the selected field's identity: distinct fields are
			// distinct channels/counters even on one struct value.
			if sel, ok := info.Selections[x]; ok {
				if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
					return v
				}
			} else if v, ok := info.Uses[x.Sel].(*types.Var); ok {
				return v // qualified identifier: pkg.Var
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasContextParam reports whether the node's own signature accepts a
// context.Context (the receiver does not count: cancellation must flow per
// call, not per object).
func hasContextParam(info *types.Info, n *CGNode) bool {
	sig := nodeSignature(info, n)
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// hasCloseMethod reports whether t (after deref) declares a Close, Shutdown
// or Stop method — the lifecycle-owner shape that makes a background
// goroutine joinable (obs.DebugServer, net/http.Server).
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, m := range []string{"Close", "Shutdown", "Stop"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), m)
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}

// sortedLockObjects renders map keys in deterministic display order so
// diagnostics and cycle enumeration never depend on map iteration.
func sortedLockObjects(m map[types.Object]string) []types.Object {
	objs := make([]types.Object, 0, len(m))
	//cohort:allow maprange: collect-then-sort; the sort below restores a canonical order
	for o := range m {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool {
		if m[objs[i]] != m[objs[j]] {
			return m[objs[i]] < m[objs[j]]
		}
		return objs[i].Pos() < objs[j].Pos()
	})
	return objs
}

// fmtPos renders a position for embedding in a diagnostic message, file
// base-named so baselines stay stable across checkouts.
func fmtPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
