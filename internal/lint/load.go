package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package ready for analysis.
// Only non-test files are loaded: the determinism contract binds simulator
// code, not its tests (tests may time out runs, seed math/rand, etc.).
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loaders need.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool // part of the standard library
	DepOnly    bool // reached only as a dependency of the listed patterns
}

// Load expands the given `go list` patterns and returns the matched packages
// parsed and type-checked. Type checking resolves imports from source through
// the standard library importer, so it works offline inside the module.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := check(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file in one directory as
// a package with the given import path. Used by the analyzer golden tests to
// load testdata packages that `go list` does not see.
func LoadDir(dir, path string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !isTestFile(m) {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := check(fset, imp, path, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func isTestFile(name string) bool {
	base := filepath.Base(name)
	return len(base) > len("_test.go") && base[len(base)-len("_test.go"):] == "_test.go"
}

// check parses the files and runs the type checker over them.
func check(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
