// Package invariant is the dynamic half of the CoHoRT correctness tooling
// (the static half is internal/lint): a protocol invariant checker that a
// core.System consults after every bus transaction when
// config.System.CheckInvariants is set. It validates the textbook properties
// every coherence variant in this repo must preserve —
//
//   - SWMR: at most one core holds a line in Modified/Exclusive, and an
//     owned copy excludes every other copy;
//   - value consistency: every cached copy carries the line's committed
//     write version (the simulator's stand-in for data values);
//   - LLC inclusion: an inclusive LLC contains every line cached in any L1,
//     except lines it deliberately bypassed around a fully timer-pinned set;
//   - timer protection: a countdown timer never protects a line past one
//     full θ epoch beyond the later of the fetch and the pending request,
//     and scheduled releases fire exactly at the Fig. 3 expiry — never
//     early, never late.
//
// Violations are reported as a structured *Error naming the line, the cycle,
// and the per-core states, so a protocol regression fails with a coherent
// snapshot instead of a corrupted latency number thousands of cycles later.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"cohort/internal/cache"
	"cohort/internal/coherence"
	"cohort/internal/config"
	"cohort/internal/memctrl"
)

// SystemView is the read-only window the checker needs into a running
// system. core.System implements it; the indirection keeps this package free
// of an import cycle with internal/core.
type SystemView interface {
	NumCores() int
	CoreTheta(core int) config.Timer
	CoreL1(core int) *cache.Cache
	Directory() *coherence.Directory
	LLC() *memctrl.LLC
	// HeadDataReady returns the cycle the line's head waiter may be granted
	// its data transfer (every blocking release/invalidation has been
	// scheduled at or before it), or -1 when unknown.
	HeadDataReady(line uint64) int64
}

// Kind classifies a violated invariant.
type Kind uint8

const (
	// KindSWMR: the single-writer/multiple-reader property broke.
	KindSWMR Kind = iota
	// KindValueConsistency: a cached copy disagrees with the committed
	// version of the line.
	KindValueConsistency
	// KindInclusion: a line cached in an L1 is neither in the inclusive LLC
	// nor recorded as an LLC bypass.
	KindInclusion
	// KindTimerProtection: a countdown timer protected a line beyond its θ
	// bound, or a release fired at a cycle other than the computed expiry.
	KindTimerProtection
	// KindModeSwitch: a mode switch programmed a timer register that
	// disagrees with the core's configured Mode-Switch LUT entry.
	KindModeSwitch
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSWMR:
		return "swmr"
	case KindValueConsistency:
		return "value-consistency"
	case KindInclusion:
		return "inclusion"
	case KindTimerProtection:
		return "timer-protection"
	case KindModeSwitch:
		return "mode-switch"
	default:
		return "invariant"
	}
}

// CoreLineState is one core's view of the offending line at the violation.
type CoreLineState struct {
	Core      int
	State     cache.State
	Version   uint64
	FetchedAt int64
}

// Error is a structured invariant violation.
type Error struct {
	// Kind is the violated invariant.
	Kind Kind
	// Cycle is the simulation cycle the violation was detected.
	Cycle int64
	// Line is the line-granularity address involved.
	Line uint64
	// Core is the primary offending core, or -1 when none applies.
	Core int
	// States lists every core's cached state of the line (cores holding the
	// line Invalid are omitted).
	States []CoreLineState
	// Detail is the human-readable specifics.
	Detail string
}

// Error renders the violation with its full per-core context.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant %s violated at cycle %d, line %#x", e.Kind, e.Cycle, e.Line)
	if e.Core >= 0 {
		fmt.Fprintf(&b, ", core %d", e.Core)
	}
	fmt.Fprintf(&b, ": %s", e.Detail)
	if len(e.States) > 0 {
		b.WriteString(" [")
		for i, st := range e.States {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "core%d=%s v%d@%d", st.Core, st.State, st.Version, st.FetchedAt)
		}
		b.WriteString("]")
	}
	return b.String()
}

// Checker validates the protocol invariants of one system. It is stateless
// between calls apart from a check counter; create one per System.
type Checker struct {
	sys    SystemView
	checks int64
}

// NewChecker builds a checker over the given system view.
func NewChecker(sys SystemView) *Checker { return &Checker{sys: sys} }

// Checks reports how many transaction sweeps ran — tests assert it is
// non-zero so "enabled" cannot silently mean "never invoked".
func (c *Checker) Checks() int64 { return c.checks }

// CheckTransaction sweeps every tracked line after a bus transaction
// completed at cycle now and returns the first violation in ascending line
// order, or nil. Cost is proportional to cache capacity, matching the
// documented cost of enabling the checker.
func (c *Checker) CheckTransaction(now int64) *Error {
	c.checks++
	n := c.sys.NumCores()
	copies := make(map[uint64][]CoreLineState)
	for i := 0; i < n; i++ {
		core := i
		c.sys.CoreL1(i).ForEach(func(e *cache.Entry) {
			copies[e.LineAddr] = append(copies[e.LineAddr], CoreLineState{
				Core: core, State: e.State, Version: e.Version, FetchedAt: e.FetchedAt,
			})
		})
	}
	var first *Error
	c.sys.Directory().ForEach(func(line uint64, li *coherence.LineInfo) {
		cs := copies[line]
		delete(copies, line)
		if first != nil {
			return
		}
		first = c.checkLine(now, line, li, cs)
	})
	if first != nil {
		return first
	}
	// Copies the directory never heard of: a protocol bug by itself.
	orphans := make([]uint64, 0, len(copies))
	for line := range copies {
		orphans = append(orphans, line)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, line := range orphans {
		return &Error{
			Kind: KindSWMR, Cycle: now, Line: line, Core: copies[line][0].Core,
			States: copies[line],
			Detail: "line cached in an L1 but not tracked in the directory",
		}
	}
	return nil
}

// checkLine validates one line's global state.
func (c *Checker) checkLine(now int64, line uint64, li *coherence.LineInfo, cs []CoreLineState) *Error {
	fail := func(kind Kind, core int, format string, args ...any) *Error {
		return &Error{Kind: kind, Cycle: now, Line: line, Core: core, States: cs,
			Detail: fmt.Sprintf(format, args...)}
	}

	// --- SWMR ---------------------------------------------------------
	owned := 0
	for _, st := range cs {
		switch st.State {
		case cache.Modified, cache.Exclusive:
			owned++
			if li.Owner != st.Core {
				return fail(KindSWMR, st.Core, "core holds %s but directory owner is %d", st.State, li.Owner)
			}
			if li.OwnerReleased {
				return fail(KindSWMR, st.Core, "core still holds %s after the owner released the line", st.State)
			}
		case cache.Shared:
			if !li.IsSharer(st.Core) {
				return fail(KindSWMR, st.Core, "core holds S but is not registered as a sharer")
			}
		case cache.Invalid:
			// Snapshots carry valid copies only; listed to keep the switch
			// exhaustive over cache.State.
		}
	}
	if owned > 1 {
		return fail(KindSWMR, li.Owner, "%d owned (M/E) copies coexist", owned)
	}
	if owned == 1 && len(cs) > 1 {
		return fail(KindSWMR, li.Owner, "owned copy coexists with %d other copies", len(cs)-1)
	}

	// --- Value consistency -------------------------------------------
	// li.Version counts committed writes; every live copy must carry it
	// (the LLC/memory image is the committed version by construction).
	for _, st := range cs {
		if st.Version != li.Version {
			return fail(KindValueConsistency, st.Core,
				"core holds version %d, committed version is %d", st.Version, li.Version)
		}
	}

	// --- LLC inclusion ------------------------------------------------
	llc := c.sys.LLC()
	if len(cs) > 0 && !llc.Contains(line) && !llc.Bypassed(line) {
		return fail(KindInclusion, cs[0].Core,
			"line cached in %d L1(s) but absent from the inclusive LLC (and not bypassed)", len(cs))
	}

	// --- Timer protection (bound side) -------------------------------
	// An unreleased owner facing a waiter may not outlive one θ epoch past
	// the later of its fetch and the request's broadcast (MSI and θ = 0
	// owners must yield at the broadcast itself). Sharers blocking a write
	// serialize behind the FIFO — their release clocks start only when the
	// write reaches the head — so the sound sweep bound for them is the
	// head's computed data-ready cycle: no blocking copy may outlive it.
	head := li.HeadWaiter()
	if head == nil {
		return nil
	}
	b := head.Broadcast
	if li.Owner != coherence.MemOwner && !li.OwnerReleased {
		if err := c.protectionBound(now, line, li.Owner, li.OwnerFetch, b, cs); err != nil {
			return err
		}
	}
	if head.Write {
		if ready := c.sys.HeadDataReady(line); ready >= 0 && now > ready {
			for _, st := range cs {
				if st.State != cache.Shared || st.Core == head.Core {
					continue
				}
				return fail(KindTimerProtection, st.Core,
					"sharer copy fetched at %d still alive %d cycles after the pending write's data-ready cycle %d (request visible at %d)",
					st.FetchedAt, now-ready, ready, b)
			}
		}
	}
	return nil
}

// protectionBound checks a single copy against the late side of the timer
// guarantee: hold ≤ max(fetched, request) + θ for timed cores, and ≤ request
// for MSI/no-cache cores. Equality is allowed — the release event may be
// queued behind the sweeping transaction within the same cycle.
func (c *Checker) protectionBound(now int64, line uint64, core int, fetched, req int64, cs []CoreLineState) *Error {
	theta := c.sys.CoreTheta(core)
	bound := req
	if theta.Timed() {
		bound = fetched
		if req > bound {
			bound = req
		}
		bound += int64(theta)
	}
	if now <= bound {
		return nil
	}
	return &Error{
		Kind: KindTimerProtection, Cycle: now, Line: line, Core: core, States: cs,
		Detail: fmt.Sprintf("copy fetched at %d with θ=%s still protected %d cycles past its bound %d (request visible at %d)",
			fetched, theta, now-bound, bound, req),
	}
}

// CheckModeSwitch validates one Mode-Switch LUT reprogramming event: at a
// switch to mode, the core's timer register (got) must hold exactly the
// configured LUT entry for that mode (want, read through the raw per-mode
// config slice — deliberately not through the coherence.ModeLUT hardware
// model, whose lookup path is what this predicate audits). The simulator
// applies it at every executed switch; the exhaustive model checker replays
// the same predicate at every reachable state, so the dynamic and static
// checks cannot drift apart.
func CheckModeSwitch(now int64, mode, core int, want, got config.Timer) *Error {
	if got == want {
		return nil
	}
	return &Error{
		Kind: KindModeSwitch, Cycle: now, Core: core,
		Detail: fmt.Sprintf("switch to mode %d programmed θ=%s, LUT entry specifies θ=%s", mode, got, want),
	}
}

// CheckTimerRelease validates one timer release/invalidation event: a core's
// copy of line, (re)fetched at fetchedAt under timer theta, is being handed
// over for a request that became visible at reqVisible. The release must
// fire exactly at coherence.ReleaseTime — earlier breaks the WCET guarantee
// the timer sells to its own core, later breaks the WCML bound it sells to
// everyone else.
func (c *Checker) CheckTimerRelease(now int64, line uint64, core int, fetchedAt int64, theta config.Timer, reqVisible int64) *Error {
	want := coherence.ReleaseTime(fetchedAt, reqVisible, theta)
	if now == want {
		return nil
	}
	side := "late"
	if now < want {
		side = "early"
	}
	return &Error{
		Kind: KindTimerProtection, Cycle: now, Line: line, Core: core,
		Detail: fmt.Sprintf("release fired %s: at cycle %d, want exactly %d (fetched %d, request visible %d, θ=%s)",
			side, now, want, fetchedAt, reqVisible, theta),
	}
}
