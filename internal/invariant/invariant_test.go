package invariant

import (
	"strings"
	"testing"

	"cohort/internal/cache"
	"cohort/internal/config"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindSWMR:             "swmr",
		KindValueConsistency: "value-consistency",
		KindInclusion:        "inclusion",
		KindTimerProtection:  "timer-protection",
		Kind(99):             "invariant",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestErrorFormat(t *testing.T) {
	e := &Error{
		Kind: KindSWMR, Cycle: 640, Line: 0x40, Core: 2,
		States: []CoreLineState{
			{Core: 0, State: cache.Shared, Version: 3, FetchedAt: 100},
			{Core: 2, State: cache.Modified, Version: 3, FetchedAt: 610},
		},
		Detail: "two owners",
	}
	msg := e.Error()
	for _, want := range []string{"swmr", "cycle 640", "0x40", "core 2", "two owners", "core0=S v3@100", "core2=M v3@610"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	// Core -1 (no single offender) omits the core clause.
	e2 := &Error{Kind: KindInclusion, Cycle: 1, Line: 2, Core: -1, Detail: "x"}
	if strings.Contains(e2.Error(), "core -1") {
		t.Errorf("Error() = %q should omit core -1", e2.Error())
	}
}

func TestCheckTimerRelease(t *testing.T) {
	c := NewChecker(nil) // CheckTimerRelease never touches the view
	// Timed: fetched 54, request 64, θ=500 → expiry 554.
	if err := c.CheckTimerRelease(554, 0x40, 0, 54, config.Timer(500), 64); err != nil {
		t.Fatalf("exact release flagged: %v", err)
	}
	if err := c.CheckTimerRelease(560, 0x40, 0, 54, config.Timer(500), 64); err == nil {
		t.Fatal("late release not flagged")
	} else if !strings.Contains(err.Detail, "late") || err.Kind != KindTimerProtection {
		t.Fatalf("late release: %v", err)
	}
	if err := c.CheckTimerRelease(547, 0x40, 0, 54, config.Timer(500), 64); err == nil {
		t.Fatal("early release not flagged")
	} else if !strings.Contains(err.Detail, "early") {
		t.Fatalf("early release: %v", err)
	}
	// MSI releases exactly at the request.
	if err := c.CheckTimerRelease(64, 0x40, 0, 54, config.TimerMSI, 64); err != nil {
		t.Fatalf("MSI release at request flagged: %v", err)
	}
	if err := c.CheckTimerRelease(65, 0x40, 0, 54, config.TimerMSI, 64); err == nil {
		t.Fatal("MSI release after request not flagged")
	}
}
