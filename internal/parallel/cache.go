package parallel

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"cohort/internal/stats"
)

// Cache is a content-addressed memo cache for evaluation results: the key is
// a digest of everything that defines the computation (profile, scenario,
// timer vector — see Key), so identical requests are never re-simulated.
// Correctness rests on jobs being pure: the cached value for a key must be
// byte-identical to recomputing it, which makes a cache hit observationally
// equivalent to a miss and keeps every output independent of cache state.
//
// The zero value is not usable; construct with NewCache. All methods are safe
// for concurrent use.
type Cache[V any] struct {
	mu           sync.Mutex
	m            map[string]V
	hits, misses int64
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{m: make(map[string]V)}
}

// Get returns the cached value for key and counts the probe as a hit or a
// miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores the value for key. Racing writers for the same key are harmless:
// purity guarantees they store identical values.
func (c *Cache[V]) Put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// GetOrCompute returns the cached value for key, computing and storing it
// on a miss. compute runs outside the cache lock, so concurrent callers may
// compute the same key redundantly; purity makes the race harmless — both
// store identical values (see Put). The probe is counted exactly once.
func (c *Cache[V]) GetOrCompute(key string, compute func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := compute()
	c.Put(key, v)
	return v
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every entry and zeroes the counters. The serial-equivalence
// tests call this between the -j 1 and -j N runs so both compute from a cold
// cache.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]V)
	c.hits, c.misses = 0, 0
}

// Stats returns the probe counters.
func (c *Cache[V]) Stats() stats.EngineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return stats.EngineStats{
		Jobs:        c.hits + c.misses,
		CacheHits:   c.hits,
		CacheMisses: c.misses,
	}
}

// Key accumulates the values that define a computation and digests them into
// a content-addressed cache key. Append values in a fixed order; variable-
// length fields are length-prefixed so no two distinct value sequences
// produce the same byte stream. The digest is SHA-256, so key collisions —
// which would silently alias two different computations — are not a practical
// concern.
type Key struct {
	buf []byte
}

// NewKey starts a key in the given domain; distinct domains (e.g. "opt" vs
// "sim") can never collide even over identical payloads.
func NewKey(domain string) *Key {
	k := &Key{}
	k.Str(domain)
	return k
}

// Uint64 appends a fixed-width integer.
func (k *Key) Uint64(v uint64) *Key {
	k.buf = binary.LittleEndian.AppendUint64(k.buf, v)
	return k
}

// Int64 appends a signed integer.
func (k *Key) Int64(v int64) *Key { return k.Uint64(uint64(v)) }

// Int appends a platform int.
func (k *Key) Int(v int) *Key { return k.Int64(int64(v)) }

// Float64 appends a float by its IEEE-754 bit pattern.
func (k *Key) Float64(v float64) *Key { return k.Uint64(math.Float64bits(v)) }

// Bool appends a boolean.
func (k *Key) Bool(v bool) *Key {
	if v {
		return k.Uint64(1)
	}
	return k.Uint64(0)
}

// Bytes appends a length-prefixed byte slice.
func (k *Key) Bytes(b []byte) *Key {
	k.Uint64(uint64(len(b)))
	k.buf = append(k.buf, b...)
	return k
}

// Str appends a length-prefixed string.
func (k *Key) Str(s string) *Key {
	k.Uint64(uint64(len(s)))
	k.buf = append(k.buf, s...)
	return k
}

// Sum returns the content digest as a compact string key.
func (k *Key) Sum() string {
	h := sha256.Sum256(k.buf)
	return string(h[:])
}
