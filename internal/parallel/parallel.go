// Package parallel implements the deterministic evaluation engine that fans
// independent simulator runs and oracle evaluations out across worker
// goroutines (DESIGN.md §9). The GA's fitness evaluations, the hill climber's
// neighbor batches and every experiment cell (one benchmark × one system
// configuration) are embarrassingly parallel: each job reads shared immutable
// inputs and produces one value.
//
// Determinism is structural, not accidental:
//
//   - Results live in index-addressed slots. Workers pull job indices from an
//     atomic counter and write out[i]; nothing is reduced through a channel,
//     so the output order is the submission order no matter how the Go
//     scheduler interleaves the workers.
//   - Jobs never share an RNG. A job that needs randomness derives its own
//     seed with JobSeed (the job index hashed into the base seed), so the
//     random stream a job sees is a function of (base seed, index) only.
//   - With workers == 1 the jobs run inline on the caller's goroutine in
//     index order — the legacy serial path, byte-identical by construction.
//
// The package deliberately knows nothing about the simulator: goroutines wrap
// whole jobs (complete simulations or evaluations), never event callbacks —
// the sim.Engine event loop stays single-threaded and internal/lint's
// eventgoroutine analyzer keeps it that way.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count request: n ≥ 1 is used as given,
// anything else (0, negative) selects runtime.NumCPU().
func DefaultWorkers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// Map evaluates fn(i) for every i in [0, n) across at most workers
// goroutines and returns the results in index order. fn must be safe for
// concurrent invocation and must not mutate state shared between jobs; under
// that contract the returned slice is identical for every worker count.
// workers ≤ 0 selects runtime.NumCPU(); workers == 1 (or n ≤ 1) runs every
// job inline on the caller's goroutine.
//
// A panic inside a job is re-raised on the caller's goroutine; when several
// jobs panic, the one with the lowest index wins, so even failures are
// deterministic.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicIdx = -1
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicIdx == -1 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx != -1 {
		panic(panicVal)
	}
	return out
}

// MapErr evaluates fn(i) for every i in [0, n) like Map and returns the
// results plus the error of the lowest-indexed failing job — exactly the
// error a serial loop that stops at the first failure would report, so the
// parallel and serial paths surface identical errors. Jobs are pure, so
// running the jobs past the first (by index) failure is observable only as
// wasted work, never as different output.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	errs := make([]error, n)
	out := Map(workers, n, func(i int) T {
		v, err := fn(i)
		errs[i] = err
		return v
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// JobSeed derives the RNG seed of job index from base by hashing the index
// into the seed with a splitmix64 finalizer. Jobs seeded this way see random
// streams that are a pure function of (base, index): independent of worker
// count, scheduling order and of every other job — never hand jobs a shared
// *rand.Rand or a parent RNG they advance in arrival order.
func JobSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
