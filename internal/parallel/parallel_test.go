package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"cohort/internal/trace"
)

// TestMapIndexOrder checks that results land in submission order for a
// spread of worker counts, including the inline serial path.
func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			got := Map(workers, n, func(i int) int { return i * i })
			if len(got) != n {
				t.Fatalf("workers=%d n=%d: len=%d", workers, n, len(got))
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("workers=%d n=%d: out[%d]=%d, want %d", workers, n, i, v, i*i)
				}
			}
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts runs a job that derives its own RNG
// from JobSeed and checks every worker count yields byte-identical output.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const base = uint64(42)
	job := func(i int) []float64 {
		rng := trace.NewRNG(JobSeed(base, i))
		out := make([]float64, 8)
		for j := range out {
			out[j] = rng.Float64()
		}
		return out
	}
	want := Map(1, 50, job)
	for _, workers := range []int{2, 4, 8, 16} {
		got := Map(workers, 50, job)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: output differs from serial", workers)
		}
	}
}

func TestMapUsesAllWorkers(t *testing.T) {
	var running, peak atomic.Int64
	gate := make(chan struct{})
	Map(4, 4, func(i int) int {
		r := running.Add(1)
		for {
			p := peak.Load()
			if r <= p || peak.CompareAndSwap(p, r) {
				break
			}
		}
		if r == 4 {
			close(gate) // all four workers are in-flight at once
		}
		<-gate
		running.Add(-1)
		return i
	})
	if peak.Load() != 4 {
		t.Fatalf("peak concurrency = %d, want 4", peak.Load())
	}
}

func TestMapPanicLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				if s, ok := r.(string); !ok || s != "job 3" {
					t.Fatalf("workers=%d: panic = %v, want job 3", workers, r)
				}
			}()
			Map(workers, 20, func(i int) int {
				if i >= 3 {
					panic(fmt.Sprintf("job %d", i))
				}
				return i
			})
		}()
	}
}

// TestMapErrFirstErrorByIndex checks the error semantics match a serial loop
// that stops at the first failure: the lowest-indexed error is returned, for
// every worker count.
func TestMapErrFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		_, err := MapErr(workers, 30, func(i int) (int, error) {
			switch i {
			case 5:
				return 0, errLow
			case 20:
				return 0, errHigh
			}
			return i, nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
	out, err := MapErr(4, 10, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(out) != 10 || out[9] != 9 {
		t.Fatalf("bad output: %v", out)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(3); got != 3 {
		t.Fatalf("DefaultWorkers(3) = %d", got)
	}
	if got := DefaultWorkers(1); got != 1 {
		t.Fatalf("DefaultWorkers(1) = %d", got)
	}
	if got := DefaultWorkers(0); got < 1 {
		t.Fatalf("DefaultWorkers(0) = %d, want >= 1", got)
	}
	if got := DefaultWorkers(-7); got < 1 {
		t.Fatalf("DefaultWorkers(-7) = %d, want >= 1", got)
	}
}

// TestJobSeedIndependence checks seeds are a pure function of (base, index)
// and that distinct indices and bases give distinct seeds.
func TestJobSeedIndependence(t *testing.T) {
	seen := map[uint64]string{}
	for _, base := range []uint64{0, 1, 42, 0xdeadbeef} {
		for i := 0; i < 100; i++ {
			s := JobSeed(base, i)
			if s != JobSeed(base, i) {
				t.Fatalf("JobSeed not pure at base=%d i=%d", base, i)
			}
			id := fmt.Sprintf("%d/%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %#x", prev, id, s)
			}
			seen[s] = id
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache[int]()
	k1 := NewKey("test").Int(1).Sum()
	k2 := NewKey("test").Int(2).Sum()

	if _, ok := c.Get(k1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(k1, 11)
	if v, ok := c.Get(k1); !ok || v != 11 {
		t.Fatalf("Get(k1) = %d, %v", v, ok)
	}
	if _, ok := c.Get(k2); ok {
		t.Fatal("unexpected hit for k2")
	}
	st := c.Stats()
	if st.Jobs != 3 || st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheHitRate() == 0 {
		t.Fatal("hit rate should be nonzero")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}

	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not clear entries")
	}
	if st := c.Stats(); st.Jobs != 0 {
		t.Fatalf("Reset did not clear counters: %+v", st)
	}
}

// TestKeyNoAliasing checks the length-prefix framing: value sequences that
// would concatenate to the same bytes without framing must digest differently.
func TestKeyNoAliasing(t *testing.T) {
	pairs := [][2]*Key{
		{NewKey("a").Str("bc"), NewKey("ab").Str("c")},
		{NewKey("d").Bytes([]byte{1, 2}), NewKey("d").Bytes([]byte{1}).Bytes([]byte{2})},
		{NewKey("d").Str("x").Str(""), NewKey("d").Str("").Str("x")},
		{NewKey("n").Int(1), NewKey("n").Uint64(1).Int(0)},
	}
	for i, p := range pairs {
		if p[0].Sum() == p[1].Sum() {
			t.Fatalf("pair %d: distinct sequences share a digest", i)
		}
	}
	// And identical sequences must agree.
	a := NewKey("opt").Int(4).Float64(1.5).Bool(true).Str("fft").Sum()
	b := NewKey("opt").Int(4).Float64(1.5).Bool(true).Str("fft").Sum()
	if a != b {
		t.Fatal("identical sequences produced different digests")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int]()
	Map(8, 200, func(i int) int {
		k := NewKey("cc").Int(i % 10).Sum()
		if v, ok := c.Get(k); ok {
			return v
		}
		v := (i % 10) * 7
		c.Put(k, v)
		return v
	})
	st := c.Stats()
	if st.Jobs != 200 {
		t.Fatalf("jobs = %d, want 200", st.Jobs)
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d, want 10", c.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := c.Get(NewKey("cc").Int(i).Sum())
		if !ok || v != i*7 {
			t.Fatalf("entry %d: %d, %v", i, v, ok)
		}
	}
}
