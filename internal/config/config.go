// Package config defines the system configuration model for the CoHoRT
// simulator: cache geometry, bus latencies, arbitration policy, per-core
// coherence timers and criticality levels, and the per-mode timer LUT used
// for mode switching. It mirrors the system model in §II and the evaluation
// setup in §VIII of the paper.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
)

// Timer is a per-core coherence timer register value θ (paper §III-B).
//
//   - Timer ≥ 1: time-based coherence; a fetched line is protected for θ
//     cycles and the counter replenishes while no remote requester waits.
//   - TimerNoCache (0): the core does not retain lines; it serves pending
//     requesters and invalidates immediately.
//   - TimerMSI (−1): the countdown counter is disabled and the core runs the
//     standard snooping MSI protocol.
type Timer int32

const (
	// TimerMSI selects the standard MSI snooping protocol (θ = −1).
	TimerMSI Timer = -1
	// TimerNoCache makes the core serve and invalidate immediately (θ = 0).
	TimerNoCache Timer = 0
	// TimerMax is the largest representable timer (16-bit register, §III-B).
	TimerMax Timer = 1<<16 - 1
)

// Timed reports whether the timer selects time-based coherence.
func (t Timer) Timed() bool { return t >= 1 }

// Valid reports whether the timer is within the architectural range.
func (t Timer) Valid() bool { return t >= TimerMSI && t <= TimerMax }

// String renders the timer the way the paper writes it.
func (t Timer) String() string {
	switch {
	case t == TimerMSI:
		return "MSI(-1)"
	case t == TimerNoCache:
		return "0"
	default:
		return fmt.Sprintf("%d", int32(t))
	}
}

// Arbiter identifies the shared-bus arbitration mechanism.
type Arbiter int

const (
	// ArbiterRROF is Round-Robin Oldest-First (paper §III-B): a core keeps
	// its position in the cyclic order until its oldest request is served.
	ArbiterRROF Arbiter = iota
	// ArbiterRR is plain round-robin over pending requests.
	ArbiterRR
	// ArbiterFCFS is first-come first-served (the COTS baseline of Fig. 6).
	ArbiterFCFS
	// ArbiterTDM is time-division multiplexing over critical cores with
	// non-critical cores served only in idle slots (the PENDULUM baseline).
	ArbiterTDM
)

var arbiterNames = map[Arbiter]string{
	ArbiterRROF: "rrof",
	ArbiterRR:   "rr",
	ArbiterFCFS: "fcfs",
	ArbiterTDM:  "tdm",
}

// String returns the lowercase name of the arbiter.
func (a Arbiter) String() string {
	if s, ok := arbiterNames[a]; ok {
		return s
	}
	return fmt.Sprintf("arbiter(%d)", int(a))
}

// MarshalText implements encoding.TextMarshaler.
func (a Arbiter) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Arbiter) UnmarshalText(b []byte) error {
	for k, v := range arbiterNames {
		if v == string(b) {
			*a = k
			return nil
		}
	}
	return fmt.Errorf("config: unknown arbiter %q", b)
}

// Snoop selects the snooping protocol family the MSI-mode cores (θ = −1)
// and the fill policy of all cores follow.
type Snoop int

const (
	// SnoopMSI is the paper's baseline three-state protocol.
	SnoopMSI Snoop = iota
	// SnoopMESI adds the Exclusive state: a load that finds no other cached
	// copy fills in E and a later store upgrades silently, avoiding the
	// upgrade bus transaction.
	SnoopMESI
)

var snoopNames = map[Snoop]string{
	SnoopMSI:  "msi",
	SnoopMESI: "mesi",
}

// String returns the lowercase protocol name.
func (s Snoop) String() string {
	if n, ok := snoopNames[s]; ok {
		return n
	}
	return fmt.Sprintf("snoop(%d)", int(s))
}

// MarshalText implements encoding.TextMarshaler.
func (s Snoop) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Snoop) UnmarshalText(b []byte) error {
	for k, v := range snoopNames {
		if v == string(b) {
			*s = k
			return nil
		}
	}
	return fmt.Errorf("config: unknown snoop protocol %q", b)
}

// Transfer identifies how ownership handovers move data between caches.
type Transfer int

const (
	// TransferDirect moves data cache-to-cache in one bus data slot
	// (CoHoRT, PENDULUM, COTS MSI).
	TransferDirect Transfer = iota
	// TransferViaMemory forces the owner to write back to the shared memory
	// and the requester to re-fetch from it (the PCC/PMSI-family baseline):
	// two data slots per intervening owner.
	TransferViaMemory
)

var transferNames = map[Transfer]string{
	TransferDirect:    "direct",
	TransferViaMemory: "via-memory",
}

// String returns the lowercase name of the transfer policy.
func (t Transfer) String() string {
	if s, ok := transferNames[t]; ok {
		return s
	}
	return fmt.Sprintf("transfer(%d)", int(t))
}

// MarshalText implements encoding.TextMarshaler.
func (t Transfer) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *Transfer) UnmarshalText(b []byte) error {
	for k, v := range transferNames {
		if v == string(b) {
			*t = k
			return nil
		}
	}
	return fmt.Errorf("config: unknown transfer policy %q", b)
}

// Latencies holds the fixed access latencies of the memory hierarchy in
// cycles (paper §VIII: hit 1, request 4, data 50).
type Latencies struct {
	Hit  int64 `json:"hit"`  // private-cache hit
	Req  int64 `json:"req"`  // bus request broadcast
	Data int64 `json:"data"` // bus data transfer (includes LLC access)
	DRAM int64 `json:"dram"` // off-chip access added on an LLC miss (non-perfect LLC)
}

// SlotWidth returns SW, the worst-case width of one bus slot: a request
// broadcast followed by a data transfer.
func (l Latencies) SlotWidth() int64 { return l.Req + l.Data }

// CacheGeometry describes one cache level.
type CacheGeometry struct {
	SizeBytes int `json:"size_bytes"`
	LineBytes int `json:"line_bytes"`
	Ways      int `json:"ways"` // 1 = direct-mapped
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeometry) Sets() int { return g.SizeBytes / (g.LineBytes * g.Ways) }

// Lines returns the total number of lines the cache holds.
func (g CacheGeometry) Lines() int { return g.SizeBytes / g.LineBytes }

func (g CacheGeometry) validate(name string) error {
	switch {
	case g.SizeBytes <= 0:
		return fmt.Errorf("config: %s size must be positive, got %d", name, g.SizeBytes)
	case g.LineBytes <= 0 || bits.OnesCount(uint(g.LineBytes)) != 1:
		return fmt.Errorf("config: %s line size must be a positive power of two, got %d", name, g.LineBytes)
	case g.Ways <= 0:
		return fmt.Errorf("config: %s ways must be positive, got %d", name, g.Ways)
	case g.SizeBytes%(g.LineBytes*g.Ways) != 0:
		return fmt.Errorf("config: %s size %d not divisible by line*ways %d", name, g.SizeBytes, g.LineBytes*g.Ways)
	case bits.OnesCount(uint(g.Sets())) != 1:
		return fmt.Errorf("config: %s set count %d must be a power of two", name, g.Sets())
	}
	return nil
}

// Core configures one core of the MCS (paper §II): its criticality level,
// its per-mode timer LUT, and its per-mode WCML requirement Γ (0 = none).
type Core struct {
	// Criticality is the core's criticality level l_i in [1, Levels];
	// higher is more critical.
	Criticality int `json:"criticality"`
	// TimerLUT maps operating mode m (1-based index m-1) to the timer θ_i^m
	// loaded into the timer register at that mode. This is the Mode-Switch
	// LUT of Fig. 2b. Length must equal SystemConfig.Levels.
	TimerLUT []Timer `json:"timer_lut"`
	// Requirement is Γ_i^m, the WCML requirement per mode in cycles
	// (0 means unconstrained). Optional; length 0 or Levels.
	Requirement []int64 `json:"requirement,omitempty"`
}

// TimerAt returns the timer register value for 1-based mode m.
func (c Core) TimerAt(mode int) Timer { return c.TimerLUT[mode-1] }

// System is the complete configuration of a simulated platform.
type System struct {
	// Cores lists per-core configuration; len(Cores) is N.
	Cores []Core `json:"cores"`
	// Levels is the number of criticality levels L (and operating modes).
	Levels int `json:"levels"`
	// Mode is the initial operating mode m ∈ [1, Levels].
	Mode int `json:"mode"`
	// L1 and LLC describe the cache hierarchy; the LLC is inclusive.
	L1  CacheGeometry `json:"l1"`
	LLC CacheGeometry `json:"llc"`
	// Lat holds the fixed latencies.
	Lat Latencies `json:"latencies"`
	// Arbiter selects the bus arbitration mechanism.
	Arbiter Arbiter `json:"arbiter"`
	// Transfer selects direct cache-to-cache or via-memory handovers.
	Transfer Transfer `json:"transfer"`
	// Snoop selects the snooping protocol family (MSI by default, MESI as
	// the extension); timers compose with either.
	Snoop Snoop `json:"snoop,omitempty"`
	// PerfectLLC, when true, makes every LLC access hit (the paper's
	// headline setting, eliminating off-chip interference).
	PerfectLLC bool `json:"perfect_llc"`
	// PendulumCritOnly, when true, applies the PENDULUM service rule:
	// non-critical cores (criticality below Mode) are served only when no
	// critical core has a pending request. Meaningful with ArbiterTDM.
	PendulumCritOnly bool `json:"pendulum_crit_only,omitempty"`
	// BlockingCaches, when true, disables hits-over-misses: a core stalls
	// on any outstanding miss (a blocking L1 instead of the paper's
	// non-blocking one). Ablation knob; default false.
	BlockingCaches bool `json:"blocking_caches,omitempty"`
	// CheckInvariants, when true, attaches the protocol invariant checker
	// (internal/invariant) to the built system: after every bus transaction
	// it validates SWMR, value consistency, LLC inclusion, and the timer
	// protection bounds, and Run fails with a structured violation at the
	// first breach. Costs a sweep proportional to cache capacity per
	// transaction; meant for tests and debugging, off by default.
	CheckInvariants bool `json:"check_invariants,omitempty"`
}

// N returns the number of cores.
func (s *System) N() int { return len(s.Cores) }

// TimerOf returns the timer of core i at the system's current mode.
func (s *System) TimerOf(i int) Timer { return s.Cores[i].TimerAt(s.Mode) }

// Timers returns the timer vector Θ at the system's current mode.
func (s *System) Timers() []Timer {
	ts := make([]Timer, s.N())
	for i := range s.Cores {
		ts[i] = s.TimerOf(i)
	}
	return ts
}

// Critical reports whether core i is critical at the current mode
// (criticality level ≥ mode, paper §VI).
func (s *System) Critical(i int) bool { return s.Cores[i].Criticality >= s.Mode }

// ErrInvalid wraps all validation failures.
var ErrInvalid = errors.New("config: invalid system")

// Validate checks structural consistency. It must pass before the
// configuration is handed to the simulator or the analysis.
func (s *System) Validate() error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
	}
	if len(s.Cores) == 0 {
		return fail("no cores")
	}
	if s.Levels < 1 {
		return fail("levels must be ≥ 1, got %d", s.Levels)
	}
	if s.Mode < 1 || s.Mode > s.Levels {
		return fail("mode %d out of range [1,%d]", s.Mode, s.Levels)
	}
	for i, c := range s.Cores {
		if c.Criticality < 1 || c.Criticality > s.Levels {
			return fail("core %d criticality %d out of range [1,%d]", i, c.Criticality, s.Levels)
		}
		if len(c.TimerLUT) != s.Levels {
			return fail("core %d timer LUT has %d entries, want %d", i, len(c.TimerLUT), s.Levels)
		}
		for m, th := range c.TimerLUT {
			if !th.Valid() {
				return fail("core %d mode %d timer %d out of range", i, m+1, th)
			}
		}
		if len(c.Requirement) != 0 && len(c.Requirement) != s.Levels {
			return fail("core %d requirement has %d entries, want 0 or %d", i, len(c.Requirement), s.Levels)
		}
		for m, g := range c.Requirement {
			if g < 0 {
				return fail("core %d mode %d requirement %d negative", i, m+1, g)
			}
		}
	}
	if err := s.L1.validate("L1"); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := s.LLC.validate("LLC"); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if s.L1.LineBytes != s.LLC.LineBytes {
		return fail("L1 line %d != LLC line %d", s.L1.LineBytes, s.LLC.LineBytes)
	}
	if s.LLC.Lines() < s.L1.Lines()*s.N() {
		return fail("LLC (%d lines) cannot be inclusive of %d L1s of %d lines",
			s.LLC.Lines(), s.N(), s.L1.Lines())
	}
	if s.Lat.Hit < 1 || s.Lat.Req < 1 || s.Lat.Data < 1 {
		return fail("latencies must be ≥ 1: %+v", s.Lat)
	}
	if !s.PerfectLLC && s.Lat.DRAM < 1 {
		return fail("non-perfect LLC requires DRAM latency ≥ 1")
	}
	return nil
}

// Clone returns a deep copy of the configuration.
func (s *System) Clone() *System {
	out := *s
	out.Cores = make([]Core, len(s.Cores))
	for i, c := range s.Cores {
		cc := c
		cc.TimerLUT = append([]Timer(nil), c.TimerLUT...)
		cc.Requirement = append([]int64(nil), c.Requirement...)
		out.Cores[i] = cc
	}
	return &out
}

// SetTimers overwrites the timer of every core at the given mode.
func (s *System) SetTimers(mode int, timers []Timer) error {
	if mode < 1 || mode > s.Levels {
		return fmt.Errorf("%w: mode %d out of range", ErrInvalid, mode)
	}
	if len(timers) != s.N() {
		return fmt.Errorf("%w: %d timers for %d cores", ErrInvalid, len(timers), s.N())
	}
	for i := range s.Cores {
		s.Cores[i].TimerLUT[mode-1] = timers[i]
	}
	return nil
}

// MarshalJSON ensures the configuration always serializes validated fields.
func (s *System) MarshalJSON() ([]byte, error) {
	type alias System
	return json.Marshal((*alias)(s))
}

// ParseJSON decodes and validates a configuration.
func ParseJSON(data []byte) (*System, error) {
	var s System
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
