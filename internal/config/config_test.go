package config

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimerClasses(t *testing.T) {
	cases := []struct {
		th    Timer
		timed bool
		valid bool
	}{
		{TimerMSI, false, true},
		{TimerNoCache, false, true},
		{1, true, true},
		{500, true, true},
		{TimerMax, true, true},
		{-2, false, false},
		{TimerMax + 1, true, false},
	}
	for _, c := range cases {
		if got := c.th.Timed(); got != c.timed {
			t.Errorf("Timer(%d).Timed() = %v, want %v", c.th, got, c.timed)
		}
		if got := c.th.Valid(); got != c.valid {
			t.Errorf("Timer(%d).Valid() = %v, want %v", c.th, got, c.valid)
		}
	}
	if TimerMSI.String() != "MSI(-1)" {
		t.Errorf("TimerMSI.String() = %q", TimerMSI.String())
	}
	if Timer(300).String() != "300" {
		t.Errorf("Timer(300).String() = %q", Timer(300).String())
	}
}

func TestSlotWidth(t *testing.T) {
	l := Latencies{Hit: 1, Req: 4, Data: 50}
	if sw := l.SlotWidth(); sw != 54 {
		t.Fatalf("SlotWidth = %d, want 54", sw)
	}
}

func TestCacheGeometry(t *testing.T) {
	g := CacheGeometry{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 1}
	if g.Sets() != 256 {
		t.Fatalf("Sets = %d, want 256", g.Sets())
	}
	if g.Lines() != 256 {
		t.Fatalf("Lines = %d, want 256", g.Lines())
	}
	llc := CacheGeometry{SizeBytes: 2 * 1024 * 1024, LineBytes: 64, Ways: 8}
	if llc.Sets() != 4096 {
		t.Fatalf("LLC Sets = %d, want 4096", llc.Sets())
	}
}

func TestPaperDefaultsValid(t *testing.T) {
	s := PaperDefaults(4, 5)
	if err := s.Validate(); err != nil {
		t.Fatalf("PaperDefaults invalid: %v", err)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Lat.SlotWidth() != 54 {
		t.Fatalf("SW = %d, want 54", s.Lat.SlotWidth())
	}
	for i := 0; i < 4; i++ {
		if !s.Critical(i) {
			t.Fatalf("core %d should be critical at mode 1", i)
		}
		if s.TimerOf(i) != TimerMSI {
			t.Fatalf("default timer = %v, want MSI", s.TimerOf(i))
		}
	}
}

func TestValidationFailures(t *testing.T) {
	mk := func(mutate func(*System)) error {
		s := PaperDefaults(4, 3)
		mutate(s)
		return s.Validate()
	}
	cases := []struct {
		name   string
		mutate func(*System)
		substr string
	}{
		{"no cores", func(s *System) { s.Cores = nil }, "no cores"},
		{"bad mode", func(s *System) { s.Mode = 4 }, "mode"},
		{"bad levels", func(s *System) { s.Levels = 0 }, "levels"},
		{"bad criticality", func(s *System) { s.Cores[0].Criticality = 9 }, "criticality"},
		{"short lut", func(s *System) { s.Cores[1].TimerLUT = s.Cores[1].TimerLUT[:1] }, "LUT"},
		{"bad timer", func(s *System) { s.Cores[2].TimerLUT[0] = -7 }, "timer"},
		{"bad requirement", func(s *System) { s.Cores[0].Requirement = []int64{1, -2, 3} }, "requirement"},
		{"bad line", func(s *System) { s.L1.LineBytes = 48 }, "line"},
		{"line mismatch", func(s *System) { s.LLC.LineBytes = 128; s.LLC.SizeBytes = 4 * 1024 * 1024 }, "line"},
		{"not inclusive", func(s *System) { s.LLC.SizeBytes = 32 * 1024 }, "inclusive"},
		{"bad latency", func(s *System) { s.Lat.Data = 0 }, "latencies"},
		{"dram", func(s *System) { s.PerfectLLC = false; s.Lat.DRAM = 0 }, "DRAM"},
		{"sets not pow2", func(s *System) { s.LLC.Ways = 8; s.LLC.SizeBytes = 8 * 64 * 3000 }, "power of two"},
	}
	for _, c := range cases {
		err := mk(c.mutate)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v does not wrap ErrInvalid", c.name, err)
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.substr)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := PaperDefaults(4, 2)
	s.Cores[0].Requirement = []int64{100, 200}
	c := s.Clone()
	c.Cores[0].TimerLUT[0] = 42
	c.Cores[0].Requirement[1] = 7
	if s.Cores[0].TimerLUT[0] == 42 {
		t.Fatal("Clone shares TimerLUT")
	}
	if s.Cores[0].Requirement[1] == 7 {
		t.Fatal("Clone shares Requirement")
	}
}

func TestSetTimers(t *testing.T) {
	s := PaperDefaults(4, 3)
	if err := s.SetTimers(2, []Timer{10, 20, 30, TimerMSI}); err != nil {
		t.Fatal(err)
	}
	s.Mode = 2
	got := s.Timers()
	want := []Timer{10, 20, 30, TimerMSI}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Timers() = %v, want %v", got, want)
		}
	}
	if err := s.SetTimers(9, nil); err == nil {
		t.Fatal("SetTimers with bad mode should fail")
	}
	if err := s.SetTimers(1, []Timer{1}); err == nil {
		t.Fatal("SetTimers with bad length should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := PaperDefaults(4, 5)
	s.Arbiter = ArbiterTDM
	s.Transfer = TransferViaMemory
	s.Cores[2].TimerLUT[3] = 300
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"tdm"`) {
		t.Fatalf("arbiter not serialized as name: %s", data)
	}
	if !strings.Contains(string(data), `"via-memory"`) {
		t.Fatalf("transfer not serialized as name: %s", data)
	}
	got, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arbiter != ArbiterTDM || got.Transfer != TransferViaMemory {
		t.Fatalf("round trip lost enums: %+v", got)
	}
	if got.Cores[2].TimerLUT[3] != 300 {
		t.Fatalf("round trip lost timer: %v", got.Cores[2].TimerLUT)
	}
}

func TestParseJSONRejectsInvalid(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"cores":[]}`)); err == nil {
		t.Fatal("expected validation failure")
	}
	if _, err := ParseJSON([]byte(`{not json`)); err == nil {
		t.Fatal("expected decode failure")
	}
}

func TestUnmarshalUnknownEnums(t *testing.T) {
	var a Arbiter
	if err := a.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("expected unknown arbiter error")
	}
	var tr Transfer
	if err := tr.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("expected unknown transfer error")
	}
	for _, name := range []string{"rrof", "rr", "fcfs", "tdm"} {
		if err := a.UnmarshalText([]byte(name)); err != nil {
			t.Fatalf("arbiter %q: %v", name, err)
		}
		if a.String() != name {
			t.Fatalf("arbiter round trip: %q != %q", a.String(), name)
		}
	}
}

func TestPresets(t *testing.T) {
	pcc := PCC(4)
	if err := pcc.Validate(); err != nil {
		t.Fatalf("PCC invalid: %v", err)
	}
	if pcc.Transfer != TransferViaMemory {
		t.Fatal("PCC must route data via memory")
	}
	pend := PENDULUM([]bool{true, true, false, false})
	if err := pend.Validate(); err != nil {
		t.Fatalf("PENDULUM invalid: %v", err)
	}
	if pend.Arbiter != ArbiterTDM || !pend.PendulumCritOnly {
		t.Fatal("PENDULUM must use TDM with crit-only service")
	}
	if !pend.Critical(0) || pend.Critical(2) {
		t.Fatal("PENDULUM criticality mapping wrong")
	}
	if pend.TimerOf(0) != PENDULUMDefaultTimer || pend.TimerOf(2) != TimerMSI {
		t.Fatalf("PENDULUM timers wrong: %v", pend.Timers())
	}
	msi := MSIFCFS(4)
	if err := msi.Validate(); err != nil {
		t.Fatalf("MSIFCFS invalid: %v", err)
	}
	if msi.Arbiter != ArbiterFCFS {
		t.Fatal("MSIFCFS arbiter wrong")
	}
	ch, err := CoHoRT(4, 1, []Timer{100, 50, TimerMSI, TimerMSI})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(); err != nil {
		t.Fatalf("CoHoRT invalid: %v", err)
	}
	if ch.TimerOf(0) != 100 || ch.TimerOf(2) != TimerMSI {
		t.Fatalf("CoHoRT timers wrong: %v", ch.Timers())
	}
	if _, err := CoHoRT(4, 1, []Timer{1}); err == nil {
		t.Fatal("CoHoRT with wrong timer count should fail")
	}
}

// Property: any syntactically valid geometry with power-of-two parameters
// validates, and Sets*Ways*LineBytes == SizeBytes.
func TestPropertyGeometry(t *testing.T) {
	f := func(setsLog, lineLog, waysLog uint8) bool {
		sets := 1 << (setsLog%10 + 1)
		line := 1 << (lineLog%6 + 4)
		ways := 1 << (waysLog % 4)
		g := CacheGeometry{SizeBytes: sets * line * ways, LineBytes: line, Ways: ways}
		if err := g.validate("x"); err != nil {
			return false
		}
		return g.Sets() == sets && g.Lines() == sets*ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPENDULUMStar(t *testing.T) {
	s, err := PENDULUMStar([]Timer{100, 200, 300, 400})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Arbiter != ArbiterRROF || s.Transfer != TransferDirect {
		t.Fatal("PENDULUM* must use RROF with direct transfers")
	}
	for i := 0; i < 4; i++ {
		if !s.TimerOf(i).Timed() {
			t.Fatalf("core %d not timed", i)
		}
	}
	if _, err := PENDULUMStar([]Timer{100, TimerMSI}); err == nil {
		t.Fatal("MSI core accepted by PENDULUM*")
	}
}

func TestEnumStringsAndMarshal(t *testing.T) {
	if SnoopMSI.String() != "msi" || SnoopMESI.String() != "mesi" {
		t.Fatal("snoop names wrong")
	}
	if Snoop(9).String() != "snoop(9)" || Arbiter(9).String() != "arbiter(9)" || Transfer(9).String() != "transfer(9)" {
		t.Fatal("unknown enum rendering wrong")
	}
	b, err := SnoopMESI.MarshalText()
	if err != nil || string(b) != "mesi" {
		t.Fatalf("snoop MarshalText = %q, %v", b, err)
	}
	var sp Snoop
	if err := sp.UnmarshalText([]byte("mesi")); err != nil || sp != SnoopMESI {
		t.Fatalf("snoop UnmarshalText: %v %v", sp, err)
	}
	ab, _ := ArbiterTDM.MarshalText()
	tb, _ := TransferViaMemory.MarshalText()
	if string(ab) != "tdm" || string(tb) != "via-memory" {
		t.Fatal("enum MarshalText wrong")
	}
}

func TestGeometryValidateDirect(t *testing.T) {
	bad := []CacheGeometry{
		{SizeBytes: 0, LineBytes: 64, Ways: 1},
		{SizeBytes: 1024, LineBytes: 0, Ways: 1},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 1000, LineBytes: 64, Ways: 1},
	}
	for i, g := range bad {
		if err := g.validate("x"); err == nil {
			t.Errorf("case %d accepted: %+v", i, g)
		}
	}
}
