package config

import "fmt"

// PaperDefaults returns the evaluation platform of §VIII: four cores, 16 KiB
// direct-mapped private caches with 64 B lines, an 8-way inclusive LLC, hit /
// request / data latencies of 1 / 4 / 50 cycles, a perfect LLC, and the RROF
// arbiter. Every core starts critical (level = levels) with the MSI timer at
// every mode; callers overwrite the LUT with optimizer output or scenario
// values.
func PaperDefaults(nCores, levels int) *System {
	cores := make([]Core, nCores)
	for i := range cores {
		lut := make([]Timer, levels)
		for m := range lut {
			lut[m] = TimerMSI
		}
		cores[i] = Core{Criticality: levels, TimerLUT: lut}
	}
	return &System{
		Cores:  cores,
		Levels: levels,
		Mode:   1,
		L1: CacheGeometry{
			SizeBytes: 16 * 1024,
			LineBytes: 64,
			Ways:      1,
		},
		LLC: CacheGeometry{
			SizeBytes: 2 * 1024 * 1024,
			LineBytes: 64,
			Ways:      8,
		},
		Lat: Latencies{
			Hit:  1,
			Req:  4,
			Data: 50,
			DRAM: 100,
		},
		Arbiter:    ArbiterRROF,
		Transfer:   TransferDirect,
		PerfectLLC: true,
	}
}

// CoHoRT configures the proposed system: RROF arbitration, direct transfers,
// and the supplied timer vector at mode 1.
func CoHoRT(nCores, levels int, timers []Timer) (*System, error) {
	s := PaperDefaults(nCores, levels)
	if err := s.SetTimers(1, timers); err != nil {
		return nil, err
	}
	return s, nil
}

// PCC configures the predictable-MSI baseline: every core runs MSI, the
// arbiter is predictable (RROF), and ownership handovers are forced through
// the shared memory (two data slots per intervening owner).
func PCC(nCores int) *System {
	s := PaperDefaults(nCores, 1)
	s.Transfer = TransferViaMemory
	return s
}

// PENDULUMDefaultTimer is the fixed, non-requirement-aware timer PENDULUM
// assigns to every critical core in our model of the baseline.
const PENDULUMDefaultTimer Timer = 500

// PENDULUM configures the PENDULUM baseline: time-based coherence with a
// fixed timer on critical cores, TDM arbitration, and non-critical cores
// served only in idle slots. critical[i] marks core i as Cr.
func PENDULUM(critical []bool) *System {
	s := PaperDefaults(len(critical), 2)
	s.Arbiter = ArbiterTDM
	s.PendulumCritOnly = true
	s.Mode = 2 // criticality 2 = Cr, 1 = nCr; mode 2 makes only Cr "critical"
	for i, cr := range critical {
		if cr {
			s.Cores[i].Criticality = 2
			s.Cores[i].TimerLUT = []Timer{PENDULUMDefaultTimer, PENDULUMDefaultTimer}
		} else {
			s.Cores[i].Criticality = 1
			s.Cores[i].TimerLUT = []Timer{TimerMSI, TimerMSI}
		}
	}
	return s
}

// MSIFCFS configures the COTS baseline of Fig. 6: standard MSI on every core
// with a first-come-first-served arbiter.
func MSIFCFS(nCores int) *System {
	s := PaperDefaults(nCores, 1)
	s.Arbiter = ArbiterFCFS
	return s
}

// PENDULUMStar configures the PENDULUM* comparator (reference [17] of the
// paper, the basis of Table I's "requirement-aware but not
// criticality-aware" row): every core runs time-based coherence with a
// requirement-derived timer under predictable RROF arbitration — CoHoRT's
// machinery without heterogeneity (no MSI cores), criticality levels, or
// mode switching.
func PENDULUMStar(timers []Timer) (*System, error) {
	for i, th := range timers {
		if !th.Timed() {
			return nil, fmt.Errorf("config: PENDULUM* requires timed cores; core %d has θ=%v", i, th)
		}
	}
	return CoHoRT(len(timers), 1, timers)
}
