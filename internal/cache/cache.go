// Package cache provides the structural cache model shared by the private L1s
// and the shared LLC: address decomposition, MSI line states, and a
// set-associative array with LRU replacement and pinning support (used to
// keep timer-protected lines resident). The coherence behaviour itself lives
// in internal/coherence; this package only stores state.
package cache

import (
	"fmt"
	"math/bits"
)

// State is the MSI stable state of a cache line.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: read-only copy; other caches may also hold it.
	Shared
	// Exclusive: the only cached copy, clean (MESI only); a store upgrades
	// it to Modified silently, without a bus transaction.
	Exclusive
	// Modified: exclusive, writable, dirty copy; all other caches hold Invalid.
	Modified
)

// String returns "I", "S", "E" or "M".
func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

// Owned reports whether the state makes the holder the line's owner
// (Exclusive or Modified): the only cached copy, registered as the
// directory owner.
func (s State) Owned() bool { return s == Exclusive || s == Modified }

// Entry is one cache line slot. LineAddr is the line-granularity address
// (byte address >> log2(lineBytes)); Version counts committed writes to the
// line and exists so integration tests can assert data propagation.
type Entry struct {
	LineAddr  uint64
	State     State
	Version   uint64
	FetchedAt int64  // cycle the line was installed (timer epoch base)
	lastUse   uint64 // LRU stamp
}

// Valid reports whether the slot holds a line.
func (e *Entry) Valid() bool { return e.State != Invalid }

// Cache is a set-associative cache array. Ways = 1 models the paper's
// direct-mapped private caches. The zero value is not usable; use New.
type Cache struct {
	sets      [][]Entry
	lineShift uint
	setMask   uint64
	useClock  uint64
}

// New builds a cache of sizeBytes capacity with the given line size and
// associativity. Sizes must produce a power-of-two set count (validated by
// config; double-checked here).
func New(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	if bits.OnesCount(uint(lineBytes)) != 1 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", lineBytes))
	}
	nSets := sizeBytes / (lineBytes * ways)
	if nSets <= 0 || bits.OnesCount(uint(nSets)) != 1 {
		panic(fmt.Sprintf("cache: set count %d not a positive power of two", nSets))
	}
	sets := make([][]Entry, nSets)
	backing := make([]Entry, nSets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return &Cache{
		sets:      sets,
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
		setMask:   uint64(nSets - 1),
	}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return len(c.sets[0]) }

// LineAddr converts a byte address to a line-granularity address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// SetIndex returns the set a line address maps to.
func (c *Cache) SetIndex(lineAddr uint64) int { return int(lineAddr & c.setMask) }

// Lookup returns the entry holding lineAddr, or nil on a miss. It does not
// update recency; call Touch on a hit.
func (c *Cache) Lookup(lineAddr uint64) *Entry {
	set := c.sets[c.SetIndex(lineAddr)]
	for i := range set {
		if set[i].Valid() && set[i].LineAddr == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// Touch marks the entry most-recently used.
func (c *Cache) Touch(e *Entry) {
	c.useClock++
	e.lastUse = c.useClock
}

// VictimFor selects the slot that would hold lineAddr: an invalid slot if one
// exists, otherwise the least-recently-used slot for which pinned (if
// non-nil) returns false. It returns nil when every valid slot is pinned.
// The caller is responsible for handling write-back/invalidation of the
// returned slot before calling Fill.
func (c *Cache) VictimFor(lineAddr uint64, pinned func(*Entry) bool) *Entry {
	set := c.sets[c.SetIndex(lineAddr)]
	var victim *Entry
	for i := range set {
		e := &set[i]
		if !e.Valid() {
			return e
		}
		if pinned != nil && pinned(e) {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	return victim
}

// Fill installs lineAddr into slot e with the given state, stamping recency
// and the fetch cycle. The slot's previous contents are overwritten; the
// caller must have evicted them first.
func (c *Cache) Fill(e *Entry, lineAddr uint64, st State, now int64) {
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	e.LineAddr = lineAddr
	e.State = st
	e.FetchedAt = now
	c.Touch(e)
}

// Invalidate empties slot e.
func (c *Cache) Invalidate(e *Entry) {
	*e = Entry{}
}

// InvalidateAll empties the whole cache (used on mode-switch flush ablations
// and tests).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = Entry{}
		}
	}
}

// ForEach calls fn for every valid entry; iteration order is deterministic
// (set-major, way-minor).
func (c *Cache) ForEach(fn func(*Entry)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid() {
				fn(&c.sets[s][w])
			}
		}
	}
}

// EntriesLRU returns the valid entries of set s ordered least-recently-used
// first (ties broken by way index, which cannot occur for entries touched
// through Touch). Callers needing a canonical view of replacement state use
// the ordering rather than the raw use stamps, so two caches differing only
// in absolute use-clock values compare equal.
func (c *Cache) EntriesLRU(s int) []*Entry {
	return c.AppendEntriesLRU(nil, s)
}

// AppendEntriesLRU appends the set's valid entries to dst in EntriesLRU
// order and returns the extended slice. Passing a reused buffer (dst[:0])
// makes the snapshot allocation-free; the insertion sort is stable, so ties
// keep ascending way order exactly as sort.SliceStable did. Sets hold a
// handful of ways, where insertion sort beats the generic sort outright.
func (c *Cache) AppendEntriesLRU(dst []*Entry, s int) []*Entry {
	set := c.sets[s]
	base := len(dst)
	for w := range set {
		if !set[w].Valid() {
			continue
		}
		e := &set[w]
		i := len(dst)
		dst = append(dst, e)
		for i > base && dst[i-1].lastUse > e.lastUse {
			dst[i] = dst[i-1]
			i--
		}
		dst[i] = e
	}
	return dst
}

// CountValid returns the number of resident lines.
func (c *Cache) CountValid() int {
	n := 0
	c.ForEach(func(*Entry) { n++ })
	return n
}
