package cache

import (
	"testing"
	"testing/quick"
)

func newL1() *Cache { return New(16*1024, 64, 1) } // 256 sets, direct-mapped

func TestGeometry(t *testing.T) {
	c := newL1()
	if c.Sets() != 256 || c.Ways() != 1 || c.LineBytes() != 64 {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineBytes())
	}
	llc := New(2*1024*1024, 64, 8)
	if llc.Sets() != 4096 || llc.Ways() != 8 {
		t.Fatalf("LLC geometry: sets=%d ways=%d", llc.Sets(), llc.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, 64, 1) },
		func() { New(16*1024, 48, 1) },  // line not power of two
		func() { New(3*64*10, 64, 10) }, // sets = 3
		func() { New(16*1024, 64, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAddrDecomposition(t *testing.T) {
	c := newL1()
	if c.LineAddr(0x1000) != 0x40 {
		t.Fatalf("LineAddr(0x1000) = %#x, want 0x40", c.LineAddr(0x1000))
	}
	// Two addresses in the same line map to the same line address.
	if c.LineAddr(0x1000) != c.LineAddr(0x103f) {
		t.Fatal("same-line addresses got different line addresses")
	}
	if c.LineAddr(0x1000) == c.LineAddr(0x1040) {
		t.Fatal("adjacent lines aliased")
	}
	// Lines 256 apart in line space collide in a 256-set direct-mapped cache.
	if c.SetIndex(5) != c.SetIndex(5+256) {
		t.Fatal("expected set conflict for line+sets")
	}
	if c.SetIndex(5) == c.SetIndex(6) {
		t.Fatal("adjacent lines in same set")
	}
}

func TestLookupFillInvalidate(t *testing.T) {
	c := newL1()
	if c.Lookup(7) != nil {
		t.Fatal("lookup in empty cache hit")
	}
	slot := c.VictimFor(7, nil)
	if slot == nil || slot.Valid() {
		t.Fatal("VictimFor in empty cache must return an invalid slot")
	}
	c.Fill(slot, 7, Shared, 100)
	got := c.Lookup(7)
	if got == nil || got.State != Shared || got.FetchedAt != 100 {
		t.Fatalf("after Fill: %+v", got)
	}
	if c.CountValid() != 1 {
		t.Fatalf("CountValid = %d", c.CountValid())
	}
	c.Invalidate(got)
	if c.Lookup(7) != nil || c.CountValid() != 0 {
		t.Fatal("Invalidate did not empty the slot")
	}
}

func TestFillInvalidPanics(t *testing.T) {
	c := newL1()
	defer func() {
		if recover() == nil {
			t.Fatal("Fill(Invalid) did not panic")
		}
	}()
	c.Fill(c.VictimFor(1, nil), 1, Invalid, 0)
}

func TestDirectMappedConflict(t *testing.T) {
	c := newL1()
	c.Fill(c.VictimFor(5, nil), 5, Modified, 0)
	v := c.VictimFor(5+256, nil) // same set
	if v == nil || !v.Valid() || v.LineAddr != 5 {
		t.Fatalf("direct-mapped conflict must pick resident line, got %+v", v)
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(4*64*1, 64, 4) // 1 set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.Fill(c.VictimFor(i, nil), i, Shared, 0)
	}
	// Touch 0 so 1 becomes LRU.
	c.Touch(c.Lookup(0))
	v := c.VictimFor(99, nil)
	if v.LineAddr != 1 {
		t.Fatalf("LRU victim = %d, want 1", v.LineAddr)
	}
	// Touching 1 moves victim to 2.
	c.Touch(c.Lookup(1))
	if v := c.VictimFor(99, nil); v.LineAddr != 2 {
		t.Fatalf("LRU victim = %d, want 2", v.LineAddr)
	}
}

func TestPinnedVictims(t *testing.T) {
	c := New(2*64, 64, 2) // 1 set, 2 ways
	c.Fill(c.VictimFor(1, nil), 1, Modified, 0)
	c.Fill(c.VictimFor(2, nil), 2, Modified, 0)
	pinned := func(e *Entry) bool { return e.LineAddr == 1 }
	if v := c.VictimFor(3, pinned); v == nil || v.LineAddr != 2 {
		t.Fatalf("pinned victim selection returned %+v, want line 2", v)
	}
	all := func(*Entry) bool { return true }
	if v := c.VictimFor(3, all); v != nil {
		t.Fatalf("all-pinned set must return nil, got %+v", v)
	}
}

func TestInvalidateAllAndForEach(t *testing.T) {
	c := newL1()
	for i := uint64(0); i < 10; i++ {
		c.Fill(c.VictimFor(i, nil), i, Shared, 0)
	}
	var lines []uint64
	c.ForEach(func(e *Entry) { lines = append(lines, e.LineAddr) })
	if len(lines) != 10 {
		t.Fatalf("ForEach visited %d, want 10", len(lines))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] <= lines[i-1] {
			t.Fatal("ForEach order not deterministic ascending for sequential fills")
		}
	}
	c.InvalidateAll()
	if c.CountValid() != 0 {
		t.Fatal("InvalidateAll left valid lines")
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("State strings wrong")
	}
}

// Property: a cache never holds two entries for the same line address, and
// never holds more valid lines than its capacity, under arbitrary fill
// sequences.
func TestPropertyNoDuplicatesNoOverflow(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(8*64*2, 64, 2) // 8 sets, 2 ways
		for _, l := range lines {
			la := uint64(l % 64)
			if c.Lookup(la) != nil {
				c.Touch(c.Lookup(la))
				continue
			}
			v := c.VictimFor(la, nil)
			if v == nil {
				return false // unpinned cache must always find a victim
			}
			if v.Valid() {
				c.Invalidate(v)
			}
			c.Fill(v, la, Shared, 0)
		}
		seen := map[uint64]int{}
		c.ForEach(func(e *Entry) { seen[e.LineAddr]++ })
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return c.CountValid() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a line installed into the set it maps to is always found by
// Lookup until invalidated.
func TestPropertyLookupAfterFill(t *testing.T) {
	f := func(lineAddrs []uint32) bool {
		c := New(2*1024*1024, 64, 8)
		for _, l := range lineAddrs {
			la := uint64(l)
			if c.Lookup(la) == nil {
				v := c.VictimFor(la, nil)
				if v.Valid() {
					c.Invalidate(v)
				}
				c.Fill(v, la, Modified, 1)
			}
			if got := c.Lookup(la); got == nil || got.LineAddr != la {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(2*1024*1024, 64, 8)
	for i := uint64(0); i < 1024; i++ {
		c.Fill(c.VictimFor(i, nil), i, Shared, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(uint64(i)%1024) == nil {
			b.Fatal("unexpected miss")
		}
	}
}

func TestStateOwned(t *testing.T) {
	if Invalid.Owned() || Shared.Owned() {
		t.Fatal("I/S must not be owned")
	}
	if !Exclusive.Owned() || !Modified.Owned() {
		t.Fatal("E/M must be owned")
	}
	if Exclusive.String() != "E" {
		t.Fatalf("Exclusive.String() = %q", Exclusive.String())
	}
}
