// Package vcd writes IEEE-1364 Value Change Dump files — the waveform
// format every EDA viewer (GTKWave, Surfer, …) reads — and provides a
// Recorder that turns the simulator's event stream into a wave view of the
// platform: bus activity, per-core outstanding misses, and the operating
// mode. Attach it with System.SetTracer and open the dump next to the
// paper's figures to watch timers holding lines and mode switches
// re-programming the platform at run time.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"cohort/internal/core"
)

// Signal is one declared VCD variable.
type Signal struct {
	id    string
	name  string
	width int
	last  uint64
	dirty bool // true until the first value is emitted
}

// Writer emits a VCD file. Declare all signals with AddSignal, then emit
// changes in nondecreasing time order and Close.
type Writer struct {
	w         *bufio.Writer
	signals   []*Signal
	headerOut bool
	time      int64
	timeOut   bool
	err       error
}

// NewWriter wraps w. The timescale is fixed at 1ns (one simulated cycle).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), time: -1}
}

// AddSignal declares a wire of the given bit width (1..64) before the first
// Change call.
func (v *Writer) AddSignal(name string, width int) (*Signal, error) {
	if v.headerOut {
		return nil, fmt.Errorf("vcd: AddSignal(%q) after first change", name)
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("vcd: signal %q width %d out of range [1,64]", name, width)
	}
	// Identifier: printable ASCII starting at '!' (33), base-94 encoded.
	n := len(v.signals)
	id := ""
	for {
		id = string(rune(33+n%94)) + id
		n = n/94 - 1
		if n < 0 {
			break
		}
	}
	s := &Signal{id: id, name: name, width: width, dirty: true}
	v.signals = append(v.signals, s)
	return s, nil
}

// header writes the declaration section once.
func (v *Writer) header() {
	if v.headerOut || v.err != nil {
		return
	}
	v.headerOut = true
	fmt.Fprintln(v.w, "$timescale 1ns $end")
	fmt.Fprintln(v.w, "$scope module cohort $end")
	for _, s := range v.signals {
		fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", s.width, s.id, s.name)
	}
	fmt.Fprintln(v.w, "$upscope $end")
	fmt.Fprintln(v.w, "$enddefinitions $end")
}

// Change records signal = value at time t. Times must not decrease.
func (v *Writer) Change(t int64, s *Signal, value uint64) error {
	if v.err != nil {
		return v.err
	}
	v.header()
	if t < v.time {
		v.err = fmt.Errorf("vcd: time moved backwards: %d < %d", t, v.time)
		return v.err
	}
	if !s.dirty && s.last == value {
		return nil // no change
	}
	if t != v.time || !v.timeOut {
		fmt.Fprintf(v.w, "#%d\n", t)
		v.time = t
		v.timeOut = true
	}
	if s.width == 1 {
		fmt.Fprintf(v.w, "%d%s\n", value&1, s.id)
	} else {
		fmt.Fprintf(v.w, "b%b %s\n", value, s.id)
	}
	s.last = value
	s.dirty = false
	return nil
}

// Close flushes the dump.
func (v *Writer) Close() error {
	if v.err != nil {
		return v.err
	}
	v.header()
	return v.w.Flush()
}

// Bus signal encoding in the Recorder's dump.
const (
	BusIdle      = 0
	BusBroadcast = 1
	BusData      = 2
)

// event is a deferred signal change.
type event struct {
	cycle int64
	fn    func()
}

// Recorder converts the simulator's trace events into VCD signals:
//
//	bus        [2]  idle / broadcast / data
//	mode       [4]  current operating mode
//	core<i>_miss [1] outstanding miss per core
//	core<i>_inv  [1] pulses on invalidation
type Recorder struct {
	vw      *Writer
	bus     *Signal
	mode    *Signal
	miss    []*Signal
	inv     []*Signal
	pending []event // deferred future changes (bus release, pulse clears)
}

// NewRecorder builds a recorder for nCores cores writing to w.
func NewRecorder(w io.Writer, nCores int) (*Recorder, error) {
	vw := NewWriter(w)
	r := &Recorder{vw: vw}
	var err error
	if r.bus, err = vw.AddSignal("bus", 2); err != nil {
		return nil, err
	}
	if r.mode, err = vw.AddSignal("mode", 4); err != nil {
		return nil, err
	}
	for i := 0; i < nCores; i++ {
		m, err := vw.AddSignal(fmt.Sprintf("core%d_miss", i), 1)
		if err != nil {
			return nil, err
		}
		r.miss = append(r.miss, m)
		iv, err := vw.AddSignal(fmt.Sprintf("core%d_inv", i), 1)
		if err != nil {
			return nil, err
		}
		r.inv = append(r.inv, iv)
	}
	return r, nil
}

// flushPending applies deferred changes with timestamps ≤ t.
func (r *Recorder) flushPending(t int64) {
	sort.SliceStable(r.pending, func(i, j int) bool { return r.pending[i].cycle < r.pending[j].cycle })
	kept := r.pending[:0]
	for _, e := range r.pending {
		if e.cycle <= t {
			e.fn()
		} else {
			kept = append(kept, e)
		}
	}
	r.pending = kept
}

// defer_ queues a change for a future cycle.
func (r *Recorder) defer_(cycle int64, fn func()) {
	r.pending = append(r.pending, event{cycle: cycle, fn: fn})
}

// Trace consumes one simulator event; Recorder implements core.Tracer.
func (r *Recorder) Trace(ev core.TraceEvent) {
	cycle, until := ev.Cycle, ev.Until
	r.flushPending(cycle)
	switch ev.Kind {
	case core.EvBroadcast:
		r.vw.Change(cycle, r.bus, BusBroadcast)
		r.defer_(until, func() { r.vw.Change(until, r.bus, BusIdle) })
	case core.EvData:
		r.vw.Change(cycle, r.bus, BusData)
		r.defer_(until, func() { r.vw.Change(until, r.bus, BusIdle) })
	case core.EvMissStart:
		if ev.Core >= 0 && ev.Core < len(r.miss) {
			r.vw.Change(cycle, r.miss[ev.Core], 1)
		}
	case core.EvMissEnd:
		if ev.Core >= 0 && ev.Core < len(r.miss) {
			r.vw.Change(cycle, r.miss[ev.Core], 0)
		}
	case core.EvInvalidate:
		// One-cycle pulse.
		if ev.Core >= 0 && ev.Core < len(r.inv) {
			r.vw.Change(cycle, r.inv[ev.Core], 1)
			r.defer_(cycle+1, func() { r.vw.Change(cycle+1, r.inv[ev.Core], 0) })
		}
	case core.EvModeSwitch:
		r.vw.Change(cycle, r.mode, ev.Line)
	}
}

// Close flushes deferred changes and the underlying writer.
func (r *Recorder) Close() error {
	r.flushPending(1 << 62)
	return r.vw.Close()
}
