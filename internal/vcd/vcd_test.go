package vcd

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"cohort/internal/config"
	"cohort/internal/core"
	"cohort/internal/trace"
)

func TestWriterBasics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a, err := w.AddSignal("clk", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AddSignal("state", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Change(0, a, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Change(0, b, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Change(10, a, 0); err != nil {
		t.Fatal(err)
	}
	// Redundant change: suppressed.
	if err := w.Change(11, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$var wire 1 ! clk $end",
		`$var wire 4 " state $end`,
		"$enddefinitions $end",
		"#0", "1!", `b101 "`, "#10", "0!",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#11") {
		t.Fatalf("redundant change emitted:\n%s", out)
	}
}

func TestWriterRejectsBackwardsTime(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s, _ := w.AddSignal("x", 1)
	if err := w.Change(10, s, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Change(5, s, 0); err == nil {
		t.Fatal("backwards time accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close must surface the sticky error")
	}
}

func TestWriterRejectsLateSignals(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s, _ := w.AddSignal("x", 1)
	w.Change(0, s, 1)
	if _, err := w.AddSignal("late", 1); err == nil {
		t.Fatal("AddSignal after first change accepted")
	}
	if _, err := w.AddSignal("wide", 65); err == nil {
		t.Fatal("width 65 accepted")
	}
}

func TestWriterManySignalsUniqueIDs(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s, err := w.AddSignal("s", 1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.id] {
			t.Fatalf("duplicate VCD id %q", s.id)
		}
		seen[s.id] = true
	}
}

func TestRecorderEndToEnd(t *testing.T) {
	// Run a small contended simulation with the recorder attached and check
	// the dump structure.
	cfg := config.PaperDefaults(2, 2)
	cfg.Cores[0].TimerLUT = []config.Timer{100, 100}
	cfg.Cores[1].TimerLUT = []config.Timer{100, config.TimerMSI}
	tr := &trace.Trace{Name: "t", Streams: []trace.Stream{
		{{Addr: 0x1000, Kind: trace.Write}, {Addr: 0x1000, Kind: trace.Read, Gap: 30}},
		{{Addr: 0x1000, Kind: trace.Write, Gap: 5}},
	}}
	sys, err := core.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetTracer(rec); err != nil {
		t.Fatal(err)
	}
	if err := sys.ScheduleModeSwitch(500, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"core0_miss", "core1_miss", "core0_inv", "bus", "mode",
		"$enddefinitions $end",
		"b1 ", // bus broadcast
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// The mode switch appears (mode signal takes value 2 = b10 at t=500).
	if !strings.Contains(out, "#500") {
		t.Fatalf("mode switch timestamp missing:\n%s", out)
	}
	// Bus returns to idle at the end.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	busID := ""
	for _, l := range lines {
		if strings.Contains(l, " bus $end") {
			fields := strings.Fields(l) // $var wire 2 <id> bus $end
			busID = fields[3]
		}
	}
	if busID == "" {
		t.Fatal("bus declaration missing")
	}
	lastBus := ""
	for _, l := range lines {
		if strings.HasSuffix(l, " "+busID) {
			lastBus = l
		}
	}
	if !strings.HasPrefix(lastBus, "b0 ") {
		t.Fatalf("final bus value = %q, want idle", lastBus)
	}
}

func TestRecorderEventOrderWithDeferred(t *testing.T) {
	// A deferred bus release followed by a later grant must not move time
	// backwards.
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec.Trace(core.TraceEvent{Cycle: 0, Kind: core.EvBroadcast, Core: 0, Until: 4})
	rec.Trace(core.TraceEvent{Cycle: 4, Kind: core.EvData, Core: 0, Until: 54})
	rec.Trace(core.TraceEvent{Cycle: 100, Kind: core.EvBroadcast, Core: 0, Until: 104})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Timestamps must appear in increasing order.
	last := int64(-1)
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "#") {
			ts, err := strconv.ParseInt(l[1:], 10, 64)
			if err != nil {
				t.Fatalf("bad timestamp %q", l)
			}
			if ts < last {
				t.Fatalf("timestamps regressed: %d after %d\n%s", ts, last, out)
			}
			last = ts
		}
	}
}
