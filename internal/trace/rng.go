package trace

import "math"

// RNG is a splitmix64 pseudo-random generator. It is tiny, fast, has no
// global state, and gives bit-identical sequences on every platform, which
// keeps trace generation and the GA deterministic without math/rand's
// versioned behaviour.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Geometric returns a sample from a geometric distribution with the given
// mean (0 mean always returns 0). Used for compute gaps between accesses.
func (r *RNG) Geometric(mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	// P(stop) = 1/(mean+1) per trial gives E[X] = mean.
	p := 1.0 / (mean + 1.0)
	var n int64
	for r.Float64() >= p {
		n++
		if n > int64(mean)*64+1024 { // hard cap against pathological streaks
			break
		}
	}
	return n
}

// Fork derives an independent generator. Streams produced by the parent and
// the child do not overlap for practical sequence lengths.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xda3e39cb94b95bdb)
}

// Zipf samples indices in [0, n) with a power-law bias toward low indices,
// using a precomputed cumulative table. s controls the skew (s=0 uniform;
// s≈1 classic Zipf).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n items with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("trace: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), s)
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one index using randomness from r.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cdf entry ≥ u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
