package trace

import (
	"bytes"
	"strings"
	"testing"
)

// The parsers feed the parallel evaluation engine: a malformed trace file is
// decoded on a worker goroutine, where a panic would take down the whole
// process instead of failing one cell. The fuzzers assert the crash-free
// property directly; the committed corpus under testdata/fuzz seeds both
// well-formed and adversarial inputs so `go test` replays them on every run.

// fuzzSeedTrace is a small well-formed trace whose binary encoding seeds the
// corpus: multiple cores, both access kinds, non-zero gaps, and address
// deltas in both directions so the zig-zag path is covered.
func fuzzSeedTrace() *Trace {
	return &Trace{
		Name: "fuzz-seed",
		Streams: []Stream{
			{
				{Addr: 0x1000, Kind: Read, Gap: 0},
				{Addr: 0x1040, Kind: Write, Gap: 3},
				{Addr: 0x0fc0, Kind: Read, Gap: 120},
			},
			{
				{Addr: 0xffff_ffff_0000, Kind: Write, Gap: 1},
			},
			{},
		},
	}
}

func FuzzParseBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedTrace().WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                           // truncated mid-stream
	f.Add([]byte("CTRB\x01"))                                             // header only
	f.Add([]byte("CTRB\x02\x00\x01\x01"))                                 // wrong version
	f.Add([]byte("NOPE\x01\x00\x01\x01"))                                 // bad magic
	f.Add([]byte{})                                                       // empty
	f.Add([]byte("CTRB\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // huge core count

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful parse must round-trip: re-encoding and re-parsing
		// yields the same trace, and no gap may have wrapped negative.
		for c, s := range tr.Streams {
			for i, a := range s {
				if a.Gap < 0 {
					t.Fatalf("core %d access %d: negative gap %d survived parsing", c, i, a.Gap)
				}
			}
		}
		var out bytes.Buffer
		if err := tr.WriteBinary(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		tr2, err := ParseBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if tr.Name != tr2.Name || len(tr.Streams) != len(tr2.Streams) {
			t.Fatalf("round-trip mismatch: %q/%d vs %q/%d",
				tr.Name, len(tr.Streams), tr2.Name, len(tr2.Streams))
		}
	})
}

func FuzzParseDinero(f *testing.F) {
	f.Add("0 1000\n1 1008\n2 2000\n")
	f.Add("# comment\n-trailer\n\n0 0x1000 extra fields 99\n")
	f.Add("3 1000\n")      // unknown access type
	f.Add("0 zzzz\n")      // bad hex address
	f.Add("justoneword\n") // too few fields
	f.Add("0 ffffffffffffffff\n")
	f.Add("0 10000000000000000\n") // address overflows uint64
	f.Add("")

	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseDinero(strings.NewReader(in))
		if err != nil {
			return
		}
		for i, a := range s {
			if a.Kind != Read && a.Kind != Write {
				t.Fatalf("access %d: invalid kind %d", i, a.Kind)
			}
			if a.Gap != 0 {
				t.Fatalf("access %d: din format carries no gaps, got %d", i, a.Gap)
			}
		}
	})
}
