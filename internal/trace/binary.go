package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary trace format: a compact varint encoding for large workloads
// (ocean-sized traces are ~20× smaller than the text form and decode an
// order of magnitude faster).
//
//	magic   "CTRB" '\x01'
//	name    uvarint length + bytes
//	cores   uvarint
//	per core:
//	  count uvarint
//	  per access:
//	    flags  1 byte (bit0: write)
//	    addr   uvarint delta against the previous address (zig-zag)
//	    gap    uvarint
const (
	binaryMagic   = "CTRB"
	binaryVersion = 1
)

// ErrBadMagic reports a stream that is not a binary trace.
var ErrBadMagic = errors.New("trace: bad binary magic")

// WriteBinary encodes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Streams))); err != nil {
		return err
	}
	for _, s := range t.Streams {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		prev := uint64(0)
		for _, a := range s {
			flags := byte(0)
			if a.Kind == Write {
				flags |= 1
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
			delta := int64(a.Addr) - int64(prev)
			if err := putUvarint(zigzag(delta)); err != nil {
				return err
			}
			prev = a.Addr
			if err := putUvarint(uint64(a.Gap)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ParseBinary decodes a trace written by WriteBinary.
func ParseBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic)+1)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if string(magic[:len(binaryMagic)]) != binaryMagic {
		return nil, ErrBadMagic
	}
	if magic[len(binaryMagic)] != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d", magic[len(binaryMagic)])
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	nCores, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: core count: %w", err)
	}
	if nCores > 1<<16 {
		return nil, fmt.Errorf("trace: implausible core count %d", nCores)
	}
	t := &Trace{Name: string(name), Streams: make([]Stream, nCores)}
	for c := range t.Streams {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: core %d count: %w", c, err)
		}
		if count > 1<<31 {
			return nil, fmt.Errorf("trace: implausible access count %d", count)
		}
		// Preallocate conservatively: a hostile header must not force a
		// gigantic allocation before the stream proves it has the data.
		prealloc := count
		if prealloc > 1<<16 {
			prealloc = 1 << 16
		}
		s := make(Stream, 0, prealloc)
		prev := uint64(0)
		for i := uint64(0); i < count; i++ {
			flags, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: core %d access %d flags: %w", c, i, err)
			}
			if flags > 1 {
				return nil, fmt.Errorf("trace: core %d access %d bad flags %#x", c, i, flags)
			}
			zz, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: core %d access %d addr: %w", c, i, err)
			}
			addr := uint64(int64(prev) + unzigzag(zz))
			prev = addr
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: core %d access %d gap: %w", c, i, err)
			}
			if gap > math.MaxInt64 {
				// Gap is a cycle count stored as int64; a uvarint above
				// MaxInt64 would silently wrap negative and stall the
				// simulator's clock.
				return nil, fmt.Errorf("trace: core %d access %d gap %d overflows int64", c, i, gap)
			}
			kind := Read
			if flags&1 != 0 {
				kind = Write
			}
			s = append(s, Access{Addr: addr, Kind: kind, Gap: int64(gap)})
		}
		t.Streams[c] = s
	}
	return t, nil
}

// zigzag maps signed deltas to unsigned varint-friendly values.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
