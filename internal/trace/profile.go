package trace

import (
	"fmt"
	"sort"
)

// Profile parameterizes the synthetic workload generator. Each profile is
// shaped after one SPLASH-2 benchmark used in the paper's evaluation: the
// request counts follow the paper (§VIII quotes ~47 k requests for fft and
// ~2.5 M for ocean) and the sharing/locality knobs encode the qualitative
// behaviour that drives coherence traffic.
type Profile struct {
	// Name is the benchmark label.
	Name string
	// AccessesPerCore is Λ_i at Scale = 1.
	AccessesPerCore int
	// SharedLines is the hot shared footprint, in cache lines, contended by
	// all cores.
	SharedLines int
	// PrivateLines is the per-core private footprint, in cache lines.
	PrivateLines int
	// PShared is the probability that an access targets the shared region.
	PShared float64
	// ZipfS skews shared-line popularity (0 = uniform).
	ZipfS float64
	// PWrite is the probability that an access is a store.
	PWrite float64
	// PRepeat is the probability that an access re-uses one of the core's
	// RepeatWindow most recent lines (temporal locality).
	PRepeat float64
	// RepeatWindow is the size of the recency window.
	RepeatWindow int
	// MeanGap is the mean compute gap between consecutive accesses.
	MeanGap float64
	// Phases optionally splits each core's stream into this many phases;
	// each phase works in a rotated window of the shared footprint and a
	// distinct slice of the private footprint, modeling the working-set
	// turnover of blocked kernels (FFT stages, LU panels). 0 or 1 keeps the
	// single-phase behaviour.
	Phases int
}

// Profiles returns the full benchmark suite in a fixed order.
func Profiles() []Profile {
	return []Profile{
		{Name: "fft", AccessesPerCore: 12000, SharedLines: 256, PrivateLines: 320, PShared: 0.35, ZipfS: 0.6, PWrite: 0.40, PRepeat: 0.70, RepeatWindow: 4, MeanGap: 1, Phases: 12},
		{Name: "lu", AccessesPerCore: 16000, SharedLines: 192, PrivateLines: 384, PShared: 0.30, ZipfS: 0.7, PWrite: 0.45, PRepeat: 0.75, RepeatWindow: 6, MeanGap: 1, Phases: 8},
		{Name: "radix", AccessesPerCore: 20000, SharedLines: 384, PrivateLines: 512, PShared: 0.45, ZipfS: 0.4, PWrite: 0.55, PRepeat: 0.55, RepeatWindow: 4, MeanGap: 1, Phases: 4},
		{Name: "ocean", AccessesPerCore: 625000, SharedLines: 512, PrivateLines: 640, PShared: 0.30, ZipfS: 0.5, PWrite: 0.40, PRepeat: 0.70, RepeatWindow: 6, MeanGap: 1, Phases: 8},
		{Name: "barnes", AccessesPerCore: 30000, SharedLines: 320, PrivateLines: 448, PShared: 0.40, ZipfS: 0.9, PWrite: 0.30, PRepeat: 0.70, RepeatWindow: 6, MeanGap: 2, Phases: 4},
		{Name: "water", AccessesPerCore: 24000, SharedLines: 128, PrivateLines: 288, PShared: 0.25, ZipfS: 0.8, PWrite: 0.35, PRepeat: 0.75, RepeatWindow: 8, MeanGap: 2, Phases: 8},
		{Name: "cholesky", AccessesPerCore: 18000, SharedLines: 224, PrivateLines: 416, PShared: 0.35, ZipfS: 0.75, PWrite: 0.50, PRepeat: 0.70, RepeatWindow: 6, MeanGap: 1, Phases: 8},
		{Name: "raytrace", AccessesPerCore: 26000, SharedLines: 448, PrivateLines: 352, PShared: 0.50, ZipfS: 1.0, PWrite: 0.20, PRepeat: 0.60, RepeatWindow: 4, MeanGap: 2, Phases: 2},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// ProfileNames lists the suite in order.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Scaled returns a copy with the per-core access count and the shared and
// private footprints multiplied by f (with floors), preserving the
// accesses-per-line reuse that makes the benchmark's locality meaningful:
// scaling only the access count would starve every line of re-references and
// no timer value could protect hits.
func (p Profile) Scaled(f float64) Profile {
	scale := func(v, floor int) int {
		n := int(float64(v) * f)
		if n < floor {
			n = floor
		}
		return n
	}
	p.AccessesPerCore = scale(p.AccessesPerCore, 1)
	p.SharedLines = scale(p.SharedLines, 8)
	p.PrivateLines = scale(p.PrivateLines, 8)
	return p
}

// Address-space layout of generated traces. Regions are disjoint and far
// apart so shared and private lines never alias in any cache geometry.
const (
	sharedBase  uint64 = 0x1000_0000
	privateBase uint64 = 0x4000_0000
	privateStep uint64 = 1 << 26 // per-core private region stride
)

// SharedAddr returns the byte address of shared line idx.
func SharedAddr(idx int, lineBytes int) uint64 {
	return sharedBase + uint64(idx)*uint64(lineBytes)
}

// PrivateAddr returns the byte address of private line idx of core.
func PrivateAddr(core, idx, lineBytes int) uint64 {
	return privateBase + uint64(core)*privateStep + uint64(idx)*uint64(lineBytes)
}

// IsShared reports whether addr falls in the shared region.
func IsShared(addr uint64) bool { return addr >= sharedBase && addr < privateBase }

// Generate produces a deterministic multi-core trace for nCores cores with
// the given cache-line size. The same (profile, nCores, lineBytes, seed)
// always yields the same trace.
func (p Profile) Generate(nCores, lineBytes int, seed uint64) *Trace {
	if nCores <= 0 || lineBytes <= 0 {
		panic("trace: Generate with non-positive dimensions")
	}
	root := NewRNG(seed ^ hashName(p.Name))
	zipf := NewZipf(p.SharedLines, p.ZipfS)
	t := &Trace{Name: p.Name, Streams: make([]Stream, nCores)}
	phases := p.Phases
	if phases < 1 {
		phases = 1
	}
	for core := 0; core < nCores; core++ {
		rng := root.Fork()
		stream := make(Stream, 0, p.AccessesPerCore)
		recent := make([]uint64, 0, p.RepeatWindow)
		lastPhase := 0
		for i := 0; i < p.AccessesPerCore; i++ {
			phase := i * phases / p.AccessesPerCore
			if phase != lastPhase {
				// Working-set turnover: the recency window does not carry
				// across phase boundaries.
				recent = recent[:0]
				lastPhase = phase
			}
			var line uint64
			if len(recent) > 0 && rng.Float64() < p.PRepeat {
				line = recent[rng.Intn(len(recent))]
			} else if rng.Float64() < p.PShared {
				idx := (zipf.Sample(rng) + phase*p.SharedLines/phases) % p.SharedLines
				line = SharedAddr(idx, lineBytes)
			} else {
				span := p.PrivateLines / phases
				if span < 1 {
					span = 1
				}
				base := (phase * span) % p.PrivateLines
				line = PrivateAddr(core, (base+rng.Intn(span))%p.PrivateLines, lineBytes)
			}
			if p.RepeatWindow > 0 {
				if len(recent) < p.RepeatWindow {
					recent = append(recent, line)
				} else {
					recent[i%p.RepeatWindow] = line
				}
			}
			kind := Read
			if rng.Float64() < p.PWrite {
				kind = Write
			}
			stream = append(stream, Access{
				Addr: line + uint64(rng.Intn(lineBytes)),
				Kind: kind,
				Gap:  rng.Geometric(p.MeanGap),
			})
		}
		t.Streams[core] = stream
	}
	return t
}

// hashName mixes the profile name into the seed so different profiles with
// the same seed diverge.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Summary aggregates descriptive statistics of a trace; used by
// cmd/cohort-trace and tests.
type Summary struct {
	Name          string
	PerCore       []CoreSummary
	DistinctLines int
	SharedToAll   int // lines touched by every core
}

// CoreSummary describes one core's stream.
type CoreSummary struct {
	Accesses    int
	Writes      int
	SharedRefs  int
	TotalGap    int64
	UniqueLines int
}

// Summarize computes a Summary at the given line granularity.
func Summarize(t *Trace, lineBytes int) Summary {
	s := Summary{Name: t.Name, PerCore: make([]CoreSummary, len(t.Streams))}
	lineCores := map[uint64]map[int]bool{}
	for core, st := range t.Streams {
		cs := &s.PerCore[core]
		seen := map[uint64]bool{}
		for _, a := range st {
			line := a.Addr / uint64(lineBytes)
			cs.Accesses++
			if a.Kind == Write {
				cs.Writes++
			}
			if IsShared(a.Addr) {
				cs.SharedRefs++
			}
			cs.TotalGap += a.Gap
			seen[line] = true
			m, ok := lineCores[line]
			if !ok {
				m = map[int]bool{}
				lineCores[line] = m
			}
			m[core] = true
		}
		cs.UniqueLines = len(seen)
	}
	s.DistinctLines = len(lineCores)
	//cohort:allow maprange: counting lines shared by all cores; order-insensitive
	for _, cores := range lineCores {
		if len(cores) == len(t.Streams) && len(t.Streams) > 1 {
			s.SharedToAll++
		}
	}
	return s
}

// String renders a short human-readable summary.
func (s Summary) String() string {
	out := fmt.Sprintf("trace %s: %d cores, %d distinct lines, %d lines shared by all\n",
		s.Name, len(s.PerCore), s.DistinctLines, s.SharedToAll)
	for i, cs := range s.PerCore {
		out += fmt.Sprintf("  core %d: %6d accesses, %5.1f%% writes, %5.1f%% shared, %d unique lines, mean gap %.2f\n",
			i, cs.Accesses,
			pct(cs.Writes, cs.Accesses), pct(cs.SharedRefs, cs.Accesses),
			cs.UniqueLines, float64(cs.TotalGap)/float64(max(1, cs.Accesses)))
	}
	return out
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// SortedLineSet returns the distinct line addresses of a stream in ascending
// order; exported for analysis and tests.
func SortedLineSet(s Stream, lineBytes int) []uint64 {
	seen := map[uint64]bool{}
	for _, a := range s {
		seen[a.Addr/uint64(lineBytes)] = true
	}
	lines := make([]uint64, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}
