// Package trace defines the memory-access workload model that drives the
// simulator: per-core streams of read/write accesses with compute gaps, a
// deterministic generator of synthetic multi-threaded workloads shaped after
// the SPLASH-2 benchmarks the paper evaluates on, and a text codec so traces
// can be stored and replayed.
//
// The paper runs SPLASH-2 binaries through the Octopus simulator; neither is
// available here, so the generator reproduces the *sharing structure* that
// the evaluation depends on — a hot shared footprint contended by all cores,
// per-core private working sets, temporal locality, and a read/write mix —
// with deterministic, seedable pseudo-randomness (see DESIGN.md §1).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Read is a load (bus GetS on a miss).
	Read Kind = iota
	// Write is a store (bus GetM on a miss or upgrade).
	Write
)

// String returns "R" or "W".
func (k Kind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Access is one memory reference of a core's instruction stream.
type Access struct {
	// Addr is the byte address referenced.
	Addr uint64
	// Kind is Read or Write.
	Kind Kind
	// Gap is the number of compute cycles separating this access from the
	// issue of the previous one (0 = back to back).
	Gap int64
}

// Stream is the ordered access sequence of one core.
type Stream []Access

// Trace is a complete multi-core workload: one stream per core.
type Trace struct {
	// Name labels the workload (benchmark profile name).
	Name string
	// Streams holds one access stream per core.
	Streams []Stream
}

// NumCores returns the number of per-core streams.
func (t *Trace) NumCores() int { return len(t.Streams) }

// TotalAccesses returns Λ summed over all cores.
func (t *Trace) TotalAccesses() int {
	n := 0
	for _, s := range t.Streams {
		n += len(s)
	}
	return n
}

// Lambda returns Λ_i, the access count of core i (paper §II task model).
func (t *Trace) Lambda(i int) int { return len(t.Streams[i]) }

// Write encodes the trace in a line-oriented text format:
//
//	# name <name>
//	<core> <addr-hex> <R|W> <gap>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n", t.Name); err != nil {
		return err
	}
	for core, s := range t.Streams {
		for _, a := range s {
			if _, err := fmt.Fprintf(bw, "%d %x %s %d\n", core, a.Addr, a.Kind, a.Gap); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Parse decodes a trace written by Write. Accesses keep their per-core order;
// the number of cores is one more than the largest core index seen.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# name "); ok {
				t.Name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		core, err := strconv.Atoi(fields[0])
		if err != nil || core < 0 {
			return nil, fmt.Errorf("trace: line %d: bad core %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[1])
		}
		var kind Kind
		switch fields[2] {
		case "R":
			kind = Read
		case "W":
			kind = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, fields[2])
		}
		gap, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[3])
		}
		for core >= len(t.Streams) {
			t.Streams = append(t.Streams, nil)
		}
		t.Streams[core] = append(t.Streams[core], Access{Addr: addr, Kind: kind, Gap: gap})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}
