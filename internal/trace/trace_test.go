package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatalf("Kind strings wrong: %s %s", Read, Write)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p, err := ProfileByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	orig := p.Scaled(0.02).Generate(4, 64, 7)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Fatalf("name %q != %q", got.Name, orig.Name)
	}
	if got.NumCores() != orig.NumCores() {
		t.Fatalf("cores %d != %d", got.NumCores(), orig.NumCores())
	}
	for c := range orig.Streams {
		if len(got.Streams[c]) != len(orig.Streams[c]) {
			t.Fatalf("core %d length mismatch", c)
		}
		for i := range orig.Streams[c] {
			if got.Streams[c][i] != orig.Streams[c][i] {
				t.Fatalf("core %d access %d: %+v != %+v", c, i, got.Streams[c][i], orig.Streams[c][i])
			}
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"0 ff R",          // missing gap
		"x ff R 0",        // bad core
		"-1 ff R 0",       // negative core
		"0 zz R 0",        // bad address
		"0 ff X 0",        // bad kind
		"0 ff R -5",       // negative gap
		"0 ff R 0 extras", // too many fields
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("line %q: expected error", line)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# name demo\n\n# comment\n1 10 W 3\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "demo" {
		t.Fatalf("name = %q", got.Name)
	}
	if got.NumCores() != 2 || len(got.Streams[0]) != 0 || len(got.Streams[1]) != 1 {
		t.Fatalf("unexpected shape: %d cores", got.NumCores())
	}
	a := got.Streams[1][0]
	if a.Addr != 0x10 || a.Kind != Write || a.Gap != 3 {
		t.Fatalf("access = %+v", a)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("radix")
	p = p.Scaled(0.01)
	a := p.Generate(4, 64, 99)
	b := p.Generate(4, 64, 99)
	for c := range a.Streams {
		for i := range a.Streams[c] {
			if a.Streams[c][i] != b.Streams[c][i] {
				t.Fatalf("same seed diverged at core %d idx %d", c, i)
			}
		}
	}
	c := p.Generate(4, 64, 100)
	same := true
	for i := range a.Streams[0] {
		if a.Streams[0][i] != c.Streams[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical stream")
	}
}

func TestGenerateShape(t *testing.T) {
	for _, p := range Profiles() {
		p := p.Scaled(0.05)
		if p.AccessesPerCore > 2000 {
			p.AccessesPerCore = 2000 // keep ocean-sized profiles fast in tests
		}
		tr := p.Generate(4, 64, 1)
		if tr.NumCores() != 4 {
			t.Fatalf("%s: cores = %d", p.Name, tr.NumCores())
		}
		if tr.TotalAccesses() != 4*p.AccessesPerCore {
			t.Fatalf("%s: total = %d, want %d", p.Name, tr.TotalAccesses(), 4*p.AccessesPerCore)
		}
		s := Summarize(tr, 64)
		// Every profile shares data: some lines must be touched by all cores.
		if s.SharedToAll == 0 {
			t.Errorf("%s: no line shared by all cores", p.Name)
		}
		for core, cs := range s.PerCore {
			if cs.Accesses != p.AccessesPerCore {
				t.Errorf("%s core %d: accesses = %d", p.Name, core, cs.Accesses)
			}
			if cs.Writes == 0 || cs.Writes == cs.Accesses {
				t.Errorf("%s core %d: degenerate write mix %d/%d", p.Name, core, cs.Writes, cs.Accesses)
			}
			if cs.SharedRefs == 0 {
				t.Errorf("%s core %d: no shared references", p.Name, core)
			}
		}
	}
}

func TestScaled(t *testing.T) {
	p, _ := ProfileByName("ocean")
	s := p.Scaled(0.001)
	if s.AccessesPerCore != 625 {
		t.Fatalf("Scaled(0.001) accesses = %d, want 625", s.AccessesPerCore)
	}
	// Footprints scale too (with a floor) so reuse-per-line is preserved.
	if s.SharedLines != 8 || s.PrivateLines != 8 {
		t.Fatalf("Scaled(0.001) footprints = %d/%d, want floors 8/8", s.SharedLines, s.PrivateLines)
	}
	h := p.Scaled(0.5)
	if h.SharedLines != 256 || h.PrivateLines != 320 {
		t.Fatalf("Scaled(0.5) footprints = %d/%d, want 256/320", h.SharedLines, h.PrivateLines)
	}
	if got := p.Scaled(0).AccessesPerCore; got != 1 {
		t.Fatalf("Scaled(0) = %d, want 1 (floor)", got)
	}
	// Reuse per line is preserved under scaling (within rounding).
	full := float64(p.AccessesPerCore) / float64(p.SharedLines+p.PrivateLines)
	scaled := float64(h.AccessesPerCore) / float64(h.SharedLines+h.PrivateLines)
	if scaled < full*0.9 || scaled > full*1.1 {
		t.Fatalf("reuse drifted: full %.1f scaled %.1f", full, scaled)
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("doom"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
	names := ProfileNames()
	if len(names) != len(Profiles()) {
		t.Fatal("ProfileNames length mismatch")
	}
	for _, n := range names {
		if _, err := ProfileByName(n); err != nil {
			t.Fatalf("ProfileByName(%q): %v", n, err)
		}
	}
}

func TestAddressRegions(t *testing.T) {
	if !IsShared(SharedAddr(0, 64)) || !IsShared(SharedAddr(1000, 64)) {
		t.Fatal("shared addresses not classified shared")
	}
	if IsShared(PrivateAddr(0, 0, 64)) {
		t.Fatal("private address classified shared")
	}
	// Private regions of different cores must not collide.
	if PrivateAddr(0, 1<<19, 64) >= PrivateAddr(1, 0, 64) {
		t.Fatal("core 0 private region overlaps core 1")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG with same seed diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("fork mirrors parent")
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum int64
	for i := 0; i < n; i++ {
		sum += r.Geometric(3)
	}
	mean := float64(sum) / n
	if mean < 2.8 || mean > 3.2 {
		t.Fatalf("Geometric(3) sample mean = %.3f, want ≈ 3", mean)
	}
	if NewRNG(1).Geometric(0) != 0 {
		t.Fatal("Geometric(0) must be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Fatalf("Zipf not skewed: head=%d mid=%d tail=%d", counts[0], counts[50], counts[99])
	}
	// Uniform case: head and tail within 3x of each other.
	u := NewZipf(100, 0)
	counts = make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.Sample(r)]++
	}
	if counts[0] > 3*counts[99] || counts[99] > 3*counts[0] {
		t.Fatalf("Zipf(s=0) not uniform-ish: head=%d tail=%d", counts[0], counts[99])
	}
}

// Property: Zipf samples are always in range.
func TestPropertyZipfRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		z := NewZipf(n, 0.8)
		r := NewRNG(seed)
		for i := 0; i < 200; i++ {
			if s := z.Sample(r); s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: codec round-trips arbitrary single-core traces.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(addrs []uint32, writes []bool, gaps []uint8) bool {
		n := len(addrs)
		if len(writes) < n {
			n = len(writes)
		}
		if len(gaps) < n {
			n = len(gaps)
		}
		tr := &Trace{Name: "prop", Streams: make([]Stream, 1)}
		for i := 0; i < n; i++ {
			k := Read
			if writes[i] {
				k = Write
			}
			tr.Streams[0] = append(tr.Streams[0], Access{Addr: uint64(addrs[i]), Kind: k, Gap: int64(gaps[i])})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil {
			return false
		}
		if n == 0 {
			return got.TotalAccesses() == 0
		}
		if len(got.Streams[0]) != n {
			return false
		}
		for i := range got.Streams[0] {
			if got.Streams[0][i] != tr.Streams[0][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedLineSet(t *testing.T) {
	s := Stream{
		{Addr: 0x1000}, {Addr: 0x1004}, {Addr: 0x2000}, {Addr: 0x80},
	}
	lines := SortedLineSet(s, 64)
	want := []uint64{0x80 / 64, 0x1000 / 64, 0x2000 / 64}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %v, want %v", lines, want)
		}
	}
}

func TestSummaryString(t *testing.T) {
	p, _ := ProfileByName("fft")
	tr := p.Scaled(0.005).Generate(2, 64, 1)
	s := Summarize(tr, 64)
	out := s.String()
	if !strings.Contains(out, "fft") || !strings.Contains(out, "core 0") {
		t.Fatalf("summary missing fields:\n%s", out)
	}
}

func BenchmarkGenerateFFT(b *testing.B) {
	p, _ := ProfileByName("fft")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Generate(4, 64, uint64(i))
	}
}

func TestPhasedGeneration(t *testing.T) {
	p, _ := ProfileByName("fft")
	p = p.Scaled(0.05)
	p.Phases = 4
	p.PShared = 0 // isolate the private-footprint rotation
	p.PRepeat = 0
	tr := p.Generate(1, 64, 9)
	s := tr.Streams[0]
	if len(s) != p.AccessesPerCore {
		t.Fatalf("length = %d", len(s))
	}
	// Per-phase private line sets must be (near-)disjoint: the working set
	// rotates.
	quarter := len(s) / 4
	setOf := func(seg Stream) map[uint64]bool {
		m := map[uint64]bool{}
		for _, a := range seg {
			m[a.Addr/64] = true
		}
		return m
	}
	first := setOf(s[:quarter])
	last := setOf(s[3*quarter:])
	overlap := 0
	for l := range first {
		if last[l] {
			overlap++
		}
	}
	if overlap > len(first)/4 {
		t.Fatalf("phase working sets overlap too much: %d of %d", overlap, len(first))
	}
	// Determinism holds with phases.
	tr2 := p.Generate(1, 64, 9)
	for i := range s {
		if s[i] != tr2.Streams[0][i] {
			t.Fatal("phased generation nondeterministic")
		}
	}
	// Phases=0 reproduces the single-phase stream exactly.
	p0 := p
	p0.Phases = 0
	p1 := p
	p1.Phases = 1
	a, b := p0.Generate(1, 64, 9), p1.Generate(1, 64, 9)
	for i := range a.Streams[0] {
		if a.Streams[0][i] != b.Streams[0][i] {
			t.Fatal("Phases 0 and 1 diverge")
		}
	}
}

func TestLambda(t *testing.T) {
	tr := &Trace{Streams: []Stream{{{Addr: 1}}, {{Addr: 1}, {Addr: 2}}}}
	if tr.Lambda(0) != 1 || tr.Lambda(1) != 2 {
		t.Fatalf("Lambda = %d/%d", tr.Lambda(0), tr.Lambda(1))
	}
}
