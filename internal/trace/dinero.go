package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDinero decodes one core's stream from the classic Dinero ("din")
// trace format used by decades of cache-simulation tooling — one access per
// line:
//
//	<type> <hex-address>
//
// where type 0 is a data read, 1 a data write, and 2 an instruction fetch
// (imported as a read). Lines may carry trailing fields (cycle counts,
// sizes), which are ignored; '#' or '-' prefixed lines are comments.
// Compute gaps are not part of the format and default to 0; callers can
// post-process the stream if they have timing information.
func ParseDinero(r io.Reader) (Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var s Stream
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "-") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: din line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		var kind Kind
		switch fields[0] {
		case "0", "2": // data read / instruction fetch
			kind = Read
		case "1":
			kind = Write
		default:
			return nil, fmt.Errorf("trace: din line %d: unknown access type %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: din line %d: bad address %q", lineNo, fields[1])
		}
		s = append(s, Access{Addr: addr, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: din read: %w", err)
	}
	return s, nil
}

// FromStreams assembles a multi-core Trace from per-core streams (e.g. one
// Dinero file per core).
func FromStreams(name string, streams ...Stream) *Trace {
	return &Trace{Name: name, Streams: streams}
}
