package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	p, _ := ProfileByName("radix")
	orig := p.Scaled(0.02).Generate(4, 64, 77)
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.NumCores() != orig.NumCores() {
		t.Fatalf("header mismatch: %q/%d", got.Name, got.NumCores())
	}
	for c := range orig.Streams {
		if len(got.Streams[c]) != len(orig.Streams[c]) {
			t.Fatalf("core %d length mismatch", c)
		}
		for i := range orig.Streams[c] {
			if got.Streams[c][i] != orig.Streams[c][i] {
				t.Fatalf("core %d access %d: %+v != %+v", c, i, got.Streams[c][i], orig.Streams[c][i])
			}
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	p, _ := ProfileByName("fft")
	tr := p.Scaled(0.05).Generate(4, 64, 1)
	var text, bin bytes.Buffer
	if err := tr.Write(&text); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len()/2 {
		t.Fatalf("binary %d not substantially smaller than text %d", bin.Len(), text.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("CTR"),
		[]byte("XXXX\x01"),
		[]byte("CTRB\x09"),     // bad version
		[]byte("CTRB\x01\xff"), // truncated name length varint
	}
	for i, in := range cases {
		if _, err := ParseBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Implausible counts are rejected rather than allocated.
	var buf bytes.Buffer
	buf.WriteString("CTRB\x01")
	buf.WriteByte(0)                                            // empty name
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge core count
	if _, err := ParseBinary(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("huge core count accepted: %v", err)
	}
}

// Property: binary codec round-trips arbitrary streams, including large
// addresses and gaps.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(addrs []uint64, writes []bool, gaps []uint16, name string) bool {
		n := len(addrs)
		if len(writes) < n {
			n = len(writes)
		}
		if len(gaps) < n {
			n = len(gaps)
		}
		if len(name) > 100 {
			name = name[:100]
		}
		tr := &Trace{Name: name, Streams: make([]Stream, 2)}
		for i := 0; i < n; i++ {
			k := Read
			if writes[i] {
				k = Write
			}
			tr.Streams[i%2] = append(tr.Streams[i%2], Access{Addr: addrs[i], Kind: k, Gap: int64(gaps[i])})
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ParseBinary(&buf)
		if err != nil {
			return false
		}
		if got.Name != tr.Name || got.NumCores() != 2 {
			return false
		}
		for c := range tr.Streams {
			if len(got.Streams[c]) != len(tr.Streams[c]) {
				return false
			}
			for i := range tr.Streams[c] {
				if got.Streams[c][i] != tr.Streams[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse (text) never panics on arbitrary input — it returns an
// error or a trace.
func TestPropertyTextParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("Parse panicked on %q", raw)
			}
		}()
		_, _ = Parse(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParseBinary never panics on arbitrary input.
func TestPropertyBinaryParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("ParseBinary panicked on %x", raw)
			}
		}()
		_, _ = ParseBinary(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// And on inputs that start with a valid header.
	g := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("ParseBinary panicked on CTRB+%x", raw)
			}
		}()
		in := append([]byte("CTRB\x01"), raw...)
		_, _ = ParseBinary(bytes.NewReader(in))
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), -9223372036854775808, 9223372036854775807} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round trip: %d -> %d", v, got)
		}
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	p, _ := ProfileByName("fft")
	tr := p.Scaled(0.1).Generate(4, 64, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	p, _ := ProfileByName("fft")
	tr := p.Scaled(0.1).Generate(4, 64, 1)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseDinero(t *testing.T) {
	in := `# a comment
0 1000
1 0x1040
2 2000
- another comment

0 1080 extra fields ignored
`
	s, err := ParseDinero(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := Stream{
		{Addr: 0x1000, Kind: Read},
		{Addr: 0x1040, Kind: Write},
		{Addr: 0x2000, Kind: Read}, // ifetch imported as read
		{Addr: 0x1080, Kind: Read},
	}
	if len(s) != len(want) {
		t.Fatalf("len = %d, want %d", len(s), len(want))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, s[i], want[i])
		}
	}
}

func TestParseDineroRejectsMalformed(t *testing.T) {
	for _, in := range []string{"3 1000", "0", "0 zz"} {
		if _, err := ParseDinero(strings.NewReader(in)); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}

func TestFromStreamsRunsInSimulator(t *testing.T) {
	// A Dinero-imported multi-core trace must be a first-class workload.
	a, err := ParseDinero(strings.NewReader("1 1000\n0 1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseDinero(strings.NewReader("1 1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	tr := FromStreams("din-import", a, b)
	if tr.NumCores() != 2 || tr.TotalAccesses() != 3 {
		t.Fatalf("shape: %d cores %d accesses", tr.NumCores(), tr.TotalAccesses())
	}
}
