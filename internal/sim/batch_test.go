package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// fire is one observed event execution: (cycle, tag) in firing order.
type fire struct {
	at  Cycle
	tag int
}

type recordingHandler struct{ got *[]fire }

func (h recordingHandler) HandleEvent(now Cycle, kind Kind, recv int32, p0, p1 uint64) {
	*h.got = append(*h.got, fire{at: now, tag: int(p0)})
}

// driveRandom schedules a seeded random mix of closure and typed events on e
// and returns the complete firing trace. The mix covers both queue surfaces
// (closures and typed events share one (at, seq) order) plus re-scheduling
// from inside a callback, so any state leaking across a Reset — residual
// queue items, a stale seq, a nonzero now, a leftover budget — would perturb
// the trace.
func driveRandom(t *testing.T, e *Engine, seed int64) []fire {
	t.Helper()
	var got []fire
	e.SetHandler(recordingHandler{got: &got})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 200; i++ {
		tag := i
		delay := Cycle(rng.Intn(50))
		switch rng.Intn(3) {
		case 0:
			e.Schedule(delay, func(now Cycle) { got = append(got, fire{at: now, tag: tag}) })
		case 1:
			e.ScheduleKind(delay, 0, 0, uint64(tag), 0)
		default:
			e.Schedule(delay, func(now Cycle) {
				got = append(got, fire{at: now, tag: tag})
				e.ScheduleKind(3, 0, 0, uint64(1000+tag), 0)
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestResetEquivalentToFresh is the reuse contract behind batched evaluation:
// a Reset engine must produce a firing trace bit-identical to a fresh New()
// engine, even after a completely different prior run.
func TestResetEquivalentToFresh(t *testing.T) {
	for _, seed := range []int64{1, 42, 7777} {
		want := driveRandom(t, New(), seed)

		used := New()
		driveRandom(t, used, seed+99) // unrelated prior run
		used.SetBudget(12345)        // leftover budget must not survive Reset
		used.Reset()
		got := driveRandom(t, used, seed)

		if len(got) != len(want) {
			t.Fatalf("seed %d: reset engine fired %d events, fresh fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d = %+v on reset engine, %+v on fresh", seed, i, got[i], want[i])
			}
		}
	}
}

// TestResetState pins the individual field resets: time, pending count,
// budget, and the handler requirement for typed events.
func TestResetState(t *testing.T) {
	e := New()
	e.SetHandler(recordingHandler{got: new([]fire)})
	e.Schedule(10, func(Cycle) {})
	e.ScheduleKind(20, 0, 0, 0, 0)
	e.Step()
	e.SetBudget(999)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: Now=%d Pending=%d, want 0,0", e.Now(), e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run on reset engine: %v", err)
	}
	// The handler is cleared too: a typed event without re-installing one
	// must panic, proving Reset does not leak the previous run's dispatcher.
	defer func() {
		if recover() == nil {
			t.Fatal("typed event after Reset did not panic without a handler")
		}
	}()
	e.ScheduleKind(1, 0, 0, 0, 0)
}

// TestResetKeepsCapacity is the amortization the batch driver exists for:
// after a deep run and a Reset, re-running at the same depth must not grow
// the queue backing again.
func TestResetKeepsCapacity(t *testing.T) {
	e := New()
	for i := 0; i < 1000; i++ {
		e.Schedule(Cycle(i), func(Cycle) {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	capBefore := cap(e.queue.s)
	if capBefore < 1000 {
		t.Fatalf("queue capacity %d after deep run, want >= 1000", capBefore)
	}
	for i := 0; i < 1000; i++ {
		e.Schedule(Cycle(i), func(Cycle) {})
	}
	if cap(e.queue.s) != capBefore {
		t.Fatalf("re-run at prior depth grew queue: cap %d -> %d", capBefore, cap(e.queue.s))
	}
}

func TestBatchLanes(t *testing.T) {
	b := NewBatch(3)
	if b.Lanes() != 3 {
		t.Fatalf("Lanes() = %d, want 3", b.Lanes())
	}
	seen := map[*Engine]bool{}
	for i := 0; i < b.Lanes(); i++ {
		e := b.Lane(i)
		if e == nil || seen[e] {
			t.Fatalf("lane %d: engine nil or shared with another lane", i)
		}
		seen[e] = true
	}
	// Reserve fans across lanes: every lane can absorb n pushes growth-free.
	b.Reserve(64)
	for i := 0; i < b.Lanes(); i++ {
		e := b.Lane(i)
		capBefore := cap(e.queue.s)
		for j := 0; j < 64; j++ {
			e.Schedule(Cycle(j), func(Cycle) {})
		}
		if cap(e.queue.s) != capBefore {
			t.Fatalf("lane %d grew despite Reserve: %d -> %d", i, capBefore, cap(e.queue.s))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewBatch(0) did not panic")
		}
	}()
	NewBatch(0)
}

// Each lane is an independent clock domain: running one lane must not move
// another lane's time.
func TestBatchLaneIndependence(t *testing.T) {
	b := NewBatch(2)
	b.Lane(0).Schedule(100, func(Cycle) {})
	if err := b.Lane(0).Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Lane(1).Now(); got != 0 {
		t.Fatalf("lane 1 advanced to %d while lane 0 ran", got)
	}
}

func ExampleBatch() {
	b := NewBatch(2)
	for i := 0; i < b.Lanes(); i++ {
		i := i
		b.Lane(i).Schedule(Cycle(10*(i+1)), func(now Cycle) {
			fmt.Printf("lane %d fired at %d\n", i, now)
		})
	}
	for i := 0; i < b.Lanes(); i++ {
		if err := b.Lane(i).Run(); err != nil {
			panic(err)
		}
	}
	// Output:
	// lane 0 fired at 10
	// lane 1 fired at 20
}
