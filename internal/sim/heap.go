package sim

// heapItem is one queued element of a heap4: a (at, seq) ordering key and an
// arbitrary concrete payload. Keeping the key alongside the payload in a
// flat slice of concrete structs is the point of the hand-rolled heap —
// container/heap funnels every element through `any`, which boxes (one heap
// allocation per Push AND per Pop) and adds an interface-method call per
// comparison. At simulator scale that boxing dominated the allocation
// profile (≈40% of all objects in BenchmarkSimulatorThroughput).
type heapItem[T any] struct {
	at  Cycle
	seq uint64 // tie-breaker: insertion order
	v   T
}

// heap4 is a 4-ary min-heap ordered by (at, seq). A 4-ary layout halves the
// tree depth of a binary heap — fewer sift levels, and the four children of
// a node share a cache line — at the cost of three extra comparisons per
// level, a trade that favors the pop-heavy event loop. The zero value is an
// empty heap; grow preallocates backing.
//
// Ordering contract (identical to the container/heap kernel it replaced):
// the minimum element is the one with the smallest at, ties broken by
// smallest seq. Since seq is unique and monotone, the order is total.
type heap4[T any] struct {
	s []heapItem[T]
}

func (h *heap4[T]) len() int { return len(h.s) }

// grow ensures capacity for at least n additional elements without
// reallocation.
func (h *heap4[T]) grow(n int) {
	if cap(h.s)-len(h.s) >= n {
		return
	}
	ns := make([]heapItem[T], len(h.s), len(h.s)+n)
	copy(ns, h.s)
	h.s = ns
}

// reset empties the heap while keeping its backing capacity, zeroing the
// abandoned elements so payload references (closures) do not outlive the
// reset for the GC.
func (h *heap4[T]) reset() {
	clear(h.s)
	h.s = h.s[:0]
}

// before reports strict (at, seq) order between two keys.
func before(aAt Cycle, aSeq uint64, bAt Cycle, bSeq uint64) bool {
	if aAt != bAt {
		return aAt < bAt
	}
	return aSeq < bSeq
}

// push inserts an element and sifts it up to its position. The hole-moving
// formulation (shift parents down, write the new element once) saves a swap
// per level over the textbook exchange loop.
func (h *heap4[T]) push(at Cycle, seq uint64, v T) {
	h.s = append(h.s, heapItem[T]{}) //cohort:allow hotalloc: queue grows to its high-water mark, then append stays within capacity
	i := len(h.s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(at, seq, h.s[p].at, h.s[p].seq) {
			break
		}
		h.s[i] = h.s[p]
		i = p
	}
	h.s[i] = heapItem[T]{at: at, seq: seq, v: v}
}

// pop removes and returns the minimum element, sifting the displaced tail
// element down into place.
func (h *heap4[T]) pop() heapItem[T] {
	root := h.s[0]
	n := len(h.s) - 1
	it := h.s[n]
	var zero heapItem[T]
	h.s[n] = zero // drop payload references (closures) for the GC
	h.s = h.s[:n]
	if n == 0 {
		return root
	}
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if before(h.s[j].at, h.s[j].seq, h.s[m].at, h.s[m].seq) {
				m = j
			}
		}
		if !before(h.s[m].at, h.s[m].seq, it.at, it.seq) {
			break
		}
		h.s[i] = h.s[m]
		i = m
	}
	h.s[i] = it
	return root
}
