package sim

import (
	stdheap "container/heap"
	"math/rand"
	"testing"
)

// refItem / refHeap is a container/heap reference implementation of the exact
// (at, seq) ordering contract, used as the differential oracle for heap4.
type refItem struct {
	at  Cycle
	seq uint64
	v   int
}

type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h refHeap) peekOK(at Cycle, seq uint64) bool {
	return h[0].at == at && h[0].seq == seq
}

// TestHeap4Differential drives heap4 and the container/heap reference with an
// identical randomized push/pop schedule and asserts every pop agrees. The
// mix is push-heavy early and pop-heavy late so both growth and drain paths
// of the 4-ary sift routines are exercised; duplicate timestamps are common
// (at is drawn from a small range) so the seq tie-break carries the order.
func TestHeap4Differential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 12345} {
		rng := rand.New(rand.NewSource(seed))
		var h heap4[int]
		ref := &refHeap{}
		var seq uint64
		pops := 0
		for op := 0; op < 20000; op++ {
			pushBias := 6 - 4*op/20000 // 6/10 early, 2/10 late
			if h.len() == 0 || rng.Intn(10) < pushBias {
				at := Cycle(rng.Int63n(64))
				seq++
				h.push(at, seq, int(seq))
				stdheap.Push(ref, refItem{at: at, seq: seq, v: int(seq)})
				continue
			}
			wantAt, wantSeq := h.s[0].at, h.s[0].seq
			if !ref.peekOK(wantAt, wantSeq) {
				t.Fatalf("seed %d op %d: heap4 head (%d,%d), reference head (%d,%d)",
					seed, op, wantAt, wantSeq, (*ref)[0].at, (*ref)[0].seq)
			}
			got := h.pop()
			want := stdheap.Pop(ref).(refItem)
			if got.at != want.at || got.seq != want.seq || got.v != want.v {
				t.Fatalf("seed %d pop %d: heap4 (%d,%d,%d), reference (%d,%d,%d)",
					seed, pops, got.at, got.seq, got.v, want.at, want.seq, want.v)
			}
			pops++
		}
		// Drain both fully: the tail must agree too.
		for h.len() > 0 {
			got := h.pop()
			want := stdheap.Pop(ref).(refItem)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d drain: heap4 (%d,%d), reference (%d,%d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("seed %d: reference retains %d items after heap4 drained", seed, ref.Len())
		}
	}
}

// TestHeap4Grow checks that a pre-grown heap neither loses items nor breaks
// ordering, and that grow is idempotent for smaller requests.
func TestHeap4Grow(t *testing.T) {
	var h heap4[int]
	h.grow(100)
	if cap(h.s) < 100 {
		t.Fatalf("cap = %d after grow(100)", cap(h.s))
	}
	base := cap(h.s)
	h.grow(10)
	if cap(h.s) != base {
		t.Fatalf("grow(10) reallocated: cap %d -> %d", base, cap(h.s))
	}
	for i := 200; i > 0; i-- {
		h.push(Cycle(i), uint64(200-i), i)
	}
	prev := Cycle(-1)
	for h.len() > 0 {
		it := h.pop()
		if it.at < prev {
			t.Fatalf("out of order after grow: %d after %d", it.at, prev)
		}
		prev = it.at
	}
}

// FuzzHeap4VsReference feeds arbitrary byte strings interpreted as a
// push/pop program into both heaps and requires identical pop sequences.
// Each byte either pushes (low 6 bits = timestamp delta class) or pops.
func FuzzHeap4VsReference(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x80, 0x03, 0x80, 0x80})
	f.Add([]byte("schedule-things-then-drain"))
	f.Add([]byte{0x3F, 0x3F, 0x3F, 0x80, 0x80, 0x80, 0x00})
	f.Fuzz(func(t *testing.T, prog []byte) {
		var h heap4[int]
		ref := &refHeap{}
		var seq uint64
		for _, b := range prog {
			if b&0x80 != 0 && h.len() > 0 {
				got := h.pop()
				want := stdheap.Pop(ref).(refItem)
				if got.at != want.at || got.seq != want.seq || got.v != want.v {
					t.Fatalf("pop mismatch: heap4 (%d,%d,%d), reference (%d,%d,%d)",
						got.at, got.seq, got.v, want.at, want.seq, want.v)
				}
				continue
			}
			at := Cycle(b & 0x3F)
			seq++
			h.push(at, seq, int(seq))
			stdheap.Push(ref, refItem{at: at, seq: seq, v: int(seq)})
		}
		for h.len() > 0 {
			got := h.pop()
			want := stdheap.Pop(ref).(refItem)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("drain mismatch: heap4 (%d,%d), reference (%d,%d)",
					got.at, got.seq, want.at, want.seq)
			}
		}
	})
}
