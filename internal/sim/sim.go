// Package sim provides a deterministic discrete-event simulation kernel with
// integer cycle timestamps. It is the substrate under the cycle-accurate
// cache-system model in internal/core: components schedule callbacks at
// absolute cycles and the engine executes them in (time, insertion order)
// order, which makes every run bit-reproducible.
//
// Two scheduling surfaces share one queue and one (at, seq) total order:
// closure events (Schedule/ScheduleAt — the flexible path for tests and cold
// code) and typed events (ScheduleKind/ScheduleKindAt — an enum kind, a
// receiver index and two payload words dispatched through a Handler). Typed
// events exist because the simulator hot path used to allocate a fresh
// closure per scheduled callback; a typed item is plain data, so scheduling
// one performs zero allocations beyond amortized queue growth.
package sim

import (
	"errors"
	"fmt"
)

// Cycle is a point in simulated time, measured in clock cycles from reset.
type Cycle int64

// Event is a callback scheduled to run at a specific cycle.
type Event func(now Cycle)

// Kind is a small enum identifying a typed event's meaning. The enum values
// belong to the Handler's domain (internal/core defines the simulator's
// kinds); the engine only carries them.
type Kind uint8

// Handler dispatches typed events. The receiver index and payload words are
// opaque to the engine; the handler's jump table interprets them.
type Handler interface {
	HandleEvent(now Cycle, kind Kind, recv int32, p0, p1 uint64)
}

// payload is what executes when a queue item fires: either a closure (fn
// non-nil) or a typed event for the engine's Handler.
type payload struct {
	fn   Event // nil for typed events
	p0   uint64
	p1   uint64
	recv int32
	kind Kind
}

// ErrPastEvent is returned by ScheduleAt when the requested cycle precedes
// the engine's current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Engine is a single-threaded discrete-event simulation engine.
// The zero value is ready to use and starts at cycle 0.
type Engine struct {
	now     Cycle
	seq     uint64
	queue   heap4[payload]
	budget  Cycle // 0 means unlimited
	handler Handler
}

// New returns an engine starting at cycle 0.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return e.queue.len() }

// Reserve preallocates queue backing for at least n additional events, so a
// caller that knows its steady-state queue depth avoids growth reallocations
// mid-run.
func (e *Engine) Reserve(n int) {
	if n > 0 {
		e.queue.grow(n)
	}
}

// SetHandler installs the typed-event dispatcher. Must be set before the
// first ScheduleKind/ScheduleKindAt call.
func (e *Engine) SetHandler(h Handler) { e.handler = h }

// Reset returns the engine to its initial state — cycle 0, sequence 0, no
// budget, no handler, empty queue — while keeping the queue's backing
// capacity. A batch driver evaluating many configurations on one lane
// resets the engine between runs, so the queue grows once to the fleet's
// high-water depth instead of once per configuration. A reset engine is
// observationally identical to a fresh New(): the differential batch suite
// asserts reuse never leaks state across runs.
func (e *Engine) Reset() {
	e.now, e.seq, e.budget, e.handler = 0, 0, 0, nil
	e.queue.reset()
}

// SetBudget limits Run to at most limit cycles of simulated time
// (0 removes the limit). Run returns ErrBudgetExceeded if the limit is hit
// while events remain.
func (e *Engine) SetBudget(limit Cycle) { e.budget = limit }

// ErrBudgetExceeded is returned by Run when the cycle budget set with
// SetBudget is exhausted before the event queue drains.
var ErrBudgetExceeded = errors.New("sim: cycle budget exceeded")

// Schedule queues fn to run delay cycles from now. A zero delay runs fn later
// in the current cycle, after all previously queued events for this cycle.
func (e *Engine) Schedule(delay Cycle, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.push(e.now+delay, fn)
}

// ScheduleAt queues fn to run at the absolute cycle at.
func (e *Engine) ScheduleAt(at Cycle, fn Event) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%d now=%d", ErrPastEvent, at, e.now)
	}
	e.push(at, fn)
	return nil
}

func (e *Engine) push(at Cycle, fn Event) {
	if fn == nil {
		panic("sim: nil event")
	}
	e.seq++
	e.queue.push(at, e.seq, payload{fn: fn})
}

// ScheduleKind queues a typed event delay cycles from now. It shares the
// (at, seq) order with closure events: a typed event and a closure scheduled
// back to back fire in exactly that order.
//
//cohort:hotpath
func (e *Engine) ScheduleKind(delay Cycle, kind Kind, recv int32, p0, p1 uint64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.pushKind(e.now+delay, kind, recv, p0, p1)
}

// ScheduleKindAt queues a typed event at the absolute cycle at.
func (e *Engine) ScheduleKindAt(at Cycle, kind Kind, recv int32, p0, p1 uint64) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%d now=%d", ErrPastEvent, at, e.now) //cohort:allow hotalloc: scheduling-in-the-past error path; the run aborts
	}
	e.pushKind(at, kind, recv, p0, p1)
	return nil
}

func (e *Engine) pushKind(at Cycle, kind Kind, recv int32, p0, p1 uint64) {
	if e.handler == nil {
		panic("sim: typed event scheduled with no Handler set")
	}
	e.seq++
	e.queue.push(at, e.seq, payload{kind: kind, recv: recv, p0: p0, p1: p1})
}

// Step executes the earliest pending event, advancing time to its cycle.
// It reports whether an event was executed.
//
//cohort:hotpath
func (e *Engine) Step() bool {
	if e.queue.len() == 0 {
		return false
	}
	it := e.queue.pop()
	if it.at < e.now {
		// Heap discipline makes this unreachable; guard anyway.
		panic(fmt.Sprintf("sim: time moved backwards: %d < %d", it.at, e.now))
	}
	e.now = it.at
	if it.v.fn != nil {
		it.v.fn(e.now)
	} else {
		e.handler.HandleEvent(e.now, it.v.kind, it.v.recv, it.v.p0, it.v.p1)
	}
	return true
}

// Run executes events until the queue drains or the cycle budget is hit.
//
//cohort:hotpath
func (e *Engine) Run() error {
	for e.queue.len() > 0 {
		if e.budget > 0 && e.queue.s[0].at > e.budget {
			return fmt.Errorf("%w: next event at %d, budget %d", ErrBudgetExceeded, e.queue.s[0].at, e.budget) //cohort:allow hotalloc: budget-exhaustion error path; the run stops
		}
		e.Step()
	}
	return nil
}

// RunUntil executes events with timestamps ≤ deadline, leaving later events
// queued, and advances time to deadline.
//
//cohort:hotpath
func (e *Engine) RunUntil(deadline Cycle) {
	for e.queue.len() > 0 && e.queue.s[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
