// Package sim provides a deterministic discrete-event simulation kernel with
// integer cycle timestamps. It is the substrate under the cycle-accurate
// cache-system model in internal/core: components schedule callbacks at
// absolute cycles and the engine executes them in (time, insertion order)
// order, which makes every run bit-reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Cycle is a point in simulated time, measured in clock cycles from reset.
type Cycle int64

// Event is a callback scheduled to run at a specific cycle.
type Event func(now Cycle)

// item is a scheduled event inside the queue.
type item struct {
	at  Cycle
	seq uint64 // tie-breaker: insertion order
	fn  Event
}

// eventHeap orders items by (at, seq).
type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ErrPastEvent is returned by ScheduleAt when the requested cycle precedes
// the engine's current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Engine is a single-threaded discrete-event simulation engine.
// The zero value is ready to use and starts at cycle 0.
type Engine struct {
	now    Cycle
	seq    uint64
	queue  eventHeap
	budget Cycle // 0 means unlimited
}

// New returns an engine starting at cycle 0.
func New() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// SetBudget limits Run to at most limit cycles of simulated time
// (0 removes the limit). Run returns ErrBudgetExceeded if the limit is hit
// while events remain.
func (e *Engine) SetBudget(limit Cycle) { e.budget = limit }

// ErrBudgetExceeded is returned by Run when the cycle budget set with
// SetBudget is exhausted before the event queue drains.
var ErrBudgetExceeded = errors.New("sim: cycle budget exceeded")

// Schedule queues fn to run delay cycles from now. A zero delay runs fn later
// in the current cycle, after all previously queued events for this cycle.
func (e *Engine) Schedule(delay Cycle, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.push(e.now+delay, fn)
}

// ScheduleAt queues fn to run at the absolute cycle at.
func (e *Engine) ScheduleAt(at Cycle, fn Event) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%d now=%d", ErrPastEvent, at, e.now)
	}
	e.push(at, fn)
	return nil
}

func (e *Engine) push(at Cycle, fn Event) {
	if fn == nil {
		panic("sim: nil event")
	}
	e.seq++
	heap.Push(&e.queue, item{at: at, seq: e.seq, fn: fn})
}

// Step executes the earliest pending event, advancing time to its cycle.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(item)
	if it.at < e.now {
		// Heap discipline makes this unreachable; guard anyway.
		panic(fmt.Sprintf("sim: time moved backwards: %d < %d", it.at, e.now))
	}
	e.now = it.at
	it.fn(e.now)
	return true
}

// Run executes events until the queue drains or the cycle budget is hit.
func (e *Engine) Run() error {
	for len(e.queue) > 0 {
		if e.budget > 0 && e.queue[0].at > e.budget {
			return fmt.Errorf("%w: next event at %d, budget %d", ErrBudgetExceeded, e.queue[0].at, e.budget)
		}
		e.Step()
	}
	return nil
}

// RunUntil executes events with timestamps ≤ deadline, leaving later events
// queued, and advances time to deadline.
func (e *Engine) RunUntil(deadline Cycle) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
