// The system-level half of the batched-equivalence proof. The unit half
// (internal/analysis/batch_test.go) pins the SoA oracle against the scalar
// analysis; this file pins core.RunBatch against one-at-a-time core.New/Run
// across heterogeneous configurations — protocols, arbiters, transfer
// policies, timer vectors, mode-switch schedules — batch sizes, seeds and
// worker counts, comparing the full *stats.Run measurements structurally.
// It lives in package sim_test because it exercises the sim.Engine reuse
// contract (Reset between lanes) from above, through core, the way the
// production batch driver does; importing core from package sim proper would
// cycle.
package sim_test

import (
	"reflect"
	"testing"

	"cohort/internal/config"
	"cohort/internal/core"
	"cohort/internal/stats"
	"cohort/internal/trace"
)

const diffCores = 4

// diffLane builds the i-th heterogeneous lane: the paper platform with
// protocol, arbiter, transfer policy, criticality map, per-mode timer LUTs
// and mode-switch schedule all varied deterministically by lane index, so a
// batch of N lanes covers N distinct configurations.
func diffLane(i int) core.BatchLane {
	cfg := config.PaperDefaults(diffCores, 3)
	if i%2 == 1 {
		cfg.Snoop = config.SnoopMESI
	}
	cfg.Arbiter = []config.Arbiter{
		config.ArbiterRROF, config.ArbiterRR, config.ArbiterFCFS, config.ArbiterTDM,
	}[i%4]
	if i%3 == 2 {
		cfg.Transfer = config.TransferViaMemory
	}
	if i%5 == 4 {
		cfg.PerfectLLC = false
	}
	// Mixed criticalities: under TDM + mode switches this exercises schedule
	// reprogramming; under the timer re-basing rule it exercises θ = −1 lanes
	// next to timed ones.
	cfg.Cores[1].Criticality = 1
	cfg.Cores[3].Criticality = 2
	for c := range cfg.Cores {
		for m := 0; m < cfg.Levels; m++ {
			// A spread of timers over modes and cores, θ = −1 included.
			switch (i + c + m) % 4 {
			case 0:
				cfg.Cores[c].TimerLUT[m] = config.TimerMSI
			case 1:
				cfg.Cores[c].TimerLUT[m] = config.Timer(1 + 13*(i%7) + 100*m)
			case 2:
				cfg.Cores[c].TimerLUT[m] = 5000
			default:
				cfg.Cores[c].TimerLUT[m] = config.Timer(50 + i%11)
			}
		}
	}
	lane := core.BatchLane{Cfg: cfg}
	switch i % 3 {
	case 0: // no switches
	case 1:
		lane.ModeSwitches = []core.ModeSwitch{{At: 400 + int64(i)*37, Mode: 2}}
	default:
		lane.ModeSwitches = []core.ModeSwitch{
			{At: 300 + int64(i)*17, Mode: 3},
			{At: 2000 + int64(i)*29, Mode: 1},
		}
	}
	return lane
}

func diffTrace(t *testing.T, seed uint64) *trace.Trace {
	t.Helper()
	p, err := trace.ProfileByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	p = p.Scaled(0.005)
	return p.Generate(diffCores, 64, seed)
}

// runScalar is the reference: each lane through the one-config construction
// path, a fresh engine per run.
func runScalar(t *testing.T, lanes []core.BatchLane, tr *trace.Trace) []*stats.Run {
	t.Helper()
	out := make([]*stats.Run, len(lanes))
	for i, lane := range lanes {
		sys, err := core.New(lane.Cfg, tr)
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		for _, sw := range lane.ModeSwitches {
			if err := sys.ScheduleModeSwitch(sw.At, sw.Mode); err != nil {
				t.Fatalf("lane %d: %v", i, err)
			}
		}
		run, err := sys.Run()
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		out[i] = run
	}
	return out
}

// TestRunBatchMatchesScalar is the system-level bit-identity proof: for
// every batch size × seed × worker count, RunBatch must return measurements
// structurally identical to the one-at-a-time reference. The workers=1 cells
// exercise the engine Reset-reuse path across heterogeneous lanes — the
// configuration where leaked queue or clock state would corrupt lane i+1.
func TestRunBatchMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		size  int
		seeds []uint64
	}{
		{1, []uint64{1, 42, 7777}},
		{2, []uint64{1, 42, 7777}},
		{7, []uint64{1, 42, 7777}},
		{64, []uint64{42}},
	} {
		lanes := make([]core.BatchLane, tc.size)
		for i := range lanes {
			lanes[i] = diffLane(i)
		}
		for _, seed := range tc.seeds {
			tr := diffTrace(t, seed)
			want := runScalar(t, lanes, tr)
			for _, workers := range []int{1, 4} {
				got, err := core.RunBatch(lanes, tr, workers)
				if err != nil {
					t.Fatalf("size %d seed %d workers %d: %v", tc.size, seed, workers, err)
				}
				if len(got) != len(want) {
					t.Fatalf("size %d seed %d workers %d: %d results for %d lanes",
						tc.size, seed, workers, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("size %d seed %d workers %d lane %d: batched run differs from scalar\nbatched: %+v\nscalar:  %+v",
							tc.size, seed, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRunBatchFailsClosed proves the differential above cannot pass
// vacuously: a seeded fault that skews batched lanes' mode-switch schedules
// must surface as a scalar-vs-batched mismatch on at least one lane.
func TestRunBatchFailsClosed(t *testing.T) {
	lanes := make([]core.BatchLane, 4)
	for i := range lanes {
		lanes[i] = diffLane(i)
	}
	tr := diffTrace(t, 42)
	want := runScalar(t, lanes, tr)

	core.TestHooks.BatchLaneTimerSkew = 137
	defer func() { core.TestHooks.BatchLaneTimerSkew = 0 }()
	got, err := core.RunBatch(lanes, tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			return // the fault was detected — the comparison fails closed
		}
	}
	t.Fatal("seeded mode-switch skew not detected: every batched lane matched the scalar reference")
}

// TestRunBatchEmpty pins the trivial boundary.
func TestRunBatchEmpty(t *testing.T) {
	out, err := core.RunBatch(nil, diffTrace(t, 1), 1)
	if err != nil || out != nil {
		t.Fatalf("RunBatch(nil) = (%v, %v), want (nil, nil)", out, err)
	}
}

// TestRunBatchLaneError pins error propagation: a lane whose configuration
// fails validation must abort the batch with a lane-indexed error.
func TestRunBatchLaneError(t *testing.T) {
	lanes := []core.BatchLane{diffLane(0), diffLane(1)}
	lanes[1].Cfg = config.PaperDefaults(diffCores, 3)
	lanes[1].Cfg.Mode = 9 // out of range
	if _, err := core.RunBatch(lanes, diffTrace(t, 1), 1); err == nil {
		t.Fatal("invalid lane config did not fail the batch")
	}
}
