package sim

import "fmt"

// Batch is a fixed set of engine lanes for evaluating many configurations
// against one shared workload. Lanes exist so a multi-config driver
// (internal/core's RunBatch) can amortize queue backing across
// configurations: a lane's engine is Reset between runs and its heap backing
// is retained, so a fleet of N configurations performs the queue growth of
// the deepest single run, not the sum over runs.
//
// A Batch hands out engines; it never runs them. Each lane is independent
// and single-threaded, exactly like a standalone Engine — drivers that run
// lanes concurrently must give each goroutine its own lane (the established
// whole-jobs-only parallelism rule; the event loops themselves stay
// single-threaded).
type Batch struct {
	lanes []*Engine
}

// NewBatch returns a batch with n independent engine lanes.
func NewBatch(n int) *Batch {
	if n < 1 {
		panic(fmt.Sprintf("sim: batch needs at least one lane, got %d", n))
	}
	b := &Batch{lanes: make([]*Engine, n)}
	for i := range b.lanes {
		b.lanes[i] = New()
	}
	return b
}

// Lanes reports the number of lanes.
func (b *Batch) Lanes() int { return len(b.lanes) }

// Lane returns lane i's engine. The engine keeps whatever state its last run
// left behind; callers reusing a lane must Reset it first.
func (b *Batch) Lane(i int) *Engine { return b.lanes[i] }

// Reserve preallocates queue backing for at least n additional events on
// every lane.
func (b *Batch) Reserve(n int) {
	for _, e := range b.lanes {
		e.Reserve(n)
	}
}
