package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueEngine(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("zero engine Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("zero engine Pending() = %d, want 0", e.Pending())
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(10, func(Cycle) { got = append(got, 2) })
	e.Schedule(5, func(Cycle) { got = append(got, 1) })
	e.Schedule(20, func(Cycle) { got = append(got, 3) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func(Cycle) { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: got[%d]=%d", i, v)
		}
	}
}

func TestZeroDelayRunsInCurrentCycle(t *testing.T) {
	e := New()
	var at Cycle = -1
	e.Schedule(3, func(now Cycle) {
		e.Schedule(0, func(now2 Cycle) { at = now2 })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3 {
		t.Fatalf("zero-delay event ran at %d, want 3", at)
	}
}

func TestScheduleAtPast(t *testing.T) {
	e := New()
	e.Schedule(10, func(Cycle) {})
	e.Step()
	if err := e.ScheduleAt(5, func(Cycle) {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("ScheduleAt(past) err = %v, want ErrPastEvent", err)
	}
	if err := e.ScheduleAt(10, func(Cycle) {}); err != nil {
		t.Fatalf("ScheduleAt(now) err = %v, want nil", err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	New().Schedule(-1, func(Cycle) {})
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Cycle
	for _, d := range []Cycle{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func(now Cycle) { fired = append(fired, now) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %d, want 12", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

func TestBudget(t *testing.T) {
	e := New()
	e.SetBudget(10)
	e.Schedule(5, func(Cycle) {})
	e.Schedule(50, func(Cycle) {})
	err := e.Run()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Run err = %v, want ErrBudgetExceeded", err)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %d, want 5 (only first event runs)", e.Now())
	}
	e.SetBudget(0)
	if err := e.Run(); err != nil {
		t.Fatalf("Run after lifting budget: %v", err)
	}
}

func TestCascadingEvents(t *testing.T) {
	e := New()
	count := 0
	var step func(now Cycle)
	step = func(now Cycle) {
		count++
		if count < 1000 {
			e.Schedule(1, step)
		}
	}
	e.Schedule(0, step)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if e.Now() != 999 {
		t.Fatalf("Now = %d, want 999", e.Now())
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// insertion order of delays.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var times []Cycle
		for _, d := range delays {
			e.Schedule(Cycle(d), func(now Cycle) { times = append(times, now) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		// All delays observed exactly once.
		if len(times) != len(delays) {
			return false
		}
		want := make([]Cycle, len(delays))
		for i, d := range delays {
			want[i] = Cycle(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if times[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two engines fed the same schedule produce identical execution
// traces (determinism).
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Cycle {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var trace []Cycle
		for i := 0; i < 500; i++ {
			e.Schedule(Cycle(rng.Intn(100)), func(now Cycle) { trace = append(trace, now) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	var step func(now Cycle)
	remaining := b.N
	step = func(now Cycle) {
		remaining--
		if remaining > 0 {
			e.Schedule(1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, step)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
