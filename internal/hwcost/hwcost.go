// Package hwcost models the hardware overhead of the CoHoRT architecture
// (paper §III-B): one 16-bit countdown counter per private-cache line
// (quoted as "around 3% overhead for a 64B cache line"), one 16-bit timer
// threshold register per core, the per-mode Mode-Switch LUT ("for 5 levels
// of criticality … a negligible 80 bits"), and the comparator/demux glue of
// Fig. 3. It exists so configurations can report their silicon cost next to
// their timing properties.
package hwcost

import (
	"fmt"

	"cohort/internal/config"
)

// CounterBits is the width of the per-line countdown counter and of every
// timer register/LUT field (§III-B: "We find 16-bit for the registers and
// the counters to be sufficient").
const CounterBits = 16

// Cost itemizes the additional storage CoHoRT adds to one core's private
// cache controller, in bits.
type Cost struct {
	// LineCounters is the per-line countdown-counter storage:
	// 16 bits × number of L1 lines.
	LineCounters int
	// TimerRegister is the θ threshold register (16 bits).
	TimerRegister int
	// ModeLUT is the Mode-Switch LUT: 16 bits × number of modes.
	ModeLUT int
	// Glue approximates the Fig. 3 comparator, load/enable logic and
	// demultiplexer, amortized per line (2 bits of state-equivalent each).
	Glue int
}

// Total sums all components.
func (c Cost) Total() int {
	return c.LineCounters + c.TimerRegister + c.ModeLUT + c.Glue
}

// PerCore computes the per-core overhead for an L1 geometry and mode count.
func PerCore(l1 config.CacheGeometry, modes int) Cost {
	lines := l1.Lines()
	return Cost{
		LineCounters:  CounterBits * lines,
		TimerRegister: CounterBits,
		ModeLUT:       CounterBits * modes,
		Glue:          2 * lines,
	}
}

// Report summarizes a full system's overhead.
type Report struct {
	PerCore   Cost
	Cores     int
	L1Bits    int // baseline L1 data storage in bits
	TotalBits int // added bits across all cores
}

// Overhead returns the added storage as a fraction of the baseline L1 data
// array — comparable to the paper's "around 3% for a 64B cache line".
func (r Report) Overhead() float64 {
	if r.L1Bits == 0 {
		return 0
	}
	return float64(r.PerCore.Total()) / float64(r.L1Bits)
}

// ForSystem computes the report for a validated configuration.
func ForSystem(cfg *config.System) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	pc := PerCore(cfg.L1, cfg.Levels)
	return Report{
		PerCore:   pc,
		Cores:     cfg.N(),
		L1Bits:    cfg.L1.SizeBytes * 8,
		TotalBits: pc.Total() * cfg.N(),
	}, nil
}

// String renders the report in the paper's terms.
func (r Report) String() string {
	return fmt.Sprintf(
		"hwcost: per core %d bits (counters %d, θ register %d, mode LUT %d, glue %d) = %.2f%% of the L1 data array; %d cores: %d bits total",
		r.PerCore.Total(), r.PerCore.LineCounters, r.PerCore.TimerRegister,
		r.PerCore.ModeLUT, r.PerCore.Glue,
		100*r.Overhead(), r.Cores, r.TotalBits)
}
