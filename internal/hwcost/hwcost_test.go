package hwcost

import (
	"strings"
	"testing"

	"cohort/internal/config"
)

func TestPerLineOverheadMatchesPaper(t *testing.T) {
	// §III-B: a 16-bit counter per 64 B (512-bit) line is "around 3%".
	l1 := config.CacheGeometry{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 1}
	c := PerCore(l1, 5)
	perLineBits := float64(CounterBits) / float64(64*8)
	if perLineBits < 0.031 || perLineBits > 0.032 {
		t.Fatalf("per-line counter overhead = %.4f, want ≈ 3%%", perLineBits)
	}
	if c.LineCounters != 16*256 {
		t.Fatalf("LineCounters = %d, want 4096", c.LineCounters)
	}
}

func TestModeLUTMatchesPaperFigure(t *testing.T) {
	// §III-B / §VI: five criticality levels cost 80 bits of LUT.
	l1 := config.CacheGeometry{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 1}
	c := PerCore(l1, 5)
	if c.ModeLUT != 80 {
		t.Fatalf("ModeLUT = %d bits, want 80 (paper's 5-level figure)", c.ModeLUT)
	}
	if c.TimerRegister != 16 {
		t.Fatalf("TimerRegister = %d, want 16", c.TimerRegister)
	}
}

func TestForSystem(t *testing.T) {
	cfg := config.PaperDefaults(4, 5)
	r, err := ForSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 4 {
		t.Fatalf("Cores = %d", r.Cores)
	}
	if r.TotalBits != r.PerCore.Total()*4 {
		t.Fatal("TotalBits inconsistent")
	}
	// Dominated by the per-line counters: overhead slightly above 3%.
	if ov := r.Overhead(); ov < 0.031 || ov > 0.045 {
		t.Fatalf("overhead = %.4f, want ≈ 3-4%%", ov)
	}
	out := r.String()
	for _, want := range []string{"per core", "mode LUT", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestForSystemRejectsInvalid(t *testing.T) {
	cfg := config.PaperDefaults(4, 5)
	cfg.Mode = 99
	if _, err := ForSystem(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestZeroBaseline(t *testing.T) {
	var r Report
	if r.Overhead() != 0 {
		t.Fatal("zero baseline must report 0 overhead")
	}
}

func TestCostScalesWithGeometry(t *testing.T) {
	small := PerCore(config.CacheGeometry{SizeBytes: 8 * 1024, LineBytes: 64, Ways: 1}, 2)
	big := PerCore(config.CacheGeometry{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 2}, 2)
	if big.LineCounters != 4*small.LineCounters {
		t.Fatalf("counters should scale with lines: %d vs %d", big.LineCounters, small.LineCounters)
	}
	if big.ModeLUT != small.ModeLUT {
		t.Fatal("LUT must not depend on geometry")
	}
}
