package analysis

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// batchGeoms spans the geometries the batch kernel must reproduce exactly:
// the paper's direct-mapped L1, a set-associative variant (exercising LRU
// victim selection and way-order tie-breaks), and a tiny cache that forces
// heavy eviction traffic.
var batchGeoms = []config.CacheGeometry{
	{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 1},
	{SizeBytes: 8 * 1024, LineBytes: 64, Ways: 4},
	{SizeBytes: 512, LineBytes: 64, Ways: 2},
}

// batchThetas covers every timer class: MSI (−1), no-cache (0), tiny,
// moderate, huge, and the architectural maximum — plus duplicates, which a
// batched kernel must keep independent per column.
var batchThetas = []config.Timer{config.TimerMSI, config.TimerNoCache, 1, 3, 57, 400, 5000, config.TimerMax, 57}

func batchStream(name string, seed uint64, t *testing.T) trace.Stream {
	p, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Scaled(0.01).Generate(2, 64, seed)
	return tr.Streams[0]
}

// TestBatchGuaranteedHitsDifferential is the bit-identity proof at unit
// level: for every geometry × batch width × seed, each column of the batched
// kernel must equal the scalar GuaranteedHits for that column's timer.
func TestBatchGuaranteedHitsDifferential(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50, DRAM: 100}
	for _, geom := range batchGeoms {
		ba := NewBatchAnalyzer(geom)
		for _, seed := range []uint64{1, 42, 7777} {
			s := batchStream("fft", seed, t)
			for _, width := range []int{1, 2, 7, 64} {
				thetas := make([]config.Timer, width)
				for i := range thetas {
					thetas[i] = batchThetas[i%len(batchThetas)]
				}
				for _, wcl := range []int64{lat.SlotWidth(), 1, 977} {
					hits := make([]int64, width)
					misses := make([]int64, width)
					ba.GuaranteedHitsBatch(s, lat, thetas, wcl, hits, misses)
					for c, th := range thetas {
						wantH, wantM := GuaranteedHits(s, geom, lat, th, wcl)
						if hits[c] != wantH || misses[c] != wantM {
							t.Fatalf("geom %+v seed %d width %d wcl %d col %d θ=%v: batch (%d,%d) != scalar (%d,%d)",
								geom, seed, width, wcl, c, th, hits[c], misses[c], wantH, wantM)
						}
					}
				}
			}
		}
	}
}

// TestBatchAnalyzerReuse proves an analyzer is stateless across calls: the
// same batch evaluated after an unrelated batch (different width, different
// stream) must reproduce its first-run results exactly.
func TestBatchAnalyzerReuse(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[0]
	ba := NewBatchAnalyzer(geom)
	s1 := batchStream("fft", 1, t)
	s2 := batchStream("water", 9, t)
	thetas := []config.Timer{1, 33, 900, config.TimerMSI}
	run := func(s trace.Stream) ([]int64, []int64) {
		hits := make([]int64, len(thetas))
		misses := make([]int64, len(thetas))
		ba.IsolationHitsBatch(s, lat, thetas, hits, misses)
		return hits, misses
	}
	h1a, m1a := run(s1)
	// Pollute with a wider batch over another stream, then re-run.
	wide := make([]config.Timer, 32)
	for i := range wide {
		wide[i] = config.Timer(i)
	}
	ba.GuaranteedHitsBatch(s2, lat, wide, 7, make([]int64, 32), make([]int64, 32))
	h1b, m1b := run(s1)
	for c := range thetas {
		if h1a[c] != h1b[c] || m1a[c] != m1b[c] {
			t.Fatalf("col %d: reuse changed result (%d,%d) -> (%d,%d)", c, h1a[c], m1a[c], h1b[c], m1b[c])
		}
	}
}

// TestBatchAnalyzerReserveNoRealloc pins the preallocation contract: after
// Reserve(width), a batch at that width must not grow the slab (observable
// via the capacity staying put).
func TestBatchAnalyzerReserveNoRealloc(t *testing.T) {
	geom := batchGeoms[0]
	ba := NewBatchAnalyzer(geom)
	ba.Reserve(16)
	slab := &ba.ents[0]
	s := batchStream("fft", 3, t)
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	thetas := make([]config.Timer, 16)
	for i := range thetas {
		thetas[i] = config.Timer(i + 1)
	}
	ba.IsolationHitsBatch(s, lat, thetas, make([]int64, 16), make([]int64, 16))
	if &ba.ents[0] != slab {
		t.Fatal("batch at reserved width reallocated the slab")
	}
}

// TestBatchAnalyzerPanicsMatchScalar pins panic parity: a timed column with a
// non-positive WCL must panic exactly like GuaranteedHits; untimed columns
// alone must not.
func TestBatchAnalyzerPanicsMatchScalar(t *testing.T) {
	geom := batchGeoms[0]
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	s := batchStream("fft", 1, t)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("timed column with WCL 0 did not panic")
			}
		}()
		NewBatchAnalyzer(geom).GuaranteedHitsBatch(s, lat, []config.Timer{5}, 0, make([]int64, 1), make([]int64, 1))
	}()

	// Untimed-only batches never consult the WCL (scalar early-returns).
	hits := make([]int64, 2)
	misses := make([]int64, 2)
	NewBatchAnalyzer(geom).GuaranteedHitsBatch(s, lat, []config.Timer{config.TimerMSI, config.TimerNoCache}, 0, hits, misses)
	for c := range hits {
		if hits[c] != 0 || misses[c] != int64(len(s)) {
			t.Fatalf("untimed col %d: (%d,%d), want (0,%d)", c, hits[c], misses[c], len(s))
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched output lengths did not panic")
			}
		}()
		NewBatchAnalyzer(geom).GuaranteedHitsBatch(s, lat, []config.Timer{5}, 1, nil, nil)
	}()
}

// TestBatchSaturationTimerDifferential proves the batched saturation sweep
// reproduces the scalar sweep's result exactly, and that every sample it
// reports is a valid IsolationHits evaluation (usable as a memo seed).
func TestBatchSaturationTimerDifferential(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50, DRAM: 100}
	for _, geom := range batchGeoms {
		ba := NewBatchAnalyzer(geom)
		for _, name := range []string{"fft", "water"} {
			for _, seed := range []uint64{1, 42, 7777} {
				s := batchStream(name, seed, t)
				wantTh, wantHits := SaturationTimer(s, geom, lat)
				gotTh, gotHits, samples := ba.SaturationTimer(s, lat)
				if gotTh != wantTh || gotHits != wantHits {
					t.Fatalf("geom %+v %s/%d: batched sweep (θ=%v, hits=%d) != scalar (θ=%v, hits=%d)",
						geom, name, seed, gotTh, gotHits, wantTh, wantHits)
				}
				for _, smp := range samples {
					h, m := IsolationHits(s, geom, lat, smp.Theta)
					if smp.Hits != h || smp.Misses != m {
						t.Fatalf("geom %+v %s/%d θ=%v: sample (%d,%d) != IsolationHits (%d,%d)",
							geom, name, seed, smp.Theta, smp.Hits, smp.Misses, h, m)
					}
				}
			}
		}
	}
}

// BenchmarkIsolationHitsScalar and BenchmarkIsolationHitsBatch quantify the
// amortization: the scalar column runs GuaranteedHits once per timer, the
// batched column evaluates all timers in one walk.
func benchThetas(n int) []config.Timer {
	out := make([]config.Timer, n)
	for i := range out {
		out[i] = config.Timer(1 + 37*i)
	}
	return out
}

func BenchmarkIsolationHitsScalar(b *testing.B) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[0]
	p, _ := trace.ProfileByName("fft")
	s := p.Scaled(0.01).Generate(2, 64, 21).Streams[0]
	thetas := benchThetas(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range thetas {
			IsolationHits(s, geom, lat, th)
		}
	}
}

func BenchmarkIsolationHitsBatch(b *testing.B) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[0]
	p, _ := trace.ProfileByName("fft")
	s := p.Scaled(0.01).Generate(2, 64, 21).Streams[0]
	thetas := benchThetas(16)
	ba := NewBatchAnalyzer(geom)
	ba.Reserve(len(thetas))
	hits := make([]int64, len(thetas))
	misses := make([]int64, len(thetas))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba.IsolationHitsBatch(s, lat, thetas, hits, misses)
	}
}
