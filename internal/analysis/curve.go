// Hit-curve index: the complete step function θ → (hits, misses) of the
// in-isolation cache analysis, precomputed once per (stream, geometry,
// latency, WCL) so that every subsequent query for any θ is an O(log k)
// binary search over k segments instead of a full stream walk.
//
// Construction is an exact segment sweep, not a breakpoint sort. A single
// replay at a fixed θ yields more than its own split: every branch the
// replay takes stays identical for any θ' ≥ θ up to the first access whose
// classification can change, and the smallest such θ' is directly readable
// off the replay — it is the minimum "flip age" now − fetchedAt over the
// window misses whose kind condition holds (a read, or a write finding a
// Modified copy). No per-access monotonicity is assumed — none holds: the
// isolation clock advances by lat.Hit on hits and by wcl on misses, so
// enlarging θ can turn a later access from hit to miss (DESIGN.md §17 gives
// a concrete counterexample). What does hold is regime constancy: for every
// integer θ' in [θ, nextBreak−1] the entire replay — every lookup, every
// window test, every victim choice — is access-for-access identical to the
// replay at θ, because cache content and recency evolve θ-independently and
// the classification tests decide the same way on both sides. The sweep
// therefore replays at θ = 1, jumps to nextBreak, and repeats until no
// window miss can flip within the timer domain; adjacent segments with
// equal splits are merged.
//
// After construction the curve is verified against the SoA BatchAnalyzer:
// every segment-start θ is re-evaluated through GuaranteedHitsBatch and any
// mismatch panics — the batched kernel's role in the two-tier oracle is to
// certify curve construction, not to serve queries. The seeded-fault hook
// TestHooks.CurveBreakpointSkew shifts segment boundaries *after* that
// verification, so downstream differential suites must catch the resulting
// wrong answers themselves (fail-closed proof for the query path).
package analysis

import (
	"fmt"

	"cohort/internal/cache"
	"cohort/internal/config"
	"cohort/internal/trace"
)

// TestHooks holds seeded-fault injection points for the analysis package.
// All fields are zero in production; tests set them to prove the
// differential harnesses fail closed.
var TestHooks struct {
	// CurveBreakpointSkew shifts every interior segment boundary of newly
	// built hit curves by the given amount, after construction verification
	// has passed. Queries landing in a skewed boundary zone return the
	// neighboring segment's split — silently wrong, exactly what the
	// equivalence suites must detect.
	CurveBreakpointSkew config.Timer
}

// curveMaxSweeps caps the number of replays one curve construction may
// perform. Streams whose step function has more regimes than this yield an
// incomplete curve: queries below the sweep frontier are served exactly from
// the index, queries at or above it fall back to the scalar analysis. The
// cap is a variable so tests can force the incomplete path; the timer domain
// bounds the true regime count at config.TimerMax.
var curveMaxSweeps = 4096

// HitCurve is the precomputed step function θ → (hits, misses) of
// GuaranteedHits for one stream under a fixed geometry, latency set and
// per-miss cost. Build one with NewHitCurve; the zero value is not usable.
// A curve is immutable after construction and safe for concurrent readers.
type HitCurve struct {
	// Segment k covers θ ∈ [starts[k], starts[k+1]−1] (the last segment
	// extends to the sweep frontier, or config.TimerMax when complete).
	// starts[0] is always 1.
	starts []config.Timer
	hits   []int64
	misses []int64

	// complete reports whether the sweep covered the full timer domain;
	// when false, tailStart is the first θ the index cannot answer.
	complete  bool
	tailStart config.Timer

	// Inputs retained for the scalar fallback of Eval.
	s    trace.Stream
	geom config.CacheGeometry
	lat  config.Latencies
	wcl  int64
}

// curveBuilder holds the single-column replay state reused across the
// sweep's replays: one cache array in the BatchAnalyzer entry layout, grown
// once and re-zeroed per replay.
type curveBuilder struct {
	lineShift uint
	setMask   uint64
	ways      int
	ents      []batchEntry
}

func newCurveBuilder(geom config.CacheGeometry) *curveBuilder {
	// Reuse the batch analyzer's geometry validation and decomposition.
	b := NewBatchAnalyzer(geom)
	return &curveBuilder{
		lineShift: b.lineShift,
		setMask:   b.setMask,
		ways:      b.ways,
		ents:      make([]batchEntry, b.sets*b.ways),
	}
}

// replay runs one in-isolation replay at θ — the same branch sequence as
// GuaranteedHits — and additionally extracts nextBreak, the smallest θ' > θ
// at which this replay's classification can first differ: the minimum
// now − fetchedAt over window misses whose kind condition holds and whose
// age is within the timer domain. nextBreak = 0 means no θ' ≤ TimerMax can
// change anything — the current regime extends to the end of the domain.
func (cb *curveBuilder) replay(s trace.Stream, latHit, wcl int64, theta config.Timer) (hits, misses int64, nextBreak config.Timer) {
	clear(cb.ents)
	ways := cb.ways
	ents := cb.ents
	window := int64(theta)
	now := int64(0)
	next := int64(config.TimerMax) + 1
	useClock := uint64(0)
	for ai := range s {
		a := &s[ai]
		line := a.Addr >> cb.lineShift
		row := int(line&cb.setMask) * ways
		isRead := a.Kind == trace.Read
		now += a.Gap
		hit := -1
		for w := 0; w < ways; w++ {
			e := &ents[row+w]
			if e.state != cache.Invalid && e.lineAddr == line {
				hit = w
				break
			}
		}
		if hit >= 0 {
			e := &ents[row+hit]
			if now <= e.fetchedAt+window && (isRead || e.state == cache.Modified) {
				hits++
				now += latHit
				useClock++
				e.lastUse = useClock
				continue
			}
			if isRead || e.state == cache.Modified {
				// A pure window miss: θ' ≥ now − fetchedAt would classify
				// this access a hit (the kind condition already holds), so
				// its age is a candidate breakpoint.
				if age := now - e.fetchedAt; age <= int64(config.TimerMax) && age < next {
					next = age
				}
			}
			// Present but outside the window (or an upgrade): re-fill in
			// place with a fresh window.
			misses++
			now += wcl
			st := cache.Shared
			if !isRead {
				st = cache.Modified
			}
			e.lineAddr = line
			e.state = st
			e.fetchedAt = now
			useClock++
			e.lastUse = useClock
			continue
		}
		// Cold or capacity miss: first invalid way, else strict-LRU with the
		// lowest way winning ties — exactly cache.VictimFor with no pinning.
		misses++
		now += wcl
		victim := -1
		for w := 0; w < ways; w++ {
			e := &ents[row+w]
			if e.state == cache.Invalid {
				victim = w
				break
			}
			if victim == -1 || e.lastUse < ents[row+victim].lastUse {
				victim = w
			}
		}
		e := &ents[row+victim]
		st := cache.Shared
		if !isRead {
			st = cache.Modified
		}
		e.lineAddr = line
		e.state = st
		e.fetchedAt = now
		useClock++
		e.lastUse = useClock
	}
	if next > int64(config.TimerMax) {
		return hits, misses, 0
	}
	return hits, misses, config.Timer(next)
}

// NewHitCurve builds the complete (or capped) hit curve for one stream: the
// exact step function θ → GuaranteedHits(s, geom, lat, θ, wcl) over the
// timed domain θ ∈ [1, config.TimerMax]. Construction is verified against
// the batched SoA kernel before the curve is returned.
func NewHitCurve(s trace.Stream, geom config.CacheGeometry, lat config.Latencies, wcl int64) *HitCurve {
	if wcl <= 0 {
		// Same guard, same message as the scalar kernel.
		panic(fmt.Sprintf("analysis: non-positive WCL %d", wcl))
	}
	hc := &HitCurve{complete: true, s: s, geom: geom, lat: lat, wcl: wcl}
	cb := newCurveBuilder(geom)
	theta := config.Timer(1)
	for sweep := 0; ; sweep++ {
		if sweep >= curveMaxSweeps {
			hc.complete = false
			hc.tailStart = theta
			break
		}
		h, m, next := cb.replay(s, lat.Hit, wcl, theta)
		if k := len(hc.starts); k == 0 || hc.hits[k-1] != h || hc.misses[k-1] != m {
			hc.starts = append(hc.starts, theta)
			hc.hits = append(hc.hits, h)
			hc.misses = append(hc.misses, m)
		}
		if next == 0 {
			break
		}
		theta = next
	}
	hc.verify()
	if sk := TestHooks.CurveBreakpointSkew; sk != 0 {
		// Seeded fault: shift interior boundaries after verification so the
		// construction check passes but boundary-zone queries are wrong.
		for i := 1; i < len(hc.starts); i++ {
			hc.starts[i] += sk
		}
	}
	return hc
}

// NewIsolationHitCurve builds the curve for IsolationHits semantics: misses
// priced at one uncontended slot (SW), the form the optimizer's oracle
// queries.
func NewIsolationHitCurve(s trace.Stream, geom config.CacheGeometry, lat config.Latencies) *HitCurve {
	return NewHitCurve(s, geom, lat, lat.SlotWidth())
}

// verify re-evaluates every segment start through the batched SoA kernel
// and panics on any mismatch. Mid-segment values are covered by the regime-
// constancy argument (DESIGN.md §17); the segment starts are exactly the
// points where construction could have gone wrong.
func (c *HitCurve) verify() {
	if len(c.starts) == 0 {
		return
	}
	b := NewBatchAnalyzer(c.geom)
	const chunk = 64
	hits := make([]int64, chunk)
	misses := make([]int64, chunk)
	for i := 0; i < len(c.starts); i += chunk {
		j := min(i+chunk, len(c.starts))
		thetas := c.starts[i:j]
		b.GuaranteedHitsBatch(c.s, c.lat, thetas, c.wcl, hits[:len(thetas)], misses[:len(thetas)])
		for k := range thetas {
			if hits[k] != c.hits[i+k] || misses[k] != c.misses[i+k] {
				panic(fmt.Sprintf("analysis: hit-curve verification failed at θ=%d: curve (%d,%d) vs batch (%d,%d)",
					thetas[k], c.hits[i+k], c.misses[i+k], hits[k], misses[k]))
			}
		}
	}
}

// Complete reports whether the curve covers the full timer domain.
func (c *HitCurve) Complete() bool { return c.complete }

// Segments returns the number of distinct regimes the curve indexes.
func (c *HitCurve) Segments() int { return len(c.starts) }

// TailStart returns the first θ an incomplete curve cannot answer (0 when
// the curve is complete).
func (c *HitCurve) TailStart() config.Timer {
	if c.complete {
		return 0
	}
	return c.tailStart
}

// Lookup answers the guaranteed hit/miss split for θ from the index alone.
// ok is false when the curve is incomplete and θ lies at or beyond the
// sweep frontier (or outside the timer domain); callers then fall back to
// the scalar analysis (Eval does so automatically). The query is a binary
// search over the segment starts and performs no allocation.
//
//cohort:hotpath
func (c *HitCurve) Lookup(theta config.Timer) (hits, misses int64, ok bool) {
	if !theta.Timed() {
		return 0, int64(len(c.s)), true
	}
	if theta > config.TimerMax || (!c.complete && theta >= c.tailStart) {
		return 0, 0, false
	}
	// Largest segment index with starts[i] ≤ θ; starts[0] = 1 ≤ θ always.
	lo, hi := 0, len(c.starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.starts[mid] <= theta {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo - 1
	return c.hits[i], c.misses[i], true
}

// Eval answers the split for any θ: from the index when covered, otherwise
// by the exact scalar analysis over the retained inputs.
func (c *HitCurve) Eval(theta config.Timer) (hits, misses int64) {
	if h, m, ok := c.Lookup(theta); ok {
		return h, m
	}
	return GuaranteedHits(c.s, c.geom, c.lat, theta, c.wcl)
}

// SaturationTimer computes θ_is and the saturation hit count from the
// curve, replicating the package-level SaturationTimer's doubling-grid +
// binary-search decision sequence exactly — every probe is answered by Eval
// instead of a stream walk, so the result is bit-identical.
func (c *HitCurve) SaturationTimer() (config.Timer, int64) {
	return saturationSweep(func(th config.Timer) int64 {
		h, _ := c.Eval(th)
		return h
	})
}
