package analysis

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// TestHitCurveDifferential is the curve's bit-identity proof at unit level:
// across geometries × streams × per-miss costs, the curve must answer every
// θ — segment starts, boundary neighbors, and a dense sweep of interior
// points — exactly like the scalar GuaranteedHits.
func TestHitCurveDifferential(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50, DRAM: 100}
	for _, geom := range batchGeoms {
		for _, name := range []string{"fft", "water"} {
			for _, seed := range []uint64{1, 42, 7777} {
				s := batchStream(name, seed, t)
				for _, wcl := range []int64{lat.SlotWidth(), 1, 977} {
					hc := NewHitCurve(s, geom, lat, wcl)
					if !hc.Complete() {
						t.Fatalf("geom %+v %s/%d wcl %d: curve incomplete at %d segments", geom, name, seed, wcl, hc.Segments())
					}
					check := func(th config.Timer) {
						t.Helper()
						gotH, gotM := hc.Eval(th)
						wantH, wantM := GuaranteedHits(s, geom, lat, th, wcl)
						if gotH != wantH || gotM != wantM {
							t.Fatalf("geom %+v %s/%d wcl %d θ=%v: curve (%d,%d) != scalar (%d,%d)",
								geom, name, seed, wcl, th, gotH, gotM, wantH, wantM)
						}
					}
					// Every boundary and its neighbors, plus the domain edges
					// and the untimed classes.
					for _, start := range hc.starts {
						check(start)
						if start > 1 {
							check(start - 1)
						}
						if start < config.TimerMax {
							check(start + 1)
						}
					}
					for _, th := range batchThetas {
						check(th)
					}
					// Dense interior sweep.
					for th := config.Timer(1); th <= 4096; th += 13 {
						check(th)
					}
				}
			}
		}
	}
}

// TestHitCurveSaturationTimer proves θ_is read off the curve is bit-identical
// to the scalar sweep — the probe sequence is shared, so the smallest
// saturating timer and the saturation count must both match.
func TestHitCurveSaturationTimer(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50, DRAM: 100}
	for _, geom := range batchGeoms {
		for _, name := range []string{"fft", "water"} {
			for _, seed := range []uint64{1, 42, 7777} {
				s := batchStream(name, seed, t)
				hc := NewIsolationHitCurve(s, geom, lat)
				gotTh, gotHits := hc.SaturationTimer()
				wantTh, wantHits := SaturationTimer(s, geom, lat)
				if gotTh != wantTh || gotHits != wantHits {
					t.Fatalf("geom %+v %s/%d: curve sweep (θ=%v, hits=%d) != scalar (θ=%v, hits=%d)",
						geom, name, seed, gotTh, gotHits, wantTh, wantHits)
				}
			}
		}
	}
}

// TestHitCurveIncompleteFallback forces the sweep cap and proves the
// incomplete path stays exact: Lookup refuses θ at or beyond the frontier,
// and Eval transparently falls back to the scalar analysis there.
func TestHitCurveIncompleteFallback(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[2] // tiny cache: heavy eviction, many regimes
	s := batchStream("fft", 42, t)

	full := NewIsolationHitCurve(s, geom, lat)
	if full.Segments() < 4 {
		t.Skipf("stream yields only %d segments; need ≥4 to cap meaningfully", full.Segments())
	}
	defer func(old int) { curveMaxSweeps = old }(curveMaxSweeps)
	curveMaxSweeps = 3
	hc := NewIsolationHitCurve(s, geom, lat)
	if hc.Complete() {
		t.Fatal("capped sweep reported a complete curve")
	}
	frontier := hc.TailStart()
	if frontier <= 1 {
		t.Fatalf("frontier %v not past the first segment", frontier)
	}
	if _, _, ok := hc.Lookup(frontier); ok {
		t.Fatal("Lookup answered at the sweep frontier")
	}
	if _, _, ok := hc.Lookup(config.TimerMax); ok {
		t.Fatal("Lookup answered beyond the sweep frontier")
	}
	if _, _, ok := hc.Lookup(frontier - 1); !ok {
		t.Fatal("Lookup refused a covered θ below the frontier")
	}
	for _, th := range []config.Timer{1, frontier - 1, frontier, frontier + 1, 4096, config.TimerMax, config.TimerMSI, config.TimerNoCache} {
		gotH, gotM := hc.Eval(th)
		wantH, wantM := IsolationHits(s, geom, lat, th)
		if gotH != wantH || gotM != wantM {
			t.Fatalf("θ=%v: incomplete-curve Eval (%d,%d) != scalar (%d,%d)", th, gotH, gotM, wantH, wantM)
		}
	}
}

// TestHitCurveVerifyFailsClosed corrupts a constructed curve and proves the
// BatchAnalyzer-backed verification panics — the construction check cannot
// silently accept a wrong segment.
func TestHitCurveVerifyFailsClosed(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[0]
	s := batchStream("fft", 1, t)
	hc := NewIsolationHitCurve(s, geom, lat)
	if hc.Segments() == 0 {
		t.Fatal("no segments to corrupt")
	}
	hc.hits[len(hc.hits)-1]++
	defer func() {
		if recover() == nil {
			t.Error("verification accepted a corrupted segment")
		}
	}()
	hc.verify()
}

// TestHitCurveBreakpointSkewHook proves the seeded-fault hook works as the
// fail-closed probe: construction verification still passes (the skew is
// applied after it), but a query at a true breakpoint now returns the
// previous segment's split — a divergence the differential suites must
// catch.
func TestHitCurveBreakpointSkewHook(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[2]
	s := batchStream("fft", 42, t)
	clean := NewIsolationHitCurve(s, geom, lat)
	if clean.Segments() < 2 {
		t.Skipf("stream yields only %d segments; need ≥2 for a boundary", clean.Segments())
	}

	TestHooks.CurveBreakpointSkew = 1
	defer func() { TestHooks.CurveBreakpointSkew = 0 }()
	skewed := NewIsolationHitCurve(s, geom, lat)

	diverged := false
	for _, start := range clean.starts[1:] {
		cH, cM := clean.Eval(start)
		sH, sM := skewed.Eval(start)
		if cH != sH || cM != sM {
			diverged = true
			wantH, wantM := IsolationHits(s, geom, lat, start)
			if cH != wantH || cM != wantM {
				t.Fatalf("clean curve wrong at θ=%v", start)
			}
			if sH == wantH && sM == wantM {
				t.Fatalf("skewed curve accidentally right at θ=%v", start)
			}
		}
	}
	if !diverged {
		t.Fatal("breakpoint skew produced no observable divergence")
	}
}

// TestHitCurveLookupAllocFree pins the hotpath contract at runtime: the
// steady-state query performs zero allocations.
func TestHitCurveLookupAllocFree(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[0]
	s := batchStream("fft", 21, t)
	hc := NewIsolationHitCurve(s, geom, lat)
	var sink int64
	allocs := testing.AllocsPerRun(100, func() {
		for th := config.Timer(1); th < 2048; th += 17 {
			h, m, _ := hc.Lookup(th)
			sink += h - m
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocated %.1f times per run (sink %d)", allocs, sink)
	}
}

// TestHitCurveEmptyStream pins the degenerate case: an empty stream yields a
// single all-zero segment and answers every θ.
func TestHitCurveEmptyStream(t *testing.T) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	hc := NewHitCurve(trace.Stream{}, batchGeoms[0], lat, lat.SlotWidth())
	if !hc.Complete() || hc.Segments() != 1 {
		t.Fatalf("empty stream: complete=%v segments=%d", hc.Complete(), hc.Segments())
	}
	for _, th := range []config.Timer{config.TimerMSI, 1, config.TimerMax} {
		if h, m := hc.Eval(th); h != 0 || m != 0 {
			t.Fatalf("θ=%v: (%d,%d), want (0,0)", th, h, m)
		}
	}
}

// BenchmarkHitCurveBuild measures one-time construction cost (sweep +
// verification) for the benchmark stream.
func BenchmarkHitCurveBuild(b *testing.B) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[0]
	p, _ := trace.ProfileByName("fft")
	s := p.Scaled(0.01).Generate(2, 64, 21).Streams[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIsolationHitCurve(s, geom, lat)
	}
}

// BenchmarkIsolationHitsCurve is the query-path twin of
// BenchmarkIsolationHitsScalar/Batch: the same 16 timers answered from the
// prebuilt index.
func BenchmarkIsolationHitsCurve(b *testing.B) {
	lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
	geom := batchGeoms[0]
	p, _ := trace.ProfileByName("fft")
	s := p.Scaled(0.01).Generate(2, 64, 21).Streams[0]
	thetas := benchThetas(16)
	hc := NewIsolationHitCurve(s, geom, lat)
	var sink int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range thetas {
			h, m, _ := hc.Lookup(th)
			sink += h - m
		}
	}
	_ = sink
}
