package analysis

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// FuzzBatchVsScalar feeds a random trace prefix and a random timer batch
// through both kernels and asserts identical per-column (hits, misses)
// fingerprints. The input encoding is deliberately dense so mutation
// exercises every branch: geometry and batch width from the header, timers
// mapped across all classes (MSI, no-cache, small, huge), then three bytes
// per access (address byte, kind/gap byte, gap byte).
//
//	go test -fuzz FuzzBatchVsScalar ./internal/analysis
func FuzzBatchVsScalar(f *testing.F) {
	f.Add([]byte{0, 3, 5, 0, 200, 17, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 1, 255, 10, 20, 30, 10, 20, 30, 10, 20, 31})
	f.Add([]byte{2, 8, 0, 1, 2, 3, 4, 5, 6, 7, 100, 3, 9, 100, 2, 0, 100, 1, 255})
	f.Add([]byte{0, 2, 9, 9, 64, 0, 0, 64, 1, 0, 64, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		geom := batchGeoms[int(data[0])%len(batchGeoms)]
		width := int(data[1])%8 + 1
		if len(data) < 2+width {
			return
		}
		thetas := make([]config.Timer, width)
		for i := 0; i < width; i++ {
			// Map a byte across the timer classes: −1, 0, 1..251, and the max.
			switch v := data[2+i]; {
			case v == 255:
				thetas[i] = config.TimerMax
			case v == 254:
				thetas[i] = config.TimerMSI
			case v == 253:
				thetas[i] = config.TimerNoCache
			default:
				thetas[i] = config.Timer(v)
			}
		}
		var s trace.Stream
		for p := 2 + width; p+2 < len(data) && len(s) < 512; p += 3 {
			k := trace.Read
			if data[p+1]&1 == 1 {
				k = trace.Write
			}
			s = append(s, trace.Access{
				// Spread addresses over several sets and force aliasing.
				Addr: uint64(data[p])*64 + uint64(data[p+1]&0xf0)*4096,
				Kind: k,
				Gap:  int64(data[p+2]),
			})
		}
		lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
		wcl := lat.SlotWidth()
		ba := NewBatchAnalyzer(geom)
		hits := make([]int64, width)
		misses := make([]int64, width)
		ba.GuaranteedHitsBatch(s, lat, thetas, wcl, hits, misses)
		for c, th := range thetas {
			wantH, wantM := GuaranteedHits(s, geom, lat, th, wcl)
			if hits[c] != wantH || misses[c] != wantM {
				t.Fatalf("col %d θ=%v: batch fingerprint (%d,%d) != scalar (%d,%d)",
					c, th, hits[c], misses[c], wantH, wantM)
			}
		}
		// Replay the same batch on the reused analyzer: results must be
		// stable across calls (per-column state fully re-initialized).
		hits2 := make([]int64, width)
		misses2 := make([]int64, width)
		ba.GuaranteedHitsBatch(s, lat, thetas, wcl, hits2, misses2)
		for c := range thetas {
			if hits[c] != hits2[c] || misses[c] != misses2[c] {
				t.Fatalf("col %d: analyzer reuse changed fingerprint", c)
			}
		}
	})
}
