package analysis

import (
	"testing"
	"testing/quick"

	"cohort/internal/config"
	"cohort/internal/trace"
)

var lat = config.Latencies{Hit: 1, Req: 4, Data: 50, DRAM: 100}

func TestWCLCoHoRTHandComputed(t *testing.T) {
	// N=4, SW=54. All MSI: Eq.1 gives SW + 3·SW = 216; the work-conserving
	// correction adds another 3·SW: 378.
	allMSI := []config.Timer{-1, -1, -1, -1}
	for i := 0; i < 4; i++ {
		if got := WCLCoHoRT(lat, allMSI, i); got != 378 {
			t.Fatalf("all-MSI WCL_%d = %d, want 378", i, got)
		}
	}
	// Timers 100/50/-1/-1 for core 0: 378 + (50+54) = 482.
	timers := []config.Timer{100, 50, -1, -1}
	if got := WCLCoHoRT(lat, timers, 0); got != 482 {
		t.Fatalf("WCL_0 = %d, want 482", got)
	}
	// For core 2: θ_0 and θ_1 both contribute: 378 + (100+54) + (50+54) = 636.
	if got := WCLCoHoRT(lat, timers, 2); got != 636 {
		t.Fatalf("WCL_2 = %d, want 636", got)
	}
	// θ = 0 contributes 0 + SW (still a timer-class core); N=2:
	// SW + SW + SW + (0+54) = 216.
	withZero := []config.Timer{0, -1}
	if got := WCLCoHoRT(lat, withZero, 1); got != 216 {
		t.Fatalf("WCL with θ=0 = %d, want 216", got)
	}
}

// Property: WCL is monotone nondecreasing in every other core's timer and
// does not depend on the core's own timer.
func TestPropertyWCLMonotone(t *testing.T) {
	f := func(a, b, c uint8, bump uint8) bool {
		timers := []config.Timer{config.Timer(a), config.Timer(b), config.Timer(c), -1}
		base := WCLCoHoRT(lat, timers, 3)
		timers[1] += config.Timer(bump)
		if WCLCoHoRT(lat, timers, 3) < base {
			return false
		}
		// Own timer irrelevant.
		own := []config.Timer{10, 20, 30, 40}
		w1 := WCLCoHoRT(lat, own, 2)
		own[2] = 9999
		return WCLCoHoRT(lat, own, 2) == w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWCLPCC(t *testing.T) {
	// SW + 2·3·(SW + 50) = 54 + 624 = 678.
	if got := WCLPCC(lat, 4); got != 678 {
		t.Fatalf("WCL_PCC = %d, want 678", got)
	}
	// PCC is always looser than all-MSI CoHoRT (the handover detour).
	if WCLPCC(lat, 4) <= WCLCoHoRT(lat, []config.Timer{-1, -1, -1, -1}, 0) {
		t.Fatal("PCC bound must exceed direct-transfer MSI bound")
	}
}

func TestWCLPendulum(t *testing.T) {
	timers := []config.Timer{500, 500, -1, -1}
	crit := []bool{true, true, false, false}
	// N_cr=2, P=108: 2·108 + 54 + 2·(500 + 2·108) — both Cr timers count,
	// including the requester's own.
	if got := WCLPendulum(lat, timers, crit, 0); got != 270+2*(500+216) {
		t.Fatalf("PENDULUM WCL_0 = %d, want 1702", got)
	}
	if got := WCLPendulum(lat, timers, crit, 2); got != Unbounded {
		t.Fatalf("nCr core bound = %d, want Unbounded", got)
	}
	// All critical: N_cr=4, P=216: 2·216 + 54 + 4·(500+432) = 4214.
	all := []config.Timer{500, 500, 500, 500}
	allCrit := []bool{true, true, true, true}
	if got := WCLPendulum(lat, all, allCrit, 0); got != 4214 {
		t.Fatalf("all-Cr PENDULUM WCL = %d, want 4214", got)
	}
}

func TestWCMLFormulas(t *testing.T) {
	if got := WCML(70, 30, 1, 200); got != 70+6000 {
		t.Fatalf("WCML = %d", got)
	}
	if got := WCMLAllMiss(100, 216); got != 21600 {
		t.Fatalf("WCMLAllMiss = %d", got)
	}
}

func geomL1() config.CacheGeometry {
	return config.CacheGeometry{SizeBytes: 16 * 1024, LineBytes: 64, Ways: 1}
}

func TestGuaranteedHitsBasics(t *testing.T) {
	// Access the same line 5 times back to back: fill + 4 guaranteed hits
	// when θ covers the span, 0 hits when θ = −1.
	s := trace.Stream{}
	for i := 0; i < 5; i++ {
		s = append(s, trace.Access{Addr: 0x1000, Kind: trace.Read})
	}
	h, m := GuaranteedHits(s, geomL1(), lat, 100, 216)
	if h != 4 || m != 1 {
		t.Fatalf("θ=100: %d hits %d misses, want 4/1", h, m)
	}
	h, m = GuaranteedHits(s, geomL1(), lat, config.TimerMSI, 216)
	if h != 0 || m != 5 {
		t.Fatalf("MSI: %d hits %d misses, want 0/5", h, m)
	}
	h, m = GuaranteedHits(s, geomL1(), lat, config.TimerNoCache, 216)
	if h != 0 || m != 5 {
		t.Fatalf("θ=0: %d hits %d misses, want 0/5", h, m)
	}
}

func TestGuaranteedHitsWindowExpiry(t *testing.T) {
	// Second access lands after the θ window: not guaranteed.
	s := trace.Stream{
		{Addr: 0x1000, Kind: trace.Read},
		{Addr: 0x1000, Kind: trace.Read, Gap: 10},
	}
	// Window θ=9 < gap 10: the second access is a miss.
	h, m := GuaranteedHits(s, geomL1(), lat, 9, 216)
	if h != 0 || m != 2 {
		t.Fatalf("θ=9: %d/%d, want 0 hits 2 misses", h, m)
	}
	// θ=10 covers it.
	h, m = GuaranteedHits(s, geomL1(), lat, 10, 216)
	if h != 1 || m != 1 {
		t.Fatalf("θ=10: %d/%d, want 1 hit 1 miss", h, m)
	}
}

func TestGuaranteedHitsUpgradeIsMiss(t *testing.T) {
	s := trace.Stream{
		{Addr: 0x1000, Kind: trace.Read},
		{Addr: 0x1000, Kind: trace.Write},
		{Addr: 0x1000, Kind: trace.Write},
	}
	h, m := GuaranteedHits(s, geomL1(), lat, 500, 216)
	// read miss, write upgrade (miss), write hit on own M copy.
	if h != 1 || m != 2 {
		t.Fatalf("upgrade analysis: %d hits %d misses, want 1/2", h, m)
	}
}

func TestGuaranteedHitsSelfConflict(t *testing.T) {
	// Two lines mapping to the same set of the direct-mapped cache (256
	// sets, 64B lines): line addresses 256 apart.
	a := uint64(0x1000)
	b := a + 256*64
	s := trace.Stream{
		{Addr: a, Kind: trace.Read},
		{Addr: b, Kind: trace.Read},
		{Addr: a, Kind: trace.Read},
	}
	h, m := GuaranteedHits(s, geomL1(), lat, config.TimerMax, 216)
	if h != 0 || m != 3 {
		t.Fatalf("self-conflict: %d hits %d misses, want 0/3", h, m)
	}
}

// Property: guaranteed hits are monotone nondecreasing in θ on generated
// workloads.
func TestPropertyHitsMonotoneInTheta(t *testing.T) {
	p, _ := trace.ProfileByName("fft")
	s := p.Scaled(0.01).Generate(1, 64, 5).Streams[0]
	prev := int64(-1)
	for _, th := range []config.Timer{1, 4, 16, 64, 256, 1024, 4096, config.TimerMax} {
		h, m := GuaranteedHits(s, geomL1(), lat, th, 216)
		if h+m != int64(len(s)) {
			t.Fatalf("θ=%d: hits+misses=%d, want %d", th, h+m, len(s))
		}
		if h < prev {
			t.Fatalf("hits not monotone at θ=%d: %d < %d", th, h, prev)
		}
		prev = h
	}
}

func TestSaturationTimer(t *testing.T) {
	p, _ := trace.ProfileByName("water")
	s := p.Scaled(0.02).Generate(1, 64, 9).Streams[0]
	thIS, satHits := SaturationTimer(s, geomL1(), lat)
	if thIS < 1 || thIS > config.TimerMax {
		t.Fatalf("θ_is = %d out of range", thIS)
	}
	h, _ := GuaranteedHits(s, geomL1(), lat, thIS, lat.SlotWidth())
	if h < satHits {
		t.Fatalf("hits at θ_is (%d) below saturation (%d)", h, satHits)
	}
	if thIS > 1 {
		hBelow, _ := GuaranteedHits(s, geomL1(), lat, thIS-1, lat.SlotWidth())
		if hBelow >= satHits {
			t.Fatalf("θ_is not minimal: hits(θ_is−1)=%d ≥ %d", hBelow, satHits)
		}
	}
}

func TestSaturationTimerDegenerate(t *testing.T) {
	// Single access: no hits at any θ; θ_is collapses to 1.
	s := trace.Stream{{Addr: 0x1000, Kind: trace.Read}}
	thIS, satHits := SaturationTimer(s, geomL1(), lat)
	if thIS != 1 || satHits != 0 {
		t.Fatalf("degenerate θ_is = %d hits %d, want 1/0", thIS, satHits)
	}
}

func TestBoundsDispatch(t *testing.T) {
	p, _ := trace.ProfileByName("fft")
	tr := p.Scaled(0.01).Generate(4, 64, 3)

	cohort, _ := config.CoHoRT(4, 1, []config.Timer{100, 50, -1, -1})
	bs, err := Bounds(cohort, tr)
	if err != nil {
		t.Fatal(err)
	}
	if bs[0].MHit == 0 {
		t.Fatal("timed core 0 should have guaranteed hits")
	}
	if bs[2].MHit != 0 || bs[2].MMiss != int64(tr.Lambda(2)) {
		t.Fatalf("MSI core bound wrong: %+v", bs[2])
	}
	if bs[0].WCMLBound != WCML(bs[0].MHit, bs[0].MMiss, 1, bs[0].WCL) {
		t.Fatal("Eq.2 inconsistency")
	}

	pcc := config.PCC(4)
	bs, err = Bounds(pcc, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bs {
		if bs[i].WCL != 678 {
			t.Fatalf("PCC WCL = %d", bs[i].WCL)
		}
		if bs[i].WCMLBound != 678*int64(tr.Lambda(i)) {
			t.Fatalf("PCC WCML = %d", bs[i].WCMLBound)
		}
	}

	pend := config.PENDULUM([]bool{true, true, false, false})
	bs, err = Bounds(pend, tr)
	if err != nil {
		t.Fatal(err)
	}
	if bs[0].WCL == Unbounded || bs[2].WCL != Unbounded {
		t.Fatalf("PENDULUM bounds wrong: %+v", bs)
	}

	cots := config.MSIFCFS(4)
	bs, err = Bounds(cots, tr)
	if err != nil {
		t.Fatal(err)
	}
	if bs[0].WCL != Unbounded || bs[0].WCMLBound != Unbounded {
		t.Fatalf("FCFS must be unbounded: %+v", bs[0])
	}
}

func TestBoundsValidation(t *testing.T) {
	cohort, _ := config.CoHoRT(4, 1, []config.Timer{1, 1, 1, 1})
	p, _ := trace.ProfileByName("fft")
	tr := p.Scaled(0.001).Generate(2, 64, 1) // wrong core count
	if _, err := Bounds(cohort, tr); err == nil {
		t.Fatal("stream-count mismatch accepted")
	}
	bad := config.PaperDefaults(4, 1)
	bad.Mode = 7
	tr4 := p.Scaled(0.001).Generate(4, 64, 1)
	if _, err := Bounds(bad, tr4); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGuaranteedHitsBadWCLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GuaranteedHits(trace.Stream{{Addr: 1}}, geomL1(), lat, 5, 0)
}
