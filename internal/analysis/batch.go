// Batched in-isolation cache analysis: the structure-of-arrays twin of
// GuaranteedHits. The requirement-aware optimizer evaluates whole populations
// of timer vectors against the *same* workload streams, and the scalar oracle
// re-decodes and re-drives each stream once per configuration — the dominant
// cost in opt.BenchmarkOptimize. BatchAnalyzer walks a stream once and fans
// every access across N per-configuration state columns (cache entries, timer
// window, isolation clock, hit/miss counters), so the shared work — address
// decomposition, set indexing, the access kind — is paid once per access
// instead of once per access per configuration, and the per-call cache.New
// allocation of the scalar path disappears entirely (column state is
// preallocated via Reserve and reused across calls).
//
// The kernel is a transcription, not a reinterpretation: every branch of
// GuaranteedHits — the guarantee window test, the upgrade rule, in-place
// re-fill, invalid-first victim selection, strict-LRU eviction with
// lowest-way tie-break — is reproduced per column, so column i's result is
// bit-identical to GuaranteedHits(s, geom, lat, thetas[i], wcl). The
// differential suite (batch_test.go) and FuzzBatchVsScalar enforce that
// equivalence across geometries, batch widths and access patterns.
package analysis

import (
	"fmt"
	"math/bits"

	"cohort/internal/cache"
	"cohort/internal/config"
	"cohort/internal/trace"
)

// batchEntry is one cache-line slot of one configuration column. It mirrors
// cache.Entry minus the Version field, which the in-isolation analysis never
// reads or writes.
type batchEntry struct {
	lineAddr  uint64
	fetchedAt int64
	lastUse   uint64
	state     cache.State
}

// BatchAnalyzer evaluates a batch of timer configurations against one access
// stream in a single walk. The zero value is not usable; build one with
// NewBatchAnalyzer. An analyzer may be reused across any number of calls
// (state is re-zeroed per call and backing grows to its high-water mark),
// but it is not safe for concurrent use — give each worker its own.
type BatchAnalyzer struct {
	lineShift uint
	setMask   uint64
	sets      int
	ways      int

	// ents holds the per-column cache arrays interleaved by column:
	// slot (set, way) of column c lives at (set*ways+way)*width + c, so the
	// slots every column touches for one access are contiguous.
	ents  []batchEntry
	width int // column count the slab is laid out for

	// Per-column scalar state (structure of arrays).
	now      []int64
	winEnd   []int64 // window length (θ) per column; -1 marks an inactive (untimed) column
	hits     []int64
	misses   []int64
	useClock []uint64
	active   []int32 // indices of timed columns, in column order
}

// NewBatchAnalyzer builds an analyzer for one private-cache geometry. The
// geometry must satisfy the same constraints cache.New enforces (power-of-two
// line size and set count); violations panic, as they do there.
func NewBatchAnalyzer(geom config.CacheGeometry) *BatchAnalyzer {
	if geom.SizeBytes <= 0 || geom.LineBytes <= 0 || geom.Ways <= 0 {
		panic("analysis: non-positive batch geometry")
	}
	if bits.OnesCount(uint(geom.LineBytes)) != 1 {
		panic(fmt.Sprintf("analysis: line size %d not a power of two", geom.LineBytes))
	}
	nSets := geom.SizeBytes / (geom.LineBytes * geom.Ways)
	if nSets <= 0 || bits.OnesCount(uint(nSets)) != 1 {
		panic(fmt.Sprintf("analysis: set count %d not a positive power of two", nSets))
	}
	return &BatchAnalyzer{
		lineShift: uint(bits.TrailingZeros(uint(geom.LineBytes))),
		setMask:   uint64(nSets - 1),
		sets:      nSets,
		ways:      geom.Ways,
	}
}

// Reserve preallocates column state for batches of up to width
// configurations, so later calls at or below that width perform no
// allocations.
func (b *BatchAnalyzer) Reserve(width int) {
	if width > b.width {
		b.grow(width)
	}
}

// grow reallocates the slab and scalar columns for the given width.
func (b *BatchAnalyzer) grow(width int) {
	b.ents = make([]batchEntry, b.sets*b.ways*width)
	b.now = make([]int64, width)
	b.winEnd = make([]int64, width)
	b.hits = make([]int64, width)
	b.misses = make([]int64, width)
	b.useClock = make([]uint64, width)
	b.active = make([]int32, 0, width)
	b.width = width
}

// GuaranteedHitsBatch computes GuaranteedHits for every column in one stream
// walk: hits[i], misses[i] receive the guaranteed hit/miss split of
// thetas[i], bit-identical to GuaranteedHits(s, geom, lat, thetas[i], wcl).
// hits and misses must have len(thetas) entries. Untimed columns
// (θ ≤ 0) classify every access a miss without participating in the walk,
// exactly like the scalar early return.
func (b *BatchAnalyzer) GuaranteedHitsBatch(s trace.Stream, lat config.Latencies, thetas []config.Timer, wcl int64, hits, misses []int64) {
	if len(hits) != len(thetas) || len(misses) != len(thetas) {
		panic(fmt.Sprintf("analysis: batch outputs %d/%d for %d columns", len(hits), len(misses), len(thetas)))
	}
	if len(thetas) > b.width {
		b.grow(len(thetas))
	}
	b.active = b.active[:0]
	for c, th := range thetas {
		if !th.Timed() {
			hits[c], misses[c] = 0, int64(len(s))
			b.winEnd[c] = -1
			continue
		}
		if wcl <= 0 {
			// Same guard, same message as the scalar kernel.
			panic(fmt.Sprintf("analysis: non-positive WCL %d", wcl))
		}
		b.winEnd[c] = int64(th)
		b.now[c] = 0
		b.hits[c] = 0
		b.misses[c] = 0
		b.useClock[c] = 0
		b.active = append(b.active, int32(c))
	}
	if len(b.active) > 0 {
		clear(b.ents[:b.sets*b.ways*b.width])
		b.run(s, lat.Hit, wcl)
	}
	for _, c := range b.active {
		hits[c], misses[c] = b.hits[c], b.misses[c]
	}
}

// IsolationHitsBatch is the batched form of IsolationHits: the in-isolation
// analysis with misses priced at one uncontended slot (SW).
func (b *BatchAnalyzer) IsolationHitsBatch(s trace.Stream, lat config.Latencies, thetas []config.Timer, hits, misses []int64) {
	b.GuaranteedHitsBatch(s, lat, thetas, lat.SlotWidth(), hits, misses)
}

// TimerSample is one oracle sample produced during a saturation sweep: the
// guaranteed hit/miss split of one timer, under the in-isolation per-miss
// cost (one slot). Callers memoizing IsolationHits results can seed their
// memo from these.
type TimerSample struct {
	Theta        config.Timer
	Hits, Misses int64
}

// satGrid is SaturationTimer's evaluation grid: the saturation reference
// (TimerMax), the lower anchor (1), and the scalar sweep's doubling ladder.
// The scalar sweep evaluates these lazily, one full stream walk each; the
// batched sweep evaluates the whole grid in a single walk.
var satGrid = func() []config.Timer {
	g := []config.Timer{config.TimerMax, 1}
	for th := config.Timer(2); th < config.TimerMax; th *= 2 {
		g = append(g, th)
	}
	return g
}()

// SaturationTimer is the batched form of the package-level SaturationTimer:
// same result — the smallest swept θ reaching the saturation hit count, and
// that count — via the same doubling-grid + binary-search decision sequence,
// but with the entire grid evaluated in one stream walk and each refinement
// midpoint as a single-column batch (no per-evaluation cache allocation).
// The returned samples record every (θ → hits, misses) oracle evaluation the
// sweep performed, grid points first, refinement midpoints after, so callers
// can seed an IsolationHits memo for free.
func (b *BatchAnalyzer) SaturationTimer(s trace.Stream, lat config.Latencies) (config.Timer, int64, []TimerSample) {
	wcl := lat.SlotWidth()
	hits := make([]int64, len(satGrid))
	misses := make([]int64, len(satGrid))
	b.GuaranteedHitsBatch(s, lat, satGrid, wcl, hits, misses)
	samples := make([]TimerSample, len(satGrid), len(satGrid)+16)
	for k := range satGrid {
		samples[k] = TimerSample{Theta: satGrid[k], Hits: hits[k], Misses: misses[k]}
	}
	var (
		oneTheta [1]config.Timer
		oneHit   [1]int64
		oneMiss  [1]int64
	)
	evalOne := func(th config.Timer) int64 {
		oneTheta[0] = th
		b.GuaranteedHitsBatch(s, lat, oneTheta[:], wcl, oneHit[:], oneMiss[:])
		samples = append(samples, TimerSample{Theta: th, Hits: oneHit[0], Misses: oneMiss[0]})
		return oneHit[0]
	}
	maxHits := hits[0] // grid[0] = TimerMax
	if maxHits == hits[1] {
		return 1, maxHits, samples
	}
	// Doubling to find the first grid point reaching saturation — the same
	// decision sequence as the scalar sweep, read off the prefilled grid.
	lo, hi := config.Timer(1), config.TimerMax
	for k := 2; k < len(satGrid); k++ {
		if hits[k] >= maxHits {
			hi = satGrid[k]
			break
		}
		lo = satGrid[k]
	}
	// Binary search the smallest saturating θ in (lo, hi].
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if evalOne(mid) >= maxHits {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, maxHits, samples
}

// run is the batched replay loop: one pass over the stream, fanning each
// decoded access across the active columns. All state is preallocated by the
// caller; the loop itself is allocation-free.
//
//cohort:hotpath
func (b *BatchAnalyzer) run(s trace.Stream, latHit, wcl int64) {
	ways := b.ways
	ents := b.ents
	stride := b.width // row stride in columns (slab layout width)
	for ai := range s {
		a := &s[ai]
		// Shared per-access decode: address decomposition and kind are
		// identical for every column.
		line := a.Addr >> b.lineShift
		row := int(line&b.setMask) * ways * stride
		isRead := a.Kind == trace.Read
		gap := a.Gap
		for _, c32 := range b.active {
			c := int(c32)
			now := b.now[c] + gap
			// Lookup: first valid slot holding the line, in way order.
			hit := -1
			for w := 0; w < ways; w++ {
				e := &ents[row+w*stride+c]
				if e.state != cache.Invalid && e.lineAddr == line {
					hit = w
					break
				}
			}
			if hit >= 0 {
				e := &ents[row+hit*stride+c]
				if now <= e.fetchedAt+b.winEnd[c] && (isRead || e.state == cache.Modified) {
					// Guaranteed hit: hit latency, refresh recency.
					b.hits[c]++
					now += latHit
					b.useClock[c]++
					e.lastUse = b.useClock[c]
					b.now[c] = now
					continue
				}
				// Present but outside the window (or an upgrade): miss,
				// re-fill in place with a fresh window.
				b.misses[c]++
				now += wcl
				st := cache.Shared
				if !isRead {
					st = cache.Modified
				}
				e.lineAddr = line
				e.state = st
				e.fetchedAt = now
				b.useClock[c]++
				e.lastUse = b.useClock[c]
				b.now[c] = now
				continue
			}
			// Miss with the line absent: victim is the first invalid way,
			// else the least-recently-used way (strict <, so the lowest way
			// wins ties — exactly cache.VictimFor with no pinning).
			b.misses[c]++
			now += wcl
			victim := -1
			for w := 0; w < ways; w++ {
				e := &ents[row+w*stride+c]
				if e.state == cache.Invalid {
					victim = w
					break
				}
				if victim == -1 || e.lastUse < ents[row+victim*stride+c].lastUse {
					victim = w
				}
			}
			e := &ents[row+victim*stride+c]
			st := cache.Shared
			if !isRead {
				st = cache.Modified
			}
			e.lineAddr = line
			e.state = st
			e.fetchedAt = now
			b.useClock[c]++
			e.lastUse = b.useClock[c]
			b.now[c] = now
		}
	}
}
