package analysis

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/trace"
)

// FuzzCurveVsScalar builds a hit curve over a random trace prefix and
// asserts it answers a fuzzer-chosen θ grid exactly like the scalar
// GuaranteedHits. The encoding mirrors FuzzBatchVsScalar — geometry byte,
// grid width byte, θ bytes across every timer class, then three bytes per
// access — so the same corpus shapes exercise both differential harnesses.
// On top of the fuzzed grid, every constructed segment boundary and its
// neighbors are checked: those are exactly the points a wrong sweep would
// misplace.
//
//	go test -fuzz FuzzCurveVsScalar ./internal/analysis
func FuzzCurveVsScalar(f *testing.F) {
	f.Add([]byte{0, 3, 5, 0, 200, 17, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 1, 255, 10, 20, 30, 10, 20, 30, 10, 20, 31})
	f.Add([]byte{2, 8, 0, 1, 2, 3, 4, 5, 6, 7, 100, 3, 9, 100, 2, 0, 100, 1, 255})
	f.Add([]byte{0, 2, 9, 9, 64, 0, 0, 64, 1, 0, 64, 0, 0})
	f.Add([]byte{2, 4, 254, 253, 7, 255, 1, 1, 200, 1, 0, 3, 65, 1, 90, 1, 0, 250})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		geom := batchGeoms[int(data[0])%len(batchGeoms)]
		width := int(data[1])%8 + 1
		if len(data) < 2+width {
			return
		}
		thetas := make([]config.Timer, width)
		for i := 0; i < width; i++ {
			// Map a byte across the timer classes: −1, 0, 1..251, and the max.
			switch v := data[2+i]; {
			case v == 255:
				thetas[i] = config.TimerMax
			case v == 254:
				thetas[i] = config.TimerMSI
			case v == 253:
				thetas[i] = config.TimerNoCache
			default:
				thetas[i] = config.Timer(v)
			}
		}
		var s trace.Stream
		for p := 2 + width; p+2 < len(data) && len(s) < 512; p += 3 {
			k := trace.Read
			if data[p+1]&1 == 1 {
				k = trace.Write
			}
			s = append(s, trace.Access{
				// Spread addresses over several sets and force aliasing.
				Addr: uint64(data[p])*64 + uint64(data[p+1]&0xf0)*4096,
				Kind: k,
				Gap:  int64(data[p+2]),
			})
		}
		lat := config.Latencies{Hit: 1, Req: 4, Data: 50}
		wcl := lat.SlotWidth()
		hc := NewHitCurve(s, geom, lat, wcl)
		check := func(th config.Timer) {
			t.Helper()
			gotH, gotM := hc.Eval(th)
			wantH, wantM := GuaranteedHits(s, geom, lat, th, wcl)
			if gotH != wantH || gotM != wantM {
				t.Fatalf("θ=%v: curve (%d,%d) != scalar (%d,%d)", th, gotH, gotM, wantH, wantM)
			}
		}
		for _, th := range thetas {
			check(th)
		}
		for _, start := range hc.starts {
			check(start)
			if start > 1 {
				check(start - 1)
			}
			if start < config.TimerMax {
				check(start + 1)
			}
		}
		check(config.TimerMax)
	})
}
