// Package analysis implements the paper's timing analysis (§IV): the
// per-request worst-case latency of Equation 1, the task-level worst-case
// memory latency (WCML) of Equations 2 and 3, the corresponding bounds for
// the PCC and PENDULUM baselines, and the in-isolation static cache analysis
// that yields the guaranteed hit count M_hit(θ) the optimizer consumes
// (§V, after [17]).
package analysis

import (
	"fmt"

	"cohort/internal/cache"
	"cohort/internal/config"
	"cohort/internal/trace"
)

// Unbounded marks a latency with no analytical bound (e.g. PENDULUM's
// non-critical cores, or any core under a FCFS arbiter).
const Unbounded int64 = -1

// WCLCoHoRT computes the worst-case per-request latency of core i under
// RROF arbitration with the given timer vector. The first three terms are
// Equation 1 of the paper:
//
//	WCL_i = SW + (N−1)·SW + Σ_{j≠i} (θ_j + SW  if θ_j ≥ 0; 0 if θ_j = −1)
//
// plus one additional (N−1)·SW correction term required by our
// work-conserving split-transaction bus: before the request's broadcast is
// granted, each other core may complete one transaction for a *different*
// line (RROF admits exactly one such service per co-runner, since a core
// keeps its sequence position until its oldest request is served), on top of
// the same core's timer hold on the requested line that Eq. 1 charges. The
// paper's proof scenario has all cores contending for one line, where this
// term is zero; the soundness tests exercise mixed-line schedules where it
// is not.
func WCLCoHoRT(lat config.Latencies, timers []config.Timer, i int) int64 {
	sw := lat.SlotWidth()
	n := int64(len(timers))
	wcl := sw + (n-1)*sw + (n-1)*sw
	for j, th := range timers {
		if j == i {
			continue
		}
		if th >= 0 {
			wcl += int64(th) + sw
		}
	}
	return wcl
}

// WCLViaMemory bounds the per-request latency when ownership handovers
// route data through the shared memory (write-back + re-fetch): every
// transaction a co-runner charges against the request — its different-line
// service before the broadcast and its hold on the requested line — grows by
// one data latency over the direct-transfer bound:
//
//	WCL_via_i = WCL_CoHoRT_i + 2·(N−1)·L_data
func WCLViaMemory(lat config.Latencies, timers []config.Timer, i int) int64 {
	return WCLCoHoRT(lat, timers, i) + 2*int64(len(timers)-1)*lat.Data
}

// WCLPCC bounds the per-request latency under the PCC baseline — the
// via-memory bound with every core on MSI:
//
//	WCL_PCC = SW + 2·(N−1)·(SW + L_data)
func WCLPCC(lat config.Latencies, n int) int64 {
	timers := make([]config.Timer, n)
	for i := range timers {
		timers[i] = config.TimerMSI
	}
	return WCLViaMemory(lat, timers, 0)
}

// WCLPendulum bounds the per-request latency of a critical core under the
// PENDULUM baseline: TDM arbitration over the N_cr critical cores (period
// P = N_cr·SW, each handover may additionally wait a full period for its
// slot) plus the fixed, non-optimized timer of every critical core —
// including the requester's own, which PENDULUM's self-invalidation-style
// analysis charges (the paper contrasts: "In CoHoRT, cores do not suffer
// from the latency of its own timer", §VIII). Non-critical cores have no
// bound (Unbounded) — the limitation the paper calls out in §VII.
func WCLPendulum(lat config.Latencies, timers []config.Timer, critical []bool, i int) int64 {
	if !critical[i] {
		return Unbounded
	}
	sw := lat.SlotWidth()
	nCr := int64(0)
	for _, cr := range critical {
		if cr {
			nCr++
		}
	}
	period := nCr * sw
	wcl := 2*period + sw
	for j, cr := range critical {
		if !cr {
			continue
		}
		th := int64(timers[j])
		if th < 0 {
			th = 0
		}
		wcl += th + 2*period
	}
	return wcl
}

// WCML computes Equation 2: the task-level worst-case memory latency from
// the guaranteed hit/miss split.
func WCML(mHit, mMiss, lHit, wcl int64) int64 {
	return mHit*lHit + mMiss*wcl
}

// WCMLAllMiss computes Equation 3: the bound for cores whose hit counts
// cannot be guaranteed (MSI cores) — every access is assumed a miss.
func WCMLAllMiss(lambda, wcl int64) int64 {
	return lambda * wcl
}

// GuaranteedHits runs the conservative in-isolation cache analysis for one
// core: a line filled at analysis time t is guaranteed present only until
// t + θ (replenishment cannot be credited under interference), misses are
// charged the full WCL, hits the hit latency, and a store to a Shared copy
// is an upgrade (counted as a miss). It returns the guaranteed hit/miss
// split (M_hit, M_miss) of Equation 2.
//
// The analysis is sound against the simulator: every access it counts as a
// hit is a hit in any co-running schedule, because remote requests cannot
// invalidate a copy before the first timer expiry at or after the fill
// (coherence.ReleaseTime ≥ fill + θ) and the self-replacement pattern in
// isolation is identical.
func GuaranteedHits(s trace.Stream, geom config.CacheGeometry, lat config.Latencies, theta config.Timer, wcl int64) (hits, misses int64) {
	if !theta.Timed() {
		return 0, int64(len(s))
	}
	if wcl <= 0 {
		panic(fmt.Sprintf("analysis: non-positive WCL %d", wcl))
	}
	arr := cache.New(geom.SizeBytes, geom.LineBytes, geom.Ways)
	window := int64(theta)
	now := int64(0)
	for _, a := range s {
		now += a.Gap
		line := arr.LineAddr(a.Addr)
		e := arr.Lookup(line)
		guaranteed := e != nil && now <= e.FetchedAt+window &&
			(a.Kind == trace.Read || e.State == cache.Modified)
		if guaranteed {
			hits++
			now += lat.Hit
			arr.Touch(e)
			continue
		}
		misses++
		now += wcl
		st := cache.Shared
		if a.Kind == trace.Write {
			st = cache.Modified
		}
		if e != nil {
			// Present but outside the window (or an upgrade): re-fill in
			// place with a fresh window.
			arr.Fill(e, line, st, now)
			continue
		}
		victim := arr.VictimFor(line, nil)
		if victim.Valid() {
			arr.Invalidate(victim)
		}
		arr.Fill(victim, line, st, now)
	}
	return hits, misses
}

// IsolationHits runs the paper's in-isolation cache analysis (§IV: "M_hit
// and M_miss can be obtained from the in-isolation cache analysis by virtue
// of their timers [17]"): the core's stream is replayed on its private cache
// with the *isolation* timing — hits cost the hit latency, misses one
// uncontended slot (SW) — and a line is classified a guaranteed hit while the
// isolation clock is within θ of its fill. The timers are what make the
// in-isolation classification meaningful under co-runners (the argument of
// [17]); the residual optimism relative to a fully adversarial schedule is
// absorbed by the WCL term of Equation 2, which prices every predicted miss
// at the contended bound. GuaranteedHits is the strictly conservative
// alternative that charges WCL inside the window as well.
func IsolationHits(s trace.Stream, geom config.CacheGeometry, lat config.Latencies, theta config.Timer) (hits, misses int64) {
	return GuaranteedHits(s, geom, lat, theta, lat.SlotWidth())
}

// SaturationTimer sweeps θ in isolation and returns θ_is, the smallest
// swept timer for which the guaranteed hits reach their saturation value,
// together with the hit count at saturation (§V: the upper bound of the
// optimizer's search space). The sweep uses a doubling grid refined by
// binary search between the last two grid points; hits are evaluated with a
// fixed nominal per-miss cost of one slot (the sweep is a property of the
// task in isolation, not of a co-runner set).
func SaturationTimer(s trace.Stream, geom config.CacheGeometry, lat config.Latencies) (config.Timer, int64) {
	wcl := lat.SlotWidth()
	return saturationSweep(func(th config.Timer) int64 {
		h, _ := GuaranteedHits(s, geom, lat, th, wcl)
		return h
	})
}

// saturationSweep is the sweep's decision sequence, shared by every oracle
// backend (scalar here, the hit curve in curve.go; the batched sweep in
// batch.go replicates it over a prefilled grid): probe TimerMax for the
// saturation reference, early-return at θ = 1, double to bracket, then
// binary-search the smallest saturating θ in (lo, hi]. Sharing the exact
// probe order is what makes θ_is bit-identical across backends.
func saturationSweep(eval func(config.Timer) int64) (config.Timer, int64) {
	maxHits := eval(config.TimerMax)
	if maxHits == eval(1) {
		return 1, maxHits
	}
	// Doubling to find the first grid point reaching saturation.
	lo, hi := config.Timer(1), config.TimerMax
	for th := config.Timer(2); th < config.TimerMax; th *= 2 {
		if eval(th) >= maxHits {
			hi = th
			break
		}
		lo = th
	}
	// Binary search the smallest saturating θ in (lo, hi].
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if eval(mid) >= maxHits {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, maxHits
}

// CoreBound is the analytical result for one core.
type CoreBound struct {
	// Core is the core index.
	Core int
	// Theta is the core's timer at the analyzed mode.
	Theta config.Timer
	// WCL is the per-request bound (Unbounded if none exists).
	WCL int64
	// MHit and MMiss are the guaranteed hit/miss split (MHit = 0 for cores
	// analyzed with Equation 3).
	MHit, MMiss int64
	// WCMLBound is the task-level bound (Unbounded if none exists).
	WCMLBound int64
}

// Bounds computes the per-core analytical WCML bounds for a configuration
// and workload, dispatching on the system variant:
//
//   - TDM + PendulumCritOnly  → PENDULUM bounds (critical cores only),
//   - TransferViaMemory       → PCC bounds (all requests misses),
//   - FCFS arbiter            → no bounds (COTS),
//   - otherwise               → CoHoRT bounds (Eq. 1 + Eq. 2/3).
func Bounds(cfg *config.System, tr *trace.Trace) ([]CoreBound, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr.NumCores() != cfg.N() {
		return nil, fmt.Errorf("analysis: trace has %d streams for %d cores", tr.NumCores(), cfg.N())
	}
	n := cfg.N()
	timers := cfg.Timers()
	// Non-perfect LLC (the paper's footnote-1 configuration): every memory
	// service in the worst-case window may additionally miss the LLC, so
	// each of the up-to-N serialized services carries one DRAM penalty.
	var dramTerm int64
	if !cfg.PerfectLLC {
		dramTerm = int64(n) * cfg.Lat.DRAM
	}
	out := make([]CoreBound, n)
	for i := 0; i < n; i++ {
		b := CoreBound{Core: i, Theta: timers[i]}
		lambda := int64(tr.Lambda(i))
		b.MMiss = lambda
		switch {
		case cfg.Arbiter == config.ArbiterFCFS, cfg.Arbiter == config.ArbiterRR:
			// FCFS has no fairness guarantee; plain RR rotates on every
			// grant (including bare broadcasts), so the one-service-per-
			// co-runner argument behind Eq. 1 does not hold. Neither is
			// part of the paper's analysis.
			b.WCL = Unbounded
		case cfg.Arbiter == config.ArbiterTDM:
			// The TDM bound assumes the PENDULUM baseline's structure:
			// direct transfers and a perfect LLC, so every transaction fits
			// one slot. Hybrids (via-memory or DRAM-backed transactions
			// overrunning slots) are outside the published analysis.
			if cfg.Transfer != config.TransferDirect || !cfg.PerfectLLC || !cfg.PendulumCritOnly {
				b.WCL = Unbounded
				break
			}
			crit := make([]bool, n)
			for j := range crit {
				crit[j] = cfg.Critical(j)
			}
			b.WCL = WCLPendulum(cfg.Lat, timers, crit, i)
		case cfg.Transfer == config.TransferViaMemory:
			b.WCL = WCLViaMemory(cfg.Lat, timers, i)
			if timers[i].Timed() {
				b.MHit, b.MMiss = IsolationHits(tr.Streams[i], cfg.L1, cfg.Lat, timers[i])
			}
		default:
			b.WCL = WCLCoHoRT(cfg.Lat, timers, i)
			if timers[i].Timed() {
				b.MHit, b.MMiss = IsolationHits(tr.Streams[i], cfg.L1, cfg.Lat, timers[i])
			}
		}
		if b.WCL == Unbounded {
			b.WCMLBound = Unbounded
		} else {
			b.WCL += dramTerm
			b.WCMLBound = WCML(b.MHit, b.MMiss, cfg.Lat.Hit, b.WCL)
		}
		out[i] = b
	}
	return out, nil
}
