package analysis

import (
	"testing"

	"cohort/internal/config"
	"cohort/internal/core"
	"cohort/internal/trace"
)

// TestSoundness is the central validation of the reproduction: for every
// workload profile and a spread of timer assignments, the simulator's
// measured behaviour must respect the analysis — per-request latencies stay
// under the Eq. 1 bound, total memory latency stays under the Eq. 2/3 WCML
// bound, and each timed core achieves at least its guaranteed hit count.
// This is what Fig. 5's "experimental below analytical" claim rests on.
func TestSoundness(t *testing.T) {
	timerSets := [][]config.Timer{
		{100, 50, 20, 10},
		{300, 20, 20, 20},
		{500, config.TimerMSI, config.TimerMSI, config.TimerMSI},
		{200, 100, config.TimerMSI, config.TimerMSI},
		{config.TimerMSI, config.TimerMSI, config.TimerMSI, config.TimerMSI},
		{1, 1, 1, 1},
		{0, 50, config.TimerMSI, 700},
	}
	for _, name := range []string{"fft", "radix", "water", "lu", "barnes"} {
		p, err := trace.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []uint64{11, 97, 2026} {
			tr := p.Scaled(0.02).Generate(4, 64, seed)
			for ti, timers := range timerSets {
				cfg, err := config.CoHoRT(4, 1, timers)
				if err != nil {
					t.Fatal(err)
				}
				bounds, err := Bounds(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				sys, err := core.New(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				run, err := sys.Run()
				if err != nil {
					t.Fatalf("%s timers#%d: %v", name, ti, err)
				}
				if err := sys.CheckCoherence(); err != nil {
					t.Fatalf("%s timers#%d coherence: %v", name, ti, err)
				}
				for i := range run.Cores {
					b := bounds[i]
					c := run.Cores[i]
					if b.WCL != Unbounded && c.MaxMissLatency > b.WCL {
						t.Errorf("%s seed %d timers#%d core %d: max miss latency %d exceeds WCL %d (θ=%v)",
							name, seed, ti, i, c.MaxMissLatency, b.WCL, timers)
					}
					if b.WCMLBound != Unbounded && c.TotalLatency > b.WCMLBound {
						t.Errorf("%s seed %d timers#%d core %d: measured WCML %d exceeds bound %d",
							name, seed, ti, i, c.TotalLatency, b.WCMLBound)
					}
					// The strictly conservative hit analysis (WCL charged inside
					// the window) must be a true lower bound on achieved hits.
					consHits, _ := GuaranteedHits(tr.Streams[i], cfg.L1, cfg.Lat, timers[i], b.WCL)
					if c.Hits < consHits {
						t.Errorf("%s seed %d timers#%d core %d: %d hits below conservative guarantee %d",
							name, seed, ti, i, c.Hits, consHits)
					}
				}
			}
		}
	}
}

// TestSoundnessPCC checks the PCC baseline against its bound.
func TestSoundnessPCC(t *testing.T) {
	p, _ := trace.ProfileByName("lu")
	tr := p.Scaled(0.02).Generate(4, 64, 13)
	cfg := config.PCC(4)
	bounds, err := Bounds(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range run.Cores {
		if run.Cores[i].MaxMissLatency > bounds[i].WCL {
			t.Errorf("core %d: PCC max latency %d exceeds WCL %d", i, run.Cores[i].MaxMissLatency, bounds[i].WCL)
		}
		if run.Cores[i].TotalLatency > bounds[i].WCMLBound {
			t.Errorf("core %d: PCC WCML %d exceeds bound %d", i, run.Cores[i].TotalLatency, bounds[i].WCMLBound)
		}
	}
}

// TestSoundnessPendulum checks the PENDULUM baseline for critical cores.
func TestSoundnessPendulum(t *testing.T) {
	p, _ := trace.ProfileByName("fft")
	tr := p.Scaled(0.02).Generate(4, 64, 17)
	cfg := config.PENDULUM([]bool{true, true, false, false})
	bounds, err := Bounds(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range run.Cores {
		if bounds[i].WCL == Unbounded {
			continue
		}
		if run.Cores[i].MaxMissLatency > bounds[i].WCL {
			t.Errorf("core %d: PENDULUM max latency %d exceeds WCL %d", i, run.Cores[i].MaxMissLatency, bounds[i].WCL)
		}
		if run.Cores[i].TotalLatency > bounds[i].WCMLBound {
			t.Errorf("core %d: PENDULUM WCML %d exceeds bound %d", i, run.Cores[i].TotalLatency, bounds[i].WCMLBound)
		}
	}
}

// TestSoundnessNonPerfectLLC repeats the check with the non-perfect LLC +
// DRAM model (the paper's footnote-1 configuration). Analytical bounds
// assume a perfect LLC, so only the hit guarantee (which is unaffected by
// memory latency) is asserted, plus coherence.
func TestSoundnessNonPerfectLLC(t *testing.T) {
	p, _ := trace.ProfileByName("fft")
	tr := p.Scaled(0.02).Generate(4, 64, 19)
	cfg, _ := config.CoHoRT(4, 1, []config.Timer{200, 100, 50, config.TimerMSI})
	cfg.PerfectLLC = false
	bounds, err := Bounds(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	for i := range run.Cores {
		consHits, _ := GuaranteedHits(tr.Streams[i], cfg.L1, cfg.Lat, cfg.TimerOf(i), bounds[i].WCL)
		if run.Cores[i].Hits < consHits {
			t.Errorf("core %d: %d hits below conservative guarantee %d under non-perfect LLC",
				i, run.Cores[i].Hits, consHits)
		}
		// The DRAM-extended bounds must hold for latencies and WCML too.
		if run.Cores[i].MaxMissLatency > bounds[i].WCL {
			t.Errorf("core %d: non-perfect max latency %d exceeds bound %d",
				i, run.Cores[i].MaxMissLatency, bounds[i].WCL)
		}
		if run.Cores[i].TotalLatency > bounds[i].WCMLBound {
			t.Errorf("core %d: non-perfect WCML %d exceeds bound %d",
				i, run.Cores[i].TotalLatency, bounds[i].WCMLBound)
		}
	}
}
