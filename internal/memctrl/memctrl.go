// Package memctrl models the shared memory behind the bus: an inclusive
// last-level cache with an optional fixed-latency DRAM behind it. The paper's
// headline experiments use a perfect LLC (every access hits, isolating
// coherence interference); the non-perfect mode adds a fixed DRAM penalty and
// back-invalidations on inclusive evictions (§VIII, footnote 1).
package memctrl

import (
	"cohort/internal/cache"
	"cohort/internal/config"
	"cohort/internal/obs"
)

// LLC is the shared last-level cache controller.
type LLC struct {
	arr     *cache.Cache
	perfect bool
	dramLat int64

	// bypassed records lines served around the LLC because every candidate
	// way was timer-pinned: they may live in a private cache without an LLC
	// copy, the one sanctioned inclusion exception. Entries clear when the
	// line is eventually installed by a fetch or a writeback.
	bypassed map[uint64]bool

	// scratch backs the backInv slices returned by Fetch/WriteBack; reused
	// across calls so the steady state allocates nothing. curPinned +
	// pinAdapter bridge the caller's line-address predicate to the cache's
	// entry predicate through one closure built in New, instead of a fresh
	// capture per call.
	scratch    []uint64
	curPinned  func(uint64) bool
	pinAdapter func(*cache.Entry) bool

	hits, misses, evictions, bypasses obs.Counter
}

// New builds an LLC from its geometry. When perfect is true every fetch
// hits; dramLat is the penalty added on a miss otherwise.
func New(geom config.CacheGeometry, perfect bool, dramLat int64) *LLC {
	l := &LLC{
		arr:      cache.New(geom.SizeBytes, geom.LineBytes, geom.Ways),
		perfect:  perfect,
		dramLat:  dramLat,
		bypassed: make(map[uint64]bool),
	}
	l.pinAdapter = func(e *cache.Entry) bool {
		return l.curPinned != nil && l.curPinned(e.LineAddr)
	}
	return l
}

// Perfect reports whether the LLC is in perfect mode.
func (l *LLC) Perfect() bool { return l.perfect }

// Fetch serves a line fill toward a private cache and returns the extra
// latency beyond the bus data transfer (0 on an LLC hit, the DRAM latency on
// a miss) plus the line addresses that must be back-invalidated from private
// caches to preserve inclusion.
//
// pinned reports whether a line is currently timer-protected in some private
// cache; the controller never victimizes such lines (paper §III-B lists
// back-invalidation as an MSI-only invalidation cause). If every candidate
// way is pinned, the fill bypasses the LLC: the requester is served straight
// from DRAM and the line is not cached at this level.
//
// A non-nil backInv aliases a scratch buffer owned by the LLC: it is valid
// only until the next Fetch or WriteBack call.
//
//cohort:hotpath
func (l *LLC) Fetch(lineAddr uint64, now int64, pinned func(lineAddr uint64) bool) (penalty int64, backInv []uint64) {
	if l.perfect {
		l.hits.Inc()
		return 0, nil
	}
	if e := l.arr.Lookup(lineAddr); e != nil {
		l.hits.Inc()
		l.arr.Touch(e)
		return 0, nil
	}
	l.misses.Inc()
	l.curPinned = pinned
	victim := l.arr.VictimFor(lineAddr, l.pinAdapter)
	l.curPinned = nil
	if victim == nil {
		// All ways hold timer-protected lines: serve around the LLC.
		l.bypasses.Inc()
		l.bypassed[lineAddr] = true //cohort:allow hotalloc: bypass set bounded by pinned-capacity conflicts; first touch per line
		return l.dramLat, nil
	}
	if victim.Valid() {
		l.evictions.Inc()
		l.scratch = append(l.scratch[:0], victim.LineAddr) //cohort:allow hotalloc: one-element scratch reused across calls; grows once
		backInv = l.scratch
		l.arr.Invalidate(victim)
	}
	l.arr.Fill(victim, lineAddr, cache.Shared, now)
	delete(l.bypassed, lineAddr)
	return l.dramLat, backInv
}

// WriteBack absorbs a dirty line from a private cache and returns any lines
// that must be back-invalidated to make room. In perfect mode it is a no-op;
// otherwise the line is (re)installed so a future fetch hits. pinned has the
// same meaning as in Fetch, and backInv the same scratch-buffer lifetime.
//
//cohort:hotpath
func (l *LLC) WriteBack(lineAddr uint64, now int64, pinned func(lineAddr uint64) bool) (backInv []uint64) {
	if l.perfect {
		return nil
	}
	if e := l.arr.Lookup(lineAddr); e != nil {
		l.arr.Touch(e)
		return nil
	}
	// Writeback of a line the LLC no longer tracks (it was bypassed):
	// install it if possible without disturbing pinned lines.
	l.curPinned = pinned
	victim := l.arr.VictimFor(lineAddr, l.pinAdapter)
	l.curPinned = nil
	if victim == nil {
		return nil
	}
	if victim.Valid() {
		l.evictions.Inc()
		l.scratch = append(l.scratch[:0], victim.LineAddr) //cohort:allow hotalloc: one-element scratch reused across calls; grows once
		backInv = l.scratch
		l.arr.Invalidate(victim)
	}
	l.arr.Fill(victim, lineAddr, cache.Modified, now)
	delete(l.bypassed, lineAddr)
	return backInv
}

// Bypassed reports whether the line was last served around the LLC and has
// not been installed since — the one state in which a private copy may
// legally exist without an LLC copy.
func (l *LLC) Bypassed(lineAddr uint64) bool { return l.bypassed[lineAddr] }

// Contains reports whether the LLC currently caches the line (always true in
// perfect mode, matching an infinite cache).
func (l *LLC) Contains(lineAddr uint64) bool {
	if l.perfect {
		return true
	}
	return l.arr.Lookup(lineAddr) != nil
}

// Array exposes the underlying cache array for read-only state snapshots
// (the exhaustive model checker's canonical encoding). In perfect mode the
// array is unused and stays empty.
func (l *LLC) Array() *cache.Cache { return l.arr }

// Stats returns the controller's counters.
func (l *LLC) Stats() (hits, misses, evictions, bypasses int64) {
	return l.hits.Value(), l.misses.Value(), l.evictions.Value(), l.bypasses.Value()
}

// RegisterMetrics exposes the controller's counters and occupancy through a
// metrics registry (core.System.SetMetrics calls this). No-op on nil.
func (l *LLC) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterCounter("llc_hits", &l.hits)
	reg.RegisterCounter("llc_misses", &l.misses)
	reg.RegisterCounter("llc_evictions", &l.evictions)
	reg.RegisterCounter("llc_bypasses", &l.bypasses)
	reg.RegisterFunc("llc_valid_lines", func() int64 { return int64(l.arr.CountValid()) })
	reg.RegisterFunc("llc_bypassed_lines", func() int64 { return int64(len(l.bypassed)) })
}
