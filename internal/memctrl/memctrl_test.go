package memctrl

import (
	"testing"

	"cohort/internal/config"
)

func smallGeom() config.CacheGeometry {
	return config.CacheGeometry{SizeBytes: 2 * 64 * 2, LineBytes: 64, Ways: 2} // 2 sets, 2 ways
}

func TestPerfectLLCAlwaysHits(t *testing.T) {
	l := New(smallGeom(), true, 100)
	for i := uint64(0); i < 1000; i++ {
		penalty, backInv := l.Fetch(i, 0, nil)
		if penalty != 0 || backInv != nil {
			t.Fatalf("perfect LLC: penalty=%d backInv=%v", penalty, backInv)
		}
		if !l.Contains(i) {
			t.Fatal("perfect LLC must contain everything")
		}
	}
	hits, misses, _, _ := l.Stats()
	if hits != 1000 || misses != 0 {
		t.Fatalf("perfect stats: hits=%d misses=%d", hits, misses)
	}
	if got := l.WriteBack(5, 0, nil); got != nil {
		t.Fatal("perfect writeback must be a no-op")
	}
}

func TestNonPerfectMissHitSequence(t *testing.T) {
	l := New(smallGeom(), false, 100)
	penalty, backInv := l.Fetch(4, 0, nil)
	if penalty != 100 || len(backInv) != 0 {
		t.Fatalf("cold miss: penalty=%d backInv=%v", penalty, backInv)
	}
	penalty, _ = l.Fetch(4, 1, nil)
	if penalty != 0 {
		t.Fatalf("second fetch should hit, penalty=%d", penalty)
	}
	hits, misses, _, _ := l.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d", hits, misses)
	}
}

func TestEvictionBackInvalidation(t *testing.T) {
	l := New(smallGeom(), false, 100)
	// Set 0 holds even line addresses (2 sets). Fill both ways of set 0.
	l.Fetch(0, 0, nil)
	l.Fetch(2, 1, nil)
	// Third distinct line in set 0 evicts the LRU (line 0).
	_, backInv := l.Fetch(4, 2, nil)
	if len(backInv) != 1 || backInv[0] != 0 {
		t.Fatalf("backInv = %v, want [0]", backInv)
	}
	if l.Contains(0) {
		t.Fatal("evicted line still present")
	}
}

func TestPinnedLinesNeverEvicted(t *testing.T) {
	l := New(smallGeom(), false, 100)
	l.Fetch(0, 0, nil)
	l.Fetch(2, 1, nil)
	pinned := func(la uint64) bool { return la == 0 }
	_, backInv := l.Fetch(4, 2, pinned)
	if len(backInv) != 1 || backInv[0] != 2 {
		t.Fatalf("backInv = %v, want [2] (line 0 pinned)", backInv)
	}
	// All ways pinned: bypass, no back-invalidation, still a DRAM penalty.
	l.Fetch(2, 3, nil) // refill line 2
	allPinned := func(uint64) bool { return true }
	penalty, backInv := l.Fetch(6, 4, allPinned)
	if penalty != 100 || backInv != nil {
		t.Fatalf("bypass: penalty=%d backInv=%v", penalty, backInv)
	}
	if l.Contains(6) {
		t.Fatal("bypassed line must not be cached")
	}
	_, _, _, bypasses := l.Stats()
	if bypasses != 1 {
		t.Fatalf("bypasses = %d", bypasses)
	}
}

func TestWriteBackInstallsLine(t *testing.T) {
	l := New(smallGeom(), false, 100)
	if l.Contains(8) {
		t.Fatal("empty LLC contains line")
	}
	if backInv := l.WriteBack(8, 0, nil); backInv != nil {
		t.Fatalf("writeback into empty set returned %v", backInv)
	}
	if !l.Contains(8) {
		t.Fatal("writeback must install the line")
	}
	// A fetch after the writeback hits.
	penalty, _ := l.Fetch(8, 1, nil)
	if penalty != 0 {
		t.Fatalf("fetch after writeback: penalty=%d", penalty)
	}
	// Writeback of a present line just touches it.
	if backInv := l.WriteBack(8, 2, nil); backInv != nil {
		t.Fatalf("writeback of present line returned %v", backInv)
	}
}

func TestWriteBackEvictionReportsBackInv(t *testing.T) {
	l := New(smallGeom(), false, 100)
	l.Fetch(0, 0, nil)
	l.Fetch(2, 1, nil)
	backInv := l.WriteBack(4, 2, nil)
	if len(backInv) != 1 || backInv[0] != 0 {
		t.Fatalf("writeback eviction backInv = %v, want [0]", backInv)
	}
	// All-pinned set: writeback is dropped without eviction.
	backInv = l.WriteBack(6, 3, func(uint64) bool { return true })
	if backInv != nil {
		t.Fatalf("all-pinned writeback returned %v", backInv)
	}
}

func TestLRUWithinLLC(t *testing.T) {
	l := New(smallGeom(), false, 100)
	l.Fetch(0, 0, nil)
	l.Fetch(2, 1, nil)
	l.Fetch(0, 2, nil) // touch line 0 -> line 2 becomes LRU
	_, backInv := l.Fetch(4, 3, nil)
	if len(backInv) != 1 || backInv[0] != 2 {
		t.Fatalf("LRU eviction = %v, want [2]", backInv)
	}
}

func TestPerfectAccessor(t *testing.T) {
	if !New(smallGeom(), true, 0).Perfect() {
		t.Fatal("perfect LLC not reported")
	}
	if New(smallGeom(), false, 1).Perfect() {
		t.Fatal("non-perfect LLC reported perfect")
	}
}
