package coherence

import (
	"testing"
	"testing/quick"

	"cohort/internal/config"
)

func TestReleaseTimeMSIAndNoCache(t *testing.T) {
	if got := ReleaseTime(100, 250, config.TimerMSI); got != 250 {
		t.Fatalf("MSI release = %d, want 250 (immediate)", got)
	}
	if got := ReleaseTime(100, 250, config.TimerNoCache); got != 250 {
		t.Fatalf("no-cache release = %d, want 250", got)
	}
}

func TestReleaseTimeTimed(t *testing.T) {
	cases := []struct {
		fetched, req int64
		theta        config.Timer
		want         int64
	}{
		{100, 100, 50, 150},  // request at fetch: wait one full period
		{100, 90, 50, 150},   // request before fetch visible: first expiry
		{100, 149, 50, 150},  // just before expiry
		{100, 150, 50, 150},  // exactly at expiry: hand over now
		{100, 151, 50, 200},  // just after expiry: counter replenished
		{100, 349, 50, 350},  // several periods later
		{100, 350, 50, 350},  // exactly at a later expiry
		{0, 1, 1, 1},         // θ=1 ticks every cycle
		{0, 7, 1, 7},         // θ=1: always released at the request cycle
		{100, 500, 300, 700}, // large timer
	}
	for _, c := range cases {
		if got := ReleaseTime(c.fetched, c.req, c.theta); got != c.want {
			t.Errorf("ReleaseTime(%d,%d,%d) = %d, want %d", c.fetched, c.req, c.theta, got, c.want)
		}
	}
}

// Property: the release time is an expiry instant, is ≥ the request time,
// and is < request + θ (the requester waits at most one period).
func TestPropertyReleaseBounds(t *testing.T) {
	f := func(fetchRaw, gapRaw uint16, thetaRaw uint8) bool {
		fetched := int64(fetchRaw)
		req := fetched + int64(gapRaw)
		theta := config.Timer(int32(thetaRaw%200) + 1)
		rel := ReleaseTime(fetched, req, theta)
		if rel < req {
			return false
		}
		if rel >= req+int64(theta)+1 {
			return false
		}
		// Must lie on an expiry instant.
		return (rel-fetched)%int64(theta) == 0 && rel > fetched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cycle-accurate Fig. 3 circuit and the closed-form
// ReleaseTime agree on when a line is handed over.
func TestPropertyCircuitMatchesClosedForm(t *testing.T) {
	f := func(reqDelayRaw uint16, thetaRaw uint8) bool {
		theta := config.Timer(int32(thetaRaw%60) + 1)
		reqAt := int64(reqDelayRaw % 500) // cycle the remote request arrives
		c := NewCountdownCounter(theta)
		// Fetched at cycle 0; first Tick is the end of cycle 1.
		for now := int64(1); now < 1200; now++ {
			act := c.Tick(now >= reqAt && reqAt > 0)
			if act == ActionInvalidate {
				want := ReleaseTime(0, reqAt, theta)
				return now == want
			}
		}
		// No invalidation: only possible when no request arrived.
		return reqAt == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCountdownCounterMSI(t *testing.T) {
	c := NewCountdownCounter(config.TimerMSI)
	if c.Enable() {
		t.Fatal("MSI counter must be disabled")
	}
	for i := 0; i < 100; i++ {
		if act := c.Tick(false); act != ActionNone {
			t.Fatalf("MSI with no pending: %v", act)
		}
	}
	if act := c.Tick(true); act != ActionInvalidate {
		t.Fatalf("MSI with pending: %v, want invalidate", act)
	}
}

func TestCountdownCounterNoCache(t *testing.T) {
	c := NewCountdownCounter(config.TimerNoCache)
	if act := c.Tick(false); act != ActionInvalidate {
		t.Fatalf("θ=0 must invalidate immediately, got %v", act)
	}
}

func TestCountdownCounterReplenish(t *testing.T) {
	c := NewCountdownCounter(3)
	// Ticks 1,2 no action; tick 3 expires with no pending -> replenish.
	if c.Tick(false) != ActionNone || c.Tick(false) != ActionNone {
		t.Fatal("counter expired early")
	}
	if act := c.Tick(false); act != ActionReplenish {
		t.Fatalf("expiry without pending: %v, want replenish", act)
	}
	if c.Count() != 3 {
		t.Fatalf("after replenish Count = %d, want 3", c.Count())
	}
	// Next expiry with pending -> invalidate.
	c.Tick(true)
	c.Tick(true)
	if act := c.Tick(true); act != ActionInvalidate {
		t.Fatalf("expiry with pending: %v, want invalidate", act)
	}
}

func TestCountdownCounterProtectsDuringPeriod(t *testing.T) {
	c := NewCountdownCounter(10)
	// A pending remote request mid-period must NOT invalidate: that is the
	// whole point of time-based coherence (Fig. 1b).
	for i := 0; i < 9; i++ {
		if act := c.Tick(true); act != ActionNone {
			t.Fatalf("tick %d with pending: %v, want none (protected)", i+1, act)
		}
	}
	if act := c.Tick(true); act != ActionInvalidate {
		t.Fatalf("tick 10: %v, want invalidate", act)
	}
}

func TestNewCountdownCounterInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCountdownCounter(-5)
}

func TestCounterActionString(t *testing.T) {
	if ActionNone.String() != "none" || ActionInvalidate.String() != "invalidate" || ActionReplenish.String() != "replenish" {
		t.Fatal("action strings wrong")
	}
}

func TestModeLUT(t *testing.T) {
	lut, err := NewModeLUT([]config.Timer{300, 20, 10, config.TimerMSI, config.TimerMSI})
	if err != nil {
		t.Fatal(err)
	}
	if lut.Modes() != 5 {
		t.Fatalf("Modes = %d", lut.Modes())
	}
	if lut.StorageBits() != 80 {
		t.Fatalf("StorageBits = %d, want 80 (paper's 5-level figure)", lut.StorageBits())
	}
	th, err := lut.Lookup(1)
	if err != nil || th != 300 {
		t.Fatalf("Lookup(1) = %v, %v", th, err)
	}
	th, err = lut.Lookup(4)
	if err != nil || th != config.TimerMSI {
		t.Fatalf("Lookup(4) = %v, %v", th, err)
	}
	if _, err := lut.Lookup(0); err == nil {
		t.Fatal("Lookup(0) must fail")
	}
	if _, err := lut.Lookup(6); err == nil {
		t.Fatal("Lookup(6) must fail")
	}
}

func TestModeLUTValidation(t *testing.T) {
	if _, err := NewModeLUT(nil); err == nil {
		t.Fatal("empty LUT must fail")
	}
	if _, err := NewModeLUT([]config.Timer{-3}); err == nil {
		t.Fatal("invalid timer must fail")
	}
}

func TestModeLUTIsCopied(t *testing.T) {
	src := []config.Timer{1, 2}
	lut, _ := NewModeLUT(src)
	src[0] = 99
	th, _ := lut.Lookup(1)
	if th != 1 {
		t.Fatal("LUT aliases caller slice")
	}
}

// Property: the circuit and the closed form also agree for the special
// register values — MSI (θ=−1) invalidates exactly when a request is
// pending, θ=0 never retains.
func TestPropertyCircuitSpecialValues(t *testing.T) {
	f := func(reqDelayRaw uint16) bool {
		reqAt := int64(reqDelayRaw%300) + 1
		// MSI: invalidation fires at the first tick with PendingInv high.
		msi := NewCountdownCounter(config.TimerMSI)
		for now := int64(1); now < 400; now++ {
			act := msi.Tick(now >= reqAt)
			if act == ActionInvalidate {
				if now != reqAt {
					return false
				}
				break
			}
			if act == ActionReplenish {
				return false // a disabled counter never replenishes
			}
		}
		// θ=0: invalidates at the very first tick regardless of requests.
		zero := NewCountdownCounter(config.TimerNoCache)
		return zero.Tick(false) == ActionInvalidate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after an ActionReplenish the counter output equals θ again —
// the Load path of Fig. 3.
func TestPropertyReplenishReloads(t *testing.T) {
	f := func(thetaRaw uint8, rounds uint8) bool {
		theta := config.Timer(int32(thetaRaw%40) + 1)
		c := NewCountdownCounter(theta)
		for r := 0; r < int(rounds%5)+1; r++ {
			for i := int32(0); i < int32(theta)-1; i++ {
				if c.Tick(false) != ActionNone {
					return false
				}
			}
			if c.Tick(false) != ActionReplenish {
				return false
			}
			if c.Count() != int32(theta) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
